//! **rap-store** — a crash-safe, content-addressed on-disk artifact cache.
//!
//! `rap-session` memoizes every derived artifact (throughput analysis,
//! verification screen, silicon cost, …) in memory; this crate makes those
//! artifacts survive process restarts. A [`Store`] is a directory of
//! checksummed, versioned **frames**, one per artifact, keyed by the same
//! identity the session caches under: the model's structural hash, its
//! byte-exact identity digest, the query kind, and the query's own cache
//! key (state budget, cost-model key, …) — see [`ArtifactKey`].
//!
//! # Durability contract
//!
//! 1. **Atomic commits.** An artifact is written as a complete frame to a
//!    temporary file, fsynced, then atomically renamed into place (and the
//!    directory fsynced). Readers never observe a half-written frame at
//!    the final path under a crash of the *writer process*; a torn frame
//!    can still appear if the machine itself dies with dirty page cache,
//!    which is why reads verify, not trust.
//! 2. **Verify on read.** Every load re-checks the magic, the schema
//!    version, the full checksum, and that the frame's embedded key equals
//!    the requested key. A corrupt, truncated, stale-versioned or alien
//!    frame is **quarantined** (moved to `quarantine/`) and reported as a
//!    miss, so the caller transparently recomputes and rewrites it.
//! 3. **Single writer.** A pid-stamped `writer.lock` file guards the
//!    directory. Locks left behind by dead processes (SIGKILL mid-commit)
//!    are detected by a liveness probe and broken; a lock held by a live
//!    process makes [`Store::open`] fail with [`StoreError::Locked`].
//! 4. **Graceful degradation.** No I/O failure is ever allowed to change
//!    an answer — only its cost. Failed writes (ENOSPC, crash injection)
//!    are counted and dropped; failed or corrupt reads are counted and
//!    recomputed. The differential fault-injection suite in the facade
//!    pins this: a session over an arbitrarily faulted store returns
//!    bit-identical artifacts to a fresh in-memory session.
//!
//! All I/O goes through the [`Storage`] trait. Production uses
//! [`DiskStorage`]; tests wrap it in [`FaultyStorage`], which injects torn
//! writes (kill-at-byte-k), ENOSPC, read EIO, crash-before/after-rename
//! and stale/live lock scenarios on demand.
//!
//! The frame format and checksum live in [`frame`]; the little-endian
//! byte codec shared with the payload encoders lives in [`codec`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod faults;
pub mod frame;
mod storage;

pub use faults::FaultyStorage;
pub use storage::{DiskStorage, Storage};

use frame::{decode_frame, encode_frame};
use rap_obs::{CounterSnapshot, Meter, Obs};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// The query kinds a store distinguishes. The discriminants are part of
/// the on-disk format (they appear in file names and frame headers), so
/// they are assigned explicitly and must never be reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum QueryKind {
    /// Throughput analysis with per-node activity (`perf_detail`).
    Perf = 1,
    /// Budgeted deadlock/1-safety screen (`quick_check`); the subkey is
    /// the state budget.
    Check = 2,
    /// Silicon cost summary (`cost`); the subkey is the cost model's
    /// cache key.
    Cost = 3,
    /// Timed-simulator steady-state recurrence (`steady_period`); the
    /// subkey digests the watched node and mark budget.
    Steady = 4,
}

impl QueryKind {
    pub(crate) fn from_tag(tag: u8) -> Option<QueryKind> {
        match tag {
            1 => Some(QueryKind::Perf),
            2 => Some(QueryKind::Check),
            3 => Some(QueryKind::Cost),
            4 => Some(QueryKind::Steady),
            _ => None,
        }
    }
}

/// The full identity of one cached artifact.
///
/// `structural` and `identity` are the model's two interning digests (the
/// same pair `rap-session` interns compiled models under), `kind` is the
/// query, and `subkey` is the query's own cache key — the state budget for
/// checks, the cost-model key for costs, zero for the (unkeyed) throughput
/// analysis. Payload decoders additionally echo their raw key parameters
/// inside the payload where the subkey is a digest, so a digest collision
/// degrades to a recompute, never to a wrong answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArtifactKey {
    /// Canonical structural hash of the model.
    pub structural: u64,
    /// Byte-exact identity digest (names, order, attributes).
    pub identity: u64,
    /// Which query produced the artifact.
    pub kind: QueryKind,
    /// The query's own cache key (0 when the query is unkeyed).
    pub subkey: u64,
}

impl ArtifactKey {
    fn file_name(&self) -> String {
        format!(
            "a{:02x}-{:016x}-{:016x}-{:016x}.rap",
            self.kind as u8, self.structural, self.identity, self.subkey
        )
    }
}

/// Why a store could not be opened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The directory is locked by a live writer process.
    Locked {
        /// Pid recorded in the lock file.
        holder: u32,
    },
    /// An I/O error while preparing the directory or taking the lock.
    Io(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Locked { holder } => {
                write!(f, "artifact store is locked by live process {holder}")
            }
            StoreError::Io(msg) => write!(f, "artifact store I/O error: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Store counters: every read/write outcome, so degradation is observable.
///
/// The counters are cumulative over the lifetime of the [`Store`] value
/// (i.e. one process's tenancy of the directory, not the directory's
/// history). `StoreStats` is a *view* over the store's `rap-obs` counter
/// set — see [`StoreStats::from_counters`] for the name mapping — taken as
/// one coherent snapshot, never a field-by-field read.
///
/// **Aliasing note:** a [`disk_hits`](StoreStats::disk_hits) that served a
/// DSE evaluation is *also* counted as a memo hit by the DSE driver (which
/// only distinguishes "ran the analysis here" from "did not"); never sum
/// the two counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Loads served from a verified on-disk frame.
    pub disk_hits: u64,
    /// Loads that found no frame (the artifact was never persisted, or a
    /// corrupt predecessor was quarantined earlier).
    pub disk_misses: u64,
    /// Corrupt / truncated / stale-versioned / alien frames quarantined
    /// and reported as misses — each one is transparently recomputed by
    /// the caller, so this is the count of *recovered* frames.
    pub corrupt_recovered: u64,
    /// Reads that failed with an I/O error (treated as misses).
    pub read_errors: u64,
    /// Frame bytes successfully committed.
    pub bytes_written: u64,
    /// Frame bytes of verified loads.
    pub bytes_read: u64,
    /// Writes dropped because of an I/O error (ENOSPC, injected crash…).
    pub write_errors: u64,
    /// Stale locks of dead writers broken during [`Store::open`].
    pub stale_locks_broken: u64,
}

impl StoreStats {
    /// Builds the view from a coherent counter snapshot. The taxonomy
    /// names (see the `rap-obs` crate docs) map as:
    /// `store.read.hit` → `disk_hits`, `store.read.miss` → `disk_misses`,
    /// `store.quarantine` → `corrupt_recovered`, `store.read.error` →
    /// `read_errors`, `store.write.bytes` → `bytes_written`,
    /// `store.read.bytes` → `bytes_read`, `store.write.error` →
    /// `write_errors`, `store.lock.stale_broken` → `stale_locks_broken`.
    #[must_use]
    pub fn from_counters(c: &CounterSnapshot) -> StoreStats {
        StoreStats {
            disk_hits: c.get("store.read.hit"),
            disk_misses: c.get("store.read.miss"),
            corrupt_recovered: c.get("store.quarantine"),
            read_errors: c.get("store.read.error"),
            bytes_written: c.get("store.write.bytes"),
            bytes_read: c.get("store.read.bytes"),
            write_errors: c.get("store.write.error"),
            stale_locks_broken: c.get("store.lock.stale_broken"),
        }
    }
}

const LOCK_FILE: &str = "writer.lock";
const QUARANTINE_DIR: &str = "quarantine";
const TMP_SUFFIX: &str = ".tmp";

/// A content-addressed artifact cache over one directory — see the
/// [crate docs](crate) for the durability contract.
///
/// A `Store` holds the directory's single-writer lock from
/// [`open`](Store::open) until it is dropped. It is `Send + Sync`; the
/// session layer shares one store across all compiled models via `Arc`.
pub struct Store {
    dir: PathBuf,
    storage: Arc<dyn Storage>,
    meter: Meter,
    /// The pid written into the lock file — removed again on drop.
    lock_pid: u32,
}

impl fmt::Debug for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Store")
            .field("dir", &self.dir)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Store {
    /// Opens (creating if necessary) the store at `dir` on the real
    /// filesystem.
    ///
    /// # Errors
    ///
    /// [`StoreError::Locked`] when a live process holds the directory;
    /// [`StoreError::Io`] when the directory or lock cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> Result<Store, StoreError> {
        Store::open_with(dir, Arc::new(DiskStorage))
    }

    /// [`open`](Store::open) over an arbitrary [`Storage`] backend — the
    /// fault-injection hook ([`FaultyStorage`]) and the seam any future
    /// remote/mmap backend slots into.
    ///
    /// # Errors
    ///
    /// See [`open`](Store::open).
    pub fn open_with(
        dir: impl AsRef<Path>,
        storage: Arc<dyn Storage>,
    ) -> Result<Store, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        let io_err = |op: &str, e: io::Error| StoreError::Io(format!("{op}: {e}"));
        storage
            .create_dir_all(&dir)
            .map_err(|e| io_err("create store dir", e))?;
        storage
            .create_dir_all(&dir.join(QUARANTINE_DIR))
            .map_err(|e| io_err("create quarantine dir", e))?;

        let lock_pid = std::process::id();
        let lock_path = dir.join(LOCK_FILE);
        let mut stale_broken = 0u64;
        // two attempts: the first may break one stale lock, the second must
        // then succeed (or lose a race to a concurrent live opener, which
        // is correctly reported as Locked)
        let mut attempts = 0;
        loop {
            match storage.create_exclusive(&lock_path, lock_pid.to_string().as_bytes()) {
                Ok(()) => break,
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    attempts += 1;
                    if attempts > 2 {
                        return Err(StoreError::Io(
                            "lock keeps reappearing while being broken".into(),
                        ));
                    }
                    let holder = storage
                        .read(&lock_path)
                        .ok()
                        .and_then(|b| String::from_utf8(b).ok())
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    match holder {
                        // a live holder — including this very process via
                        // another Store value — keeps the directory locked
                        Some(pid) if storage.process_alive(pid) => {
                            return Err(StoreError::Locked { holder: pid });
                        }
                        // dead holder or unreadable garbage: the lock is
                        // stale — break it and retry
                        _ => {
                            storage
                                .remove(&lock_path)
                                .map_err(|e| io_err("break stale lock", e))?;
                            stale_broken += 1;
                        }
                    }
                }
                Err(e) => return Err(io_err("take lock", e)),
            }
        }

        let store = Store {
            dir,
            storage,
            meter: Meter::new(),
            lock_pid,
        };
        if stale_broken > 0 {
            store.meter.add("store.lock.stale_broken", stale_broken);
        }
        store.sweep_orphan_temps();
        Ok(store)
    }

    /// Attaches a recorder: I/O counters are mirrored into it (under the
    /// same `store.*` taxonomy names), read/write latency is observed in
    /// the `store.read_ns` / `store.write_ns` log2 histograms, and every
    /// quarantined frame emits a `store.quarantine` event naming the file.
    ///
    /// Must be called before the store is shared (it takes `&mut self`);
    /// [`Store::open`] + `set_recorder` + `Session::with_store_and_recorder`
    /// is the usual sequence, or go through `Session::open_traced`.
    pub fn set_recorder(&mut self, obs: Obs) {
        self.meter.set_obs(obs);
    }

    /// The attached recorder handle (detached unless
    /// [`set_recorder`](Store::set_recorder) was called).
    #[must_use]
    pub fn recorder(&self) -> &Obs {
        self.meter.obs()
    }

    /// Removes `*.tmp` leftovers of commits that died before their rename
    /// — they were never visible as artifacts, so this is pure hygiene.
    fn sweep_orphan_temps(&self) {
        if let Ok(entries) = self.storage.list(&self.dir) {
            for p in entries {
                if p.to_string_lossy().ends_with(TMP_SUFFIX) {
                    let _ = self.storage.remove(&p);
                }
            }
        }
    }

    /// The directory this store manages.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The final on-disk path of `key`'s frame (diagnostics and the crash
    /// harness; the file need not exist).
    #[must_use]
    pub fn artifact_path(&self, key: &ArtifactKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Loads and verifies the payload stored under `key`.
    ///
    /// Returns `None` on a miss — including every failure mode: no frame,
    /// unreadable frame (I/O error), or a frame that fails verification
    /// (bad magic/version/checksum or a key mismatch), in which case the
    /// frame is quarantined first. A `None` therefore always means
    /// "recompute (and [`save`](Store::save)) this artifact".
    #[must_use]
    pub fn load(&self, key: &ArtifactKey) -> Option<Vec<u8>> {
        let start = self.meter.obs().is_enabled().then(Instant::now);
        let result = self.load_inner(key);
        if let Some(t0) = start {
            self.meter.obs().observe_ns(
                "store.read_ns",
                u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
        }
        result
    }

    fn load_inner(&self, key: &ArtifactKey) -> Option<Vec<u8>> {
        let path = self.artifact_path(key);
        let bytes = match self.storage.read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.meter.add("store.read.miss", 1);
                return None;
            }
            Err(_) => {
                // unreadable (EIO…): count, try to get the bad frame out of
                // the way so the rewrite is not blocked, report a miss
                self.meter.add("store.read.error", 1);
                self.meter.add("store.read.miss", 1);
                self.quarantine_path(&path);
                return None;
            }
        };
        match decode_frame(&bytes, key) {
            Some(payload) => {
                self.meter.add("store.read.hit", 1);
                self.meter.add("store.read.bytes", bytes.len() as u64);
                Some(payload)
            }
            None => {
                self.quarantine(key);
                self.meter.add("store.read.miss", 1);
                None
            }
        }
    }

    /// Commits `payload` under `key`: frame to a temp file, fsync, atomic
    /// rename. Best-effort — a failed write is counted
    /// ([`StoreStats::write_errors`]) and dropped, never surfaced to the
    /// query that computed the artifact. Returns whether the commit
    /// succeeded.
    pub fn save(&self, key: &ArtifactKey, payload: &[u8]) -> bool {
        let start = self.meter.obs().is_enabled().then(Instant::now);
        let frame = encode_frame(key, payload);
        let final_path = self.artifact_path(key);
        let tmp_path = self.dir.join(format!("{}{}", key.file_name(), TMP_SUFFIX));
        let committed = self
            .storage
            .write(&tmp_path, &frame)
            .and_then(|()| self.storage.rename(&tmp_path, &final_path));
        let ok = match committed {
            Ok(()) => {
                self.meter.add("store.write.bytes", frame.len() as u64);
                true
            }
            Err(_) => {
                self.meter.add("store.write.error", 1);
                let _ = self.storage.remove(&tmp_path);
                false
            }
        };
        if let Some(t0) = start {
            self.meter.obs().observe_ns(
                "store.write_ns",
                u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
        }
        ok
    }

    /// Moves `key`'s frame into `quarantine/` (falling back to deletion)
    /// and counts it as a recovered corrupt frame. Exposed for payload
    /// decoders: a frame whose *checksum* verifies but whose payload fails
    /// schema decoding is equally corrupt from the caller's point of view.
    pub fn quarantine(&self, key: &ArtifactKey) {
        self.quarantine_path(&self.artifact_path(key));
    }

    fn quarantine_path(&self, path: &Path) {
        let Some(name) = path.file_name() else {
            return;
        };
        let dest = self.dir.join(QUARANTINE_DIR).join(name);
        if self.storage.rename(path, &dest).is_err() {
            // a frame we cannot move must not keep serving corrupt bytes
            let _ = self.storage.remove(path);
        }
        self.meter.add("store.quarantine", 1);
        self.meter
            .obs()
            .note("store.quarantine", &name.to_string_lossy(), 0);
    }

    /// Number of frames currently quarantined in this store's directory.
    #[must_use]
    pub fn quarantined_frames(&self) -> usize {
        self.storage
            .list(&self.dir.join(QUARANTINE_DIR))
            .map(|v| v.len())
            .unwrap_or(0)
    }

    /// Coherent counter snapshot (one lock acquisition — related counters
    /// can never tear apart).
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        StoreStats::from_counters(&self.meter.snapshot())
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        // release the single-writer lock, but only if it is still ours —
        // never clobber a successor that legitimately broke a stale lock
        let lock_path = self.dir.join(LOCK_FILE);
        if let Ok(bytes) = self.storage.read(&lock_path) {
            if String::from_utf8_lossy(&bytes).trim() == self.lock_pid.to_string() {
                let _ = self.storage.remove(&lock_path);
            }
        }
    }
}

// The session layer shares one store across threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Store>();
};
