//! The DFS graph: `DFS = ⟨V, E, M0⟩` with derived R-presets/R-postsets.
//!
//! A [`Dfs`] is immutable once built (see [`crate::DfsBuilder`]); all derived
//! structure — R-presets, R-postsets, guards — is computed at build time so
//! the simulators and analysers run over plain index lookups.

use crate::node::{Node, NodeId, NodeKind};
use crate::DfsError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How a node combines the values of several control guards.
///
/// The paper's base model requires unanimity (a True/False mismatch disables
/// the node — a verifiable error condition, §II-B). The `And`/`Or` modes
/// implement the Boolean-algebra extension mentioned (and deferred) by the
/// paper: token synchronisation with AND/OR semantics instead of C-element
/// unanimity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum GuardMode {
    /// All guards must agree; a mismatch disables the node (C-element
    /// semantics). This is the paper's base behaviour.
    #[default]
    Unanimous,
    /// The node is true-controlled iff *all* guards are true (AND).
    And,
    /// The node is true-controlled iff *any* guard is true (OR).
    Or,
}

/// An edge endpoint with the inversion parity accumulated along the logic
/// path (inverting arcs are part of the Boolean-algebra extension; parity is
/// `false` everywhere in base-model graphs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RRef {
    /// The register at the far end of the logic path.
    pub node: NodeId,
    /// XOR of edge inversions along the path.
    pub inverted: bool,
}

/// A direct edge endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeRef {
    /// The adjacent node.
    pub node: NodeId,
    /// Whether this arc inverts the token value it conveys.
    pub inverted: bool,
}

/// An immutable dataflow structure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dfs {
    pub(crate) nodes: Vec<Node>,
    pub(crate) preds: Vec<Vec<EdgeRef>>,
    pub(crate) succs: Vec<Vec<EdgeRef>>,
    pub(crate) guard_modes: Vec<GuardMode>,
    /// `?x` — registers with a logic path into `x`.
    pub(crate) r_preset: Vec<Vec<RRef>>,
    /// `x?` — registers reachable from `x` through a logic path.
    pub(crate) r_postset: Vec<Vec<RRef>>,
    /// Control registers in `?x`, for non-control `x`: the node's guards.
    pub(crate) guards: Vec<Vec<RRef>>,
    #[serde(skip)]
    pub(crate) name_index: HashMap<String, NodeId>,
}

impl Dfs {
    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// The node record for `n`.
    #[must_use]
    pub fn node(&self, n: NodeId) -> &Node {
        &self.nodes[n.index()]
    }

    /// The kind of `n` (shorthand for `self.node(n).kind`).
    #[must_use]
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.nodes[n.index()].kind
    }

    /// Finds a node by name.
    #[must_use]
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.name_index.get(name).copied()
    }

    /// Direct predecessors (`•x`).
    #[must_use]
    pub fn preds(&self, n: NodeId) -> &[EdgeRef] {
        &self.preds[n.index()]
    }

    /// Direct successors (`x•`).
    #[must_use]
    pub fn succs(&self, n: NodeId) -> &[EdgeRef] {
        &self.succs[n.index()]
    }

    /// R-preset `?x`: registers with a logic path to `x`.
    #[must_use]
    pub fn r_preset(&self, n: NodeId) -> &[RRef] {
        &self.r_preset[n.index()]
    }

    /// R-postset `x?`: registers reachable from `x` via a logic path.
    #[must_use]
    pub fn r_postset(&self, n: NodeId) -> &[RRef] {
        &self.r_postset[n.index()]
    }

    /// Control registers guarding `n` (empty for control nodes themselves —
    /// their upstream controls are value sources, not guards).
    #[must_use]
    pub fn guards(&self, n: NodeId) -> &[RRef] {
        &self.guards[n.index()]
    }

    /// The guard combination mode of `n`.
    #[must_use]
    pub fn guard_mode(&self, n: NodeId) -> GuardMode {
        self.guard_modes[n.index()]
    }

    /// Number of edges in the graph.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// All register nodes.
    pub fn registers(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(|&n| self.kind(n).is_register())
    }

    /// All logic nodes.
    pub fn logic_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(|&n| self.kind(n) == NodeKind::Logic)
    }

    /// Total number of initial tokens.
    #[must_use]
    pub fn initial_token_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.initial.is_marked()).count()
    }

    /// Rebuilds the name index (after deserialisation).
    pub fn rebuild_name_index(&mut self) {
        self.name_index = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.name.clone(), NodeId::from_index(i)))
            .collect();
    }

    /// Validates structural well-formedness; called by the builder and
    /// useful again after deserialisation.
    ///
    /// # Errors
    ///
    /// * [`DfsError::CombinationalCycle`] — a cycle through logic nodes only.
    /// * [`DfsError::MarkedLogic`] — a logic node with an initial token.
    /// * [`DfsError::BadDelay`] — a negative or non-finite delay.
    pub fn validate(&self) -> Result<(), DfsError> {
        for n in self.nodes() {
            let node = self.node(n);
            if node.kind == NodeKind::Logic && node.initial.is_marked() {
                return Err(DfsError::MarkedLogic {
                    node: node.name.clone(),
                });
            }
            if !node.delay.is_finite() || node.delay < 0.0 {
                return Err(DfsError::BadDelay {
                    node: node.name.clone(),
                    delay: node.delay,
                });
            }
        }
        // combinational cycle detection: DFS over logic-only subgraph
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks = vec![Mark::White; self.nodes.len()];
        let mut stack: Vec<(NodeId, usize)> = Vec::new();
        for start in self.logic_nodes() {
            if marks[start.index()] != Mark::White {
                continue;
            }
            marks[start.index()] = Mark::Grey;
            stack.push((start, 0));
            while let Some(&mut (n, ref mut next)) = stack.last_mut() {
                let succs = &self.succs[n.index()];
                let mut advanced = false;
                while *next < succs.len() {
                    let s = succs[*next].node;
                    *next += 1;
                    if self.kind(s) != NodeKind::Logic {
                        continue;
                    }
                    match marks[s.index()] {
                        Mark::Grey => {
                            return Err(DfsError::CombinationalCycle {
                                node: self.node(s).name.clone(),
                            })
                        }
                        Mark::White => {
                            marks[s.index()] = Mark::Grey;
                            stack.push((s, 0));
                            advanced = true;
                            break;
                        }
                        Mark::Black => {}
                    }
                }
                if !advanced && stack.last().map(|&(m, _)| m) == Some(n) {
                    marks[n.index()] = Mark::Black;
                    stack.pop();
                }
            }
        }
        Ok(())
    }

    /// Computes the derived R-relations; called by the builder.
    pub(crate) fn compute_derived(&mut self) {
        let count = self.nodes.len();
        self.r_preset = (0..count)
            .map(|i| self.trace_registers(NodeId::from_index(i), Direction::Backward))
            .collect();
        self.r_postset = (0..count)
            .map(|i| self.trace_registers(NodeId::from_index(i), Direction::Forward))
            .collect();
        self.guards = (0..count)
            .map(|i| {
                let n = NodeId::from_index(i);
                if self.kind(n) == NodeKind::Control {
                    Vec::new()
                } else {
                    self.r_preset[i]
                        .iter()
                        .copied()
                        .filter(|r| self.kind(r.node) == NodeKind::Control)
                        .collect()
                }
            })
            .collect();
    }

    /// Registers reachable from `start` through logic paths in the given
    /// direction, with inversion parity. If two paths with different parity
    /// exist, the register appears once per parity.
    fn trace_registers(&self, start: NodeId, dir: Direction) -> Vec<RRef> {
        let mut out: Vec<RRef> = Vec::new();
        let mut visited: Vec<(NodeId, bool)> = Vec::new();
        let mut stack: Vec<(NodeId, bool)> = self
            .neighbours(start, dir)
            .iter()
            .map(|e| (e.node, e.inverted))
            .collect();
        while let Some((n, parity)) = stack.pop() {
            if self.kind(n).is_register() {
                if !out.iter().any(|r| r.node == n && r.inverted == parity) {
                    out.push(RRef {
                        node: n,
                        inverted: parity,
                    });
                }
                continue;
            }
            if visited.contains(&(n, parity)) {
                continue;
            }
            visited.push((n, parity));
            for e in self.neighbours(n, dir) {
                stack.push((e.node, parity ^ e.inverted));
            }
        }
        out.sort_by_key(|r| (r.node, r.inverted));
        out
    }

    fn neighbours(&self, n: NodeId, dir: Direction) -> &[EdgeRef] {
        match dir {
            Direction::Forward => &self.succs[n.index()],
            Direction::Backward => &self.preds[n.index()],
        }
    }
}

#[derive(Clone, Copy)]
enum Direction {
    Forward,
    Backward,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfsBuilder;
    use crate::node::TokenValue;

    /// in -> cond(logic) -> ctrl; in -> filt(push); ctrl guards filt.
    fn fig1b_fragment() -> Dfs {
        let mut b = DfsBuilder::new();
        let input = b.register("in").marked().build();
        let cond = b.logic("cond").build();
        let ctrl = b.control("ctrl").build();
        let filt = b.push("filt").build();
        b.connect(input, cond);
        b.connect(cond, ctrl);
        b.connect(input, filt);
        b.connect(ctrl, filt);
        b.finish().unwrap()
    }

    #[test]
    fn r_preset_traverses_logic_paths() {
        let dfs = fig1b_fragment();
        let ctrl = dfs.node_by_name("ctrl").unwrap();
        let input = dfs.node_by_name("in").unwrap();
        let filt = dfs.node_by_name("filt").unwrap();
        // ?ctrl = {in} (through cond)
        let rp: Vec<NodeId> = dfs.r_preset(ctrl).iter().map(|r| r.node).collect();
        assert_eq!(rp, vec![input]);
        // ?filt = {in, ctrl}
        let rp: Vec<NodeId> = dfs.r_preset(filt).iter().map(|r| r.node).collect();
        assert!(rp.contains(&input) && rp.contains(&ctrl));
        // in? = {ctrl, filt}
        let rs: Vec<NodeId> = dfs.r_postset(input).iter().map(|r| r.node).collect();
        assert!(rs.contains(&ctrl) && rs.contains(&filt));
    }

    #[test]
    fn guards_are_control_registers_in_r_preset() {
        let dfs = fig1b_fragment();
        let filt = dfs.node_by_name("filt").unwrap();
        let ctrl = dfs.node_by_name("ctrl").unwrap();
        let guards: Vec<NodeId> = dfs.guards(filt).iter().map(|r| r.node).collect();
        assert_eq!(guards, vec![ctrl]);
        // a control register's own upstream controls are value sources,
        // not guards
        assert!(dfs.guards(ctrl).is_empty());
    }

    #[test]
    fn combinational_cycle_is_rejected() {
        let mut b = DfsBuilder::new();
        let l1 = b.logic("l1").build();
        let l2 = b.logic("l2").build();
        b.connect(l1, l2);
        b.connect(l2, l1);
        assert!(matches!(
            b.finish(),
            Err(DfsError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn cycle_through_register_is_fine() {
        let mut b = DfsBuilder::new();
        let l1 = b.logic("l1").build();
        let r = b.register("r").marked().build();
        b.connect(l1, r);
        b.connect(r, l1);
        assert!(b.finish().is_ok());
    }

    #[test]
    fn inversion_parity_propagates_through_logic() {
        let mut b = DfsBuilder::new();
        let c = b.control("c").marked_with(TokenValue::True).build();
        let l = b.logic("l").build();
        let p = b.push("p").build();
        b.connect_inverted(c, l);
        b.connect(l, p);
        let dfs = b.finish().unwrap();
        let p = dfs.node_by_name("p").unwrap();
        assert_eq!(dfs.guards(p).len(), 1);
        assert!(dfs.guards(p)[0].inverted);
    }

    #[test]
    fn marked_logic_is_rejected() {
        let mut b = DfsBuilder::new();
        let _ = b.logic("l").marked().build();
        assert!(matches!(b.finish(), Err(DfsError::MarkedLogic { .. })));
    }

    #[test]
    fn edge_and_token_counts() {
        let dfs = fig1b_fragment();
        assert_eq!(dfs.edge_count(), 4);
        assert_eq!(dfs.initial_token_count(), 1);
        assert_eq!(dfs.registers().count(), 3);
        assert_eq!(dfs.logic_nodes().count(), 1);
    }
}
