//! Explicit-state reachability exploration.
//!
//! The explorer performs a breadth-first traversal of the reachable markings
//! of a [`PetriNet`], recording for every state its predecessor so that a
//! firing trace (counterexample) can be reconstructed for any reached state.
//!
//! This is the workhorse behind deadlock detection, persistence checking and
//! Reach-predicate queries, standing in for the paper's MPSAT backend.
//!
//! Since PR 2 the traversal runs on the shared incremental engine of
//! [`crate::engine`]: markings live word-packed in a dense arena, the dedup
//! index hashes arena slices instead of cloned [`Marking`]s, and after each
//! firing only the transitions whose preset intersects the changed places are
//! re-checked for enabledness. The original explorer is retained as
//! [`explore_naive_truncated`] — it is the reference implementation the
//! engine is property-tested against, and the baseline the
//! `state_space_scaling` benchmark measures speedups from.

use crate::engine::{self, ExploredGraph, NetSystem, NO_PARENT};
use crate::{Marking, PetriError, PetriNet, TransitionId};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

/// Exploration limits.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Maximum number of distinct states to store before giving up.
    pub max_states: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_states: 2_000_000,
        }
    }
}

/// Dense id of a state discovered during exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(u32);

impl StateId {
    /// Dense index of the state (0 = initial marking).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The reachable state space of a net.
///
/// Markings are stored word-packed in a dense arena; [`StateSpace::marking`]
/// materialises a [`Marking`] on demand, and [`StateSpace::fill_marking`]
/// does so into a caller-owned buffer for allocation-free scans.
#[derive(Debug, Clone)]
pub struct StateSpace {
    places: usize,
    stride: usize,
    arena: Vec<u64>,
    /// For each state: `(predecessor, fired transition)`; the initial state
    /// has predecessor [`NO_PARENT`].
    parents: Vec<(u32, u32)>,
    succ_off: Vec<u32>,
    succ: Vec<(TransitionId, StateId)>,
    /// Whether exploration stopped early because of the state budget.
    truncated: bool,
}

impl StateSpace {
    fn from_graph(g: ExploredGraph, places: usize) -> Self {
        let succ = g
            .succ
            .iter()
            .map(|&(a, s)| (TransitionId::from_index(a as usize), StateId(s)))
            .collect();
        StateSpace {
            places,
            stride: g.stride,
            arena: g.arena,
            parents: g.parents,
            succ_off: g.succ_off,
            succ,
            truncated: g.truncated,
        }
    }

    /// Number of reachable states discovered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// `true` when the net has no reachable states (impossible: the initial
    /// marking always exists), kept for `len`/`is_empty` pairing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// Did exploration stop early because of [`ExploreConfig::max_states`]?
    #[must_use]
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// The marking of `state`, materialised from the arena.
    #[must_use]
    pub fn marking(&self, state: StateId) -> Marking {
        let words = self.places.div_ceil(64);
        let base = state.index() * self.stride;
        Marking::from_words(self.arena[base..base + words].to_vec(), self.places)
    }

    /// Copies the marking of `state` into `out` without allocating.
    ///
    /// # Panics
    ///
    /// Panics when `out` does not cover exactly this net's places.
    pub fn fill_marking(&self, state: StateId, out: &mut Marking) {
        assert_eq!(out.len(), self.places, "marking buffer has the wrong width");
        out.copy_from_words(&self.arena[state.index() * self.stride..]);
    }

    /// The word-packed marking bits of `state` (see [`crate::engine`]).
    #[must_use]
    pub fn marking_words(&self, state: StateId) -> &[u64] {
        &self.arena[state.index() * self.stride..(state.index() + 1) * self.stride]
    }

    /// Is `place` marked in `state`? Cheaper than materialising the marking.
    #[must_use]
    pub fn is_marked(&self, state: StateId, place: crate::PlaceId) -> bool {
        engine::get_bit(self.marking_words(state), place.index())
    }

    /// The initial state.
    #[must_use]
    pub fn initial(&self) -> StateId {
        StateId(0)
    }

    /// Iterates over all states.
    pub fn states(&self) -> impl Iterator<Item = StateId> {
        (0..self.parents.len() as u32).map(StateId)
    }

    /// Outgoing edges `(transition, successor)` of `state`.
    #[must_use]
    pub fn successors(&self, state: StateId) -> &[(TransitionId, StateId)] {
        let i = state.index();
        &self.succ[self.succ_off[i] as usize..self.succ_off[i + 1] as usize]
    }

    /// Reconstructs the firing sequence from the initial state to `state`.
    #[must_use]
    pub fn trace_to(&self, state: StateId) -> Vec<TransitionId> {
        let mut rev = Vec::new();
        let mut cur = state.index();
        while self.parents[cur].0 != NO_PARENT {
            let (prev, t) = self.parents[cur];
            rev.push(TransitionId::from_index(t as usize));
            cur = prev as usize;
        }
        rev.reverse();
        rev
    }

    /// Finds a state whose marking satisfies `pred`, if any, scanning in BFS
    /// (shortest-trace) order with a single reused marking buffer.
    pub fn find_state(&self, mut pred: impl FnMut(&Marking) -> bool) -> Option<StateId> {
        let mut scratch = Marking::empty(self.places);
        self.states().find(|&s| {
            self.fill_marking(s, &mut scratch);
            pred(&scratch)
        })
    }
}

/// Explores the reachable markings of `net` starting from its initial
/// marking.
///
/// # Errors
///
/// Returns [`PetriError::StateBudgetExceeded`] when more than
/// `config.max_states` distinct markings are reachable. Use
/// [`explore_truncated`] to get the partial state space instead.
pub fn explore(net: &PetriNet, config: ExploreConfig) -> Result<StateSpace, PetriError> {
    let space = explore_truncated(net, config);
    if space.truncated {
        return Err(PetriError::StateBudgetExceeded {
            budget: config.max_states,
        });
    }
    Ok(space)
}

/// Like [`explore`] but returns the partial state space (with
/// [`StateSpace::is_truncated`] set) instead of an error when the budget is
/// exceeded.
#[must_use]
pub fn explore_truncated(net: &PetriNet, config: ExploreConfig) -> StateSpace {
    let mut sys = NetSystem::new(net);
    let graph = engine::explore(&mut sys, config.max_states);
    StateSpace::from_graph(graph, net.place_count())
}

/// The original (pre-engine) explorer: full transition scan per state,
/// cloned [`Marking`] keys in a `HashMap` dedup index.
///
/// Retained verbatim as the reference implementation: the equivalence
/// property tests check the engine against it state-for-state, and the
/// `state_space_scaling` benchmark reports speedups relative to it. Use
/// [`explore`] / [`explore_truncated`] everywhere else.
///
/// # Errors
///
/// Returns [`PetriError::StateBudgetExceeded`] like [`explore`].
pub fn explore_naive(net: &PetriNet, config: ExploreConfig) -> Result<StateSpace, PetriError> {
    let space = explore_naive_truncated(net, config);
    if space.truncated {
        return Err(PetriError::StateBudgetExceeded {
            budget: config.max_states,
        });
    }
    Ok(space)
}

/// Truncating variant of [`explore_naive`].
#[must_use]
pub fn explore_naive_truncated(net: &PetriNet, config: ExploreConfig) -> StateSpace {
    let m0 = net.initial_marking();
    let mut index: HashMap<Marking, StateId> = HashMap::new();
    let mut markings = vec![m0.clone()];
    let mut parents: Vec<(u32, u32)> = vec![(NO_PARENT, 0)];
    let mut successors: Vec<Vec<(TransitionId, StateId)>> = vec![Vec::new()];
    index.insert(m0, StateId(0));

    let mut queue = VecDeque::new();
    queue.push_back(StateId(0));
    let mut truncated = false;

    'bfs: while let Some(s) = queue.pop_front() {
        let marking = markings[s.index()].clone();
        for t in net.transitions() {
            if !net.is_enabled(t, &marking) {
                continue;
            }
            let next = net.fire(t, &marking).expect("enabled transition must fire");
            let succ = match index.entry(next) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(e) => {
                    if markings.len() >= config.max_states {
                        truncated = true;
                        break 'bfs;
                    }
                    let id = StateId(markings.len() as u32);
                    markings.push(e.key().clone());
                    parents.push((s.0, t.index() as u32));
                    successors.push(Vec::new());
                    queue.push_back(id);
                    e.insert(id);
                    id
                }
            };
            successors[s.index()].push((t, succ));
        }
    }

    // pack into the arena representation shared with the engine path
    let places = net.place_count();
    let stride = places.div_ceil(64).max(1);
    let mut arena = Vec::with_capacity(markings.len() * stride);
    for m in &markings {
        let words = m.words();
        arena.extend_from_slice(words);
        arena.extend(std::iter::repeat_n(0u64, stride - words.len()));
    }
    let mut succ_off = Vec::with_capacity(markings.len() + 1);
    let mut succ = Vec::new();
    succ_off.push(0u32);
    for row in &successors {
        succ.extend_from_slice(row);
        succ_off.push(succ.len() as u32);
    }

    StateSpace {
        places,
        stride,
        arena,
        parents,
        succ_off,
        succ,
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlaceId;

    /// A ring of `n` places with one token circulating.
    fn ring(n: usize) -> PetriNet {
        let mut net = PetriNet::new();
        let places: Vec<PlaceId> = (0..n)
            .map(|i| net.add_place(format!("p{i}"), i == 0))
            .collect();
        for i in 0..n {
            let t = net.add_transition(format!("t{i}"));
            net.consume(t, places[i]);
            net.produce(t, places[(i + 1) % n]);
        }
        net
    }

    #[test]
    fn ring_has_n_states() {
        let net = ring(5);
        let space = explore(&net, ExploreConfig::default()).unwrap();
        assert_eq!(space.len(), 5);
        assert!(!space.is_truncated());
    }

    #[test]
    fn traces_replay_to_the_right_marking() {
        let net = ring(4);
        let space = explore(&net, ExploreConfig::default()).unwrap();
        for s in space.states() {
            let mut m = net.initial_marking();
            for t in space.trace_to(s) {
                m = net.fire(t, &m).unwrap();
            }
            assert_eq!(m, space.marking(s));
        }
    }

    #[test]
    fn budget_is_enforced() {
        let net = ring(10);
        let err = explore(&net, ExploreConfig { max_states: 3 }).unwrap_err();
        assert_eq!(err, PetriError::StateBudgetExceeded { budget: 3 });
        let partial = explore_truncated(&net, ExploreConfig { max_states: 3 });
        assert!(partial.is_truncated());
        assert_eq!(partial.len(), 3);
    }

    #[test]
    fn independent_tokens_interleave() {
        // two independent 2-rings => 4 states
        let mut net = PetriNet::new();
        let a0 = net.add_place("a0", true);
        let a1 = net.add_place("a1", false);
        let b0 = net.add_place("b0", true);
        let b1 = net.add_place("b1", false);
        for (name, from, to) in [
            ("ta+", a0, a1),
            ("ta-", a1, a0),
            ("tb+", b0, b1),
            ("tb-", b1, b0),
        ] {
            let t = net.add_transition(name);
            net.consume(t, from);
            net.produce(t, to);
        }
        let space = explore(&net, ExploreConfig::default()).unwrap();
        assert_eq!(space.len(), 4);
    }

    #[test]
    fn find_state_locates_marking() {
        let net = ring(6);
        let space = explore(&net, ExploreConfig::default()).unwrap();
        let p3 = net.place_by_name("p3").unwrap();
        let s = space.find_state(|m| m.is_marked(p3)).unwrap();
        assert!(space.marking(s).is_marked(p3));
        assert!(space.is_marked(s, p3));
        assert_eq!(space.trace_to(s).len(), 3);
    }

    /// The engine path must be indistinguishable from the reference
    /// explorer: same state numbering, same edges, same truncation.
    #[test]
    fn engine_matches_naive_reference() {
        for budget in [usize::MAX, 7, 3] {
            let net = ring(9);
            let cfg = ExploreConfig { max_states: budget };
            let a = explore_truncated(&net, cfg);
            let b = explore_naive_truncated(&net, cfg);
            assert_eq!(a.len(), b.len());
            assert_eq!(a.is_truncated(), b.is_truncated());
            for (sa, sb) in a.states().zip(b.states()) {
                assert_eq!(a.marking(sa), b.marking(sb));
                assert_eq!(a.successors(sa), b.successors(sb));
                assert_eq!(a.trace_to(sa), b.trace_to(sb));
            }
        }
    }
}
