//! Store-level behavior: commit/load round-trips, quarantine of every
//! corruption class, lock discipline, and the `FaultyStorage` matrix at
//! the raw store layer (the session-level differential suite lives in the
//! facade tests).

use rap_store::frame::{encode_frame, HEADER_LEN};
use rap_store::{ArtifactKey, DiskStorage, FaultyStorage, QueryKind, Store};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "rap-store-test-{}-{}-{}",
        std::process::id(),
        tag,
        n
    ))
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        TempDir(temp_dir(tag))
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn key(subkey: u64) -> ArtifactKey {
    ArtifactKey {
        structural: 0xABCD_EF01_2345_6789,
        identity: 0x1357_9BDF_0246_8ACE,
        kind: QueryKind::Check,
        subkey,
    }
}

#[test]
fn save_load_round_trip_and_counters() {
    let dir = TempDir::new("roundtrip");
    let store = Store::open(&dir.0).unwrap();
    let payload = b"deadlock_free: holds @ 4096 states".to_vec();

    assert_eq!(store.load(&key(4096)), None);
    assert!(store.save(&key(4096), &payload));
    assert_eq!(store.load(&key(4096)), Some(payload.clone()));

    let s = store.stats();
    assert_eq!(s.disk_hits, 1);
    assert_eq!(s.disk_misses, 1);
    assert_eq!(s.corrupt_recovered, 0);
    assert!(s.bytes_written > payload.len() as u64);
    assert_eq!(s.bytes_read, s.bytes_written);
}

#[test]
fn artifacts_survive_reopen() {
    let dir = TempDir::new("reopen");
    {
        let store = Store::open(&dir.0).unwrap();
        assert!(store.save(&key(1), b"one"));
        assert!(store.save(&key(2), b"two"));
    }
    let store = Store::open(&dir.0).unwrap();
    assert_eq!(store.load(&key(1)), Some(b"one".to_vec()));
    assert_eq!(store.load(&key(2)), Some(b"two".to_vec()));
    assert_eq!(store.stats().disk_hits, 2);
}

#[test]
fn truncated_frame_is_quarantined_and_recomputed() {
    let dir = TempDir::new("truncate");
    let store = Store::open(&dir.0).unwrap();
    assert!(store.save(&key(7), b"whole frame"));
    let path = store.artifact_path(&key(7));
    let bytes = std::fs::read(&path).unwrap();
    // cut inside the payload: header intact, checksum unverifiable
    std::fs::write(&path, &bytes[..HEADER_LEN + 3]).unwrap();

    assert_eq!(store.load(&key(7)), None);
    assert!(!path.exists(), "corrupt frame must leave the artifact path");
    assert_eq!(store.quarantined_frames(), 1);
    let s = store.stats();
    assert_eq!(s.corrupt_recovered, 1);
    assert_eq!(s.disk_misses, 1);

    // the recompute path rewrites and the store is healthy again
    assert!(store.save(&key(7), b"whole frame"));
    assert_eq!(store.load(&key(7)), Some(b"whole frame".to_vec()));
}

#[test]
fn alien_frame_at_the_wrong_path_is_quarantined() {
    let dir = TempDir::new("alien");
    let store = Store::open(&dir.0).unwrap();
    // a perfectly valid frame for a *different* key, dropped at key(3)'s path
    let alien = encode_frame(&key(99), b"alien payload");
    std::fs::write(store.artifact_path(&key(3)), alien).unwrap();

    assert_eq!(store.load(&key(3)), None);
    assert_eq!(store.stats().corrupt_recovered, 1);
    assert_eq!(store.quarantined_frames(), 1);
}

#[test]
fn bit_flip_anywhere_is_rejected() {
    let dir = TempDir::new("bitflip");
    let store = Store::open(&dir.0).unwrap();
    assert!(store.save(&key(5), b"sensitive"));
    let path = store.artifact_path(&key(5));
    let good = std::fs::read(&path).unwrap();
    for i in (0..good.len()).step_by(7) {
        let mut bad = good.clone();
        bad[i] ^= 0x40;
        std::fs::write(&path, &bad).unwrap();
        assert_eq!(store.load(&key(5)), None, "flip at byte {i} accepted");
        // restore for the next iteration
        std::fs::write(&path, &good).unwrap();
    }
    assert_eq!(store.load(&key(5)), Some(b"sensitive".to_vec()));
}

#[test]
fn live_lock_refuses_second_opener() {
    let dir = TempDir::new("livelock");
    let _first = Store::open(&dir.0).unwrap();
    match Store::open(&dir.0) {
        Err(rap_store::StoreError::Locked { holder }) => {
            assert_eq!(holder, std::process::id());
        }
        other => panic!("expected Locked, got {other:?}"),
    }
}

#[test]
fn stale_lock_of_dead_process_is_broken() {
    let dir = TempDir::new("stalelock");
    std::fs::create_dir_all(&dir.0).unwrap();
    // a pid that cannot be alive: our own pid is alive, so fake one via
    // FaultyStorage's liveness override
    let dead_pid = 4_000_000_000u32;
    std::fs::write(dir.0.join("writer.lock"), dead_pid.to_string()).unwrap();
    let faulty = FaultyStorage::new(Arc::new(DiskStorage));
    faulty.set_pid_alive(dead_pid, false);
    let store = Store::open_with(&dir.0, faulty).unwrap();
    assert_eq!(store.stats().stale_locks_broken, 1);
    assert!(store.save(&key(1), b"after takeover"));
    assert_eq!(store.load(&key(1)), Some(b"after takeover".to_vec()));
}

#[test]
fn live_foreign_lock_is_respected() {
    let dir = TempDir::new("foreignlock");
    std::fs::create_dir_all(&dir.0).unwrap();
    let foreign_pid = 4_000_000_001u32;
    std::fs::write(dir.0.join("writer.lock"), foreign_pid.to_string()).unwrap();
    let faulty = FaultyStorage::new(Arc::new(DiskStorage));
    faulty.set_pid_alive(foreign_pid, true);
    match Store::open_with(&dir.0, faulty) {
        Err(rap_store::StoreError::Locked { holder }) => assert_eq!(holder, foreign_pid),
        other => panic!("expected Locked, got {other:?}"),
    }
}

#[test]
fn garbage_lock_file_is_treated_as_stale() {
    let dir = TempDir::new("garbagelock");
    std::fs::create_dir_all(&dir.0).unwrap();
    std::fs::write(dir.0.join("writer.lock"), "not a pid at all").unwrap();
    let store = Store::open(&dir.0).unwrap();
    assert_eq!(store.stats().stale_locks_broken, 1);
    drop(store);
    assert!(!dir.0.join("writer.lock").exists());
}

#[test]
fn drop_releases_lock_for_next_opener() {
    let dir = TempDir::new("relock");
    {
        let _s = Store::open(&dir.0).unwrap();
    }
    let _s2 = Store::open(&dir.0).unwrap();
}

#[test]
fn torn_write_is_silent_then_caught_on_read() {
    let dir = TempDir::new("torn");
    let faulty = FaultyStorage::new(Arc::new(DiskStorage));
    let store = Store::open_with(&dir.0, faulty.clone()).unwrap();
    faulty.arm_torn_write(HEADER_LEN + 2);
    // the torn commit reports success — silent corruption
    assert!(store.save(&key(11), b"will be torn"));
    assert_eq!(faulty.faults_fired(), 1);
    assert_eq!(store.load(&key(11)), None);
    assert_eq!(store.stats().corrupt_recovered, 1);
    // recompute-and-rewrite heals it
    assert!(store.save(&key(11), b"will be torn"));
    assert_eq!(store.load(&key(11)), Some(b"will be torn".to_vec()));
}

#[test]
fn enospc_drops_the_write_but_never_errors_the_caller() {
    let dir = TempDir::new("enospc");
    let faulty = FaultyStorage::new(Arc::new(DiskStorage));
    let store = Store::open_with(&dir.0, faulty.clone()).unwrap();
    faulty.arm_enospc_writes(1);
    assert!(!store.save(&key(12), b"no space"));
    assert_eq!(store.stats().write_errors, 1);
    assert_eq!(store.load(&key(12)), None);
    // disk recovered: next save lands
    assert!(store.save(&key(12), b"no space"));
    assert_eq!(store.load(&key(12)), Some(b"no space".to_vec()));
}

#[test]
fn eio_read_is_a_miss_not_a_failure() {
    let dir = TempDir::new("eio");
    let faulty = FaultyStorage::new(Arc::new(DiskStorage));
    let store = Store::open_with(&dir.0, faulty.clone()).unwrap();
    assert!(store.save(&key(13), b"readable later"));
    faulty.arm_eio_reads(1);
    assert_eq!(store.load(&key(13)), None);
    let s = store.stats();
    assert_eq!(s.read_errors, 1);
    // the unreadable frame was moved aside; a rewrite + read succeeds
    assert!(store.save(&key(13), b"readable later"));
    assert_eq!(store.load(&key(13)), Some(b"readable later".to_vec()));
}

#[test]
fn crash_before_rename_leaves_no_artifact_and_sweeps_the_temp() {
    let dir = TempDir::new("crashbefore");
    let faulty = FaultyStorage::new(Arc::new(DiskStorage));
    let store = Store::open_with(&dir.0, faulty.clone()).unwrap();
    faulty.arm_crash_before_rename();
    assert!(!store.save(&key(14), b"never lands"));
    assert_eq!(store.stats().write_errors, 1);
    assert_eq!(store.load(&key(14)), None);
    drop(store);
    // reopen: any orphan temp is swept, store fully usable
    let store = Store::open(&dir.0).unwrap();
    let temps: Vec<_> = std::fs::read_dir(&dir.0)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().to_string_lossy().ends_with(".tmp"))
        .collect();
    assert!(temps.is_empty(), "orphan temp files not swept: {temps:?}");
    assert!(store.save(&key(14), b"lands now"));
    assert_eq!(store.load(&key(14)), Some(b"lands now".to_vec()));
}

#[test]
fn crash_after_rename_keeps_the_committed_artifact() {
    let dir = TempDir::new("crashafter");
    let faulty = FaultyStorage::new(Arc::new(DiskStorage));
    let store = Store::open_with(&dir.0, faulty.clone()).unwrap();
    faulty.arm_crash_after_rename();
    // the writer believes the commit failed…
    assert!(!store.save(&key(15), b"landed anyway"));
    // …but the frame is durable and verifies on the next open
    drop(store);
    let store = Store::open(&dir.0).unwrap();
    assert_eq!(store.load(&key(15)), Some(b"landed anyway".to_vec()));
}
