//! The §III methodology end-to-end: build a generic reconfigurable
//! pipeline (Fig. 6), verify every depth configuration, analyse its
//! performance (Fig. 5), and export the model in the DSL and DOT formats.
//!
//! Every depth is compiled into one [`rap::Session`] and its throughput
//! analysed as a query; the Fig. 5 section then re-builds the deepest
//! configuration, interns to the *same* compiled model, and gets the
//! analysis as a cache hit (asserted at the end via the session stats).
//!
//! Run with `cargo run --example reconfigurable_pipeline`.

use rap::dfs::pipelines::{build_pipeline, PipelineSpec};
use rap::dfs::timed::{measure_throughput, ChoicePolicy};
use rap::dfs::verify::{verify, VerifyConfig};
use rap::dfs::{dot, dsl};
use rap::Session;

fn main() -> Result<(), rap::Error> {
    let stages = 3;
    let session = Session::new();

    println!("## verification of every configuration (N = {stages})\n");
    for depth in 1..=stages {
        let p = build_pipeline(&PipelineSpec::reconfigurable_depth(stages, depth)?)?;
        let report = verify(
            &p.dfs,
            &VerifyConfig {
                max_states: 10_000_000,
            },
        )?;
        let thr = measure_throughput(&p.dfs, p.output, 5, 25, ChoicePolicy::AlwaysTrue)?;
        // one throughput analysis per depth, cached on the compiled model
        let perf = session.compile(&p.dfs).perf()?.clone();
        println!(
            "depth {depth}: {} states, clean = {}, measured throughput {:.4} (analytic {:.4})",
            report.states,
            report.is_clean(),
            thr,
            perf.throughput
        );
    }

    println!("\n## performance analysis (Fig. 5 style)\n");
    // building the same spec again interns to the depth-3 model compiled in
    // the loop, so this perf query is a pure cache hit (no re-analysis)
    let p = build_pipeline(&PipelineSpec::reconfigurable_depth(stages, stages)?)?;
    let model = session.compile(&p.dfs);
    let perf = model.perf()?;
    println!(
        "throughput bound {:.4}, bottleneck `{}`, critical cycle:",
        perf.throughput, perf.critical.bottleneck
    );
    println!("  {}", perf.critical.nodes.join(" -> "));

    println!("\n## DSL export (round-trips through dsl::parse)\n");
    let text = dsl::to_text(model.dfs());
    for line in text.lines().take(12) {
        println!("  {line}");
    }
    println!("  ... ({} lines total)", text.lines().count());
    let reparsed = dsl::parse(&text)?;
    assert_eq!(reparsed.node_count(), model.dfs().node_count());

    println!("\n## DOT export (render with `dot -Tsvg`)\n");
    let dot_text = dot::to_dot(model.dfs());
    println!("  {} lines of DOT", dot_text.lines().count());

    let stats = session.stats();
    println!(
        "\nsession: {} compiles, {} intern hit(s), {} distinct model(s), \
         {} throughput analyses for {} perf queries",
        stats.compiles,
        stats.compile_hits,
        stats.models,
        stats.queries.perf_analyses,
        stats.queries.perf_queries
    );
    assert_eq!(
        stats.queries.perf_analyses as usize, stages,
        "the Fig. 5 section re-used the loop's cached analysis"
    );
    Ok(())
}
