//! [`CompiledModel`]: one interned DFS model with demand-computed, memoized
//! derived artifacts.

use crate::persist::Persist;
use crate::Error;
use dfs_core::perf::{analyse_with_activity, PerfDetail, PerfReport};
use dfs_core::timed::{measure_steady_period, ChoicePolicy, SteadyStatePeriod};
use dfs_core::{to_petri, Dfs, Lts, NodeId, PetriImage};
use rap_petri::analysis::{quick_check, QuickCheck};
use rap_silicon::cost::CostModel;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A keyed cache slot. The `Arc` lets a query hold the slot outside the
/// map lock while it computes; the `OnceLock` is the in-flight
/// reservation — the first caller to reach `get_or_init` computes, every
/// concurrent caller blocks on that one computation instead of
/// duplicating it.
type Slot<T> = Arc<OnceLock<T>>;
type SlotMap<K, T> = Mutex<HashMap<K, Slot<T>>>;

fn keyed_slot<K, T>(map: &SlotMap<K, T>, key: K) -> Slot<T>
where
    K: std::hash::Hash + Eq,
{
    Arc::clone(map.lock().expect("slot map").entry(key).or_default())
}

/// Runs `f` through `slot` exactly once; the returned flag is `true` iff
/// *this* call performed the computation (it won the reservation).
fn traced_once<T>(slot: &OnceLock<T>, f: impl FnOnce() -> T) -> (&T, bool) {
    let mut ran = false;
    let v = slot.get_or_init(|| {
        ran = true;
        f()
    });
    (v, ran)
}

/// Per-query-kind counters of one [`CompiledModel`] (also the aggregate
/// shape of [`SessionStats::queries`](crate::SessionStats)).
///
/// For every query kind, `*_queries` counts calls and the second field
/// counts actual computations; the difference is the number of calls
/// served from cache. Because every computation runs under an in-flight
/// reservation, each computation counter is bounded by the number of
/// distinct cache keys of its query — `petri_translations` and
/// `perf_analyses` can never exceed 1 per model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)] // field names are the documentation (pattern above)
pub struct ModelStats {
    pub petri_queries: u64,
    pub petri_translations: u64,
    pub perf_queries: u64,
    pub perf_analyses: u64,
    pub lts_queries: u64,
    pub lts_explorations: u64,
    pub check_queries: u64,
    pub check_runs: u64,
    pub cost_queries: u64,
    pub cost_evaluations: u64,
    pub steady_queries: u64,
    pub steady_measurements: u64,
}

impl ModelStats {
    /// Total queries of every kind.
    #[must_use]
    pub fn queries(&self) -> u64 {
        self.petri_queries
            + self.perf_queries
            + self.lts_queries
            + self.check_queries
            + self.cost_queries
            + self.steady_queries
    }

    /// Total computations actually performed.
    #[must_use]
    pub fn computations(&self) -> u64 {
        self.petri_translations
            + self.perf_analyses
            + self.lts_explorations
            + self.check_runs
            + self.cost_evaluations
            + self.steady_measurements
    }

    /// Queries served from cache: [`queries`](Self::queries) −
    /// [`computations`](Self::computations).
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.queries() - self.computations()
    }

    pub(crate) fn add(&mut self, o: &ModelStats) {
        self.petri_queries += o.petri_queries;
        self.petri_translations += o.petri_translations;
        self.perf_queries += o.perf_queries;
        self.perf_analyses += o.perf_analyses;
        self.lts_queries += o.lts_queries;
        self.lts_explorations += o.lts_explorations;
        self.check_queries += o.check_queries;
        self.check_runs += o.check_runs;
        self.cost_queries += o.cost_queries;
        self.cost_evaluations += o.cost_evaluations;
        self.steady_queries += o.steady_queries;
        self.steady_measurements += o.steady_measurements;
    }
}

#[derive(Default)]
struct Counters {
    petri_queries: AtomicU64,
    petri_translations: AtomicU64,
    perf_queries: AtomicU64,
    perf_analyses: AtomicU64,
    lts_queries: AtomicU64,
    lts_explorations: AtomicU64,
    check_queries: AtomicU64,
    check_runs: AtomicU64,
    cost_queries: AtomicU64,
    cost_evaluations: AtomicU64,
    steady_queries: AtomicU64,
    steady_measurements: AtomicU64,
}

impl Counters {
    fn bump(query: &AtomicU64, compute: &AtomicU64, ran: bool) {
        query.fetch_add(1, Ordering::Relaxed);
        if ran {
            compute.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> ModelStats {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ModelStats {
            petri_queries: g(&self.petri_queries),
            petri_translations: g(&self.petri_translations),
            perf_queries: g(&self.perf_queries),
            perf_analyses: g(&self.perf_analyses),
            lts_queries: g(&self.lts_queries),
            lts_explorations: g(&self.lts_explorations),
            check_queries: g(&self.check_queries),
            check_runs: g(&self.check_runs),
            cost_queries: g(&self.cost_queries),
            cost_evaluations: g(&self.cost_evaluations),
            steady_queries: g(&self.steady_queries),
            steady_measurements: g(&self.steady_measurements),
        }
    }
}

/// The silicon-cost summary of a model under one [`CostModel`]: the two
/// voltage-independent quantities every energy/area objective builds on.
/// Bit-identical to calling [`CostModel::area`] and
/// [`CostModel::switched_ge_per_item`] (with the exact activity from
/// [`analyse_with_activity`]) directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostSummary {
    /// Total gate-equivalent area (excluded stages included: silicon is
    /// committed at tape-out).
    pub area: f64,
    /// Gate equivalents switched per item, weighted by the exact per-node
    /// steady-state activity.
    pub switched_ge_per_item: f64,
}

impl CostSummary {
    /// Energy per item at supply `v` under `cost` — delegates to the
    /// single [`CostModel::energy_from_parts`] formula.
    #[must_use]
    pub fn energy_per_item(&self, cost: &CostModel, period_units: f64, v: f64) -> f64 {
        self.switching_and_leakage(cost, cost.period_seconds(period_units, v), v)
    }

    fn switching_and_leakage(&self, cost: &CostModel, period_s: f64, v: f64) -> f64 {
        cost.energy_from_parts(self.switched_ge_per_item, self.area, period_s, v)
    }
}

/// A compiled (interned) DFS model: an immutable [`Dfs`] plus a cache of
/// every derived artifact, each computed on first demand and shared by all
/// later queries — from any thread.
///
/// Obtained from [`Session::compile`](crate::Session::compile); see the
/// [crate docs](crate) for the caching and coherence contract. All queries
/// take `&self`: a compiled model is never mutated, and the underlying
/// [`Dfs`] is immutable by construction — to analyse a modified model,
/// build the new [`Dfs`] and compile it (**mutation = recompile**).
pub struct CompiledModel {
    dfs: Dfs,
    structural_hash: u64,
    identity_digest: u64,
    /// Store context of a persistent session; `None` = memory-only. The
    /// persisted queries (perf, check, cost, steady) consult the store
    /// inside their in-flight reservation: a verified disk frame fills the
    /// slot *without* counting as a computation, so restart-warm sweeps do
    /// zero full evaluations. The Petri image and LTS are recomputed, not
    /// persisted — see [`crate::persist`].
    persist: Option<Persist>,
    petri: OnceLock<PetriImage>,
    perf: OnceLock<Result<PerfDetail, Error>>,
    lts: SlotMap<usize, Result<Arc<Lts>, Error>>,
    checks: SlotMap<usize, Arc<QuickCheck>>,
    costs: SlotMap<u64, Result<CostSummary, Error>>,
    steady: SlotMap<(NodeId, u64), Result<SteadyStatePeriod, Error>>,
    counters: Counters,
}

impl std::fmt::Debug for CompiledModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledModel")
            .field("nodes", &self.dfs.node_count())
            .field("edges", &self.dfs.edge_count())
            .field(
                "structural_hash",
                &format_args!("{:#018x}", self.structural_hash),
            )
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl CompiledModel {
    pub(crate) fn new(
        dfs: Dfs,
        structural_hash: u64,
        identity_digest: u64,
        persist: Option<Persist>,
    ) -> Self {
        CompiledModel {
            dfs,
            structural_hash,
            identity_digest,
            persist,
            petri: OnceLock::new(),
            perf: OnceLock::new(),
            lts: Mutex::new(HashMap::new()),
            checks: Mutex::new(HashMap::new()),
            costs: Mutex::new(HashMap::new()),
            steady: Mutex::new(HashMap::new()),
            counters: Counters::default(),
        }
    }

    /// The compiled model itself.
    #[must_use]
    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    /// The canonical structural hash the model was interned under
    /// (see [`Dfs::structural_hash`]).
    #[must_use]
    pub fn structural_hash(&self) -> u64 {
        self.structural_hash
    }

    /// The byte-exact identity digest the model was interned under — the
    /// second half of the intern key, and of every persistent artifact's
    /// [`rap_store::ArtifactKey`].
    #[must_use]
    pub fn identity_digest(&self) -> u64 {
        self.identity_digest
    }

    /// Per-model query/computation counters.
    #[must_use]
    pub fn stats(&self) -> ModelStats {
        self.counters.snapshot()
    }

    /// The Petri-net image (Fig. 3 translation) — computed once, equal to
    /// [`to_petri()`]`(self.dfs())`.
    pub fn petri(&self) -> &PetriImage {
        let (img, ran) = traced_once(&self.petri, || to_petri(&self.dfs));
        Counters::bump(
            &self.counters.petri_queries,
            &self.counters.petri_translations,
            ran,
        );
        img
    }

    /// The exact throughput analysis with per-node activity — computed
    /// once, equal to [`analyse_with_activity`]`(self.dfs())`. For models
    /// with dynamic registers this is the single phase unfolding every
    /// perf/cost query shares.
    ///
    /// # Errors
    ///
    /// The cached [`DfsError`](dfs_core::DfsError) of the analysis (e.g. a
    /// token-free cycle); errors are cached like results, so a failing
    /// model is analysed once, not once per query.
    pub fn perf_detail(&self) -> Result<&PerfDetail, Error> {
        self.perf_detail_traced().0
    }

    /// [`perf_detail`](Self::perf_detail), also reporting whether *this*
    /// call performed the analysis (`true`) or was served from a cache —
    /// in-memory, in-flight (blocked on a concurrent twin's computation),
    /// or a verified on-disk frame of a persistent session — (`false`).
    /// Sweep drivers use this for exact work accounting; a restart-warm
    /// sweep over an intact store reports `false` throughout.
    pub fn perf_detail_traced(&self) -> (Result<&PerfDetail, Error>, bool) {
        let mut analysed = false;
        let (res, _filled) = traced_once(&self.perf, || {
            if let Some(p) = &self.persist {
                if let Some(detail) = p.load_perf() {
                    return Ok(detail);
                }
            }
            analysed = true;
            let r = analyse_with_activity(&self.dfs).map_err(Error::from);
            if let (Some(p), Ok(detail)) = (&self.persist, &r) {
                p.save_perf(detail);
            }
            r
        });
        Counters::bump(
            &self.counters.perf_queries,
            &self.counters.perf_analyses,
            analysed,
        );
        (res.as_ref().map_err(Clone::clone), analysed)
    }

    /// The throughput report — the `report` half of
    /// [`perf_detail`](Self::perf_detail), equal to
    /// [`dfs_core::perf::analyse`]`(self.dfs())`.
    ///
    /// # Errors
    ///
    /// Same as [`perf_detail`](Self::perf_detail).
    pub fn perf(&self) -> Result<&PerfReport, Error> {
        self.perf_detail().map(|d| &d.report)
    }

    /// Whether the throughput analysis has already completed (either way);
    /// `false` while a concurrent computation is still in flight.
    #[must_use]
    pub fn analysed(&self) -> bool {
        self.perf.get().is_some()
    }

    /// The reachable LTS of the direct semantics under `budget` —
    /// computed once per distinct budget, equal to
    /// [`Lts::explore`]`(self.dfs(), budget)`.
    ///
    /// # Errors
    ///
    /// The cached [`DfsError::StateBudgetExceeded`](dfs_core::DfsError)
    /// when the state space exceeds `budget`.
    pub fn lts(&self, budget: usize) -> Result<Arc<Lts>, Error> {
        let slot = keyed_slot(&self.lts, budget);
        let (res, ran) = traced_once(&slot, || {
            Lts::explore(&self.dfs, budget)
                .map(Arc::new)
                .map_err(Error::from)
        });
        Counters::bump(
            &self.counters.lts_queries,
            &self.counters.lts_explorations,
            ran,
        );
        res.clone()
    }

    /// The budgeted deadlock/1-safety screen over the Petri image —
    /// computed once per distinct budget, equal to
    /// [`quick_check`]`(&img.net, &img.complementary_pairs(), budget)`.
    /// Demands [`petri`](Self::petri), so the translation is still
    /// performed at most once per model.
    #[must_use]
    pub fn quick_check(&self, budget: usize) -> Arc<QuickCheck> {
        let slot = keyed_slot(&self.checks, budget);
        let mut ran = false;
        let (check, _filled) = traced_once(&slot, || {
            if let Some(p) = &self.persist {
                if let Some(check) = p.load_check(budget) {
                    // a disk hit skips the whole pipeline, including the
                    // Petri translation the in-memory path would demand
                    return Arc::new(check);
                }
            }
            ran = true;
            let img = self.petri();
            let check = quick_check(&img.net, &img.complementary_pairs(), budget);
            if let Some(p) = &self.persist {
                p.save_check(budget, &check);
            }
            Arc::new(check)
        });
        Counters::bump(&self.counters.check_queries, &self.counters.check_runs, ran);
        Arc::clone(check)
    }

    /// Area and switched-GE of the model under `cost` — computed once per
    /// distinct cost model (keyed by [`CostModel::cache_key`]). Demands
    /// [`perf_detail`](Self::perf_detail) for the exact activity, so the
    /// phase unfolding is still performed at most once per model.
    ///
    /// # Errors
    ///
    /// Propagates the cached error of the throughput analysis.
    pub fn cost(&self, cost: &CostModel) -> Result<CostSummary, Error> {
        let cache_key = cost.cache_key();
        let slot = keyed_slot(&self.costs, cache_key);
        let mut ran = false;
        let (res, _filled) = traced_once(&slot, || {
            if let Some(p) = &self.persist {
                if let Some(summary) = p.load_cost(cache_key) {
                    return Ok(summary);
                }
            }
            ran = true;
            let detail = self.perf_detail()?;
            let summary = CostSummary {
                area: cost.area(&self.dfs),
                switched_ge_per_item: cost
                    .switched_ge_per_item(&self.dfs, &detail.activity_per_item),
            };
            if let Some(p) = &self.persist {
                p.save_cost(cache_key, &summary);
            }
            Ok(summary)
        });
        Counters::bump(
            &self.counters.cost_queries,
            &self.counters.cost_evaluations,
            ran,
        );
        res.clone()
    }

    /// The timed simulator's exact steady-state recurrence at `output`
    /// under the `AlwaysTrue` choice policy (the policy the analysis is
    /// certified against) — computed once per distinct `(output,
    /// max_marks)`, equal to
    /// [`measure_steady_period`]`(self.dfs(), output, max_marks,
    /// ChoicePolicy::AlwaysTrue)`.
    ///
    /// # Errors
    ///
    /// The cached simulation error
    /// ([`SimulationStalled`](dfs_core::DfsError::SimulationStalled) /
    /// [`NoSteadyState`](dfs_core::DfsError::NoSteadyState)).
    pub fn steady_period(
        &self,
        output: NodeId,
        max_marks: u64,
    ) -> Result<SteadyStatePeriod, Error> {
        let slot = keyed_slot(&self.steady, (output, max_marks));
        let mut ran = false;
        let (res, _filled) = traced_once(&slot, || {
            if let Some(p) = &self.persist {
                if let Some(sp) = p.load_steady(output, max_marks) {
                    return Ok(sp);
                }
            }
            ran = true;
            let r = measure_steady_period(&self.dfs, output, max_marks, ChoicePolicy::AlwaysTrue)
                .map_err(Error::from);
            if let (Some(p), Ok(sp)) = (&self.persist, &r) {
                p.save_steady(output, max_marks, sp);
            }
            r
        });
        Counters::bump(
            &self.counters.steady_queries,
            &self.counters.steady_measurements,
            ran,
        );
        res.clone()
    }
}
