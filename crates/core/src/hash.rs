//! Canonical structural hashing of DFS models.
//!
//! [`Dfs::structural_hash`] digests everything that determines a model's
//! *behaviour* — node kinds, initial markings (including token values),
//! delays, guard modes, and the arc structure with inversion flags — while
//! ignoring everything that does not: node **names** and node **insertion
//! order**. Two isomorphic models (equal up to a renaming/permutation of
//! nodes) hash identically, which is what lets the design-space-exploration
//! driver in `rap-dse` evaluate each distinct configuration once and serve
//! the replicas from a memo table.
//!
//! The hash is a Weisfeiler–Lehman colour refinement: every node starts
//! from a label derived from its local attributes, then repeatedly absorbs
//! the sorted multiset of its neighbours' labels (predecessors and
//! successors separately, each tagged with the arc's inversion flag). After
//! `⌈log₂ n⌉ + 2` rounds the labels are folded, order-independently, into a
//! single 64-bit digest together with the node/edge/token counts.
//!
//! Like any WL-style invariant this is *complete for the graphs it cannot
//! distinguish* only up to WL-equivalence; distinct non-isomorphic models
//! hashing equal is possible in principle but requires adversarial regular
//! structure. Memo tables should (and `rap-dse` does) key on the hash
//! *together with* the cheap exact counts ([`Dfs::node_count`],
//! [`Dfs::edge_count`], [`Dfs::initial_token_count`]) so an accidental
//! collision would additionally have to agree on those.

use crate::graph::{Dfs, GuardMode};
use crate::node::{InitialMarking, NodeKind, TokenValue};

/// A small, fast, deterministic 64-bit mixer (SplitMix64 finaliser). The
/// standard library's hashers are seeded per-process; structural hashes
/// must be stable across processes so equal structures hash equally in
/// every run (memo keys, recorded sweeps and tests all rely on that).
/// Public as [`mix64`]: every process-stable digest in the workspace
/// (`rap-session` interning, `rap_silicon::cost::CostModel::cache_key`)
/// uses this one mixer instead of keeping private copies in sync.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

use mix64 as mix;

/// Folds `v` into `acc` non-commutatively.
fn fold(acc: u64, v: u64) -> u64 {
    mix(acc ^ mix(v))
}

fn kind_tag(k: NodeKind) -> u64 {
    match k {
        NodeKind::Logic => 1,
        NodeKind::Register => 2,
        NodeKind::Control => 3,
        NodeKind::Push => 4,
        NodeKind::Pop => 5,
    }
}

fn initial_tag(m: InitialMarking) -> u64 {
    match m {
        InitialMarking::Empty => 1,
        InitialMarking::Marked => 2,
        InitialMarking::MarkedWith(TokenValue::True) => 3,
        InitialMarking::MarkedWith(TokenValue::False) => 4,
    }
}

fn guard_tag(g: GuardMode) -> u64 {
    match g {
        GuardMode::Unanimous => 1,
        GuardMode::And => 2,
        GuardMode::Or => 3,
    }
}

impl Dfs {
    /// A canonical structural hash: invariant under node renaming and
    /// reordering, sensitive to kinds, initial markings, delays, guard
    /// modes and the (inversion-flagged) arc structure.
    ///
    /// See `src/hash.rs` module docs for the construction and the collision
    /// contract.
    #[must_use]
    pub fn structural_hash(&self) -> u64 {
        let n = self.node_count();
        if n == 0 {
            return mix(0x0df5);
        }
        let mut sorted = self.wl_refine(true);
        sorted.sort_unstable();
        let mut digest = fold(0x0df5, n as u64);
        digest = fold(digest, self.edge_count() as u64);
        digest = fold(digest, self.initial_token_count() as u64);
        for l in sorted {
            digest = fold(digest, l);
        }
        digest
    }

    /// The stable Weisfeiler–Lehman colour of every node, computed like the
    /// [`Dfs::structural_hash`] refinement but **ignoring initial markings**
    /// (kinds, delays, guard modes and arc structure only).
    ///
    /// Two nodes in the same *orbit* of the model's structural automorphism
    /// group necessarily share a colour, so equal colours are the
    /// candidate-orbit information for symmetry reduction: a claimed
    /// symmetry (e.g. the way rotation of a wagged pipeline) must map every
    /// node to one of its colour-mates. Markings are excluded because
    /// quotient exploration does not require the initial state to be
    /// symmetric (the engine canonicalizes it first) — a wagged pipeline's
    /// ways are colour-equal even though its control tokens start in way 0.
    /// The converse does not hold — equal colour does not prove an
    /// automorphism exists — which is why
    /// [`crate::node_rotation_symmetry`] re-validates the full arc structure
    /// before building an engine symmetry from a node permutation.
    #[must_use]
    pub fn wl_colors(&self) -> Vec<u64> {
        self.wl_refine(false)
    }

    /// WL colour refinement to a fixed point (⌈log₂ n⌉ + 2 rounds), seeded
    /// with or without the initial-marking tag.
    fn wl_refine(&self, with_marking: bool) -> Vec<u64> {
        let n = self.node_count();
        if n == 0 {
            return Vec::new();
        }
        let mut labels: Vec<u64> = self
            .nodes()
            .map(|id| {
                let node = self.node(id);
                let mut h = fold(0x0df5, kind_tag(node.kind));
                if with_marking {
                    h = fold(h, initial_tag(node.initial));
                }
                h = fold(h, node.delay.to_bits());
                fold(h, guard_tag(self.guard_mode(id)))
            })
            .collect();

        let rounds = (usize::BITS - n.leading_zeros()) as usize + 2;
        let mut next = vec![0u64; n];
        let mut bucket: Vec<u64> = Vec::new();
        for _ in 0..rounds {
            for id in self.nodes() {
                let i = id.index();
                let mut h = fold(labels[i], 0x1);
                for (tag, edges) in [(0x2u64, self.preds(id)), (0x3, self.succs(id))] {
                    bucket.clear();
                    bucket.extend(
                        edges
                            .iter()
                            .map(|e| mix(labels[e.node.index()] ^ u64::from(e.inverted))),
                    );
                    bucket.sort_unstable();
                    h = fold(h, tag);
                    for &b in &bucket {
                        h = fold(h, b);
                    }
                }
                next[i] = h;
            }
            std::mem::swap(&mut labels, &mut next);
        }

        labels
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::DfsBuilder;
    use crate::graph::Dfs;
    use crate::pipelines::{build_pipeline, PipelineSpec};

    /// A ring with a logic node, built with the node declarations permuted
    /// and renamed according to `order`/`prefix`.
    fn ring(order: [usize; 4], prefix: &str) -> Dfs {
        let mut b = DfsBuilder::new();
        let mut ids = [None; 4];
        for &i in &order {
            ids[i] = Some(match i {
                0 => b.register(format!("{prefix}a")).marked().delay(2.0).build(),
                1 => b.logic(format!("{prefix}f")).delay(3.0).build(),
                2 => b.register(format!("{prefix}b")).build(),
                _ => b.register(format!("{prefix}c")).build(),
            });
        }
        let [a, f, r1, r2] = ids.map(|x| x.unwrap());
        b.connect(a, f);
        b.connect(f, r1);
        b.connect(r1, r2);
        b.connect(r2, a);
        b.finish().unwrap()
    }

    #[test]
    fn invariant_under_renaming_and_reordering() {
        let h0 = ring([0, 1, 2, 3], "x_").structural_hash();
        assert_eq!(h0, ring([3, 2, 1, 0], "other").structural_hash());
        assert_eq!(h0, ring([1, 3, 0, 2], "z").structural_hash());
    }

    #[test]
    fn sensitive_to_delays_marking_and_structure() {
        let base = ring([0, 1, 2, 3], "n").structural_hash();
        // different delay
        let mut b = DfsBuilder::new();
        let a = b.register("a").marked().delay(2.5).build();
        let f = b.logic("f").delay(3.0).build();
        let r1 = b.register("b").build();
        let r2 = b.register("c").build();
        b.connect(a, f);
        b.connect(f, r1);
        b.connect(r1, r2);
        b.connect(r2, a);
        assert_ne!(base, b.finish().unwrap().structural_hash());
        // different marking position relative to the logic node
        let mut b = DfsBuilder::new();
        let a = b.register("a").delay(2.0).build();
        let f = b.logic("f").delay(3.0).build();
        let r1 = b.register("b").marked().build();
        let r2 = b.register("c").build();
        b.connect(a, f);
        b.connect(f, r1);
        b.connect(r1, r2);
        b.connect(r2, a);
        assert_ne!(base, b.finish().unwrap().structural_hash());
    }

    #[test]
    fn inverted_arcs_and_token_values_matter() {
        let build = |invert: bool, value: bool| {
            let mut b = DfsBuilder::new();
            let c = b
                .control("c")
                .marked_with(crate::node::TokenValue::from(value))
                .build();
            let p = b.push("p").build();
            let r = b.register("r").marked().build();
            if invert {
                b.connect_inverted(c, p);
            } else {
                b.connect(c, p);
            }
            b.connect(r, p);
            b.connect(p, r);
            b.finish().unwrap().structural_hash()
        };
        assert_ne!(build(false, true), build(true, true));
        assert_ne!(build(false, true), build(false, false));
        assert_eq!(build(true, false), build(true, false));
    }

    #[test]
    fn pipeline_configurations_hash_distinctly() {
        let h = |d: usize| {
            build_pipeline(&PipelineSpec::reconfigurable_depth(4, d).unwrap())
                .unwrap()
                .dfs
                .structural_hash()
        };
        let hashes = [h(1), h(2), h(3), h(4)];
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(hashes[i], hashes[j], "depths {} vs {}", i + 1, j + 1);
            }
        }
        // rebuilding the same spec reproduces the hash exactly
        assert_eq!(h(2), h(2));
    }

    #[test]
    fn wl_colors_equate_wagged_ways() {
        use crate::wagging::wagged_pipeline;
        let w = wagged_pipeline(2, 1, 1.0).unwrap();
        let colors = w.dfs.wl_colors();
        let c = |name: &str| colors[w.dfs.node_by_name(name).unwrap().index()];
        // the two ways are structural rotations of each other, so every
        // replicated node shares its colour with its counterpart — even
        // though the control tokens start in way 0 only
        assert_eq!(c("w0_entry"), c("w1_entry"));
        assert_eq!(c("w0_exit"), c("w1_exit"));
        assert_eq!(c("w0_r1"), c("w1_r1"));
        assert_eq!(c("dc0"), c("dc3"));
        // distinct structure still separates
        assert_ne!(c("w0_entry"), c("w0_exit"));
        assert_ne!(c("w0_entry"), c("dc0"));
    }

    #[test]
    fn empty_model_hashes_stably() {
        let e1 = DfsBuilder::new().finish().unwrap().structural_hash();
        let e2 = DfsBuilder::new().finish().unwrap().structural_hash();
        assert_eq!(e1, e2);
    }
}
