//! The `dse_pareto` sweep: the paper's design space explored end to end,
//! persisted as `BENCH_dse.json`.
//!
//! The full space is the OPE product requirement of §III/§IV — hardware
//! that can serve window demands up to 6 — crossed with the operating
//! conditions the paper measures: static, reconfigurable (with and
//! without the shared-loop optimisation) and 1–3-way wagged-replicated
//! pipelines, a 4-point datapath sizing grid and a 4-point supply grid,
//! evaluated at every demanded depth 1–6. That is 576 distinct
//! configurations, of which only the distinct *structures* (64) ever pay
//! for a full evaluation — the memo and pruning counters in the emitted
//! JSON record exactly how much work the driver avoided.
//!
//! The acceptance anchor is the paper's design point: the reconfigurable
//! OPE pipeline, 6 stages, operating at depth 4, nominal sizing and
//! supply — `fig5_performance`'s exact period-19 row — must appear on the
//! demand-4 Pareto front.

use crate::json::{escape, Json};
use rap_dse::pareto::Objectives;
use rap_dse::{explore_traced, DesignSpace, DseConfig, DseOutcome, Hardware};
use rap_obs::{Obs, Snapshot};
use rap_ope::dfs_model::ope_stage_delays;
use rap_silicon::cost::CostModel;
use std::time::Instant;

/// Schema tag embedded in (and required from) the emitted JSON. `v2`
/// added the `warm` object: the same sweep re-run against the warm
/// session, recording what the cross-sweep artifact cache saves. `v3`
/// added the `restart` object and store counters: the sweep now runs over
/// a persistent artifact store, and a *fresh* session over the same
/// directory — a simulated process restart — must perform zero full
/// evaluations, every structure served from disk.
pub const SCHEMA: &str = "rap/dse-pareto/v3";

/// The label of the paper's design point in the full sweep.
pub const PAPER_DESIGN_POINT: &str = "reconfigurable(6)@d4 s1 1.2V";

/// The exact period of the paper's design point (model time units; the
/// `fig5_performance` row pinned in `tests/experiments_hold.rs`).
pub const PAPER_DESIGN_PERIOD: f64 = 19.0;

/// The demand class whose front anchors the acceptance check.
pub const PAPER_WORKLOAD: usize = 4;

/// The full paper space (576 configurations) or the CI smoke space
/// (`quick`, 48 configurations over 3-stage hardware).
#[must_use]
pub fn paper_space(quick: bool) -> DesignSpace {
    if quick {
        DesignSpace {
            hardware: vec![
                Hardware::Static { stages: 3 },
                Hardware::Reconfigurable {
                    stages: 3,
                    share_ctrl: true,
                },
                Hardware::Wagged { ways: 1, stages: 3 },
                Hardware::Wagged { ways: 2, stages: 3 },
            ],
            workloads: vec![1, 2, 3],
            sizings: vec![1.0, 1.5],
            voltages: vec![0.9, 1.2],
            delays: ope_stage_delays(),
        }
    } else {
        DesignSpace {
            hardware: vec![
                Hardware::Static { stages: 6 },
                Hardware::Reconfigurable {
                    stages: 6,
                    share_ctrl: true,
                },
                Hardware::Reconfigurable {
                    stages: 6,
                    share_ctrl: false,
                },
                Hardware::Wagged { ways: 1, stages: 6 },
                Hardware::Wagged { ways: 2, stages: 6 },
                Hardware::Wagged { ways: 3, stages: 6 },
            ],
            workloads: (1..=6).collect(),
            sizings: vec![0.75, 1.0, 1.5, 2.0],
            voltages: vec![0.7, 0.9, 1.2, 1.6],
            delays: ope_stage_delays(),
        }
    }
}

/// A completed sweep with its timing: the cold pass (store-backed
/// session), a warm pass of the identical space against the now-populated
/// session, and a *restart* pass — a fresh session over the same store
/// directory, simulating a process restart served entirely from disk.
#[derive(Debug)]
pub struct SweepRun {
    /// The cold-pass outcome.
    pub outcome: DseOutcome,
    /// Wall-clock of the cold pass (ms).
    pub elapsed_ms: f64,
    /// Wall-clock of the warm pass (ms).
    pub warm_elapsed_ms: f64,
    /// Counters of the warm pass (full evaluations ≈ 0: every structure
    /// is served from the session cache).
    pub warm_stats: rap_dse::SweepStats,
    /// Wall-clock of the restart pass (ms).
    pub restart_elapsed_ms: f64,
    /// Counters of the restart pass (full evaluations = 0: every
    /// structure is served from the persistent store).
    pub restart_stats: rap_dse::SweepStats,
    /// Store counters of the restart session (disk hits, bytes read…).
    pub restart_store: rap_session::StoreStats,
    /// Threads used.
    pub threads: usize,
    /// Quick space?
    pub quick: bool,
}

/// Runs the sweep with the default driver configuration.
///
/// `cache` names the persistent artifact-store directory. `None` uses a
/// scratch directory removed before returning; passing a real path makes
/// the sweep's artifacts survive the process, so a *re-invocation* over
/// the same path starts disk-warm (the CI warm-restart job drives this
/// through `dse_pareto --cache`). Either way the run includes an
/// in-process restart pass: a fresh session over the store directory that
/// must reproduce the fronts bit-identically with **zero** full
/// evaluations.
///
/// # Panics
///
/// Panics if the store directory cannot be opened (locked or unwritable),
/// if the sweep hits evaluation errors, if any pass drifts from the cold
/// fronts, if the restart pass recomputes anything, or, in the full
/// space, if the documented depth-monotonicity assumption behind the
/// sibling pruning bound is violated by the recorded evaluations (a
/// tripwire; the front-equivalence property is additionally tested with
/// pruning disabled in `rap-dse`'s test-suite).
#[must_use]
pub fn run_sweep(quick: bool, cache: Option<&std::path::Path>) -> SweepRun {
    run_sweep_traced(quick, cache, &Obs::none())
}

/// [`run_sweep`] with a recorder attached: the three passes open
/// `dse.pass.cold` / `dse.pass.warm` / `dse.pass.restart` spans under
/// `obs`, each sweep's `dse.sweep`/`dse.eval` spans and provenance events
/// nest inside its pass, and the sessions/stores are opened traced so the
/// full query lifecycle (`session.*`) and disk latencies (`store.*_ns`)
/// land in the same collector. Recording is observation-only: the
/// returned fronts are bit-identical to an untraced run (this very
/// function asserts front equality across its own passes either way, and
/// `tests/trace_schema.rs` asserts it across traced/untraced runs).
#[must_use]
pub fn run_sweep_traced(quick: bool, cache: Option<&std::path::Path>, obs: &Obs) -> SweepRun {
    let space = paper_space(quick);
    let cost = CostModel::default();
    let cfg = DseConfig::default();
    let (store_dir, scratch) = match cache {
        Some(dir) => (dir.to_path_buf(), false),
        None => {
            use std::sync::atomic::{AtomicU64, Ordering};
            static N: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "rap-dse-store-{}-{}",
                std::process::id(),
                N.fetch_add(1, Ordering::Relaxed)
            ));
            (dir, true)
        }
    };
    // store opens do real I/O (dir creation, lock fsync, orphan sweep):
    // keep them inside spans so cold-cache runs stay fully accounted
    let session = {
        let _span = obs.span("session.open");
        rap_session::Session::open_traced(&store_dir, obs.clone())
            .unwrap_or_else(|e| panic!("cannot open artifact store {}: {e:?}", store_dir.display()))
    };
    let t0 = Instant::now();
    let outcome = {
        let pass = obs.span("dse.pass.cold");
        explore_traced(&space, &cost, &cfg, &session, &pass.obs())
    };
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
    // warm pass: the identical space against the populated session — the
    // cross-sweep artifact cache serves every structure, so the fronts
    // must be identical and (almost) no full evaluation happens
    let t1 = Instant::now();
    let warm = {
        let pass = obs.span("dse.pass.warm");
        explore_traced(&space, &cost, &cfg, &session, &pass.obs())
    };
    let warm_elapsed_ms = t1.elapsed().as_secs_f64() * 1e3;
    assert_fronts_identical(&outcome, &warm);
    assert!(
        warm.stats.full_evaluations <= outcome.stats.full_evaluations,
        "warm pass re-evaluated more than the cold pass"
    );
    // restart pass: drop the session (releasing the store lock), open a
    // fresh one over the same directory and re-sweep — every structure is
    // served from disk, so the fronts are bit-identical at zero full
    // evaluations: the crash-safety contract, measured
    drop(session);
    let session = {
        let _span = obs.span("session.open");
        rap_session::Session::open_traced(&store_dir, obs.clone())
            .unwrap_or_else(|e| panic!("cannot reopen artifact store: {e:?}"))
    };
    let t2 = Instant::now();
    let restart = {
        let pass = obs.span("dse.pass.restart");
        explore_traced(&space, &cost, &cfg, &session, &pass.obs())
    };
    let restart_elapsed_ms = t2.elapsed().as_secs_f64() * 1e3;
    assert_fronts_identical(&outcome, &restart);
    assert_eq!(
        restart.stats.full_evaluations, 0,
        "a restarted sweep over an intact store must recompute nothing"
    );
    let restart_store = session.stats().store;
    assert!(
        restart_store.disk_hits > 0,
        "the restart pass never touched the store"
    );
    drop(session);
    if scratch {
        let _span = obs.span("bench.cleanup");
        let _ = std::fs::remove_dir_all(&store_dir);
    }
    assert_eq!(outcome.stats.errors, 0, "sweep produced evaluation errors");
    assert_eq!(outcome.stats.panics, 0, "a sweep worker panicked");
    assert_eq!(
        outcome.stats.check_violations, 0,
        "a swept configuration failed its verification screen"
    );
    // tripwire for the sibling bound's monotonicity assumption: among the
    // recorded evaluations, a reconfigurable point must never get faster
    // when operating deeper (same hardware and sizing)
    for a in &outcome.evaluations {
        for b in &outcome.evaluations {
            if a.config.hardware == b.config.hardware
                && matches!(a.config.hardware, Hardware::Reconfigurable { .. })
                && a.config.sizing == b.config.sizing
                && a.config.workload < b.config.workload
            {
                assert!(
                    a.period_units <= b.period_units + 1e-9,
                    "depth monotonicity violated: {} ({}) vs {} ({})",
                    a.label,
                    a.period_units,
                    b.label,
                    b.period_units
                );
            }
        }
    }
    SweepRun {
        outcome,
        elapsed_ms,
        warm_elapsed_ms,
        warm_stats: warm.stats,
        restart_elapsed_ms,
        restart_stats: restart.stats,
        restart_store,
        threads: cfg.threads,
        quick,
    }
}

/// Bitwise front equality between two sweeps of the same space (labels,
/// objectives, periods): what "the cache changes the cost, never the
/// answer" means operationally — and, since tracing is observation-only,
/// also what "a recorder changes nothing" means (`tests/trace_schema.rs`
/// pins a traced sweep against an untraced one with this).
///
/// # Panics
///
/// On the first differing front entry.
pub fn assert_fronts_identical(a: &DseOutcome, b: &DseOutcome) {
    assert_eq!(a.fronts.len(), b.fronts.len(), "front count differs");
    for (workload, fa) in &a.fronts {
        let fb = b.front(*workload);
        assert_eq!(
            fa.len(),
            fb.len(),
            "front size differs at demand {workload}"
        );
        for (x, y) in fa.iter().zip(fb) {
            assert_eq!(x.label, y.label);
            assert_eq!(
                x.objectives.throughput.to_bits(),
                y.objectives.throughput.to_bits()
            );
            assert_eq!(
                x.objectives.energy_per_item.to_bits(),
                y.objectives.energy_per_item.to_bits()
            );
            assert_eq!(x.objectives.area.to_bits(), y.objectives.area.to_bits());
            assert_eq!(x.period_units.to_bits(), y.period_units.to_bits());
        }
    }
}

fn check_tag(truncated: bool) -> &'static str {
    if truncated {
        "inconclusive"
    } else {
        "clean"
    }
}

/// Renders a sweep as the `BENCH_dse.json` document.
#[must_use]
pub fn render_json(run: &SweepRun) -> String {
    render_json_with_trace(run, None)
}

/// [`render_json`] with an optional `trace_summary` block (wall-clock,
/// span coverage, top-5 spans by self-time) from a traced run's
/// [`Snapshot`]. The block is additive: the document stays schema-valid
/// with or without it, and every measured number is unchanged.
#[must_use]
pub fn render_json_with_trace(run: &SweepRun, trace: Option<&Snapshot>) -> String {
    let stats = run.outcome.stats;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": {},\n", escape(SCHEMA)));
    out.push_str(&format!("  \"quick\": {},\n", run.quick));
    out.push_str(&format!("  \"threads\": {},\n", run.threads));
    out.push_str(&format!("  \"elapsed_ms\": {:.3},\n", run.elapsed_ms));
    if let Some(snap) = trace {
        out.push_str(&format!(
            "  \"trace_summary\": {},\n",
            crate::trace::summary_block(snap, "  ")
        ));
    }
    out.push_str("  \"stats\": {\n");
    out.push_str(&format!("    \"configurations\": {},\n", stats.enumerated));
    out.push_str(&format!(
        "    \"full_evaluations\": {},\n",
        stats.full_evaluations
    ));
    out.push_str(&format!("    \"memo_hits\": {},\n", stats.memo_hits));
    out.push_str(&format!("    \"pruned\": {},\n", stats.pruned));
    out.push_str(&format!(
        "    \"check_inconclusive\": {}\n",
        stats.check_inconclusive
    ));
    out.push_str("  },\n");
    out.push_str("  \"warm\": {\n");
    out.push_str(&format!(
        "    \"elapsed_ms\": {:.3},\n",
        run.warm_elapsed_ms
    ));
    out.push_str(&format!(
        "    \"full_evaluations\": {},\n",
        run.warm_stats.full_evaluations
    ));
    out.push_str(&format!(
        "    \"memo_hits\": {},\n",
        run.warm_stats.memo_hits
    ));
    out.push_str(&format!("    \"pruned\": {}\n", run.warm_stats.pruned));
    out.push_str("  },\n");
    out.push_str("  \"restart\": {\n");
    out.push_str(&format!(
        "    \"elapsed_ms\": {:.3},\n",
        run.restart_elapsed_ms
    ));
    out.push_str(&format!(
        "    \"full_evaluations\": {},\n",
        run.restart_stats.full_evaluations
    ));
    out.push_str(&format!(
        "    \"memo_hits\": {},\n",
        run.restart_stats.memo_hits
    ));
    out.push_str(&format!("    \"pruned\": {},\n", run.restart_stats.pruned));
    out.push_str("    \"store\": {\n");
    out.push_str(&format!(
        "      \"disk_hits\": {},\n",
        run.restart_store.disk_hits
    ));
    out.push_str(&format!(
        "      \"disk_misses\": {},\n",
        run.restart_store.disk_misses
    ));
    out.push_str(&format!(
        "      \"bytes_read\": {},\n",
        run.restart_store.bytes_read
    ));
    out.push_str(&format!(
        "      \"bytes_written\": {},\n",
        run.restart_store.bytes_written
    ));
    out.push_str(&format!(
        "      \"corrupt_recovered\": {},\n",
        run.restart_store.corrupt_recovered
    ));
    out.push_str(&format!(
        "      \"write_errors\": {}\n",
        run.restart_store.write_errors
    ));
    out.push_str("    }\n");
    out.push_str("  },\n");

    let (dp_label, dp_workload) = design_point(run.quick);
    let dp = run
        .outcome
        .front(dp_workload)
        .iter()
        .find(|e| e.label == dp_label);
    out.push_str("  \"design_point\": {\n");
    out.push_str(&format!("    \"label\": {},\n", escape(dp_label)));
    out.push_str(&format!("    \"workload\": {dp_workload},\n"));
    out.push_str(&format!("    \"on_front\": {},\n", dp.is_some()));
    out.push_str(&format!(
        "    \"period_units\": {}\n",
        dp.map_or_else(|| "null".to_string(), |e| format!("{:.6}", e.period_units))
    ));
    out.push_str("  },\n");

    out.push_str("  \"fronts\": [\n");
    let fronts: Vec<_> = run.outcome.fronts.iter().collect();
    for (fi, (workload, front)) in fronts.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"workload\": {workload},\n"));
        out.push_str("      \"points\": [\n");
        for (pi, e) in front.iter().enumerate() {
            out.push_str("        {\n");
            out.push_str(&format!("          \"label\": {},\n", escape(&e.label)));
            // lossless emission: near-ties (e.g. the shared- vs
            // separate-loop variants at the same period) must not collapse
            // into exact ties, or the validator's dominance re-check would
            // disagree with the full-precision kernel
            out.push_str(&format!(
                "          \"throughput\": {:e},\n",
                e.objectives.throughput
            ));
            out.push_str(&format!(
                "          \"energy_per_item\": {:e},\n",
                e.objectives.energy_per_item
            ));
            out.push_str(&format!("          \"area\": {:e},\n", e.objectives.area));
            out.push_str(&format!(
                "          \"period_units\": {:.6},\n",
                e.period_units
            ));
            out.push_str(&format!("          \"phases\": {},\n", e.phases));
            out.push_str(&format!("          \"memoized\": {},\n", e.memoized));
            out.push_str(&format!(
                "          \"check\": {}\n",
                escape(check_tag(e.check_truncated))
            ));
            out.push_str(if pi + 1 == front.len() {
                "        }\n"
            } else {
                "        },\n"
            });
        }
        out.push_str("      ]\n");
        out.push_str(if fi + 1 == fronts.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

/// The acceptance design point per mode: the paper's OPE(6,4) row in the
/// full space, its 3-stage analogue in the quick space.
#[must_use]
pub fn design_point(quick: bool) -> (&'static str, usize) {
    if quick {
        ("reconfigurable(3)@d2 s1 1.2V", 2)
    } else {
        (PAPER_DESIGN_POINT, PAPER_WORKLOAD)
    }
}

/// Summary extracted from a valid `BENCH_dse.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Enumerated configurations.
    pub configurations: usize,
    /// Full structural evaluations performed.
    pub full_evaluations: usize,
    /// Memo-table hits.
    pub memo_hits: usize,
    /// Pruned configurations.
    pub pruned: usize,
    /// Per workload: front size.
    pub front_sizes: Vec<(usize, usize)>,
    /// Was the mode's design point on its front?
    pub design_point_on_front: bool,
}

/// Validates a `BENCH_dse.json` document against the v1 schema and the
/// semantic invariants of the sweep, returning its summary.
///
/// Beyond shape checks, this re-verifies that every emitted front is
/// mutually non-dominated and sorted by descending throughput, that the
/// work accounting adds up (`full + memo + pruned = configurations`), and
/// — for full (non-quick) documents — that the sweep covered ≥ 500
/// configurations, that memoization plus pruning measurably reduced full
/// evaluations, and that the paper's OPE(6,4) design point sits on the
/// demand-4 front with its pinned period.
///
/// # Errors
///
/// A description of the first violation found.
pub fn validate(src: &str) -> Result<Summary, String> {
    let doc = Json::parse(src)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing \"schema\"")?;
    if schema != SCHEMA {
        return Err(format!("schema is {schema:?}, expected {SCHEMA:?}"));
    }
    let quick = doc
        .get("quick")
        .and_then(Json::as_bool)
        .ok_or("missing boolean \"quick\"")?;
    doc.get("elapsed_ms")
        .and_then(Json::as_f64)
        .filter(|x| x.is_finite() && *x >= 0.0)
        .ok_or("missing non-negative \"elapsed_ms\"")?;
    // optional (only present when the run was traced), but well-formed
    // when it is there
    if let Some(ts) = doc.get("trace_summary") {
        ts.get("wall_ns")
            .and_then(Json::as_f64)
            .filter(|x| *x >= 1.0)
            .ok_or("trace_summary: missing positive \"wall_ns\"")?;
        ts.get("coverage")
            .and_then(Json::as_f64)
            .filter(|x| (0.0..=1.0).contains(x))
            .ok_or("trace_summary: missing \"coverage\" in [0, 1]")?;
        let top = ts
            .get("top_self")
            .and_then(Json::as_arr)
            .ok_or("trace_summary: missing \"top_self\" array")?;
        if top.len() > 5 {
            return Err(format!(
                "trace_summary: top_self has {} entries (max 5)",
                top.len()
            ));
        }
    }

    let stats = doc.get("stats").ok_or("missing \"stats\"")?;
    let stat = |k: &str| -> Result<usize, String> {
        stats
            .get(k)
            .and_then(Json::as_f64)
            .filter(|x| x.is_finite() && *x >= 0.0 && x.fract() == 0.0)
            .map(|x| x as usize)
            .ok_or(format!("stats: missing count \"{k}\""))
    };
    let configurations = stat("configurations")?;
    let full_evaluations = stat("full_evaluations")?;
    let memo_hits = stat("memo_hits")?;
    let pruned = stat("pruned")?;
    if full_evaluations + memo_hits + pruned != configurations {
        return Err(format!(
            "work accounting broken: {full_evaluations} + {memo_hits} + {pruned} != {configurations}"
        ));
    }

    // the warm pass: same accounting, and the session cache must not
    // *increase* the number of full evaluations
    let warm = doc.get("warm").ok_or("missing \"warm\" object (v2)")?;
    let warm_stat = |k: &str| -> Result<usize, String> {
        warm.get(k)
            .and_then(Json::as_f64)
            .filter(|x| x.is_finite() && *x >= 0.0 && x.fract() == 0.0)
            .map(|x| x as usize)
            .ok_or(format!("warm: missing count \"{k}\""))
    };
    warm.get("elapsed_ms")
        .and_then(Json::as_f64)
        .filter(|x| x.is_finite() && *x >= 0.0)
        .ok_or("warm: missing non-negative \"elapsed_ms\"")?;
    let warm_full = warm_stat("full_evaluations")?;
    let warm_memo = warm_stat("memo_hits")?;
    let warm_pruned = warm_stat("pruned")?;
    if warm_full + warm_memo + warm_pruned != configurations {
        return Err(format!(
            "warm work accounting broken: {warm_full} + {warm_memo} + {warm_pruned} != {configurations}"
        ));
    }
    if warm_full > full_evaluations {
        return Err(format!(
            "warm pass performed more full evaluations ({warm_full}) than the cold pass ({full_evaluations})"
        ));
    }

    // the restart pass (v3): the crash-safety acceptance — a fresh session
    // over the same store directory performs zero full evaluations, and it
    // actually read the store (a restart that silently recomputed in
    // memory would also report zero disk hits)
    let restart = doc
        .get("restart")
        .ok_or("missing \"restart\" object (v3)")?;
    let restart_stat = |k: &str| -> Result<usize, String> {
        restart
            .get(k)
            .and_then(Json::as_f64)
            .filter(|x| x.is_finite() && *x >= 0.0 && x.fract() == 0.0)
            .map(|x| x as usize)
            .ok_or(format!("restart: missing count \"{k}\""))
    };
    restart
        .get("elapsed_ms")
        .and_then(Json::as_f64)
        .filter(|x| x.is_finite() && *x >= 0.0)
        .ok_or("restart: missing non-negative \"elapsed_ms\"")?;
    let restart_full = restart_stat("full_evaluations")?;
    let restart_memo = restart_stat("memo_hits")?;
    let restart_pruned = restart_stat("pruned")?;
    if restart_full + restart_memo + restart_pruned != configurations {
        return Err(format!(
            "restart work accounting broken: {restart_full} + {restart_memo} + {restart_pruned} != {configurations}"
        ));
    }
    if restart_full != 0 {
        return Err(format!(
            "restarted sweep performed {restart_full} full evaluations (must be 0: \
             every structure is served from the persistent store)"
        ));
    }
    let store = restart
        .get("store")
        .ok_or("restart: missing \"store\" counters")?;
    let store_stat = |k: &str| -> Result<usize, String> {
        store
            .get(k)
            .and_then(Json::as_f64)
            .filter(|x| x.is_finite() && *x >= 0.0 && x.fract() == 0.0)
            .map(|x| x as usize)
            .ok_or(format!("restart.store: missing count \"{k}\""))
    };
    if store_stat("disk_hits")? == 0 {
        return Err("restarted sweep never read the store".to_string());
    }
    if store_stat("bytes_read")? == 0 {
        return Err("restarted sweep read zero bytes".to_string());
    }
    // deliberately NOT required: bytes_written > 0 — a re-invocation over
    // an already-populated --cache directory writes nothing anywhere
    store_stat("bytes_written")?;
    store_stat("disk_misses")?;
    store_stat("corrupt_recovered")?;
    store_stat("write_errors")?;

    let fronts = doc
        .get("fronts")
        .and_then(Json::as_arr)
        .ok_or("missing \"fronts\" array")?;
    if fronts.is_empty() {
        return Err("\"fronts\" is empty".to_string());
    }
    let mut front_sizes = Vec::new();
    for f in fronts {
        let workload = f
            .get("workload")
            .and_then(Json::as_f64)
            .ok_or("front: missing \"workload\"")? as usize;
        let points = f
            .get("points")
            .and_then(Json::as_arr)
            .ok_or("front: missing \"points\"")?;
        if points.is_empty() {
            return Err(format!("front for workload {workload} is empty"));
        }
        let mut objs: Vec<Objectives> = Vec::new();
        for (i, p) in points.iter().enumerate() {
            let num = |k: &str| -> Result<f64, String> {
                p.get(k)
                    .and_then(Json::as_f64)
                    .filter(|x| x.is_finite() && *x > 0.0)
                    .ok_or(format!(
                        "workload {workload} point {i}: \"{k}\" not a positive number"
                    ))
            };
            p.get("label")
                .and_then(Json::as_str)
                .ok_or(format!("workload {workload} point {i}: missing label"))?;
            objs.push(Objectives {
                throughput: num("throughput")?,
                energy_per_item: num("energy_per_item")?,
                area: num("area")?,
            });
            num("period_units")?;
        }
        for (i, a) in objs.iter().enumerate() {
            if i + 1 < objs.len() && a.throughput < objs[i + 1].throughput {
                return Err(format!(
                    "workload {workload}: front not sorted by descending throughput at {i}"
                ));
            }
            for (j, b) in objs.iter().enumerate() {
                if i != j && a.dominates(b) {
                    return Err(format!(
                        "workload {workload}: front point {i} dominates point {j}"
                    ));
                }
            }
        }
        front_sizes.push((workload, points.len()));
    }

    let dp = doc.get("design_point").ok_or("missing \"design_point\"")?;
    let on_front = dp
        .get("on_front")
        .and_then(Json::as_bool)
        .ok_or("design_point: missing \"on_front\"")?;
    if !on_front {
        return Err("the design point is not on its Pareto front".to_string());
    }
    let dp_label = dp
        .get("label")
        .and_then(Json::as_str)
        .ok_or("design_point: missing \"label\"")?;

    if !quick {
        if configurations < 500 {
            return Err(format!(
                "full sweep covered only {configurations} configurations (need >= 500)"
            ));
        }
        if memo_hits == 0 || full_evaluations >= configurations {
            return Err("memoization/pruning did not reduce full evaluations".to_string());
        }
        if dp_label != PAPER_DESIGN_POINT {
            return Err(format!(
                "full-sweep design point is {dp_label:?}, expected {PAPER_DESIGN_POINT:?}"
            ));
        }
        let period = dp
            .get("period_units")
            .and_then(Json::as_f64)
            .ok_or("design_point: missing \"period_units\"")?;
        if (period - PAPER_DESIGN_PERIOD).abs() > 1e-6 {
            return Err(format!(
                "design-point period {period} drifted from the pinned {PAPER_DESIGN_PERIOD}"
            ));
        }
    }

    Ok(Summary {
        configurations,
        full_evaluations,
        memo_hits,
        pruned,
        front_sizes,
        design_point_on_front: on_front,
    })
}
