//! Persistence glue between [`CompiledModel`](crate::CompiledModel) and
//! [`rap_store::Store`]: one hand-rolled, bit-exact byte codec per
//! artifact kind.
//!
//! Every encoder/decoder pair round-trips the artifact **bit for bit**
//! (floats travel as [`f64::to_bits`] patterns), which is what lets a
//! store-backed session honour the session coherence contract across
//! process restarts. Decoders are total: any defect — truncation,
//! trailing bytes, an impossible tag — yields `None`, the caller
//! quarantines the frame and recomputes. A decode failure therefore never
//! changes an answer, only its cost.
//!
//! Artifacts whose store subkey is a *digest* rather than the raw query
//! parameter (the steady-state query digests `(output, max_marks)`) echo
//! the raw parameters in their payload and verify them on decode, so even
//! a 64-bit subkey collision degrades to a recompute, never to a wrong
//! answer. The LTS query is deliberately **not** persisted: a state space
//! is the one artifact routinely larger than the model that produced it,
//! and re-exploring is exactly the cheap-and-safe degradation this layer
//! promises (the quick-check screen, which callers actually persist,
//! captures the verdicts).

use crate::model::CostSummary;
use dfs_core::perf::{Construction, CriticalCycle, PerfDetail, PerfReport};
use dfs_core::timed::SteadyStatePeriod;
use dfs_core::NodeId;
use rap_petri::analysis::{Deadlock, QuickCheck, QuickVerdict};
use rap_petri::reachability::StateId;
use rap_petri::{Marking, PlaceId, TransitionId};
use rap_store::codec::{Reader, Writer};
use rap_store::{ArtifactKey, QueryKind, Store};
use std::sync::Arc;

/// The store context a [`CompiledModel`](crate::CompiledModel) persists
/// through: the shared store plus the model's two identity digests, fixed
/// at compile (intern) time.
pub(crate) struct Persist {
    pub store: Arc<Store>,
    pub structural: u64,
    pub identity: u64,
}

impl Persist {
    fn key(&self, kind: QueryKind, subkey: u64) -> ArtifactKey {
        ArtifactKey {
            structural: self.structural,
            identity: self.identity,
            kind,
            subkey,
        }
    }

    /// Loads + decodes, quarantining a frame whose checksum verified but
    /// whose payload fails schema decoding (equally corrupt to a caller).
    fn load_with<T>(&self, key: &ArtifactKey, decode: impl Fn(&[u8]) -> Option<T>) -> Option<T> {
        let payload = self.store.load(key)?;
        match decode(&payload) {
            Some(v) => Some(v),
            None => {
                self.store.quarantine(key);
                None
            }
        }
    }

    pub fn load_perf(&self) -> Option<PerfDetail> {
        self.load_with(&self.key(QueryKind::Perf, 0), decode_perf)
    }

    pub fn save_perf(&self, detail: &PerfDetail) {
        self.store
            .save(&self.key(QueryKind::Perf, 0), &encode_perf(detail));
    }

    pub fn load_check(&self, budget: usize) -> Option<QuickCheck> {
        self.load_with(&self.key(QueryKind::Check, budget as u64), decode_check)
    }

    pub fn save_check(&self, budget: usize, check: &QuickCheck) {
        self.store.save(
            &self.key(QueryKind::Check, budget as u64),
            &encode_check(check),
        );
    }

    pub fn load_cost(&self, cache_key: u64) -> Option<CostSummary> {
        self.load_with(&self.key(QueryKind::Cost, cache_key), decode_cost)
    }

    pub fn save_cost(&self, cache_key: u64, summary: &CostSummary) {
        self.store
            .save(&self.key(QueryKind::Cost, cache_key), &encode_cost(summary));
    }

    pub fn load_steady(&self, output: NodeId, max_marks: u64) -> Option<SteadyStatePeriod> {
        self.load_with(
            &self.key(QueryKind::Steady, steady_subkey(output, max_marks)),
            |b| decode_steady(b, output, max_marks),
        )
    }

    pub fn save_steady(&self, output: NodeId, max_marks: u64, sp: &SteadyStatePeriod) {
        self.store.save(
            &self.key(QueryKind::Steady, steady_subkey(output, max_marks)),
            &encode_steady(output, max_marks, sp),
        );
    }
}

/// The steady query's two raw parameters folded into one subkey — the
/// payload echoes both, so a fold collision is caught on decode.
pub(crate) fn steady_subkey(output: NodeId, max_marks: u64) -> u64 {
    use dfs_core::hash::mix64;
    mix64(mix64(0x0057_ead7 ^ output.index() as u64) ^ max_marks)
}

// ---- PerfDetail ----------------------------------------------------------

pub(crate) fn encode_perf(detail: &PerfDetail) -> Vec<u8> {
    let mut w = Writer::new();
    let r = &detail.report;
    w.f64(r.period);
    w.f64(r.throughput);
    w.u64(r.critical.nodes.len() as u64);
    for n in &r.critical.nodes {
        w.str(n);
    }
    w.f64(r.critical.delay);
    w.u32(r.critical.tokens);
    w.str(&r.critical.bottleneck);
    match r.construction {
        Construction::Direct => w.u8(0),
        Construction::PhaseUnfolded { phases } => {
            w.u8(1);
            w.u32(phases);
        }
    }
    w.u64(detail.activity_per_item.len() as u64);
    for &a in &detail.activity_per_item {
        w.f64(a);
    }
    w.into_bytes()
}

pub(crate) fn decode_perf(bytes: &[u8]) -> Option<PerfDetail> {
    let mut r = Reader::new(bytes);
    let period = r.f64()?;
    let throughput = r.f64()?;
    let n_nodes = usize::try_from(r.u64()?).ok()?;
    let mut nodes = Vec::with_capacity(n_nodes.min(bytes.len()));
    for _ in 0..n_nodes {
        nodes.push(r.str()?);
    }
    let delay = r.f64()?;
    let tokens = r.u32()?;
    let bottleneck = r.str()?;
    let construction = match r.u8()? {
        0 => Construction::Direct,
        1 => Construction::PhaseUnfolded { phases: r.u32()? },
        _ => return None,
    };
    let n_act = usize::try_from(r.u64()?).ok()?;
    let mut activity_per_item = Vec::with_capacity(n_act.min(bytes.len()));
    for _ in 0..n_act {
        activity_per_item.push(r.f64()?);
    }
    r.finish()?;
    Some(PerfDetail {
        report: PerfReport {
            period,
            throughput,
            critical: CriticalCycle {
                nodes,
                delay,
                tokens,
                bottleneck,
            },
            construction,
        },
        activity_per_item,
    })
}

// ---- QuickCheck ----------------------------------------------------------

fn encode_verdict(w: &mut Writer, v: QuickVerdict) {
    match v {
        QuickVerdict::Holds => w.u8(0),
        QuickVerdict::Violated => w.u8(1),
        QuickVerdict::Inconclusive { budget } => {
            w.u8(2);
            w.u64(budget as u64);
        }
    }
}

fn decode_verdict(r: &mut Reader<'_>) -> Option<QuickVerdict> {
    Some(match r.u8()? {
        0 => QuickVerdict::Holds,
        1 => QuickVerdict::Violated,
        2 => QuickVerdict::Inconclusive {
            budget: usize::try_from(r.u64()?).ok()?,
        },
        _ => return None,
    })
}

fn encode_marking(w: &mut Writer, m: &Marking) {
    w.u64(m.len() as u64);
    let mut byte = 0u8;
    for i in 0..m.len() {
        if m.is_marked(PlaceId::from_index(i)) {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            w.u8(byte);
            byte = 0;
        }
    }
    if !m.len().is_multiple_of(8) {
        w.u8(byte);
    }
}

fn decode_marking(r: &mut Reader<'_>) -> Option<Marking> {
    let len = usize::try_from(r.u64()?).ok()?;
    // refuse absurd lengths before allocating (a corrupt length would
    // otherwise ask for gigabytes)
    if len > u32::MAX as usize {
        return None;
    }
    let mut m = Marking::empty(len);
    let mut byte = 0u8;
    for i in 0..len {
        if i % 8 == 0 {
            byte = r.u8()?;
        }
        if byte & (1 << (i % 8)) != 0 {
            m.set(PlaceId::from_index(i), true);
        }
    }
    Some(m)
}

pub(crate) fn encode_check(c: &QuickCheck) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(c.states as u64);
    w.u8(u8::from(c.truncated));
    encode_verdict(&mut w, c.deadlock_free);
    match &c.deadlock {
        None => w.u8(0),
        Some(d) => {
            w.u8(1);
            w.u64(d.state.index() as u64);
            encode_marking(&mut w, &d.marking);
            w.u64(d.trace.len() as u64);
            for t in &d.trace {
                w.u32(u32::try_from(t.index()).expect("transition index fits u32"));
            }
        }
    }
    encode_verdict(&mut w, c.safe);
    match c.unsafe_witness {
        None => w.u8(0),
        Some((state, pair)) => {
            w.u8(1);
            w.u64(state.index() as u64);
            w.u64(pair as u64);
        }
    }
    w.into_bytes()
}

pub(crate) fn decode_check(bytes: &[u8]) -> Option<QuickCheck> {
    let mut r = Reader::new(bytes);
    let states = usize::try_from(r.u64()?).ok()?;
    let truncated = match r.u8()? {
        0 => false,
        1 => true,
        _ => return None,
    };
    let deadlock_free = decode_verdict(&mut r)?;
    let deadlock = match r.u8()? {
        0 => None,
        1 => {
            let state = StateId::from_index(usize::try_from(r.u64()?).ok()?);
            let marking = decode_marking(&mut r)?;
            let n = usize::try_from(r.u64()?).ok()?;
            let mut trace = Vec::with_capacity(n.min(bytes.len()));
            for _ in 0..n {
                trace.push(TransitionId::from_index(r.u32()? as usize));
            }
            Some(Deadlock {
                state,
                marking,
                trace,
            })
        }
        _ => return None,
    };
    let safe = decode_verdict(&mut r)?;
    let unsafe_witness = match r.u8()? {
        0 => None,
        1 => {
            let state = StateId::from_index(usize::try_from(r.u64()?).ok()?);
            let pair = usize::try_from(r.u64()?).ok()?;
            Some((state, pair))
        }
        _ => return None,
    };
    r.finish()?;
    Some(QuickCheck {
        states,
        truncated,
        deadlock_free,
        deadlock,
        safe,
        unsafe_witness,
    })
}

// ---- CostSummary ---------------------------------------------------------

pub(crate) fn encode_cost(s: &CostSummary) -> Vec<u8> {
    let mut w = Writer::new();
    w.f64(s.area);
    w.f64(s.switched_ge_per_item);
    w.into_bytes()
}

pub(crate) fn decode_cost(bytes: &[u8]) -> Option<CostSummary> {
    let mut r = Reader::new(bytes);
    let area = r.f64()?;
    let switched_ge_per_item = r.f64()?;
    r.finish()?;
    Some(CostSummary {
        area,
        switched_ge_per_item,
    })
}

// ---- SteadyStatePeriod ---------------------------------------------------

pub(crate) fn encode_steady(output: NodeId, max_marks: u64, sp: &SteadyStatePeriod) -> Vec<u8> {
    let mut w = Writer::new();
    // echo the raw query parameters: the subkey is a digest of them
    w.u64(output.index() as u64);
    w.u64(max_marks);
    w.f64(sp.period);
    w.u64(sp.cycle_marks);
    w.u64(sp.transient_marks);
    w.into_bytes()
}

pub(crate) fn decode_steady(
    bytes: &[u8],
    output: NodeId,
    max_marks: u64,
) -> Option<SteadyStatePeriod> {
    let mut r = Reader::new(bytes);
    if r.u64()? != output.index() as u64 || r.u64()? != max_marks {
        return None; // subkey digest collision: alien parameters
    }
    let period = r.f64()?;
    let cycle_marks = r.u64()?;
    let transient_marks = r.u64()?;
    r.finish()?;
    Some(SteadyStatePeriod {
        period,
        cycle_marks,
        transient_marks,
    })
}

// Bit-exact round-trip proptests over *arbitrary* artifacts of every
// persisted kind — including NaNs, infinities and signed zeros, which is
// why every float comparison below is on `to_bits`. Truncation totality
// is pinned too: decoders must answer `None`, never panic, on any prefix.
#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_f64() -> impl Strategy<Value = f64> {
        any::<u64>().prop_map(f64::from_bits)
    }

    fn arb_name() -> impl Strategy<Value = String> {
        proptest::collection::vec(any::<u8>(), 0..12).prop_map(|v| {
            // arbitrary bytes folded into valid UTF-8 (multi-byte included)
            v.into_iter()
                .map(|b| char::from_u32(u32::from(b) + 1).unwrap_or('·'))
                .collect()
        })
    }

    fn arb_perf() -> impl Strategy<Value = PerfDetail> {
        (
            (arb_f64(), arb_f64(), arb_f64(), any::<u32>()),
            proptest::collection::vec(arb_name(), 0..6),
            arb_name(),
            (any::<bool>(), any::<u32>()),
            proptest::collection::vec(arb_f64(), 0..20),
        )
            .prop_map(
                |(
                    (period, throughput, delay, tokens),
                    nodes,
                    bottleneck,
                    (direct, phases),
                    act,
                )| {
                    PerfDetail {
                        report: PerfReport {
                            period,
                            throughput,
                            critical: CriticalCycle {
                                nodes,
                                delay,
                                tokens,
                                bottleneck,
                            },
                            construction: if direct {
                                Construction::Direct
                            } else {
                                Construction::PhaseUnfolded { phases }
                            },
                        },
                        activity_per_item: act,
                    }
                },
            )
    }

    fn verdict_from(tag: u8, budget: u64) -> QuickVerdict {
        match tag % 3 {
            0 => QuickVerdict::Holds,
            1 => QuickVerdict::Violated,
            _ => QuickVerdict::Inconclusive {
                budget: budget as usize,
            },
        }
    }

    fn arb_check() -> impl Strategy<Value = QuickCheck> {
        (
            (any::<u32>(), any::<bool>()),
            (any::<u8>(), any::<u32>(), any::<u8>(), any::<u32>()),
            (
                any::<bool>(),
                any::<u32>(),
                proptest::collection::vec(any::<bool>(), 0..40),
                proptest::collection::vec(any::<u32>(), 0..10),
            ),
            (any::<bool>(), any::<u32>(), any::<u32>()),
        )
            .prop_map(
                |(
                    (states, truncated),
                    (v1, b1, v2, b2),
                    (has_deadlock, dstate, places, trace),
                    (has_witness, wstate, pair),
                )| {
                    let deadlock = has_deadlock.then(|| {
                        let mut marking = Marking::empty(places.len());
                        for (i, &m) in places.iter().enumerate() {
                            marking.set(PlaceId::from_index(i), m);
                        }
                        Deadlock {
                            state: StateId::from_index(dstate as usize),
                            marking,
                            trace: trace
                                .iter()
                                .map(|&t| TransitionId::from_index(t as usize))
                                .collect(),
                        }
                    });
                    QuickCheck {
                        states: states as usize,
                        truncated,
                        deadlock_free: verdict_from(v1, u64::from(b1)),
                        deadlock,
                        safe: verdict_from(v2, u64::from(b2)),
                        unsafe_witness: has_witness
                            .then(|| (StateId::from_index(wstate as usize), pair as usize)),
                    }
                },
            )
    }

    fn perf_bits_equal(a: &PerfDetail, b: &PerfDetail) -> bool {
        let (ra, rb) = (&a.report, &b.report);
        ra.period.to_bits() == rb.period.to_bits()
            && ra.throughput.to_bits() == rb.throughput.to_bits()
            && ra.critical.nodes == rb.critical.nodes
            && ra.critical.delay.to_bits() == rb.critical.delay.to_bits()
            && ra.critical.tokens == rb.critical.tokens
            && ra.critical.bottleneck == rb.critical.bottleneck
            && ra.construction == rb.construction
            && a.activity_per_item.len() == b.activity_per_item.len()
            && a.activity_per_item
                .iter()
                .zip(&b.activity_per_item)
                .all(|(x, y)| x.to_bits() == y.to_bits())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn perf_round_trips_bit_exact(detail in arb_perf()) {
            let bytes = encode_perf(&detail);
            let back = decode_perf(&bytes).expect("round trip");
            prop_assert!(perf_bits_equal(&detail, &back));
        }

        #[test]
        fn perf_decode_is_total_on_truncation(detail in arb_perf(), cut in any::<u32>()) {
            let bytes = encode_perf(&detail);
            let cut = cut as usize % (bytes.len() + 1);
            if cut < bytes.len() {
                prop_assert!(decode_perf(&bytes[..cut]).is_none());
            }
        }

        #[test]
        fn check_round_trips_bit_exact(check in arb_check()) {
            let bytes = encode_check(&check);
            let back = decode_check(&bytes).expect("round trip");
            prop_assert_eq!(check, back);
        }

        #[test]
        fn check_decode_is_total_on_truncation(check in arb_check(), cut in any::<u32>()) {
            let bytes = encode_check(&check);
            let cut = cut as usize % (bytes.len() + 1);
            if cut < bytes.len() {
                prop_assert!(decode_check(&bytes[..cut]).is_none());
            }
        }

        #[test]
        fn cost_round_trips_bit_exact(area in arb_f64(), switched in arb_f64()) {
            let summary = CostSummary { area, switched_ge_per_item: switched };
            let back = decode_cost(&encode_cost(&summary)).expect("round trip");
            prop_assert_eq!(summary.area.to_bits(), back.area.to_bits());
            prop_assert_eq!(
                summary.switched_ge_per_item.to_bits(),
                back.switched_ge_per_item.to_bits()
            );
        }

        #[test]
        fn steady_round_trips_and_verifies_parameters(
            node in 0u32..1000,
            marks in any::<u64>(),
            period in arb_f64(),
            cycle in any::<u64>(),
            transient in any::<u64>(),
        ) {
            let sp = SteadyStatePeriod {
                period,
                cycle_marks: cycle,
                transient_marks: transient,
            };
            let output = node_id(node as usize);
            let bytes = encode_steady(output, marks, &sp);
            let back = decode_steady(&bytes, output, marks).expect("round trip");
            prop_assert_eq!(sp.period.to_bits(), back.period.to_bits());
            prop_assert_eq!(sp.cycle_marks, back.cycle_marks);
            prop_assert_eq!(sp.transient_marks, back.transient_marks);
            // an echoed-parameter mismatch (digest collision stand-in) is
            // rejected even though the bytes are pristine
            prop_assert!(decode_steady(&bytes, output, marks ^ 1).is_none());
            prop_assert!(decode_steady(&bytes, node_id(node as usize + 1), marks).is_none());
        }
    }

    /// Builds a NodeId from a raw index for the tests.
    fn node_id(index: usize) -> NodeId {
        NodeId::from_index(index)
    }
}
