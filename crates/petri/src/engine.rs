//! Shared incremental state-space engine.
//!
//! Both explicit-state explorers of the workspace — Petri-net reachability
//! ([`crate::reachability`]) and the direct DFS semantics (`dfs-core::Lts`)
//! — are breadth-first fixpoints over a successor relation. This module
//! factors that loop into one allocation-free driver working on *word-packed*
//! states:
//!
//! * **Arena-interned states.** Every state is a fixed-width `u64` bitset
//!   slice stored once in a dense arena; the dedup index is an open-addressing
//!   table keyed by a hash of the slice, so no per-state heap allocation or
//!   cloned key survives the hot loop.
//! * **Event-driven enabledness.** A [`TransitionSystem`] reports, per fired
//!   action, which actions must be *re-checked*; all others inherit their
//!   status from the predecessor state. For a Petri net this is the
//!   place→consumer incidence index ([`Incidence`]): after firing `t`, only
//!   transitions whose preset/read/inhibition set intersects the places
//!   changed by `t` are re-tested — event-driven exploration instead of an
//!   O(|T|) scan per state.
//! * **Reusable scratch buffers.** Successor states and enabled sets are
//!   composed in scratch slices owned by the driver and copied into the arena
//!   only when the state turns out to be new.
//!
//! Exploration order, state numbering and truncation semantics are identical
//! to the naive reference explorers retained for cross-checking
//! ([`crate::reachability::explore_naive_truncated`]), which the property
//! tests exploit.

use crate::{PetriNet, TransitionId};

/// Sentinel parent id of the initial state in [`ExploredGraph::parents`].
pub const NO_PARENT: u32 = u32::MAX;

/// Reads bit `i` of a word-packed bitset.
#[must_use]
#[inline]
pub fn get_bit(words: &[u64], i: usize) -> bool {
    words[i / 64] >> (i % 64) & 1 == 1
}

/// Writes bit `i` of a word-packed bitset.
#[inline]
pub fn set_bit(words: &mut [u64], i: usize, v: bool) {
    let mask = 1u64 << (i % 64);
    if v {
        words[i / 64] |= mask;
    } else {
        words[i / 64] &= !mask;
    }
}

/// A transition system whose states are fixed-width `u64` bitset slices.
///
/// All slices handed to the methods have length `state_words().max(1)`
/// (states) or `action_count().div_ceil(64).max(1)` (enabled sets); unused
/// high bits are zero and must stay zero.
///
/// Methods take `&mut self` so implementations can keep decode/scratch
/// buffers without interior mutability.
pub trait TransitionSystem {
    /// Number of `u64` words a state occupies.
    fn state_words(&self) -> usize;

    /// Total number of actions (enabled-set width in bits).
    fn action_count(&self) -> usize;

    /// Writes the initial state into `out` (pre-zeroed).
    fn write_initial(&mut self, out: &mut [u64]);

    /// Computes the enabled set of `state` from scratch (pre-zeroed `out`).
    /// Called once, for the initial state.
    fn write_enabled_full(&mut self, state: &[u64], out: &mut [u64]);

    /// Applies the (enabled) action `a` to `state`, writing the successor
    /// into `out`. `out` holds arbitrary garbage on entry.
    fn apply(&mut self, a: usize, state: &[u64], out: &mut [u64]);

    /// Incrementally fixes up `enabled` — pre-seeded with the predecessor's
    /// enabled set — after action `a` produced `state`. Only actions whose
    /// conditions intersect the variables changed by `a` need re-checking.
    fn update_enabled(&mut self, a: usize, state: &[u64], enabled: &mut [u64]);
}

/// The reachable graph produced by [`explore`]: arena-packed states plus
/// parent links and a CSR successor list, all keyed by dense state ids in
/// BFS discovery order (0 = initial state).
#[derive(Debug, Clone)]
pub struct ExploredGraph {
    /// Words per state in `arena` (≥ 1 even for zero-width states).
    pub stride: usize,
    /// State bitsets, concatenated: state `i` is `arena[i*stride..(i+1)*stride]`.
    pub arena: Vec<u64>,
    /// Per state: `(parent, action)`; the initial state has parent
    /// [`NO_PARENT`].
    pub parents: Vec<(u32, u32)>,
    /// CSR offsets into `succ`, one entry per state plus a final sentinel.
    pub succ_off: Vec<u32>,
    /// Outgoing edges `(action, successor)` in firing order.
    pub succ: Vec<(u32, u32)>,
    /// Whether exploration stopped early on the state budget.
    pub truncated: bool,
}

impl ExploredGraph {
    /// Number of states discovered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// `true` when no state was stored (never happens: the initial state
    /// always exists); kept for `len`/`is_empty` pairing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// The bitset words of state `i`.
    #[must_use]
    pub fn state_words(&self, i: usize) -> &[u64] {
        &self.arena[i * self.stride..(i + 1) * self.stride]
    }

    /// Outgoing edges `(action, successor)` of state `i`.
    #[must_use]
    pub fn successors(&self, i: usize) -> &[(u32, u32)] {
        &self.succ[self.succ_off[i] as usize..self.succ_off[i + 1] as usize]
    }

    /// Action sequence from the initial state to state `i`.
    #[must_use]
    pub fn trace_to(&self, i: usize) -> Vec<u32> {
        let mut rev = Vec::new();
        let mut cur = i;
        while self.parents[cur].0 != NO_PARENT {
            let (p, a) = self.parents[cur];
            rev.push(a);
            cur = p as usize;
        }
        rev.reverse();
        rev
    }
}

/// Multiplicative word mixer (splitmix-style) over a state slice.
#[inline]
fn hash_words(words: &[u64]) -> u64 {
    let mut h = 0x9E37_79B9_7F4A_7C15u64;
    for &w in words {
        h ^= w.wrapping_mul(0xA24B_AED4_963E_E407);
        h = h.rotate_left(29).wrapping_mul(0x9FB2_1C65_1E98_DF25);
    }
    h ^ (h >> 32)
}

const EMPTY_SLOT: u32 = u32::MAX;

/// Open-addressing dedup table over arena-resident states. Slots store state
/// ids; collisions are resolved by comparing the actual arena slices, so the
/// compact hash never mis-identifies a state.
struct DedupTable {
    slots: Vec<u32>,
    mask: usize,
    len: usize,
}

impl DedupTable {
    fn new() -> Self {
        let cap = 1024;
        DedupTable {
            slots: vec![EMPTY_SLOT; cap],
            mask: cap - 1,
            len: 0,
        }
    }

    fn find(&self, hash: u64, cand: &[u64], arena: &[u64], stride: usize) -> Option<u32> {
        let mut i = (hash as usize) & self.mask;
        loop {
            let slot = self.slots[i];
            if slot == EMPTY_SLOT {
                return None;
            }
            let s = slot as usize * stride;
            if &arena[s..s + stride] == cand {
                return Some(slot);
            }
            i = (i + 1) & self.mask;
        }
    }

    fn insert_raw(&mut self, hash: u64, id: u32) {
        let mut i = (hash as usize) & self.mask;
        while self.slots[i] != EMPTY_SLOT {
            i = (i + 1) & self.mask;
        }
        self.slots[i] = id;
    }

    /// Inserts a freshly appended state, growing at 50% load (cheap probes
    /// beat memory here: slots are 4 bytes). State ids are dense, so growth
    /// rehashes by re-reading the arena.
    fn insert(&mut self, hash: u64, id: u32, arena: &[u64], stride: usize) {
        if (self.len + 1) * 2 > self.slots.len() {
            let cap = self.slots.len() * 2;
            self.slots = vec![EMPTY_SLOT; cap];
            self.mask = cap - 1;
            for prev in 0..self.len as u32 {
                let s = prev as usize * stride;
                self.insert_raw(hash_words(&arena[s..s + stride]), prev);
            }
        }
        self.insert_raw(hash, id);
        self.len += 1;
    }
}

/// Breadth-first exploration of `sys` up to `max_states` distinct states.
///
/// Truncation mirrors the historical explorers exactly: when storing state
/// number `max_states` would be required, exploration stops immediately —
/// successors of the state being expanded that were found *before* the
/// overflow stay recorded, the overflowing edge does not.
pub fn explore<S: TransitionSystem>(sys: &mut S, max_states: usize) -> ExploredGraph {
    let stride = sys.state_words().max(1);
    let astride = sys.action_count().div_ceil(64).max(1);

    let mut arena = vec![0u64; stride];
    sys.write_initial(&mut arena[..stride]);
    let mut en_arena = vec![0u64; astride];
    {
        // split borrows: arena immutable, en_arena mutable
        let (state, enabled) = (&arena[..stride], &mut en_arena[..astride]);
        sys.write_enabled_full(state, enabled);
    }

    let mut parents: Vec<(u32, u32)> = vec![(NO_PARENT, 0)];
    let mut succ_off: Vec<u32> = vec![0];
    let mut succ: Vec<(u32, u32)> = Vec::new();
    let mut table = DedupTable::new();
    table.insert(hash_words(&arena[..stride]), 0, &arena, stride);

    let mut scratch = vec![0u64; stride];
    let mut en_scratch = vec![0u64; astride];
    let mut truncated = false;

    // States are discovered in BFS order, so a cursor over dense ids is the
    // queue: everything behind it is expanded, everything ahead is frontier.
    let mut cursor = 0usize;
    'bfs: while cursor < parents.len() {
        let s = cursor;
        cursor += 1;
        let en_base = s * astride;
        for wi in 0..astride {
            let mut bits = en_arena[en_base + wi];
            while bits != 0 {
                let a = wi * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                sys.apply(a, &arena[s * stride..(s + 1) * stride], &mut scratch);
                let hash = hash_words(&scratch);
                let id = match table.find(hash, &scratch, &arena, stride) {
                    Some(id) => id,
                    None => {
                        if parents.len() >= max_states {
                            truncated = true;
                            break 'bfs;
                        }
                        let id = parents.len() as u32;
                        arena.extend_from_slice(&scratch);
                        en_scratch.copy_from_slice(&en_arena[en_base..en_base + astride]);
                        sys.update_enabled(a, &scratch, &mut en_scratch);
                        en_arena.extend_from_slice(&en_scratch);
                        parents.push((s as u32, a as u32));
                        table.insert(hash, id, &arena, stride);
                        id
                    }
                };
                succ.push((a as u32, id));
            }
        }
        succ_off.push(succ.len() as u32);
    }
    // close offsets of states that were never (or only partially) expanded
    while succ_off.len() < parents.len() + 1 {
        succ_off.push(succ.len() as u32);
    }

    ExploredGraph {
        stride,
        arena,
        parents,
        succ_off,
        succ,
        truncated,
    }
}

/// Sparse masks per transition, CSR-packed: `data[off[t]..off[t+1]]` holds
/// `(word index, bit mask)` pairs.
#[derive(Debug, Clone)]
struct MaskCsr {
    off: Vec<u32>,
    data: Vec<(u32, u64)>,
}

impl MaskCsr {
    fn builder(rows: usize) -> MaskCsrBuilder {
        MaskCsrBuilder {
            rows: vec![Vec::new(); rows],
        }
    }

    #[inline]
    fn row(&self, t: usize) -> &[(u32, u64)] {
        &self.data[self.off[t] as usize..self.off[t + 1] as usize]
    }
}

struct MaskCsrBuilder {
    rows: Vec<Vec<(u32, u64)>>,
}

impl MaskCsrBuilder {
    /// Adds place index `p` to row `t`, merging into an existing word mask.
    fn add(&mut self, t: usize, p: usize) {
        let (w, m) = ((p / 64) as u32, 1u64 << (p % 64));
        let row = &mut self.rows[t];
        match row.iter_mut().find(|(rw, _)| *rw == w) {
            Some((_, rm)) => *rm |= m,
            None => row.push((w, m)),
        }
    }

    fn finish(self) -> MaskCsr {
        let mut off = Vec::with_capacity(self.rows.len() + 1);
        let mut data = Vec::new();
        off.push(0);
        for mut row in self.rows {
            row.sort_unstable_by_key(|&(w, _)| w);
            data.extend_from_slice(&row);
            off.push(data.len() as u32);
        }
        MaskCsr { off, data }
    }
}

/// Precomputed place→transition incidence of a [`PetriNet`], specialised for
/// word-packed markings.
///
/// Per transition it stores the enabledness condition as word masks —
/// `need` (consumed ∪ read places, must all be marked) and `forbid`
/// (produced-but-not-consumed places, must all be empty, the 1-safety rule)
/// — the firing effect (`clear`/`set` masks), and the *affected set*: the
/// transitions whose enabledness can change when this transition fires,
/// i.e. those whose `need`/`forbid` places intersect this transition's
/// changed places. The affected sets are what makes exploration
/// event-driven.
#[derive(Debug, Clone)]
pub struct Incidence {
    words: usize,
    transitions: usize,
    need: MaskCsr,
    forbid: MaskCsr,
    clear: MaskCsr,
    set: MaskCsr,
    affected_off: Vec<u32>,
    affected: Vec<u32>,
}

impl Incidence {
    /// Builds the incidence index of `net`.
    #[must_use]
    pub fn from_net(net: &PetriNet) -> Self {
        let np = net.place_count();
        let nt = net.transition_count();
        let mut need = MaskCsr::builder(nt);
        let mut forbid = MaskCsr::builder(nt);
        let mut clear = MaskCsr::builder(nt);
        let mut set = MaskCsr::builder(nt);
        // place -> transitions whose enabledness depends on it
        let mut watchers: Vec<Vec<u32>> = vec![Vec::new(); np];
        // per transition: places toggled by firing (consumes Δ produces)
        let mut changed: Vec<Vec<usize>> = vec![Vec::new(); nt];

        for t in net.transitions() {
            let ti = t.index();
            let tr = net.transition(t);
            for &p in tr.consumes() {
                need.add(ti, p.index());
                clear.add(ti, p.index());
                watchers[p.index()].push(ti as u32);
                if tr.produces().binary_search(&p).is_err() {
                    changed[ti].push(p.index());
                }
            }
            for &p in tr.reads() {
                if tr.consumes().binary_search(&p).is_err() {
                    watchers[p.index()].push(ti as u32);
                }
                need.add(ti, p.index());
            }
            for &p in tr.produces() {
                set.add(ti, p.index());
                if tr.consumes().binary_search(&p).is_err() {
                    forbid.add(ti, p.index());
                    watchers[p.index()].push(ti as u32);
                    changed[ti].push(p.index());
                }
            }
        }

        let mut affected_off = Vec::with_capacity(nt + 1);
        let mut affected = Vec::new();
        affected_off.push(0);
        let mut row: Vec<u32> = Vec::new();
        for changed_places in &changed {
            row.clear();
            for &p in changed_places {
                row.extend_from_slice(&watchers[p]);
            }
            row.sort_unstable();
            row.dedup();
            affected.extend_from_slice(&row);
            affected_off.push(affected.len() as u32);
        }

        Incidence {
            words: np.div_ceil(64),
            transitions: nt,
            need: need.finish(),
            forbid: forbid.finish(),
            clear: clear.finish(),
            set: set.finish(),
            affected_off,
            affected,
        }
    }

    /// Words per packed marking.
    #[must_use]
    pub fn marking_words(&self) -> usize {
        self.words
    }

    /// Number of transitions indexed.
    #[must_use]
    pub fn transition_count(&self) -> usize {
        self.transitions
    }

    /// Is `t` enabled in the word-packed marking `state`? Equivalent to
    /// [`PetriNet::is_enabled`] on the corresponding [`crate::Marking`].
    #[must_use]
    #[inline]
    pub fn is_enabled(&self, t: TransitionId, state: &[u64]) -> bool {
        let ti = t.index();
        self.need
            .row(ti)
            .iter()
            .all(|&(w, m)| state[w as usize] & m == m)
            && self
                .forbid
                .row(ti)
                .iter()
                .all(|&(w, m)| state[w as usize] & m == 0)
    }

    /// Fires `t` (assumed enabled) on `src`, writing the successor marking
    /// into `dst`.
    #[inline]
    pub fn fire_into(&self, t: TransitionId, src: &[u64], dst: &mut [u64]) {
        dst.copy_from_slice(src);
        for &(w, m) in self.clear.row(t.index()) {
            dst[w as usize] &= !m;
        }
        for &(w, m) in self.set.row(t.index()) {
            dst[w as usize] |= m;
        }
    }

    /// The transitions whose enabledness must be re-checked after `t` fires.
    #[must_use]
    #[inline]
    pub fn affected(&self, t: TransitionId) -> &[u32] {
        let ti = t.index();
        &self.affected[self.affected_off[ti] as usize..self.affected_off[ti + 1] as usize]
    }
}

/// [`TransitionSystem`] view of a [`PetriNet`]: actions are transitions,
/// states are word-packed markings.
pub struct NetSystem {
    inc: Incidence,
    initial: Vec<u64>,
}

impl NetSystem {
    /// Builds the system (and its [`Incidence`] index) for `net`.
    #[must_use]
    pub fn new(net: &PetriNet) -> Self {
        let inc = Incidence::from_net(net);
        let mut initial = vec![0u64; inc.marking_words().max(1)];
        for p in net.places() {
            if net.place(p).initially_marked {
                set_bit(&mut initial, p.index(), true);
            }
        }
        NetSystem { inc, initial }
    }

    /// The underlying incidence index.
    #[must_use]
    pub fn incidence(&self) -> &Incidence {
        &self.inc
    }
}

impl TransitionSystem for NetSystem {
    fn state_words(&self) -> usize {
        self.inc.marking_words()
    }

    fn action_count(&self) -> usize {
        self.inc.transition_count()
    }

    fn write_initial(&mut self, out: &mut [u64]) {
        out.copy_from_slice(&self.initial);
    }

    fn write_enabled_full(&mut self, state: &[u64], out: &mut [u64]) {
        for ti in 0..self.inc.transition_count() {
            set_bit(
                out,
                ti,
                self.inc.is_enabled(TransitionId::from_index(ti), state),
            );
        }
    }

    fn apply(&mut self, a: usize, state: &[u64], out: &mut [u64]) {
        self.inc.fire_into(TransitionId::from_index(a), state, out);
    }

    fn update_enabled(&mut self, a: usize, state: &[u64], enabled: &mut [u64]) {
        for &t2 in self.inc.affected(TransitionId::from_index(a)) {
            set_bit(
                enabled,
                t2 as usize,
                self.inc
                    .is_enabled(TransitionId::from_index(t2 as usize), state),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Marking;

    fn ring(n: usize) -> PetriNet {
        let mut net = PetriNet::new();
        let places: Vec<_> = (0..n)
            .map(|i| net.add_place(format!("p{i}"), i == 0))
            .collect();
        for i in 0..n {
            let t = net.add_transition(format!("t{i}"));
            net.consume(t, places[i]);
            net.produce(t, places[(i + 1) % n]);
        }
        net
    }

    fn marking_of(net: &PetriNet, words: &[u64]) -> Marking {
        let mut m = Marking::empty(net.place_count());
        for p in net.places() {
            m.set(p, get_bit(words, p.index()));
        }
        m
    }

    #[test]
    fn incidence_agrees_with_net_enabledness() {
        let net = ring(5);
        let inc = Incidence::from_net(&net);
        let mut sys = NetSystem::new(&net);
        let g = explore(&mut sys, 1_000);
        for i in 0..g.len() {
            let words = g.state_words(i);
            let m = marking_of(&net, words);
            for t in net.transitions() {
                assert_eq!(inc.is_enabled(t, words), net.is_enabled(t, &m));
            }
        }
    }

    #[test]
    fn fire_into_matches_net_fire() {
        let net = ring(4);
        let inc = Incidence::from_net(&net);
        let mut sys = NetSystem::new(&net);
        let g = explore(&mut sys, 1_000);
        let mut dst = vec![0u64; g.stride];
        for i in 0..g.len() {
            let words = g.state_words(i);
            let m = marking_of(&net, words);
            for t in net.transitions() {
                if inc.is_enabled(t, words) {
                    inc.fire_into(t, words, &mut dst);
                    assert_eq!(marking_of(&net, &dst), net.fire(t, &m).unwrap());
                }
            }
        }
    }

    #[test]
    fn affected_sets_cover_every_status_flip() {
        // brute-force cross-check: firing t in any reachable marking only
        // changes the enabledness of transitions in affected(t)
        let net = ring(6);
        let inc = Incidence::from_net(&net);
        let mut sys = NetSystem::new(&net);
        let g = explore(&mut sys, 1_000);
        let mut dst = vec![0u64; g.stride];
        for i in 0..g.len() {
            let words = g.state_words(i);
            for t in net.transitions() {
                if !inc.is_enabled(t, words) {
                    continue;
                }
                inc.fire_into(t, words, &mut dst);
                for t2 in net.transitions() {
                    let flipped = inc.is_enabled(t2, words) != inc.is_enabled(t2, &dst);
                    if flipped {
                        assert!(
                            inc.affected(t).contains(&(t2.index() as u32)),
                            "{t2:?} flipped but is not in affected({t:?})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn dedup_table_grows_correctly() {
        // a ring large enough to force several table growths
        let net = ring(3000);
        let mut sys = NetSystem::new(&net);
        let g = explore(&mut sys, 10_000);
        assert_eq!(g.len(), 3000);
        assert!(!g.truncated);
    }

    #[test]
    fn zero_place_net_has_single_state() {
        let mut net = PetriNet::new();
        net.add_transition("noop");
        let mut sys = NetSystem::new(&net);
        let g = explore(&mut sys, 10);
        // `noop` has no arcs: it is enabled and loops on the only state
        assert_eq!(g.len(), 1);
        assert_eq!(g.successors(0), &[(0, 0)]);
        assert!(!g.truncated);
    }
}
