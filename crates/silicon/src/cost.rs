//! Area and energy estimation of DFS models — the cost side of
//! design-space exploration.
//!
//! Gate-level mapping (`crate::map`) is exact but only covers included
//! configurations, and simulating every candidate of a design sweep at gate
//! level is out of budget. This module estimates **area** (gate
//! equivalents) and **switching energy per item** directly from the DFS
//! structure plus the *exact* per-node activity that
//! `dfs_core::perf::analyse_with_activity` extracts from the phase
//! unfolding:
//!
//! * every node costs gate equivalents by kind; **logic blocks scale with
//!   drive strength** — a block sized to be twice as fast costs twice the
//!   area (and switched capacitance), the classic sizing trade-off that
//!   makes per-stage delay grids a real design axis rather than a free
//!   speedup;
//! * switching energy per item is `Σ activity(n) · E_switch(GE(n), V)` with
//!   the `C·V²` law of [`EnergyModel`]; an excluded stage whose logic never
//!   fires contributes nothing — the paper's motivation for run-time
//!   reconfiguration;
//! * leakage integrates the [`EnergyModel`] floor over the steady-state
//!   period, converting model time units to seconds via
//!   [`CostModel::time_unit_s`] and the alpha-power-law voltage slowdown of
//!   [`DelayModel`].

use crate::delay::DelayModel;
use crate::power::EnergyModel;
use dfs_core::{Dfs, Node, NodeKind};
use serde::{Deserialize, Serialize};

/// Gate-equivalent costs per DFS node kind.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GateCosts {
    /// A static pipeline register (NCL dual-rail latch + completion
    /// detector).
    pub register_ge: f64,
    /// A control-loop register (single-bit token, cheap).
    pub control_ge: f64,
    /// A push/pop steering register (register + guard gating).
    pub dynamic_ge: f64,
    /// A logic block with latency [`GateCosts::reference_delay`].
    pub logic_base_ge: f64,
    /// The latency the base logic cost is quoted at; a block of delay `d`
    /// costs `logic_base_ge · reference_delay / d` (clamped by
    /// [`GateCosts::max_drive`]) — faster blocks are larger.
    pub reference_delay: f64,
    /// Clamp on the sizing factor in both directions.
    pub max_drive: f64,
    /// Effective fraction of a node's gate equivalents that toggles per
    /// firing (dual-rail set + reset, averaged).
    pub switch_fraction: f64,
}

impl Default for GateCosts {
    fn default() -> Self {
        GateCosts {
            register_ge: 9.0,
            control_ge: 4.0,
            dynamic_ge: 12.0,
            logic_base_ge: 24.0,
            reference_delay: 1.0,
            max_drive: 8.0,
            switch_fraction: 0.5,
        }
    }
}

/// The combined cost model: per-kind gate counts, the `C·V²`/leakage
/// energy model and the voltage→delay law.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CostModel {
    /// Gate-equivalent areas.
    pub gates: GateCosts,
    /// Switching/leakage energy parameters.
    pub energy: EnergyModel,
    /// Supply-voltage delay scaling.
    pub delay: DelayModel,
    /// Seconds per model time unit at the nominal supply.
    pub time_unit_s: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            gates: GateCosts::default(),
            energy: EnergyModel::default(),
            delay: DelayModel::default(),
            time_unit_s: 5.0e-9,
        }
    }
}

impl CostModel {
    /// A digest of every parameter of the model, for caches that key
    /// results by cost-model identity (e.g. `rap-session`'s `cost` query).
    /// Two models with bit-equal fields always get equal keys; unequal
    /// models collide only with SplitMix64 probability (~2⁻⁶⁴), and a
    /// collision would merely serve a cached summary computed under the
    /// colliding parameters — never corrupt state.
    #[must_use]
    pub fn cache_key(&self) -> u64 {
        use dfs_core::hash::mix64 as mix;
        let fields = [
            self.gates.register_ge,
            self.gates.control_ge,
            self.gates.dynamic_ge,
            self.gates.logic_base_ge,
            self.gates.reference_delay,
            self.gates.max_drive,
            self.gates.switch_fraction,
            self.energy.v0,
            self.energy.e_switch0,
            self.energy.p_leak0,
            self.energy.vk,
            self.delay.v0,
            self.delay.vt,
            self.delay.alpha,
            self.delay.v_freeze,
            self.time_unit_s,
        ];
        let mut h = mix(0xc057);
        for v in fields {
            h = mix(h ^ mix(v.to_bits()));
        }
        h
    }

    /// Gate-equivalent area of one node.
    #[must_use]
    pub fn node_area(&self, node: &Node) -> f64 {
        let g = &self.gates;
        match node.kind {
            NodeKind::Register => g.register_ge,
            NodeKind::Control => g.control_ge,
            NodeKind::Push | NodeKind::Pop => g.dynamic_ge,
            NodeKind::Logic => {
                let drive = if node.delay > 0.0 {
                    (g.reference_delay / node.delay).clamp(1.0 / g.max_drive, g.max_drive)
                } else {
                    g.max_drive
                };
                g.logic_base_ge * drive
            }
        }
    }

    /// Total gate-equivalent area of a model. Excluded stages still count:
    /// silicon is committed at tape-out, not at configuration time.
    #[must_use]
    pub fn area(&self, dfs: &Dfs) -> f64 {
        dfs.nodes().map(|n| self.node_area(dfs.node(n))).sum()
    }

    /// Gate equivalents switched per item given the per-node activity
    /// (firings per item, as produced by
    /// `dfs_core::perf::analyse_with_activity`).
    ///
    /// # Panics
    ///
    /// Panics if `activity` is shorter than the node count.
    #[must_use]
    pub fn switched_ge_per_item(&self, dfs: &Dfs, activity: &[f64]) -> f64 {
        dfs.nodes()
            .map(|n| activity[n.index()] * self.node_area(dfs.node(n)) * self.gates.switch_fraction)
            .sum()
    }

    /// Switching energy per item at supply `v` (J).
    #[must_use]
    pub fn switching_energy_per_item(&self, dfs: &Dfs, activity: &[f64], v: f64) -> f64 {
        self.energy
            .switch_energy(self.switched_ge_per_item(dfs, activity), v)
    }

    /// The wall-clock duration of `period_units` model time units at
    /// supply `v` (s); infinite when the supply is below the freeze point.
    #[must_use]
    pub fn period_seconds(&self, period_units: f64, v: f64) -> f64 {
        period_units * self.time_unit_s * self.delay.factor(v)
    }

    /// The energy law at scalar level: switching of `switched_ge` gate
    /// equivalents plus leakage of `area` integrated over `period_s`
    /// seconds, at supply `v`. Infinite when `period_s` is (frozen
    /// supply). This is the **single** place the per-item energy formula
    /// lives — [`CostModel::energy_per_item`] and the DSE objective and
    /// pruning-bound computations in `rap-dse` all delegate here, so a
    /// model change cannot silently diverge between them.
    #[must_use]
    pub fn energy_from_parts(&self, switched_ge: f64, area: f64, period_s: f64, v: f64) -> f64 {
        if !period_s.is_finite() {
            return f64::INFINITY;
        }
        self.energy.switch_energy(switched_ge, v) + self.energy.leakage_power(area, v) * period_s
    }

    /// Total energy per item at supply `v`: switching plus leakage
    /// integrated over the (voltage-scaled) steady-state period. Infinite
    /// when frozen.
    #[must_use]
    pub fn energy_per_item(&self, dfs: &Dfs, activity: &[f64], period_units: f64, v: f64) -> f64 {
        self.energy_from_parts(
            self.switched_ge_per_item(dfs, activity),
            self.area(dfs),
            self.period_seconds(period_units, v),
            v,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfs_core::perf::analyse_with_activity;
    use dfs_core::pipelines::{build_pipeline, PipelineSpec};

    fn model(spec: &PipelineSpec) -> (Dfs, Vec<f64>, f64) {
        let dfs = build_pipeline(spec).unwrap().dfs;
        let d = analyse_with_activity(&dfs).unwrap();
        (dfs, d.activity_per_item, d.report.period)
    }

    #[test]
    fn faster_sizing_costs_area() {
        let m = CostModel::default();
        let slow = build_pipeline(&PipelineSpec::fully_static(3).with_f_delays(vec![2.0; 3]))
            .unwrap()
            .dfs;
        let fast = build_pipeline(&PipelineSpec::fully_static(3).with_f_delays(vec![0.5; 3]))
            .unwrap()
            .dfs;
        assert!(m.area(&fast) > m.area(&slow));
        // the clamp holds at absurd sizings
        let degenerate = build_pipeline(&PipelineSpec::fully_static(1).with_f_delays(vec![0.0]))
            .unwrap()
            .dfs;
        assert!(m.area(&degenerate).is_finite());
    }

    #[test]
    fn reconfigurable_fabric_costs_more_silicon_than_static() {
        let m = CostModel::default();
        let st = build_pipeline(&PipelineSpec::fully_static(4)).unwrap().dfs;
        let rc = build_pipeline(&PipelineSpec::reconfigurable_depth(4, 4).unwrap())
            .unwrap()
            .dfs;
        assert!(m.area(&rc) > m.area(&st), "control loops occupy silicon");
    }

    #[test]
    fn excluding_stages_saves_switching_energy() {
        let m = CostModel::default();
        let (full, act_full, _) = model(&PipelineSpec::reconfigurable_depth(4, 4).unwrap());
        let (shallow, act_shallow, _) = model(&PipelineSpec::reconfigurable_depth(4, 1).unwrap());
        // identical silicon…
        assert!((m.area(&full) - m.area(&shallow)).abs() < 1e-9);
        // …but the excluded stages stop switching
        let e_full = m.switching_energy_per_item(&full, &act_full, 1.2);
        let e_shallow = m.switching_energy_per_item(&shallow, &act_shallow, 1.2);
        assert!(
            e_shallow < 0.8 * e_full,
            "shallow {e_shallow} vs full {e_full}"
        );
    }

    #[test]
    fn energy_follows_v_squared_and_freeze() {
        let m = CostModel::default();
        let (dfs, act, period) = model(&PipelineSpec::fully_static(2));
        let e06 = m.switching_energy_per_item(&dfs, &act, 0.6);
        let e12 = m.switching_energy_per_item(&dfs, &act, 1.2);
        assert!((e12 / e06 - 4.0).abs() < 1e-9);
        // total energy includes a leakage·period term
        let total = m.energy_per_item(&dfs, &act, period, 1.2);
        assert!(total > e12);
        // frozen supply: infinite period, infinite energy
        assert!(m.energy_per_item(&dfs, &act, period, 0.3).is_infinite());
        assert!(m.period_seconds(period, 0.3).is_infinite());
    }
}
