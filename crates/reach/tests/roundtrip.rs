//! Property tests: the `Display` form of any predicate re-parses to an
//! equivalent predicate, and evaluation respects Boolean algebra.

use proptest::prelude::*;
use rap_petri::PetriNet;
use rap_reach::{Expr, Predicate};

/// Strategy for random predicates over a fixed set of place/transition
/// names.
fn arb_expr() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("true".to_string()),
        Just("false".to_string()),
        (0usize..4).prop_map(|i| format!("marked(\"p{i}\")")),
        (0usize..2).prop_map(|i| format!("enabled(\"t{i}\")")),
        Just("forall q in places(\"p*\"): marked(q)".to_string()),
        Just("exists q in places(\"p?\"): !marked(q)".to_string()),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} & {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} | {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} ^ {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} -> {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} <-> {b})")),
            inner.prop_map(|a| format!("!{a}")),
        ]
    })
}

fn demo_net() -> PetriNet {
    let mut net = PetriNet::new();
    let p0 = net.add_place("p0", true);
    net.add_place("p1", false);
    net.add_place("p2", true);
    net.add_place("p3", false);
    let t0 = net.add_transition("t0");
    net.read(t0, p0);
    let t1 = net.add_transition("t1");
    net.consume(t1, p0);
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// parse → Display → parse is a fixpoint, and both parses evaluate
    /// identically.
    #[test]
    fn display_reparses_equivalently(src in arb_expr()) {
        let net = demo_net();
        let p1 = Predicate::parse(&src).expect("generated source parses");
        let rendered = p1.to_string();
        let p2 = Predicate::parse(&rendered).expect("rendered form parses");
        // second render must be a fixpoint
        prop_assert_eq!(&rendered, &p2.to_string());
        let m = net.initial_marking();
        let v1 = p1.compile(&net).unwrap().eval(&net, &m);
        let v2 = p2.compile(&net).unwrap().eval(&net, &m);
        prop_assert_eq!(v1, v2);
    }

    /// De Morgan / implication identities hold under evaluation.
    #[test]
    fn boolean_identities(a in arb_expr(), b in arb_expr()) {
        let net = demo_net();
        let m = net.initial_marking();
        let eval = |src: &str| {
            Predicate::parse(src)
                .unwrap()
                .compile(&net)
                .unwrap()
                .eval(&net, &m)
        };
        prop_assert_eq!(
            eval(&format!("!({a} & {b})")),
            eval(&format!("(!{a} | !{b})"))
        );
        prop_assert_eq!(
            eval(&format!("({a} -> {b})")),
            eval(&format!("(!{a} | {b})"))
        );
        prop_assert_eq!(
            eval(&format!("({a} <-> {b})")),
            eval(&format!("!({a} ^ {b})"))
        );
    }
}

#[test]
fn ast_is_inspectable() {
    let p = Predicate::parse("marked(\"p0\") & true").unwrap();
    // the AST type is exported for tooling
    let rendered = p.to_string();
    assert!(rendered.contains("marked"));
    let _: fn(&Expr) = |_| {};
}
