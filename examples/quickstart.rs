//! Quickstart: model the paper's motivating example (Fig. 1b), compile it
//! into a session, and answer every question — verification, Petri-net
//! structure, reachability, throughput — as queries on the compiled model.
//!
//! Run with `cargo run --example quickstart`.

use rap::dfs::examples::conditional_dfs;
use rap::dfs::timed::{measure_throughput, ChoicePolicy};
use rap::dfs::verify::{verify, VerifyConfig};
use rap::Session;

fn main() -> Result<(), rap::Error> {
    // 1. Build the Fig. 1b model: a cheap predicate `cond` fills a control
    //    register that guards the expensive `comp` pipeline between a push
    //    (`filt`) and a pop (`out`). False tokens bypass comp entirely.
    let model = conditional_dfs(2, 4.0)?;
    println!(
        "model: {} nodes, {} arcs",
        model.dfs.node_count(),
        model.dfs.edge_count()
    );

    // 2. Compile once; every later query hits this compiled model's cache.
    let session = Session::new();
    let compiled = session.compile(&model.dfs);

    // 3. Formal verification through the Petri-net backend: deadlock
    //    freedom, no control mismatches, no hazards.
    let report = verify(&model.dfs, &VerifyConfig::default())?;
    println!(
        "verification: {} reachable states, clean = {}",
        report.states,
        report.is_clean()
    );

    // 4. The Fig. 3/4 translation, for the curious — a session query.
    let img = compiled.petri();
    println!(
        "petri-net image: {} places, {} transitions",
        img.net.place_count(),
        img.net.transition_count()
    );

    // 5. Both behaviours are reachable: bypass (comp untouched) and
    //    compute-through. The LTS is another query, cached per budget.
    let lts = compiled.lts(1_000_000)?;
    let bypass = lts.find_state(|s| {
        s.is_false_marked(model.output) && model.comp_regs.iter().all(|&r| !s.is_marked(r))
    });
    println!("bypass behaviour reachable: {}", bypass.is_some());

    // 6. The budgeted deadlock/1-safety screen reuses the cached Petri
    //    image from step 4 — no second translation.
    println!(
        "quick check (100k-state budget): clean = {}",
        compiled.quick_check(100_000).is_clean()
    );

    // 7. Throughput under different predicate hit-rates (policy-dependent
    //    simulation stays a free function: it is not a pure model query).
    for (label, policy) in [
        ("always compute", ChoicePolicy::AlwaysTrue),
        ("always bypass ", ChoicePolicy::AlwaysFalse),
        (
            "50/50         ",
            ChoicePolicy::Bernoulli {
                p_true: 0.5,
                seed: 7,
            },
        ),
    ] {
        let thr = measure_throughput(&model.dfs, model.output, 10, 100, policy)?;
        println!("throughput ({label}): {thr:.4} tokens/time-unit");
    }

    let stats = session.stats();
    println!(
        "session: {} model(s), {} queries, {} cache hit(s), {} Petri translation(s)",
        stats.models,
        stats.queries.queries(),
        stats.queries.cache_hits(),
        stats.queries.petri_translations
    );
    Ok(())
}
