//! Error type for DFS construction, analysis and verification.

use std::error::Error;
use std::fmt;

/// Errors reported by `dfs-core` APIs.
#[derive(Debug, Clone, PartialEq)]
pub enum DfsError {
    /// Two nodes were given the same name.
    DuplicateName(String),
    /// A cycle passing only through logic nodes (combinational feedback).
    CombinationalCycle {
        /// A node on the cycle.
        node: String,
    },
    /// A logic node was given an initial token.
    MarkedLogic {
        /// The offending node.
        node: String,
    },
    /// A delay annotation is negative or not finite.
    BadDelay {
        /// The offending node.
        node: String,
        /// The rejected value.
        delay: f64,
    },
    /// A named node does not exist.
    UnknownNode(String),
    /// A pipeline (or other generator) specification is degenerate — e.g.
    /// zero stages, a configured depth of 0 or beyond the stage count, or
    /// an empty/mis-sized per-stage delay vector.
    InvalidSpec {
        /// What is wrong with the specification.
        reason: String,
    },
    /// The state-space exploration behind a verification query exceeded its
    /// budget.
    StateBudgetExceeded {
        /// Configured maximum number of states.
        budget: usize,
    },
    /// Performance analysis needs at least one register with a token on
    /// every cycle; this cycle has none (its throughput is zero).
    TokenFreeCycle {
        /// Names of the registers on the offending cycle.
        cycle: Vec<String>,
    },
    /// A DSL parse error with line number and message.
    Dsl {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The timed simulation stalled before producing the requested output
    /// tokens (a deadlock under the chosen control values).
    SimulationStalled {
        /// Simulated time at which no event was pending.
        time: f64,
        /// Output tokens produced before the stall.
        produced: u64,
    },
    /// The timed simulator found no steady-state recurrence within its
    /// token budget (non-periodic scheduling policy, or budget too small).
    NoSteadyState {
        /// Watched tokens produced while searching.
        marks: u64,
    },
}

impl fmt::Display for DfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfsError::DuplicateName(n) => write!(f, "duplicate node name `{n}`"),
            DfsError::CombinationalCycle { node } => {
                write!(f, "combinational cycle through logic node `{node}`")
            }
            DfsError::MarkedLogic { node } => {
                write!(f, "logic node `{node}` cannot carry an initial token")
            }
            DfsError::BadDelay { node, delay } => {
                write!(f, "node `{node}` has invalid delay {delay}")
            }
            DfsError::UnknownNode(n) => write!(f, "unknown node `{n}`"),
            DfsError::InvalidSpec { reason } => write!(f, "invalid specification: {reason}"),
            DfsError::StateBudgetExceeded { budget } => {
                write!(f, "state space exceeds the budget of {budget} states")
            }
            DfsError::TokenFreeCycle { cycle } => {
                write!(f, "cycle without tokens: {}", cycle.join(" -> "))
            }
            DfsError::Dsl { line, message } => write!(f, "DSL error at line {line}: {message}"),
            DfsError::SimulationStalled { time, produced } => write!(
                f,
                "simulation stalled at t={time} after {produced} output tokens"
            ),
            DfsError::NoSteadyState { marks } => {
                write!(f, "no steady-state recurrence within {marks} output tokens")
            }
        }
    }
}

impl Error for DfsError {}

impl From<rap_petri::PetriError> for DfsError {
    fn from(e: rap_petri::PetriError) -> Self {
        match e {
            rap_petri::PetriError::StateBudgetExceeded { budget } => {
                DfsError::StateBudgetExceeded { budget }
            }
            other => DfsError::Dsl {
                line: 0,
                message: format!("internal Petri-net error: {other}"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DfsError::CombinationalCycle {
            node: "mixer".into(),
        };
        assert!(e.to_string().contains("mixer"));
        let e = DfsError::TokenFreeCycle {
            cycle: vec!["a".into(), "b".into()],
        };
        assert_eq!(e.to_string(), "cycle without tokens: a -> b");
    }
}
