//! PERF — old-vs-new state-space exploration across pipeline shapes.
//!
//! Times the retained naive explorers (the seed implementations) against
//! the shared incremental engine (`rap_petri::engine`) on both backends —
//! Petri-net reachability and the direct-semantics LTS — over
//! `reconfigurable_depth(n,k)` pipelines and wagged pipelines, printing a
//! table and persisting the measurements to `BENCH_state_space.json` at the
//! repository root (the recorded perf trajectory of the verification hot
//! path).
//!
//! Usage: `state_space_scaling [--quick] [--out PATH]`
//!
//! `--quick` restricts the sweep to sub-second shapes (the CI smoke
//! configuration); `--out` overrides the output path. The emitted JSON is
//! schema-validated before the process exits.

use rap_bench::cli::BenchCli;
use rap_bench::state_space::{render_json, run_sweep, validate};
use rap_bench::{banner, num, row};

fn main() {
    let cli = BenchCli::parse("state_space_scaling", Some("BENCH_state_space.json"));
    let quick = cli.quick;
    let out = cli.out_path();

    banner(if quick {
        "State-space scaling (quick sweep): naive explorer vs incremental engine"
    } else {
        "State-space scaling: naive explorer vs incremental engine"
    });
    let cases = run_sweep(quick);

    let widths = [27usize, 6, 9, 11, 11, 8];
    println!(
        "{}",
        row(
            &[
                "shape".into(),
                "backend".into(),
                "states".into(),
                "naive[ms]".into(),
                "engine[ms]".into(),
                "speedup".into(),
            ],
            &widths
        )
    );
    for c in &cases {
        println!(
            "{}",
            row(
                &[
                    c.name.clone(),
                    c.backend.into(),
                    format!("{}", c.states),
                    num(c.naive_ms, 2),
                    num(c.engine_ms, 2),
                    format!("{}x", num(c.speedup(), 2)),
                ],
                &widths
            )
        );
    }

    let json = render_json(&cases, quick);
    let summary = validate(&json).unwrap_or_else(|e| {
        eprintln!("emitted JSON failed its own schema validation: {e}");
        std::process::exit(1);
    });
    std::fs::write(&out, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", out.display());
        std::process::exit(1);
    });
    println!(
        "\n{} cases, min speedup {}x, geomean {}x — written to {}",
        summary.cases,
        num(summary.min_speedup, 2),
        num(summary.geomean_speedup, 2),
        out.display()
    );
}
