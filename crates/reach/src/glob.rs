//! Minimal glob matching for `places("…")` / `transitions("…")` patterns.

/// Matches `name` against `pattern`, where `*` matches any (possibly empty)
/// run of characters and `?` matches exactly one character. All other
/// characters match themselves.
///
/// ```
/// use rap_reach::glob_match;
/// assert!(glob_match("Mt_*_1", "Mt_ctrl_1"));
/// assert!(glob_match("C_l?", "C_l2"));
/// assert!(!glob_match("Mt_*", "Mf_ctrl"));
/// ```
#[must_use]
pub fn glob_match(pattern: &str, name: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let n: Vec<char> = name.chars().collect();
    // iterative wildcard matching with backtracking over the last `*`
    let (mut pi, mut ni) = (0usize, 0usize);
    let (mut star, mut star_ni) = (None::<usize>, 0usize);
    while ni < n.len() {
        if pi < p.len() && (p[pi] == '?' || p[pi] == n[ni]) {
            pi += 1;
            ni += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = Some(pi);
            star_ni = ni;
            pi += 1;
        } else if let Some(s) = star {
            pi = s + 1;
            star_ni += 1;
            ni = star_ni;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match() {
        assert!(glob_match("abc", "abc"));
        assert!(!glob_match("abc", "abd"));
        assert!(!glob_match("abc", "ab"));
    }

    #[test]
    fn star_matches_runs() {
        assert!(glob_match("*", ""));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("M_*_1", "M_out_1"));
        assert!(glob_match("a*b*c", "aXXbYYc"));
        assert!(!glob_match("a*b", "ac"));
    }

    #[test]
    fn question_matches_one() {
        assert!(glob_match("a?c", "abc"));
        assert!(!glob_match("a?c", "ac"));
        assert!(!glob_match("a?c", "abbc"));
    }

    #[test]
    fn multiple_stars_backtrack() {
        assert!(glob_match("*_1", "Mt_ctrl_1"));
        assert!(glob_match("**a**", "bbabb"));
        assert!(!glob_match("*z*", "abc"));
    }

    #[test]
    fn unicode_names() {
        assert!(glob_match("π*", "πr2"));
    }
}
