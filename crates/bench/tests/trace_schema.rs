//! Tracing acceptance suite, mirroring `dse_schema.rs` for the trace
//! exporter: a live-collector quick sweep must (a) leave the Pareto fronts
//! bit-identical to an untraced run (recording is observation-only),
//! (b) produce a `rap/trace/v1` document that passes the schema validator
//! with span coverage at or above the floor, and (c) cost nothing
//! measurable when the recorder is the no-op default.

use rap_bench::dse::{assert_fronts_identical, run_sweep, run_sweep_traced};
use rap_bench::trace::{render, validate, MIN_COVERAGE, SCHEMA};
use rap_obs::{Collector, Obs};
use std::sync::Arc;
use std::time::Instant;

#[test]
fn traced_sweep_is_schema_valid_and_front_identical() {
    let collector = Arc::new(Collector::new());
    let root = Obs::collecting(&collector);
    let traced = {
        // everything under one top span, exactly like the bins do, so the
        // snapshot's coverage reflects the whole run
        let main_span = root.span("bench.main");
        run_sweep_traced(true, None, &main_span.obs())
    };
    // snapshot before anything else runs: the collector's wall-clock keeps
    // ticking, so later work would dilute the coverage figure
    let snap = collector.snapshot();
    let untraced = run_sweep(true, None);

    // observation-only: same fronts bit-for-bit (labels, periods, order)
    assert_fronts_identical(&traced.outcome, &untraced.outcome);
    assert!(
        snap.coverage() >= MIN_COVERAGE,
        "span tree accounts for {:.1}% of wall-clock, floor is {:.0}%",
        snap.coverage() * 100.0,
        MIN_COVERAGE * 100.0
    );
    // the sweep's own taxonomy shows up in the tree
    for name in ["dse.sweep", "dse.eval"] {
        assert!(
            snap.spans.iter().any(|s| s.name == name),
            "span {name:?} missing from trace"
        );
    }
    assert!(snap.counters.get("dse.enumerated") > 0);

    let json = render(&snap);
    assert!(json.contains(SCHEMA));
    validate(&json).expect("emitted trace validates against rap/trace/v1");
}

#[test]
fn validator_enforces_the_coverage_floor() {
    // a collector whose root has children but whose spans account for
    // (essentially) none of the wall-clock must be rejected; the idle
    // stretch has to clear the absolute slack that exempts near-instant
    // runs, so sleep well past `COVERAGE_SLACK_NS`
    let collector = Arc::new(Collector::new());
    let obs = Obs::collecting(&collector);
    drop(obs.span("tiny"));
    std::thread::sleep(std::time::Duration::from_millis(25));
    let json = render(&collector.snapshot());
    let err = validate(&json).expect_err("under-covered trace must fail");
    assert!(err.contains("coverage"), "unexpected error: {err}");
}

/// The disabled path must be free: running the identical sweep through a
/// detached [`Obs`] (the no-op recorder) costs the same as not threading
/// observability at all, within scheduling noise. The per-call cost is
/// pinned to fractions of a nanosecond by `rap-obs`'s criterion bench;
/// here we bound the end-to-end effect with a generous multiplier so the
/// test stays robust on loaded CI machines.
#[test]
fn noop_recorder_adds_no_measurable_overhead() {
    let best = |f: &dyn Fn()| {
        (0..3)
            .map(|_| {
                let t0 = Instant::now();
                f();
                t0.elapsed()
            })
            .min()
            .expect("three timed runs")
    };
    // warm-up run keeps first-touch allocator/page effects out of both arms
    let _ = run_sweep(true, None);
    let plain = best(&|| {
        let _ = run_sweep(true, None);
    });
    let detached = best(&|| {
        let _ = run_sweep_traced(true, None, &Obs::none());
    });
    assert!(
        detached <= plain * 2 + std::time::Duration::from_millis(50),
        "no-op traced sweep took {detached:?} vs untraced {plain:?}"
    );
}
