//! Flat gate-level netlists.

use crate::gate::GateKind;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a net (wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NetId(u32);

impl NetId {
    /// Dense index of the net.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds a `NetId` from an index previously obtained via
    /// [`NetId::index`].
    #[must_use]
    pub fn from_index(i: usize) -> Self {
        NetId(u32::try_from(i).expect("net index exceeds u32"))
    }
}

/// Identifier of a cell (gate instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellId(u32);

impl CellId {
    /// Dense index of the cell.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A gate instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cell {
    /// Instance name (unique).
    pub name: String,
    /// The primitive type.
    pub kind: GateKind,
    /// Input nets in pin order.
    pub inputs: Vec<NetId>,
    /// The single output net.
    pub output: NetId,
}

/// A named wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Net {
    /// Net name (unique).
    pub name: String,
    /// Initial logic value at power-up (NCL circuits reset to all-NULL,
    /// i.e. `false`, except explicitly initialised token registers).
    pub initial: bool,
}

/// A flat netlist with named primary inputs and outputs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Netlist {
    pub(crate) nets: Vec<Net>,
    pub(crate) cells: Vec<Cell>,
    pub(crate) inputs: Vec<NetId>,
    pub(crate) outputs: Vec<NetId>,
    #[serde(skip)]
    net_names: HashMap<String, NetId>,
}

impl Netlist {
    /// Creates an empty netlist.
    #[must_use]
    pub fn new() -> Self {
        Netlist::default()
    }

    /// Adds a net with power-up value `initial`.
    ///
    /// # Panics
    ///
    /// Panics on duplicate net names (a generator bug).
    pub fn add_net(&mut self, name: impl Into<String>, initial: bool) -> NetId {
        let name = name.into();
        let id = NetId::from_index(self.nets.len());
        assert!(
            self.net_names.insert(name.clone(), id).is_none(),
            "duplicate net `{name}`"
        );
        self.nets.push(Net { name, initial });
        id
    }

    /// Adds a gate instance driving `output`.
    ///
    /// # Panics
    ///
    /// Panics if `output` is already driven by another cell.
    pub fn add_cell(
        &mut self,
        name: impl Into<String>,
        kind: GateKind,
        inputs: Vec<NetId>,
        output: NetId,
    ) -> CellId {
        assert!(
            !self.cells.iter().any(|c| c.output == output),
            "net `{}` already driven",
            self.nets[output.index()].name
        );
        let id = CellId(u32::try_from(self.cells.len()).expect("too many cells"));
        self.cells.push(Cell {
            name: name.into(),
            kind,
            inputs,
            output,
        });
        id
    }

    /// Declares `net` a primary input.
    pub fn mark_input(&mut self, net: NetId) {
        if !self.inputs.contains(&net) {
            self.inputs.push(net);
        }
    }

    /// Declares `net` a primary output.
    pub fn mark_output(&mut self, net: NetId) {
        if !self.outputs.contains(&net) {
            self.outputs.push(net);
        }
    }

    /// Number of nets.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Number of cells.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// The net record.
    #[must_use]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// The cell record.
    #[must_use]
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// All cells.
    #[must_use]
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Primary inputs.
    #[must_use]
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary outputs.
    #[must_use]
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Looks a net up by name.
    #[must_use]
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.net_names.get(name).copied()
    }

    /// Total gate-equivalent area (sum of cell complexities) — the metric
    /// behind the "5% control-logic overhead" comparison of §IV.
    #[must_use]
    pub fn area(&self) -> f64 {
        self.cells
            .iter()
            .map(|c| c.kind.complexity(c.inputs.len()))
            .sum()
    }

    /// Rebuilds the name lookup (after deserialisation).
    pub fn rebuild_name_index(&mut self) {
        self.net_names = self
            .nets
            .iter()
            .enumerate()
            .map(|(i, n)| (n.name.clone(), NetId::from_index(i)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a", false);
        let b = nl.add_net("b", false);
        let y = nl.add_net("y", false);
        nl.mark_input(a);
        nl.mark_input(b);
        nl.mark_output(y);
        nl.add_cell("u1", GateKind::C, vec![a, b], y);
        assert_eq!(nl.net_count(), 3);
        assert_eq!(nl.cell_count(), 1);
        assert_eq!(nl.net_by_name("y"), Some(y));
        assert!(nl.area() > 0.0);
        assert_eq!(nl.inputs(), &[a, b]);
        assert_eq!(nl.outputs(), &[y]);
    }

    #[test]
    #[should_panic(expected = "already driven")]
    fn double_driver_panics() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a", false);
        let y = nl.add_net("y", false);
        nl.add_cell("u1", GateKind::Buf, vec![a], y);
        nl.add_cell("u2", GateKind::Buf, vec![a], y);
    }

    #[test]
    #[should_panic(expected = "duplicate net")]
    fn duplicate_net_panics() {
        let mut nl = Netlist::new();
        nl.add_net("x", false);
        nl.add_net("x", false);
    }
}
