//! Ordinal pattern encoding with the chip model: normal-mode streaming,
//! window-size reconfiguration, and the random-mode checksum flow used for
//! testbench-free measurements.
//!
//! Run with `cargo run --example ope_encoder`.

use rap::ope::chip::{behavioural_checksum, Chip, ChipConfig, Mode};
use rap::ope::reference::windows_ranked;

fn main() {
    // the §III-A example stream
    let stream: Vec<u16> = vec![3, 1, 4, 1, 5, 9, 2, 6];
    println!("stream: {stream:?}\n");

    // full rank lists (what OPE computes conceptually)
    println!("rank lists for window size 6:");
    for (i, ranks) in windows_ranked(&stream, 6).enumerate() {
        println!("  window {}: {ranks:?}", i + 1);
    }

    // "Users of OPE engines often try multiple window sizes N (via
    // reconfiguration) to discover hidden patterns" — §III-A
    println!("\nnewest-item ranks at different window sizes (reconfiguration):");
    for depth in [3usize, 4, 6] {
        let mut chip = Chip::new(ChipConfig::Reconfigurable { depth });
        let out = chip.run_normal(&stream);
        println!("  N = {depth}: {out:?}");
    }

    // random mode: LFSR -> pipeline -> accumulator, one checksum out
    let seed = 0xD00D_FEED;
    let count = 1_000_000;
    let mut chip = Chip::new(ChipConfig::Reconfigurable { depth: 9 });
    let checksum = chip.run(Mode::Random { seed, count }, &[]);
    let golden = behavioural_checksum(9, seed, count);
    println!("\nrandom mode (seed 0x{seed:08X}, {count} items, N=9):");
    println!("  chip accumulator : 0x{checksum:016X}");
    println!("  behavioural model: 0x{golden:016X}");
    assert_eq!(checksum, golden, "validation flow of §IV");
    println!("  validated ✓");
}
