//! The stage-parallel OPE engine matching the DFS pipeline structure.
//!
//! One stage per window position (Fig. 6a/7): stage `i` holds one window
//! item in its `local` register. Each iteration the new item is broadcast
//! on the global channel; every stage *concurrently* compares its held item
//! against the new one (`g`), the per-stage contributions are aggregated
//! into the newest item's rank, and the held items shift one stage down the
//! local chain (`f`), retiring the oldest. The per-iteration output —
//! the rank of the newest item — is exactly what the chip's `out` port
//! produces and what the accumulator checksums.
//!
//! The reconfigurable engine uses only the first `depth` stages, matching
//! the chip's 3..18 depth settings ("the pipeline depth corresponds to the
//! OPE window size", §IV).

use crate::reference::ReferenceEncoder;

/// A software model of the N-stage OPE pipeline.
#[derive(Debug, Clone)]
pub struct PipelinedOpe {
    /// Held items, stage 0 = oldest. `None` until the stage has received
    /// an item (pipeline warm-up).
    stages: Vec<Option<u16>>,
    depth: usize,
}

impl PipelinedOpe {
    /// Creates an engine with `depth` active stages (= window size).
    ///
    /// # Panics
    ///
    /// Panics when `depth == 0`.
    #[must_use]
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "depth must be positive");
        PipelinedOpe {
            stages: vec![None; depth],
            depth,
        }
    }

    /// The configured depth (window size).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Feeds one item. Returns the rank of the new item within the current
    /// window once all stages hold items.
    pub fn push(&mut self, x: u16) -> Option<u16> {
        // g: concurrent per-stage comparison against the broadcast item.
        // Stage 0 holds the *retiring* item and does not participate; each
        // surviving stage contributes 1 when its held item is smaller or
        // equal (held items all precede the newest, so ties count below).
        let warm = self.stages[1..].iter().all(Option::is_some);
        let contributions: u16 = self.stages[1..]
            .iter()
            .flatten()
            .map(|&w| u16::from(w <= x))
            .sum();
        // f: shift the local chain (retire stage 0, append the new item)
        self.stages.rotate_left(1);
        *self.stages.last_mut().expect("depth > 0") = Some(x);
        warm.then_some(contributions + 1)
    }

    /// Runs a whole stream, collecting the warm outputs.
    pub fn encode_stream(&mut self, stream: &[u16]) -> Vec<u16> {
        stream.iter().filter_map(|&x| self.push(x)).collect()
    }
}

/// Convenience: reference outputs for the same stream and depth (used by
/// the chip validation flow).
#[must_use]
pub fn reference_stream(depth: usize, stream: &[u16]) -> Vec<u16> {
    let mut r = ReferenceEncoder::new(depth);
    stream.iter().filter_map(|&x| r.push(x)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_on_paper_stream() {
        let stream = [3u16, 1, 4, 1, 5, 9, 2, 6];
        let mut pipe = PipelinedOpe::new(6);
        let got = pipe.encode_stream(&stream);
        let expect = reference_stream(6, &stream);
        assert_eq!(got, expect);
        // the newest-item ranks of the three windows in the paper's table
        assert_eq!(got, vec![6, 3, 5]);
    }

    #[test]
    fn matches_reference_across_depths_and_ties() {
        let mut seed = 0xDEAD_BEEFu32;
        let mut stream = Vec::new();
        for _ in 0..300 {
            seed = seed.wrapping_mul(22_695_477).wrapping_add(1);
            stream.push((seed >> 20) as u16 % 16);
        }
        for depth in [1usize, 2, 3, 6, 17, 18] {
            let mut pipe = PipelinedOpe::new(depth);
            assert_eq!(
                pipe.encode_stream(&stream),
                reference_stream(depth, &stream),
                "depth {depth}"
            );
        }
    }

    #[test]
    fn warmup_produces_no_output() {
        let mut pipe = PipelinedOpe::new(4);
        assert_eq!(pipe.push(1), None);
        assert_eq!(pipe.push(2), None);
        assert_eq!(pipe.push(3), None);
        assert!(pipe.push(4).is_some());
        assert_eq!(pipe.depth(), 4);
    }
}
