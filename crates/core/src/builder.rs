//! Fluent construction of DFS graphs.
//!
//! ```
//! use dfs_core::DfsBuilder;
//!
//! let mut b = DfsBuilder::new();
//! let input = b.register("in").marked().build();
//! let f = b.logic("f").delay(2.0).build();
//! let out = b.register("out").build();
//! b.connect(input, f);
//! b.connect(f, out);
//! let dfs = b.finish()?;
//! assert_eq!(dfs.node_count(), 3);
//! # Ok::<(), dfs_core::DfsError>(())
//! ```

use crate::graph::{Dfs, EdgeRef, GuardMode};
use crate::node::{InitialMarking, Node, NodeId, NodeKind, TokenValue};
use crate::DfsError;
use std::collections::HashMap;

/// Incremental builder for [`Dfs`] graphs.
#[derive(Debug, Default)]
pub struct DfsBuilder {
    nodes: Vec<Node>,
    guard_modes: Vec<GuardMode>,
    edges: Vec<(NodeId, NodeId, bool)>,
    names: HashMap<String, NodeId>,
    duplicate: Option<String>,
}

/// Per-node configuration returned by the node-creation methods of
/// [`DfsBuilder`]; call [`NodeBuilder::build`] to obtain the [`NodeId`].
#[derive(Debug)]
pub struct NodeBuilder<'a> {
    owner: &'a mut DfsBuilder,
    id: NodeId,
}

impl<'a> NodeBuilder<'a> {
    /// Places a plain token on the node initially.
    #[must_use]
    pub fn marked(self) -> Self {
        self.owner.nodes[self.id.index()].initial = InitialMarking::Marked;
        self
    }

    /// Places a valued token on the node initially (dynamic registers).
    #[must_use]
    pub fn marked_with(self, value: TokenValue) -> Self {
        self.owner.nodes[self.id.index()].initial = InitialMarking::MarkedWith(value);
        self
    }

    /// Sets the node latency (default 1.0).
    #[must_use]
    pub fn delay(self, delay: f64) -> Self {
        self.owner.nodes[self.id.index()].delay = delay;
        self
    }

    /// Sets how multiple guards combine (default: unanimous).
    #[must_use]
    pub fn guard_mode(self, mode: GuardMode) -> Self {
        self.owner.guard_modes[self.id.index()] = mode;
        self
    }

    /// Finishes this node, returning its id.
    #[must_use]
    pub fn build(self) -> NodeId {
        self.id
    }
}

impl DfsBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        DfsBuilder::default()
    }

    fn add(&mut self, name: impl Into<String>, kind: NodeKind) -> NodeBuilder<'_> {
        let name = name.into();
        let id = NodeId::from_index(self.nodes.len());
        if self.names.insert(name.clone(), id).is_some() && self.duplicate.is_none() {
            self.duplicate = Some(name.clone());
        }
        self.nodes.push(Node {
            name,
            kind,
            initial: InitialMarking::Empty,
            delay: 1.0,
        });
        self.guard_modes.push(GuardMode::default());
        NodeBuilder { owner: self, id }
    }

    /// Adds a combinational logic node.
    pub fn logic(&mut self, name: impl Into<String>) -> NodeBuilder<'_> {
        self.add(name, NodeKind::Logic)
    }

    /// Adds a static register node.
    pub fn register(&mut self, name: impl Into<String>) -> NodeBuilder<'_> {
        self.add(name, NodeKind::Register)
    }

    /// Adds a control register node.
    pub fn control(&mut self, name: impl Into<String>) -> NodeBuilder<'_> {
        self.add(name, NodeKind::Control)
    }

    /// Adds a push register node.
    pub fn push(&mut self, name: impl Into<String>) -> NodeBuilder<'_> {
        self.add(name, NodeKind::Push)
    }

    /// Adds a pop register node.
    pub fn pop(&mut self, name: impl Into<String>) -> NodeBuilder<'_> {
        self.add(name, NodeKind::Pop)
    }

    /// Connects `from → to`.
    pub fn connect(&mut self, from: NodeId, to: NodeId) {
        self.edges.push((from, to, false));
    }

    /// Connects `from → to` with an inverting arc (control-value inversion;
    /// part of the Boolean-algebra extension).
    pub fn connect_inverted(&mut self, from: NodeId, to: NodeId) {
        self.edges.push((from, to, true));
    }

    /// Connects a chain of nodes in sequence.
    pub fn connect_chain(&mut self, nodes: &[NodeId]) {
        for w in nodes.windows(2) {
            self.connect(w[0], w[1]);
        }
    }

    /// Validates and finalises the graph.
    ///
    /// # Errors
    ///
    /// Propagates [`DfsError::DuplicateName`] and the structural checks of
    /// [`Dfs::validate`].
    pub fn finish(self) -> Result<Dfs, DfsError> {
        if let Some(name) = self.duplicate {
            return Err(DfsError::DuplicateName(name));
        }
        let count = self.nodes.len();
        let mut preds: Vec<Vec<EdgeRef>> = vec![Vec::new(); count];
        let mut succs: Vec<Vec<EdgeRef>> = vec![Vec::new(); count];
        for (from, to, inverted) in self.edges {
            let fwd = EdgeRef { node: to, inverted };
            let bwd = EdgeRef {
                node: from,
                inverted,
            };
            if !succs[from.index()].contains(&fwd) {
                succs[from.index()].push(fwd);
                preds[to.index()].push(bwd);
            }
        }
        for list in preds.iter_mut().chain(succs.iter_mut()) {
            list.sort_by_key(|e| (e.node, e.inverted));
        }
        let mut dfs = Dfs {
            nodes: self.nodes,
            preds,
            succs,
            guard_modes: self.guard_modes,
            r_preset: Vec::new(),
            r_postset: Vec::new(),
            guards: Vec::new(),
            name_index: self.names,
        };
        dfs.validate()?;
        dfs.compute_derived();
        Ok(dfs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_names_are_reported() {
        let mut b = DfsBuilder::new();
        let _ = b.register("x").build();
        let _ = b.logic("x").build();
        assert_eq!(b.finish().unwrap_err(), DfsError::DuplicateName("x".into()));
    }

    #[test]
    fn chain_connects_pairwise() {
        let mut b = DfsBuilder::new();
        let a = b.register("a").marked().build();
        let l = b.logic("l").build();
        let c = b.register("c").build();
        b.connect_chain(&[a, l, c]);
        let dfs = b.finish().unwrap();
        assert_eq!(dfs.edge_count(), 2);
        let l = dfs.node_by_name("l").unwrap();
        assert_eq!(dfs.preds(l).len(), 1);
        assert_eq!(dfs.succs(l).len(), 1);
    }

    #[test]
    fn parallel_duplicate_edges_collapse() {
        let mut b = DfsBuilder::new();
        let a = b.register("a").build();
        let c = b.register("c").build();
        b.connect(a, c);
        b.connect(a, c);
        let dfs = b.finish().unwrap();
        assert_eq!(dfs.edge_count(), 1);
    }

    #[test]
    fn delay_and_guard_mode_are_stored() {
        use crate::graph::GuardMode;
        let mut b = DfsBuilder::new();
        let p = b.push("p").delay(3.5).guard_mode(GuardMode::And).build();
        let dfs = b.finish().unwrap();
        assert_eq!(dfs.node(p).delay, 3.5);
        assert_eq!(dfs.guard_mode(p), GuardMode::And);
    }

    #[test]
    fn bad_delay_is_rejected() {
        let mut b = DfsBuilder::new();
        let _ = b.register("r").delay(-1.0).build();
        assert!(matches!(b.finish(), Err(DfsError::BadDelay { .. })));
    }
}
