//! Smoke tests: every `examples/*.rs` scenario must build, run to
//! completion and exit 0.

use std::process::Command;

fn run_example(name: &str) {
    let out = Command::new(env!("CARGO"))
        .args(["run", "-q", "--example", name])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo run --example {name}: {e}"));
    assert!(
        out.status.success(),
        "example {name} exited with {:?}\nstderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn smoke_quickstart() {
    run_example("quickstart");
}

#[test]
fn smoke_ope_encoder() {
    run_example("ope_encoder");
}

#[test]
fn smoke_reconfigurable_pipeline() {
    run_example("reconfigurable_pipeline");
}

#[test]
fn smoke_voltage_resilience() {
    run_example("voltage_resilience");
}
