//! Formal verification of DFS models (§II-B, §II-D, §III-A).
//!
//! A model is mechanically translated into its Petri net (Fig. 3) and the
//! standard properties are decided by the `rap-petri` explorer — standing in
//! for the MPSAT backend:
//!
//! * **deadlock** — a reachable marking with no enabled transition;
//! * **control mismatch** — some node sees both a True and a False guard
//!   token simultaneously (the "disabled node" condition of §II-B),
//!   expressed as a generated Reach predicate over the `Mt_*`/`Mf_*` places;
//! * **non-persistence** — an enabled event disabled by another firing
//!   (a hazard at the dataflow level; intended free choices of control
//!   registers are exempted).
//!
//! Counterexamples are mapped back to DFS event labels.

use crate::graph::{Dfs, GuardMode};
use crate::to_petri::{to_petri, PetriImage};
use crate::DfsError;
use rap_petri::analysis as pn_analysis;
use rap_petri::reachability::{explore, ExploreConfig, StateSpace};
use rap_reach::Predicate;

/// Verification limits.
#[derive(Debug, Clone, Copy)]
pub struct VerifyConfig {
    /// State budget for the exhaustive exploration.
    pub max_states: usize,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            max_states: 2_000_000,
        }
    }
}

/// A verification counterexample: the event-label trace from the initial
/// state to the offending state.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Event labels (`Mt_ctrl+`, `C_f-`, …) in firing order.
    pub trace: Vec<String>,
    /// Human-readable description of the violated property.
    pub reason: String,
}

/// Combined verification report.
#[derive(Debug, Clone)]
pub struct VerificationReport {
    /// Number of reachable states of the PN image.
    pub states: usize,
    /// Deadlock counterexamples (empty = deadlock-free).
    pub deadlocks: Vec<Counterexample>,
    /// Control-mismatch counterexample, if reachable.
    pub control_mismatch: Option<Counterexample>,
    /// Non-persistence (hazard) counterexamples.
    pub hazards: Vec<Counterexample>,
}

impl VerificationReport {
    /// Did every check pass?
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.deadlocks.is_empty() && self.control_mismatch.is_none() && self.hazards.is_empty()
    }
}

/// Runs all checks on `dfs`.
///
/// # Errors
///
/// [`DfsError::StateBudgetExceeded`] when the reachable space exceeds
/// `config.max_states`.
pub fn verify(dfs: &Dfs, config: &VerifyConfig) -> Result<VerificationReport, DfsError> {
    let img = to_petri(dfs);
    let space = explore(
        &img.net,
        ExploreConfig {
            max_states: config.max_states,
            ..ExploreConfig::default()
        },
    )?;
    Ok(VerificationReport {
        states: space.len(),
        deadlocks: deadlocks(&img, &space),
        control_mismatch: control_mismatch(dfs, &img, &space),
        hazards: hazards(dfs, &img, &space),
    })
}

/// Structurally certifies the 1-safety of the Fig. 3 translation of `dfs`:
/// every `x_0`/`x_1` pair must be a P-invariant with token sum 1, which
/// holds over *all* reachable markings without exploring any — the
/// structural counterpart of the exhaustive
/// [`rap_petri::analysis::check_complementary_pairs`].
#[must_use]
pub fn certify_translation_safety(dfs: &Dfs) -> bool {
    let img = to_petri(dfs);
    rap_petri::invariants::certify_complementary_pairs(&img.net, &img.complementary_pairs())
        .is_none()
}

/// Deadlock check only (cheaper than the full report on large models).
///
/// # Errors
///
/// [`DfsError::StateBudgetExceeded`] on budget overrun.
pub fn check_deadlock(dfs: &Dfs, config: &VerifyConfig) -> Result<Vec<Counterexample>, DfsError> {
    let img = to_petri(dfs);
    let space = explore(
        &img.net,
        ExploreConfig {
            max_states: config.max_states,
            ..ExploreConfig::default()
        },
    )?;
    Ok(deadlocks(&img, &space))
}

fn trace_labels(img: &PetriImage, trace: &[rap_petri::TransitionId]) -> Vec<String> {
    trace.iter().map(|&t| img.label(t).to_string()).collect()
}

fn deadlocks(img: &PetriImage, space: &StateSpace) -> Vec<Counterexample> {
    pn_analysis::find_deadlocks(space)
        .into_iter()
        .map(|d| Counterexample {
            trace: trace_labels(img, &d.trace),
            reason: "deadlock: no event enabled".to_string(),
        })
        .collect()
}

/// Builds the Reach predicate "some node has marked guards with both
/// values" and searches for a witness.
fn control_mismatch(dfs: &Dfs, img: &PetriImage, space: &StateSpace) -> Option<Counterexample> {
    // Generate the disjunction over all guard pairs of all nodes. Inverted
    // guards contribute their flipped value places.
    let mut clauses = Vec::new();
    for n in dfs.nodes() {
        if dfs.guard_mode(n) != GuardMode::Unanimous {
            continue;
        }
        let guards = dfs.guards(n);
        for (i, a) in guards.iter().enumerate() {
            for b in guards.iter().skip(i + 1) {
                if a.node == b.node && a.inverted != b.inverted {
                    // same register read with both parities: any marking of
                    // it is a mismatch
                    clauses.push(format!("marked(\"M_{}_1\")", dfs.node(a.node).name));
                    continue;
                }
                let a_true = place_name(dfs, a, true);
                let a_false = place_name(dfs, a, false);
                let b_true = place_name(dfs, b, true);
                let b_false = place_name(dfs, b, false);
                clauses.push(format!(
                    "(marked(\"{a_true}\") & marked(\"{b_false}\")) | (marked(\"{a_false}\") & marked(\"{b_true}\"))"
                ));
            }
        }
    }
    if clauses.is_empty() {
        return None;
    }
    let source = clauses.join(" | ");
    let predicate = Predicate::parse(&source).expect("generated predicate parses");
    let compiled = predicate
        .compile(&img.net)
        .expect("generated names resolve");
    rap_reach::find_witness(&img.net, space, &compiled).map(|w| Counterexample {
        trace: trace_labels(img, &w.trace),
        reason: "control mismatch: True and False guard tokens visible simultaneously".to_string(),
    })
}

/// The value-place name asserting guard `g` effectively reads `want`.
fn place_name(dfs: &Dfs, g: &crate::graph::RRef, want: bool) -> String {
    let eff = want ^ g.inverted;
    let prefix = if eff { "Mt" } else { "Mf" };
    format!("{prefix}_{}_1", dfs.node(g.node).name)
}

fn hazards(dfs: &Dfs, img: &PetriImage, space: &StateSpace) -> Vec<Counterexample> {
    // Intended choices: the Mt_x+/Mf_x+ pair of the same dynamic register.
    let is_choice_pair = |a: &str, b: &str| -> bool {
        a.ends_with('+')
            && b.ends_with('+')
            && (a.strip_prefix("Mt_") == b.strip_prefix("Mf_")
                || a.strip_prefix("Mf_") == b.strip_prefix("Mt_"))
    };
    let _ = dfs;
    pn_analysis::find_persistence_violations(&img.net, space, |en, dis| {
        is_choice_pair(img.label(en), img.label(dis))
    })
    .into_iter()
    .map(|v| Counterexample {
        trace: trace_labels(img, &v.trace),
        reason: format!(
            "non-persistence: {} disabled by {}",
            img.label(v.enabled),
            img.label(v.disabler)
        ),
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfsBuilder;
    use crate::node::TokenValue;

    fn verify_default(dfs: &Dfs) -> VerificationReport {
        verify(dfs, &VerifyConfig::default()).unwrap()
    }

    #[test]
    fn live_ring_is_clean() {
        let mut b = DfsBuilder::new();
        let r0 = b.register("r0").marked().build();
        let r1 = b.register("r1").build();
        let r2 = b.register("r2").build();
        b.connect(r0, r1);
        b.connect(r1, r2);
        b.connect(r2, r0);
        let report = verify_default(&b.finish().unwrap());
        assert!(report.is_clean(), "{report:?}");
        assert!(report.states > 1);
    }

    #[test]
    fn two_ring_deadlock_found_with_trace() {
        let mut b = DfsBuilder::new();
        let r0 = b.register("r0").marked().build();
        let r1 = b.register("r1").build();
        b.connect(r0, r1);
        b.connect(r1, r0);
        let report = verify_default(&b.finish().unwrap());
        assert!(!report.deadlocks.is_empty());
        // the initial state itself is dead: r1 cannot accept because its
        // R-postset (r0) is marked, and r0 cannot release because r1 is not
        assert!(report.deadlocks[0].trace.is_empty());
    }

    #[test]
    fn mismatched_guard_init_is_detected() {
        // the §III-A bug class: a stage whose two control loops were
        // initialised inconsistently
        let mut b = DfsBuilder::new();
        let i = b.register("in").marked().build();
        let c1 = b.control("c1").marked_with(TokenValue::True).build();
        let c2 = b.control("c2").marked_with(TokenValue::False).build();
        let p = b.push("p").build();
        let o = b.register("out").build();
        b.connect(i, p);
        b.connect(c1, p);
        b.connect(c2, p);
        b.connect(p, o);
        let report = verify_default(&b.finish().unwrap());
        let cm = report.control_mismatch.expect("mismatch must be found");
        assert!(cm.trace.is_empty(), "mismatch holds initially");
        assert!(!report.deadlocks.is_empty(), "and the model deadlocks");
    }

    #[test]
    fn translations_certify_structurally() {
        // structural 1-safety holds even for the full-scale 18-stage model
        // that is far too big to explore
        let p = crate::pipelines::build_pipeline(
            &crate::pipelines::PipelineSpec::reconfigurable_depth(18, 9).unwrap(),
        )
        .unwrap();
        assert!(certify_translation_safety(&p.dfs));
    }

    #[test]
    fn free_choice_is_not_a_hazard() {
        // control fed by a data predicate: Mt+/Mf+ compete but that is the
        // intended non-determinism, not a hazard
        let mut b = DfsBuilder::new();
        let i = b.register("in").marked().build();
        let f = b.logic("cond").build();
        let c = b.control("ctrl").build();
        let r = b.register("ret").build();
        b.connect(i, f);
        b.connect(f, c);
        b.connect(c, r);
        b.connect(r, i);
        let report = verify_default(&b.finish().unwrap());
        assert!(report.hazards.is_empty(), "{:?}", report.hazards);
        assert!(report.deadlocks.is_empty());
    }
}
