//! Index newtypes for places and transitions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a place within a [`crate::PetriNet`].
///
/// `PlaceId`s are dense indices assigned in insertion order; they are only
/// meaningful for the net that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PlaceId(pub(crate) u32);

/// Identifier of a transition within a [`crate::PetriNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TransitionId(pub(crate) u32);

impl PlaceId {
    /// The dense index of this place.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `PlaceId` from a raw index.
    ///
    /// Intended for tables that were themselves keyed by [`PlaceId::index`];
    /// passing an index not issued by the same net yields an id that panics
    /// or returns arbitrary places when used.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        PlaceId(u32::try_from(index).expect("place index exceeds u32"))
    }
}

impl TransitionId {
    /// The dense index of this transition.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `TransitionId` from a raw index (see [`PlaceId::from_index`]).
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        TransitionId(u32::try_from(index).expect("transition index exceeds u32"))
    }
}

impl fmt::Display for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for TransitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_indices() {
        let p = PlaceId::from_index(7);
        assert_eq!(p.index(), 7);
        let t = TransitionId::from_index(9);
        assert_eq!(t.index(), 9);
    }

    #[test]
    fn display_forms() {
        assert_eq!(PlaceId::from_index(3).to_string(), "p3");
        assert_eq!(TransitionId::from_index(4).to_string(), "t4");
    }
}
