//! Fault-matrix differential suite: a persistent session under injected
//! storage faults returns **bit-identical** answers to a fresh memory-only
//! session — graceful degradation may change what a query *costs*, never
//! what it *returns*.
//!
//! Each scenario scripts a fault schedule on [`FaultyStorage`] (torn
//! writes, ENOSPC, EIO reads, crash-before/after-rename, stale locks),
//! runs a cold store-backed sweep and a restart over the surviving
//! directory, and compares every artifact — all `f64`s by bit pattern —
//! against the in-memory reference. A scenario whose faults never fire is
//! a test bug, so every script also asserts its expected fire count.

use rap::dfs::{Dfs, DfsBuilder, NodeId};
use rap::petri::analysis::QuickCheck;
use rap::session::store::{DiskStorage, FaultyStorage, Store};
use rap::session::CostModel;
use rap::Session;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "rap-differential-{}-{}-{}",
        std::process::id(),
        tag,
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

struct TempDir(std::path::PathBuf);

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A marked ring with a logic stage — all four persisted queries succeed.
fn model() -> (Dfs, NodeId) {
    let mut b = DfsBuilder::new();
    let a = b.register("a").marked().build();
    let f = b.logic("f").build();
    let c = b.register("b").build();
    let d = b.register("c").build();
    b.connect(a, f);
    b.connect(f, c);
    b.connect(c, d);
    b.connect(d, a);
    (b.finish().unwrap(), a)
}

const BUDGET: usize = 10_000;
const MARKS: u64 = 64;

#[derive(PartialEq, Debug)]
struct Answers {
    period_bits: u64,
    activity_bits: Vec<u64>,
    check: QuickCheck,
    area_bits: u64,
    switched_bits: u64,
    steady_bits: u64,
}

fn query_all(session: &Session, dfs: &Dfs, out: NodeId) -> Answers {
    let m = session.compile(dfs);
    let detail = m.perf_detail().unwrap();
    let cost = m.cost(&CostModel::default()).unwrap();
    let steady = m.steady_period(out, MARKS).unwrap();
    Answers {
        period_bits: detail.report.period.to_bits(),
        activity_bits: detail
            .activity_per_item
            .iter()
            .map(|a| a.to_bits())
            .collect(),
        check: (*m.quick_check(BUDGET)).clone(),
        area_bits: cost.area.to_bits(),
        switched_bits: cost.switched_ge_per_item.to_bits(),
        steady_bits: steady.period.to_bits(),
    }
}

/// One entry of the fault matrix: faults armed before the cold run and
/// before the restart, plus the exact number of fires both runs must
/// produce together.
struct Scenario {
    name: &'static str,
    arm_cold: fn(&FaultyStorage),
    arm_restart: fn(&FaultyStorage),
    expected_fires: u64,
}

fn no_faults(_: &FaultyStorage) {}

const MATRIX: &[Scenario] = &[
    Scenario {
        // the first commit silently keeps only its header prefix; the
        // restart must catch the checksum, quarantine, recompute
        name: "torn first write",
        arm_cold: |f| f.arm_torn_write(40),
        arm_restart: no_faults,
        expected_fires: 1,
    },
    Scenario {
        // the disk is full for the whole cold sweep: nothing persists,
        // the restart recomputes everything from scratch
        name: "ENOSPC on every cold write",
        arm_cold: |f| f.arm_enospc_writes(4),
        arm_restart: no_faults,
        expected_fires: 4,
    },
    Scenario {
        // a clean cold sweep, then every artifact read dies with EIO on
        // restart: each frame is quarantined and recomputed
        name: "EIO on every restart read",
        arm_cold: no_faults,
        arm_restart: |f| f.arm_eio_reads(4),
        expected_fires: 4,
    },
    Scenario {
        // the process dies before the first commit's rename: the artifact
        // never becomes visible, its temp file is swept on reopen
        name: "crash before first rename",
        arm_cold: |f| f.arm_crash_before_rename(),
        arm_restart: no_faults,
        expected_fires: 1,
    },
    Scenario {
        // the process dies just after the rename: the artifact landed, the
        // writer never learned it — the restart serves it from disk
        name: "crash after first rename",
        arm_cold: |f| f.arm_crash_after_rename(),
        arm_restart: no_faults,
        expected_fires: 1,
    },
    Scenario {
        // compound schedule: a torn commit plus a full disk in the cold
        // run, then an EIO on restart — degradation stacks, answers don't
        name: "torn + ENOSPC cold, EIO restart",
        arm_cold: |f| {
            f.arm_torn_write(40);
            f.arm_enospc_writes(2);
        },
        arm_restart: |f| f.arm_eio_reads(1),
        expected_fires: 4,
    },
];

#[test]
fn fault_matrix_answers_are_bit_identical_to_memory() {
    let (dfs, out) = model();
    let reference = query_all(&Session::new(), &dfs, out);

    for scenario in MATRIX {
        let dir = TempDir(temp_dir("matrix"));
        let faulty = FaultyStorage::new(Arc::new(DiskStorage));

        let cold_answers = {
            let store = Store::open_with(&dir.0, faulty.clone()).unwrap();
            let session = Session::with_store(store);
            (scenario.arm_cold)(&faulty);
            query_all(&session, &dfs, out)
        };
        assert_eq!(
            cold_answers, reference,
            "[{}] cold answers drifted from memory",
            scenario.name
        );

        (scenario.arm_restart)(&faulty);
        let store = Store::open_with(&dir.0, faulty.clone()).unwrap();
        let session = Session::with_store(store);
        let restart_answers = query_all(&session, &dfs, out);
        assert_eq!(
            restart_answers, reference,
            "[{}] restart answers drifted from memory",
            scenario.name
        );

        assert_eq!(
            faulty.faults_fired(),
            scenario.expected_fires,
            "[{}] fault schedule did not fire as scripted",
            scenario.name
        );
    }
}

#[test]
fn torn_write_is_quarantined_and_recomputed_exactly_once() {
    let dir = TempDir(temp_dir("torn"));
    let (dfs, out) = model();
    let faulty = FaultyStorage::new(Arc::new(DiskStorage));
    {
        let session = Session::with_store(Store::open_with(&dir.0, faulty.clone()).unwrap());
        faulty.arm_torn_write(40); // inside the header: checksum cannot hold
        query_all(&session, &dfs, out);
        // the tear is silent: the cold run believes all four commits landed
        assert_eq!(session.stats().store.write_errors, 0);
    }
    let store = Store::open_with(&dir.0, faulty.clone()).unwrap();
    let session = Session::with_store(store);
    query_all(&session, &dfs, out);
    let stats = session.stats();
    assert_eq!(
        stats.store.corrupt_recovered, 1,
        "the torn frame quarantined"
    );
    assert_eq!(stats.store.disk_hits, 3, "the other three frames verify");
    assert_eq!(stats.store.disk_misses, 1);
    assert_eq!(
        stats.queries.computations(),
        1,
        "exactly the torn artifact is recomputed"
    );
    assert_eq!(session.store().unwrap().quarantined_frames(), 1);
    // the recompute re-committed the artifact: a second restart is clean
    drop(session);
    let session = Session::with_store(Store::open_with(&dir.0, faulty).unwrap());
    query_all(&session, &dfs, out);
    assert_eq!(session.stats().store.disk_hits, 4);
    assert_eq!(session.stats().queries.computations(), 0);
}

#[test]
fn crash_after_rename_artifact_survives_and_serves_the_restart() {
    let dir = TempDir(temp_dir("crashafter"));
    let (dfs, out) = model();
    let faulty = FaultyStorage::new(Arc::new(DiskStorage));
    {
        let session = Session::with_store(Store::open_with(&dir.0, faulty.clone()).unwrap());
        faulty.arm_crash_after_rename();
        query_all(&session, &dfs, out);
        // the writer saw a failure it cannot distinguish from a lost commit
        assert_eq!(session.stats().store.write_errors, 1);
    }
    let session = Session::with_store(Store::open_with(&dir.0, faulty).unwrap());
    query_all(&session, &dfs, out);
    let stats = session.stats();
    assert_eq!(
        stats.store.disk_hits, 4,
        "the rename landed before the crash"
    );
    assert_eq!(stats.queries.computations(), 0);
}

#[test]
fn stale_lock_from_a_dead_process_is_broken_and_the_run_proceeds() {
    let dir = TempDir(temp_dir("stale"));
    let (dfs, out) = model();
    std::fs::create_dir_all(&dir.0).unwrap();
    // a plausible-but-dead holder: pids this large never exist on linux
    let dead_pid: u32 = 4_000_000_000;
    std::fs::write(dir.0.join("writer.lock"), dead_pid.to_string()).unwrap();
    let faulty = FaultyStorage::new(Arc::new(DiskStorage));
    faulty.set_pid_alive(dead_pid, false);
    let store = Store::open_with(&dir.0, faulty).unwrap();
    assert_eq!(store.stats().stale_locks_broken, 1);
    let session = Session::with_store(store);
    assert_eq!(
        query_all(&session, &dfs, out),
        query_all(&Session::new(), &dfs, out)
    );
}
