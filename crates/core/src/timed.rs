//! Timed, event-driven simulation of DFS models.
//!
//! Each node carries a latency (see [`crate::Node::delay`]); an event fires
//! `delay(node)` time units after its enabling condition became true. This
//! yields the dataflow-level performance picture the Workcraft tool reports
//! (Fig. 5): steady-state throughput, per-node activity, bottlenecks. The
//! measured throughput is cross-validated against the analytical
//! maximum-cycle-ratio bound of [`crate::perf`] in the integration tests.
//!
//! Event counts per node are also the basis of the energy accounting used by
//! the chip-scale model in `rap-ope` (each dataflow event corresponds to a
//! bounded amount of switched capacitance in the NCL-D implementation).

use crate::graph::Dfs;
use crate::node::{NodeId, TokenValue};
use crate::semantics::Event;
use crate::state::DfsState;
use crate::DfsError;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

/// Policy deciding the value of a *free-choice* control register (one with
/// no upstream control sources — a data-dependent predicate).
#[derive(Debug, Clone)]
pub enum ChoicePolicy {
    /// Always choose `True`.
    AlwaysTrue,
    /// Always choose `False`.
    AlwaysFalse,
    /// Alternate `True`, `False`, `True`, … per control register.
    Alternate,
    /// Bernoulli with probability `p_true`, using a seeded xorshift.
    Bernoulli {
        /// Probability of choosing `True` (clamped to `[0,1]`).
        p_true: f64,
        /// RNG seed (0 remapped to 1).
        seed: u64,
    },
}

/// Configuration of a timed run.
#[derive(Debug, Clone)]
pub struct TimedConfig {
    /// Hard cap on fired events.
    pub max_events: u64,
    /// Free-choice policy for control registers.
    pub choice: ChoicePolicy,
    /// Stop once this register has accepted this many tokens.
    pub stop_after_marks: Option<(NodeId, u64)>,
}

impl Default for TimedConfig {
    fn default() -> Self {
        TimedConfig {
            max_events: 1_000_000,
            choice: ChoicePolicy::AlwaysTrue,
            stop_after_marks: None,
        }
    }
}

/// Result of a timed run.
#[derive(Debug, Clone)]
pub struct TimedRun {
    /// Simulated time of the last fired event.
    pub time: f64,
    /// Total events fired.
    pub events: u64,
    /// Per node: number of `Mark` events (token acceptances).
    pub mark_counts: Vec<u64>,
    /// Per node: number of events of any kind (for energy accounting).
    pub event_counts: Vec<u64>,
    /// Times at which the watched register (see
    /// [`TimedConfig::stop_after_marks`]) accepted tokens.
    pub watch_times: Vec<f64>,
    /// Final state.
    pub final_state: DfsState,
}

impl TimedRun {
    /// Steady-state throughput estimate at the watched register: tokens per
    /// time unit between the `skip`-th and the last watched acceptance.
    ///
    /// Returns `None` when fewer than `skip + 2` tokens were observed.
    #[must_use]
    pub fn throughput(&self, skip: usize) -> Option<f64> {
        if self.watch_times.len() < skip + 2 {
            return None;
        }
        let first = self.watch_times[skip];
        let last = *self.watch_times.last()?;
        let n = (self.watch_times.len() - 1 - skip) as f64;
        if last > first {
            Some(n / (last - first))
        } else {
            None
        }
    }
}

#[derive(Debug)]
struct Pending {
    time: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> Ordering {
        // min-heap: reverse on time, then seq for determinism
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct XorShift(u64);
impl XorShift {
    fn next_f64(&mut self) -> f64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Runs the timed simulation.
///
/// # Errors
///
/// [`DfsError::SimulationStalled`] when no event is pending before the stop
/// condition is met (the model deadlocked under the chosen control values).
pub fn simulate_timed(dfs: &Dfs, config: &TimedConfig) -> Result<TimedRun, DfsError> {
    let mut state = DfsState::initial(dfs);
    let mut heap: BinaryHeap<Pending> = BinaryHeap::new();
    let mut scheduled: HashSet<Event> = HashSet::new();
    let mut seq = 0u64;
    let mut rng = XorShift(1);
    let mut alternate_next: Vec<TokenValue> = vec![TokenValue::True; dfs.node_count()];

    let mut mark_counts = vec![0u64; dfs.node_count()];
    let mut event_counts = vec![0u64; dfs.node_count()];
    let mut watch_times = Vec::new();
    let mut now = 0.0f64;
    let mut fired = 0u64;

    if let ChoicePolicy::Bernoulli { seed, .. } = config.choice {
        rng = XorShift(if seed == 0 { 1 } else { seed });
    }

    // resolve free choices: given both Mark(n,True/False) enabled, keep one
    let resolve = |events: Vec<Event>,
                   alternate_next: &mut Vec<TokenValue>,
                   rng: &mut XorShift|
     -> Vec<Event> {
        let mut out = Vec::with_capacity(events.len());
        let mut skip: Option<Event> = None;
        for &ev in &events {
            if Some(ev) == skip {
                continue;
            }
            if let Event::Mark(n, TokenValue::True) = ev {
                let partner = Event::Mark(n, TokenValue::False);
                if events.contains(&partner) {
                    let pick = match &config.choice {
                        ChoicePolicy::AlwaysTrue => TokenValue::True,
                        ChoicePolicy::AlwaysFalse => TokenValue::False,
                        ChoicePolicy::Alternate => {
                            let v = alternate_next[n.index()];
                            alternate_next[n.index()] = v.negate();
                            v
                        }
                        ChoicePolicy::Bernoulli { p_true, .. } => {
                            TokenValue::from(rng.next_f64() < p_true.clamp(0.0, 1.0))
                        }
                    };
                    out.push(Event::Mark(n, pick));
                    skip = Some(partner);
                    continue;
                }
            }
            out.push(ev);
        }
        out
    };

    // initial scheduling
    for ev in resolve(dfs.enabled_events(&state), &mut alternate_next, &mut rng) {
        heap.push(Pending {
            time: dfs.node(ev.node()).delay,
            seq,
            event: ev,
        });
        seq += 1;
        scheduled.insert(ev);
    }

    while fired < config.max_events {
        let Some(p) = heap.pop() else {
            return Err(DfsError::SimulationStalled {
                time: now,
                produced: watch_times.len() as u64,
            });
        };
        scheduled.remove(&p.event);
        // lazy invalidation: skip events whose condition lapsed
        if !dfs.is_event_enabled(&state, p.event) {
            continue;
        }
        now = p.time;
        state = dfs.apply(&state, p.event);
        fired += 1;
        let n = p.event.node();
        event_counts[n.index()] += 1;
        if let Event::Mark(..) = p.event {
            mark_counts[n.index()] += 1;
            if let Some((watch, limit)) = config.stop_after_marks {
                if n == watch {
                    watch_times.push(now);
                    if mark_counts[n.index()] >= limit {
                        break;
                    }
                }
            }
        }
        // schedule newly enabled events
        for ev in resolve(dfs.enabled_events(&state), &mut alternate_next, &mut rng) {
            if scheduled.contains(&ev) {
                continue;
            }
            heap.push(Pending {
                time: now + dfs.node(ev.node()).delay,
                seq,
                event: ev,
            });
            seq += 1;
            scheduled.insert(ev);
        }
    }

    Ok(TimedRun {
        time: now,
        events: fired,
        mark_counts,
        event_counts,
        watch_times,
        final_state: state,
    })
}

/// Convenience: steady-state throughput at `output`, skipping `warmup`
/// tokens and measuring over `measure` further tokens.
///
/// # Errors
///
/// Propagates [`DfsError::SimulationStalled`]; returns
/// [`DfsError::SimulationStalled`] as well when the run ended before
/// producing enough tokens.
pub fn measure_throughput(
    dfs: &Dfs,
    output: NodeId,
    warmup: u64,
    measure: u64,
    choice: ChoicePolicy,
) -> Result<f64, DfsError> {
    let run = simulate_timed(
        dfs,
        &TimedConfig {
            max_events: u64::MAX,
            choice,
            stop_after_marks: Some((output, warmup + measure)),
        },
    )?;
    run.throughput(warmup as usize)
        .ok_or(DfsError::SimulationStalled {
            time: run.time,
            produced: run.watch_times.len() as u64,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfsBuilder;

    /// Ring of `n` registers with one token and unit delays.
    fn ring(n: usize) -> Dfs {
        let mut b = DfsBuilder::new();
        let regs: Vec<NodeId> = (0..n)
            .map(|i| {
                let nb = b.register(format!("r{i}"));
                if i == 0 {
                    nb.marked().build()
                } else {
                    nb.build()
                }
            })
            .collect();
        for i in 0..n {
            b.connect(regs[i], regs[(i + 1) % n]);
        }
        b.finish().unwrap()
    }

    #[test]
    fn ring_throughput_matches_cycle_analysis() {
        // One token over 4 registers, unit delay: the mark wavefront
        // advances one register per time unit while releases retract
        // concurrently, so the wave wraps every n units: throughput 1/4.
        // (A 3-ring is tighter: the bubble constraint makes it 1/6 — see
        // the perf module tests.)
        let dfs = ring(4);
        let out = dfs.node_by_name("r0").unwrap();
        let thr = measure_throughput(&dfs, out, 5, 50, ChoicePolicy::AlwaysTrue).unwrap();
        let expected = 1.0 / 4.0;
        assert!(
            (thr - expected).abs() < 1e-9,
            "throughput {thr}, expected {expected}"
        );
    }

    #[test]
    fn slower_node_dominates_cycle_time() {
        let mut b = DfsBuilder::new();
        let r0 = b.register("r0").marked().build();
        let r1 = b.register("r1").delay(5.0).build();
        let r2 = b.register("r2").build();
        b.connect(r0, r1);
        b.connect(r1, r2);
        b.connect(r2, r0);
        let dfs = b.finish().unwrap();
        let out = dfs.node_by_name("r0").unwrap();
        let thr = measure_throughput(&dfs, out, 5, 50, ChoicePolicy::AlwaysTrue).unwrap();
        // 3-ring bubble constraint: period = 2 * (1 + 5 + 1) = 14
        assert!((thr - 1.0 / 14.0).abs() < 1e-9, "throughput {thr}");
    }

    #[test]
    fn stalled_simulation_is_reported() {
        // mismatched guards: the push is disabled and nothing can move
        use crate::node::TokenValue;
        let mut b = DfsBuilder::new();
        let i = b.register("in").marked().build();
        let c1 = b.control("c1").marked_with(TokenValue::True).build();
        let c2 = b.control("c2").marked_with(TokenValue::False).build();
        let p = b.push("p").build();
        b.connect(i, p);
        b.connect(c1, p);
        b.connect(c2, p);
        let dfs = b.finish().unwrap();
        let out = dfs.node_by_name("p").unwrap();
        let err = measure_throughput(&dfs, out, 0, 10, ChoicePolicy::AlwaysTrue).unwrap_err();
        assert!(matches!(err, DfsError::SimulationStalled { .. }));
    }

    #[test]
    fn choice_policies_steer_control_values() {
        // in -> cond -> ctrl (free choice); observe the accepted values
        let mk = || {
            let mut b = DfsBuilder::new();
            let i = b.register("in").marked().build();
            let f = b.logic("cond").build();
            let c = b.control("ctrl").build();
            let r = b.register("ret").build();
            b.connect(i, f);
            b.connect(f, c);
            b.connect(c, r);
            b.connect(r, i);
            b.finish().unwrap()
        };
        let dfs = mk();
        let c = dfs.node_by_name("ctrl").unwrap();
        let run = simulate_timed(
            &dfs,
            &TimedConfig {
                max_events: 200,
                choice: ChoicePolicy::AlwaysFalse,
                stop_after_marks: Some((c, 5)),
            },
        )
        .unwrap();
        assert_eq!(run.mark_counts[c.index()], 5);
        // final acceptance left a False token or it was already released;
        // the policy is observable through the absence of True marks only
        // when the register is currently marked, so instead check alternation
        let run_alt = simulate_timed(
            &dfs,
            &TimedConfig {
                max_events: 400,
                choice: ChoicePolicy::Alternate,
                stop_after_marks: Some((c, 6)),
            },
        )
        .unwrap();
        assert_eq!(run_alt.mark_counts[c.index()], 6);
    }

    #[test]
    fn event_counts_cover_all_nodes() {
        let dfs = ring(3);
        let out = dfs.node_by_name("r0").unwrap();
        let run = simulate_timed(
            &dfs,
            &TimedConfig {
                max_events: u64::MAX,
                choice: ChoicePolicy::AlwaysTrue,
                stop_after_marks: Some((out, 10)),
            },
        )
        .unwrap();
        assert!(run.event_counts.iter().all(|&c| c > 0));
        assert_eq!(run.mark_counts[out.index()], 10);
        assert_eq!(run.watch_times.len(), 10);
    }
}
