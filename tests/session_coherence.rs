//! Cache-coherence contract of `rap::Session` (see the `rap-session`
//! crate docs, "Caching and coherence contract"):
//!
//! * every query on a compiled model is **bit-identical** to the direct
//!   free-function call on the same model — including every `f64`, the
//!   node names in critical cycles, and cached *errors*;
//! * repeated queries return the **same cached artifact** (pointer-equal
//!   references / the same `Arc`), computed exactly once;
//! * results are invariant under **query order** and under **concurrent
//!   access** from multiple threads (in-flight reservation: one
//!   computation total, everyone else blocks on it);
//! * a model queried for `perf`, `quick_check` and `cost` performs
//!   exactly **one Petri translation and one phase unfolding** (the
//!   acceptance pin of the session layer, via `Session::stats`).

use proptest::prelude::*;
use rap::dfs::perf::{analyse_with_activity, PerfDetail};
use rap::dfs::pipelines::{build_pipeline, PipelineSpec};
use rap::dfs::timed::{measure_steady_period, ChoicePolicy};
use rap::dfs::wagging::wagged_pipeline;
use rap::dfs::{to_petri, Dfs, DfsError, Lts};
use rap::petri::analysis::quick_check;
use rap::session::{CostModel, CostSummary};
use rap::{Error, Session};
use std::sync::Arc;

const DELAYS: [f64; 4] = [0.5, 1.0, 2.0, 4.0];

/// Random reconfigurable pipeline (stages 2–4, every operating depth,
/// random per-stage f delays) — the §III shape family.
fn arb_pipeline() -> impl Strategy<Value = Dfs> {
    (
        2usize..5,
        1usize..5,
        proptest::collection::vec(0usize..DELAYS.len(), 4),
    )
        .prop_map(|(stages, depth, idx)| {
            let depth = depth.min(stages);
            let f_delays = (0..stages).map(|s| DELAYS[idx[s.min(3)]]).collect();
            let spec = PipelineSpec::reconfigurable_depth(stages, depth)
                .unwrap()
                .with_f_delays(f_delays);
            build_pipeline(&spec).unwrap().dfs
        })
}

/// Random wagged pipeline — the phase-unfolded family.
fn arb_wagged() -> impl Strategy<Value = (Dfs, rap::dfs::NodeId)> {
    (1usize..4, 1usize..3, 0usize..DELAYS.len()).prop_map(|(ways, depth, d)| {
        let w = wagged_pipeline(ways, depth, DELAYS[d]).unwrap();
        (w.dfs, w.output)
    })
}

fn assert_perf_bit_identical(got: &PerfDetail, want: &PerfDetail) {
    assert_eq!(got.report.period.to_bits(), want.report.period.to_bits());
    assert_eq!(
        got.report.throughput.to_bits(),
        want.report.throughput.to_bits()
    );
    assert_eq!(got.report.construction, want.report.construction);
    assert_eq!(got.report.critical.nodes, want.report.critical.nodes);
    assert_eq!(
        got.report.critical.delay.to_bits(),
        want.report.critical.delay.to_bits()
    );
    assert_eq!(got.report.critical.tokens, want.report.critical.tokens);
    assert_eq!(
        got.report.critical.bottleneck,
        want.report.critical.bottleneck
    );
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&got.activity_per_item), bits(&want.activity_per_item));
}

fn direct_cost(dfs: &Dfs, cost: &CostModel) -> CostSummary {
    let detail = analyse_with_activity(dfs).unwrap();
    CostSummary {
        area: cost.area(dfs),
        switched_ge_per_item: cost.switched_ge_per_item(dfs, &detail.activity_per_item),
    }
}

/// Every query vs its direct free function, on one model.
fn assert_coherent(dfs: &Dfs, lts_budget: usize, check_budget: usize) {
    let session = Session::new();
    let model = session.compile(dfs);
    let cost = CostModel::default();

    // perf_detail == analyse_with_activity, bitwise
    let want = analyse_with_activity(dfs).unwrap();
    assert_perf_bit_identical(model.perf_detail().unwrap(), &want);
    // perf() is the report half of the same artifact
    assert!(std::ptr::eq(
        model.perf().unwrap(),
        &model.perf_detail().unwrap().report
    ));

    // petri == to_petri: same structure, same names, same labels
    let img = model.petri();
    let want_img = to_petri(dfs);
    assert_eq!(img.net.place_count(), want_img.net.place_count());
    assert_eq!(img.net.transition_count(), want_img.net.transition_count());
    for t in 0..img.net.transition_count() {
        assert_eq!(img.labels[t], want_img.labels[t]);
    }
    // pair order is HashMap-iteration order (differs even between two
    // direct calls); the *set* is what the translation defines
    let sorted = |mut v: Vec<_>| {
        v.sort();
        v
    };
    assert_eq!(
        sorted(img.complementary_pairs()),
        sorted(want_img.complementary_pairs())
    );

    // lts == Lts::explore: same states, successors and deadlocks — or the
    // identical budget-exceeded error (errors are cached artifacts too)
    match (model.lts(lts_budget), Lts::explore(dfs, lts_budget)) {
        (Ok(lts), Ok(want_lts)) => {
            assert_eq!(lts.len(), want_lts.len());
            assert_eq!(lts.is_truncated(), want_lts.is_truncated());
            assert_eq!(lts.deadlocks(), want_lts.deadlocks());
            for s in lts.states() {
                assert_eq!(lts.successors(s), want_lts.successors(s));
            }
        }
        (Err(got), Err(want)) => assert_eq!(got, Error::Dfs(want)),
        (got, want) => panic!("session {got:?} disagrees with direct {want:?}"),
    }

    // quick_check == quick_check over the direct image
    let check = model.quick_check(check_budget);
    let want_check = quick_check(&want_img.net, &want_img.complementary_pairs(), check_budget);
    assert_eq!(check.states, want_check.states);
    assert_eq!(check.truncated, want_check.truncated);
    assert_eq!(check.deadlock_free, want_check.deadlock_free);
    assert_eq!(check.safe, want_check.safe);
    assert_eq!(
        check.deadlock.as_ref().map(|d| (d.state, d.trace.clone())),
        want_check
            .deadlock
            .as_ref()
            .map(|d| (d.state, d.trace.clone()))
    );
    assert_eq!(check.unsafe_witness, want_check.unsafe_witness);

    // cost == the two direct CostModel calls, bitwise
    let summary = model.cost(&cost).unwrap();
    let want_cost = direct_cost(dfs, &cost);
    assert_eq!(summary.area.to_bits(), want_cost.area.to_bits());
    assert_eq!(
        summary.switched_ge_per_item.to_bits(),
        want_cost.switched_ge_per_item.to_bits()
    );

    // repeated queries: the same cached artifact, not a recomputation
    assert!(std::ptr::eq(
        model.perf_detail().unwrap(),
        model.perf_detail().unwrap()
    ));
    if let Ok(lts) = model.lts(lts_budget) {
        assert!(Arc::ptr_eq(&lts, &model.lts(lts_budget).unwrap()));
    }
    assert!(Arc::ptr_eq(&check, &model.quick_check(check_budget)));
    let stats = model.stats();
    assert_eq!(stats.perf_analyses, 1);
    assert_eq!(stats.petri_translations, 1);
    assert_eq!(stats.lts_explorations, 1);
    assert_eq!(stats.check_runs, 1);
    assert_eq!(stats.cost_evaluations, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Random reconfigurable pipelines: every query equals its direct
    /// free-function result, repeated queries are served from cache.
    #[test]
    fn pipeline_queries_equal_direct_calls(dfs in arb_pipeline()) {
        assert_coherent(&dfs, 500_000, 50_000);
    }

    /// Random wagged shapes (phase-unfolded analysis): same contract,
    /// plus the steady-period query against the timed-simulator oracle.
    #[test]
    fn wagged_queries_equal_direct_calls((dfs, output) in arb_wagged()) {
        let session = Session::new();
        let model = session.compile(&dfs);
        let want = analyse_with_activity(&dfs).unwrap();
        assert_perf_bit_identical(model.perf_detail().unwrap(), &want);

        let steady = model.steady_period(output, 500).unwrap();
        let want_steady =
            measure_steady_period(&dfs, output, 500, ChoicePolicy::AlwaysTrue).unwrap();
        prop_assert_eq!(steady.period.to_bits(), want_steady.period.to_bits());
        prop_assert_eq!(steady.cycle_marks, want_steady.cycle_marks);
        prop_assert_eq!(steady.transient_marks, want_steady.transient_marks);
        // cached: second query measures nothing
        let again = model.steady_period(output, 500).unwrap();
        prop_assert_eq!(again.period.to_bits(), steady.period.to_bits());
        prop_assert_eq!(model.stats().steady_measurements, 1);
    }

    /// Query order must not matter: ask in opposite orders on two fresh
    /// sessions and compare everything bitwise.
    #[test]
    fn results_are_invariant_under_query_order(dfs in arb_pipeline()) {
        let cost = CostModel::default();
        let s1 = Session::new();
        let m1 = s1.compile(&dfs);
        let perf1 = m1.perf_detail().unwrap().clone();
        let check1 = m1.quick_check(50_000);
        let cost1 = m1.cost(&cost).unwrap();

        let s2 = Session::new();
        let m2 = s2.compile(&dfs);
        let cost2 = m2.cost(&cost).unwrap(); // cost first: demands perf internally
        let check2 = m2.quick_check(50_000);
        let perf2 = m2.perf_detail().unwrap().clone();

        assert_perf_bit_identical(&perf2, &perf1);
        prop_assert_eq!(check1.states, check2.states);
        prop_assert_eq!(check1.deadlock_free, check2.deadlock_free);
        prop_assert_eq!(check1.safe, check2.safe);
        prop_assert_eq!(cost1.area.to_bits(), cost2.area.to_bits());
        prop_assert_eq!(
            cost1.switched_ge_per_item.to_bits(),
            cost2.switched_ge_per_item.to_bits()
        );
        // both sessions did the same amount of real work
        prop_assert_eq!(s1.stats().queries.computations(), s2.stats().queries.computations());
    }

    /// Concurrent queries from many threads: everyone sees the same
    /// artifact and exactly one computation happened per kind.
    #[test]
    fn concurrent_queries_share_one_computation(dfs in arb_pipeline()) {
        let session = Session::new();
        let model = session.compile(&dfs);
        let cost = CostModel::default();
        let periods: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let model = Arc::clone(&model);
                    let cost = &cost;
                    scope.spawn(move || {
                        let p = model.perf_detail().unwrap().report.period;
                        let c = model.quick_check(50_000);
                        let k = model.cost(cost).unwrap();
                        assert!(k.area > 0.0);
                        assert!(!c.deadlock_free.is_violated());
                        p.to_bits()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        prop_assert!(periods.windows(2).all(|w| w[0] == w[1]));
        let stats = model.stats();
        prop_assert_eq!(stats.perf_analyses, 1, "in-flight reservation");
        prop_assert_eq!(stats.petri_translations, 1);
        prop_assert_eq!(stats.check_runs, 1);
        prop_assert_eq!(stats.cost_evaluations, 1);
        // 8 direct queries + exactly 1 internal one from the single cost
        // evaluation (cache-hit cost queries never re-enter perf)
        prop_assert_eq!(stats.perf_queries, 8 + 1);
    }
}

/// The acceptance pin: a model with choice (2-way wagging, so the analysis
/// *must* phase-unfold) queried for `perf`, `quick_check` and `cost`
/// performs exactly one Petri translation and one phase unfolding, with
/// results bit-identical to the direct calls.
#[test]
fn one_translation_and_one_unfolding_serve_perf_check_and_cost() {
    let w = wagged_pipeline(2, 2, 8.0).unwrap();
    let session = Session::new();
    let model = session.compile(&w.dfs);
    let cost = CostModel::default();

    let perf = model.perf().unwrap();
    let check = model.quick_check(100_000);
    let summary = model.cost(&cost).unwrap();

    // bit-identical to the direct free-function calls
    let want = analyse_with_activity(&w.dfs).unwrap();
    assert_eq!(perf.period.to_bits(), want.report.period.to_bits());
    assert!(matches!(
        perf.construction,
        rap::dfs::perf::Construction::PhaseUnfolded { phases: 2 }
    ));
    let want_img = to_petri(&w.dfs);
    let want_check = quick_check(&want_img.net, &want_img.complementary_pairs(), 100_000);
    assert_eq!(check.states, want_check.states);
    assert_eq!(check.deadlock_free, want_check.deadlock_free);
    let want_cost = direct_cost(&w.dfs, &cost);
    assert_eq!(summary.area.to_bits(), want_cost.area.to_bits());
    assert_eq!(
        summary.switched_ge_per_item.to_bits(),
        want_cost.switched_ge_per_item.to_bits()
    );

    // the pin: one translation, one unfolding — across all three queries
    let stats = session.stats();
    assert_eq!(stats.queries.petri_translations, 1, "{stats:?}");
    assert_eq!(stats.queries.perf_analyses, 1, "{stats:?}");
    assert_eq!(stats.compiles, 1);
    assert_eq!(stats.models, 1);
}

/// Errors are cached artifacts too: the budget-exceeded LTS and the
/// token-free-cycle analysis fail identically to the direct calls, once.
#[test]
fn cached_errors_match_direct_errors() {
    let p = build_pipeline(&PipelineSpec::reconfigurable_depth(3, 2).unwrap()).unwrap();
    let session = Session::new();
    let model = session.compile(&p.dfs);
    // a 10-state budget is always exceeded
    let got = model.lts(10).unwrap_err();
    let want = Lts::explore(&p.dfs, 10).unwrap_err();
    assert_eq!(got, Error::Dfs(want));
    let again = model.lts(10).unwrap_err();
    assert_eq!(got, again);
    assert_eq!(model.stats().lts_explorations, 1, "failure explored once");

    // interning: compiling the identical pipeline again shares the cache
    let twin = session.compile(
        &build_pipeline(&PipelineSpec::reconfigurable_depth(3, 2).unwrap())
            .unwrap()
            .dfs,
    );
    assert!(Arc::ptr_eq(&model, &twin));
    assert!(matches!(
        twin.lts(10).unwrap_err(),
        Error::Dfs(DfsError::StateBudgetExceeded { budget: 10 })
    ));
    assert_eq!(twin.stats().lts_explorations, 1);
}
