//! Gate primitives: NCL threshold gates, C-elements and Boolean gates.
//!
//! NULL Convention Logic (Fant & Brandt, cited as \[16\]) builds circuits
//! from *threshold gates with hysteresis*: a `THmn` gate has `n` inputs and
//! threshold `m`; its output switches to 1 when at least `m` inputs are 1,
//! switches to 0 only when **all** inputs are 0, and otherwise *holds* its
//! previous value. The hysteresis is what makes NCL circuits
//! delay-insensitive: a gate "remembers" that its inputs formed a complete
//! DATA wave until the NULL wave arrives. A C-element is the special case
//! `m = n`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The primitive cell types of the library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateKind {
    /// NCL threshold gate: output ↑ when ≥ `threshold` inputs are 1,
    /// ↓ when all inputs are 0, holds otherwise. `Th { threshold: n }`
    /// over `n` inputs is a C-element.
    Th {
        /// How many asserted inputs switch the gate on.
        threshold: u8,
    },
    /// Muller C-element (explicit kind for readability in netlists; behaves
    /// as `Th` with threshold = fan-in).
    C,
    /// Combinational AND.
    And,
    /// Combinational OR.
    Or,
    /// Combinational XOR (parity).
    Xor,
    /// Inverter (single input).
    Not,
    /// Buffer (single input).
    Buf,
    /// Constant 0 (no inputs).
    TieLow,
    /// Constant 1 (no inputs).
    TieHigh,
}

impl GateKind {
    /// Does this gate hold state (threshold gates and C-elements)?
    #[must_use]
    pub fn has_hysteresis(self) -> bool {
        matches!(self, GateKind::Th { .. } | GateKind::C)
    }

    /// Evaluates the gate.
    ///
    /// `current` is the present output value (relevant only for gates with
    /// hysteresis).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty for a gate that needs inputs, or not a
    /// singleton for `Not`/`Buf`.
    #[must_use]
    pub fn eval(self, inputs: &[bool], current: bool) -> bool {
        let ones = || inputs.iter().filter(|&&b| b).count();
        match self {
            GateKind::Th { threshold } => {
                let m = threshold as usize;
                assert!(
                    !inputs.is_empty() && m >= 1 && m <= inputs.len(),
                    "TH gate threshold {m} out of range for {} inputs",
                    inputs.len()
                );
                let count = ones();
                if count >= m {
                    true
                } else if count == 0 {
                    false
                } else {
                    current
                }
            }
            GateKind::C => {
                assert!(!inputs.is_empty(), "C-element needs inputs");
                let count = ones();
                if count == inputs.len() {
                    true
                } else if count == 0 {
                    false
                } else {
                    current
                }
            }
            GateKind::And => !inputs.is_empty() && inputs.iter().all(|&b| b),
            GateKind::Or => inputs.iter().any(|&b| b),
            GateKind::Xor => inputs.iter().filter(|&&b| b).count() % 2 == 1,
            GateKind::Not => {
                assert_eq!(inputs.len(), 1, "NOT takes one input");
                !inputs[0]
            }
            GateKind::Buf => {
                assert_eq!(inputs.len(), 1, "BUF takes one input");
                inputs[0]
            }
            GateKind::TieLow => false,
            GateKind::TieHigh => true,
        }
    }

    /// Relative drive cost of the gate (used to scale per-switch energy and
    /// delay: larger gates switch more internal capacitance). Unit = a
    /// 2-input NAND-equivalent.
    #[must_use]
    pub fn complexity(self, fan_in: usize) -> f64 {
        match self {
            GateKind::Th { .. } | GateKind::C => 1.0 + 0.5 * fan_in as f64,
            GateKind::And | GateKind::Or => 0.5 + 0.25 * fan_in as f64,
            GateKind::Xor => 1.0 + 0.5 * fan_in as f64,
            GateKind::Not | GateKind::Buf => 0.5,
            GateKind::TieLow | GateKind::TieHigh => 0.0,
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateKind::Th { threshold } => write!(f, "TH{threshold}"),
            GateKind::C => write!(f, "C"),
            GateKind::And => write!(f, "AND"),
            GateKind::Or => write!(f, "OR"),
            GateKind::Xor => write!(f, "XOR"),
            GateKind::Not => write!(f, "NOT"),
            GateKind::Buf => write!(f, "BUF"),
            GateKind::TieLow => write!(f, "TIE0"),
            GateKind::TieHigh => write!(f, "TIE1"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn th23_hysteresis() {
        let g = GateKind::Th { threshold: 2 };
        // rises at 2 of 3
        assert!(!g.eval(&[true, false, false], false));
        assert!(g.eval(&[true, true, false], false));
        // holds at 1 of 3 when already high
        assert!(g.eval(&[true, false, false], true));
        // falls only at 0 of 3
        assert!(!g.eval(&[false, false, false], true));
    }

    #[test]
    fn c_element_is_thnn() {
        let c = GateKind::C;
        let t = GateKind::Th { threshold: 2 };
        for a in [false, true] {
            for b in [false, true] {
                for cur in [false, true] {
                    assert_eq!(c.eval(&[a, b], cur), t.eval(&[a, b], cur));
                }
            }
        }
    }

    #[test]
    fn boolean_gates() {
        assert!(GateKind::And.eval(&[true, true], false));
        assert!(!GateKind::And.eval(&[true, false], true));
        assert!(GateKind::Or.eval(&[false, true], false));
        assert!(GateKind::Xor.eval(&[true, true, true], false));
        assert!(!GateKind::Xor.eval(&[true, true], false));
        assert!(!GateKind::Not.eval(&[true], false));
        assert!(GateKind::Buf.eval(&[true], false));
        assert!(!GateKind::TieLow.eval(&[], true));
        assert!(GateKind::TieHigh.eval(&[], false));
    }

    #[test]
    fn complexity_scales_with_fanin() {
        assert!(
            GateKind::C.complexity(4) > GateKind::C.complexity(2),
            "wider C-elements cost more"
        );
        assert_eq!(GateKind::TieLow.complexity(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_threshold_panics() {
        let _ = GateKind::Th { threshold: 4 }.eval(&[true, true], false);
    }
}
