//! Real-process crash smoke: a child process holding the store lock is
//! SIGKILLed with a torn artifact frame on disk, and a fresh session over
//! the directory must recover everything — break the dead holder's lock,
//! quarantine the torn frame, recompute exactly that artifact, and return
//! bit-identical answers.
//!
//! The child is this same test binary re-invoked with `RAP_CRASH_CHILD_DIR`
//! set: it runs a full store-backed sweep (the real commit path — temp
//! file, fsync, rename), then tears the committed perf frame at a seeded
//! byte offset (`RAP_CRASH_SEED`) to simulate a power cut mid-write, drops
//! a `ready` marker file, and sleeps holding the lock until the parent
//! kills it — SIGKILL, so no destructor ever releases the lock. (A marker
//! file, not stdout: the child's test harness captures its output.)

use dfs_core::{Dfs, DfsBuilder, NodeId};
use rap_session::Session;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("rap-crash-kill-{}-{}", std::process::id(), tag))
}

struct TempDir(std::path::PathBuf);

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A marked ring with a logic stage — all four persisted queries succeed.
fn model() -> (Dfs, NodeId) {
    let mut b = DfsBuilder::new();
    let a = b.register("a").marked().build();
    let f = b.logic("f").build();
    let c = b.register("b").build();
    let d = b.register("c").build();
    b.connect(a, f);
    b.connect(f, c);
    b.connect(c, d);
    b.connect(d, a);
    (b.finish().unwrap(), a)
}

const BUDGET: usize = 10_000;
const MARKS: u64 = 64;

fn query_bits(session: &Session, dfs: &Dfs, out: NodeId) -> Vec<u64> {
    let m = session.compile(dfs);
    let detail = m.perf_detail().unwrap();
    let cost = m.cost(&rap_session::CostModel::default()).unwrap();
    let steady = m.steady_period(out, MARKS).unwrap();
    let check = m.quick_check(BUDGET);
    vec![
        detail.report.period.to_bits(),
        cost.area.to_bits(),
        cost.switched_ge_per_item.to_bits(),
        steady.period.to_bits(),
        check.states as u64,
        u64::from(check.is_clean()),
    ]
}

/// The child half: sweep, tear the perf frame, announce, hold the lock.
fn child_main(dir: &std::path::Path, seed: u64) -> ! {
    let session = Session::open(dir).expect("child takes the lock");
    let (dfs, out) = model();
    query_bits(&session, &dfs, out);

    // tear the perf frame (kind 0x01) at a seeded offset: every proper
    // prefix of a frame must fail verification on reload
    let perf_frame = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("a01-") && n.ends_with(".rap"))
        })
        .expect("the cold sweep committed a perf frame");
    let len = std::fs::metadata(&perf_frame).unwrap().len();
    let cut = seed % len.max(1);
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&perf_frame)
        .unwrap();
    f.set_len(cut).unwrap();
    f.sync_all().unwrap();

    std::fs::write(dir.join("ready"), b"").unwrap();
    // hold the lock until SIGKILL — the Store must never drop cleanly
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

#[test]
fn sigkill_mid_commit_recovers_on_reopen() {
    if let Ok(dir) = std::env::var("RAP_CRASH_CHILD_DIR") {
        let seed = std::env::var("RAP_CRASH_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(17);
        child_main(std::path::Path::new(&dir), seed);
    }

    let (dfs, out) = model();
    let reference = query_bits(&Session::new(), &dfs, out);

    // a few seeded tear offsets: inside the header, inside the payload,
    // and just short of the checksum
    for seed in [0u64, 17, 1_000_003] {
        let dir = TempDir(temp_dir(&format!("s{seed}")));

        let mut child = std::process::Command::new(std::env::current_exe().unwrap())
            .arg("--exact")
            .arg("sigkill_mid_commit_recovers_on_reopen")
            .env("RAP_CRASH_CHILD_DIR", &dir.0)
            .env("RAP_CRASH_SEED", seed.to_string())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn child");
        let ready = dir.0.join("ready");
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        while !ready.exists() {
            assert!(
                std::time::Instant::now() < deadline,
                "seed {seed}: child never reported ready"
            );
            if let Some(status) = child.try_wait().expect("poll child") {
                panic!("seed {seed}: child died before tearing the frame: {status}");
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        child.kill().expect("SIGKILL the lock holder");
        child.wait().expect("reap the child");
        std::fs::remove_file(&ready).unwrap();

        // the lock file still names the (now dead) child
        let lock = std::fs::read_to_string(dir.0.join("writer.lock")).unwrap();
        assert_eq!(lock.trim().parse::<u32>().unwrap(), child.id());

        // recovery: stale lock broken, torn frame quarantined, exactly the
        // torn artifact recomputed, answers bit-identical
        let session =
            Session::open(&dir.0).unwrap_or_else(|e| panic!("seed {seed}: reopen failed: {e:?}"));
        assert_eq!(query_bits(&session, &dfs, out), reference, "seed {seed}");
        let stats = session.stats();
        assert_eq!(stats.store.stale_locks_broken, 1, "seed {seed}");
        assert_eq!(stats.store.corrupt_recovered, 1, "seed {seed}");
        assert_eq!(stats.store.disk_hits, 3, "seed {seed}");
        assert_eq!(stats.store.disk_misses, 1, "seed {seed}");
        assert_eq!(stats.queries.perf_analyses, 1, "seed {seed}");
        assert_eq!(stats.queries.computations(), 1, "seed {seed}");
        assert_eq!(session.store().unwrap().quarantined_frames(), 1);
    }
}
