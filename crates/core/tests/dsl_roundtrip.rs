//! Property test: every constructible DFS model round-trips through the
//! DSL (`to_text` → `parse`) preserving structure, semantics-relevant
//! attributes, and — on small models — the entire reachable LTS size.

use dfs_core::{dsl, Dfs, DfsBuilder, Lts, TokenValue};
use proptest::prelude::*;

fn arb_dfs() -> impl Strategy<Value = Dfs> {
    let kinds = proptest::collection::vec(0u8..5, 2..7);
    let marks = proptest::collection::vec(any::<(bool, bool)>(), 2..7);
    let delays = proptest::collection::vec(0u8..4, 2..7);
    let edges = proptest::collection::vec((0usize..7, 0usize..7, any::<bool>()), 1..10);
    (kinds, marks, delays, edges).prop_filter_map(
        "invalid model",
        |(kinds, marks, delays, edges)| {
            let mut b = DfsBuilder::new();
            let n = kinds.len().min(marks.len()).min(delays.len());
            let ids: Vec<_> = (0..n)
                .map(|i| {
                    let name = format!("n{i}");
                    let nb = match kinds[i] {
                        0 => b.logic(name),
                        1 => b.register(name),
                        2 => b.control(name),
                        3 => b.push(name),
                        _ => b.pop(name),
                    };
                    let nb = nb.delay(f64::from(delays[i]) * 0.5 + 0.5);
                    let (marked, value) = marks[i];
                    if marked && kinds[i] != 0 {
                        if kinds[i] == 1 {
                            nb.marked().build()
                        } else {
                            nb.marked_with(TokenValue::from(value)).build()
                        }
                    } else {
                        nb.build()
                    }
                })
                .collect();
            for (from, to, inv) in edges {
                if from < n && to < n && from != to {
                    if inv {
                        b.connect_inverted(ids[from], ids[to]);
                    } else {
                        b.connect(ids[from], ids[to]);
                    }
                }
            }
            b.finish().ok()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dsl_roundtrip_preserves_structure_and_behaviour(dfs in arb_dfs()) {
        let text = dsl::to_text(&dfs);
        let again = dsl::parse(&text).expect("rendered DSL parses");
        prop_assert_eq!(again.node_count(), dfs.node_count());
        prop_assert_eq!(again.edge_count(), dfs.edge_count());
        for n in dfs.nodes() {
            let node = dfs.node(n);
            let m = again.node_by_name(&node.name).expect("node survives");
            prop_assert_eq!(again.kind(m), node.kind);
            prop_assert_eq!(again.node(m).initial, node.initial);
            prop_assert!((again.node(m).delay - node.delay).abs() < 1e-12);
            prop_assert_eq!(again.guard_mode(m), dfs.guard_mode(n));
            prop_assert_eq!(again.guards(m).len(), dfs.guards(n).len());
        }
        // behavioural equality (cheap proxy): identical LTS sizes
        let a = Lts::explore_truncated(&dfs, 5_000);
        let b = Lts::explore_truncated(&again, 5_000);
        prop_assume!(!a.is_truncated());
        prop_assert_eq!(a.len(), b.len());
    }
}
