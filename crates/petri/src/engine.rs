//! Shared state-space engine: serial reference, parallel explorer,
//! delta-compressed storage and symmetry reduction.
//!
//! Both explicit-state explorers of the workspace — Petri-net reachability
//! ([`crate::reachability`]) and the direct DFS semantics (`dfs-core::Lts`)
//! — are breadth-first fixpoints over a successor relation on *word-packed*
//! states ([`TransitionSystem`]). This module provides two interchangeable
//! drivers over that abstraction plus the machinery they share:
//!
//! * [`explore`] — the serial engine (PR 2): arena-interned states, an
//!   open-addressing dedup table, event-driven enabledness. Retained as the
//!   executable specification the parallel engine is differentially tested
//!   against (`tests/engine_parallel_equivalence.rs`), exactly the way it
//!   was itself pinned against the naive explorers.
//! * [`explore_parallel`] — the production engine: level-synchronous BFS
//!   with a work-stealing frontier (`rap-pool`), a sharded concurrent dedup
//!   index ([`shard::ShardIndex`]), delta-compressed state storage, and
//!   optional symmetry reduction ([`StateSymmetry`]).
//!
//! # Determinism contract
//!
//! The parallel engine is **observationally identical to the serial engine
//! at every thread count**: same state numbering (BFS discovery order),
//! same parent attribution (hence identical witness traces), same CSR edge
//! order, and the same truncation point under a state budget. This is not
//! best-effort: workers only *propose* successors; a single commit pass per
//! BFS level walks the proposals in canonical `(parent id, action)` order
//! and assigns dense ids at the first canonical encounter, reproducing the
//! serial engine's interleaving exactly. Duplicate discoveries by racing
//! workers meet in the sharded index (every hash hit is confirmed by a full
//! word compare) and resolve to one pending entry; which worker inserted it
//! is invisible after the commit pass. Counts, truncation verdicts and
//! traces are therefore thread-count-invariant by construction, and the
//! differential suite pins parallel ≡ serial ≡ naive state-for-state.
//!
//! # Delta-compressed storage
//!
//! A BFS successor differs from its parent in the few places its action
//! toggled, so [`ExploredGraph`] stores most states as sparse XOR deltas
//! `(word, mask)` against their parent, with full-snapshot *anchors* every
//! [`EngineConfig::anchor_interval`] BFS levels. Reconstruction
//! ([`ExploredGraph::fill_state`]) XORs the delta chain up the parent links
//! to the nearest anchor — O(depth-to-anchor), bounded by the interval.
//! The trade-off: random state access costs a short chain walk instead of
//! one slice read, in exchange for ~`stride / nnz(delta)`× smaller state
//! storage on wide states. Narrow states (≤ 2 words) gain nothing, so the
//! auto setting stores them all-anchor and the serial engine always does.
//!
//! # Symmetry reduction
//!
//! Wagged pipelines replicate one structure `k` ways; the rotation mapping
//! way `w` to `w+1 (mod k)` generates a cyclic automorphism group of the
//! model. [`StateSymmetry`] holds that generator as a state-bit and an
//! action permutation; the engine then canonicalizes every successor to the
//! lexicographically-least state in its rotation orbit before dedup and
//! explores the quotient. Soundness does *not* require the initial state to
//! be symmetric: starting from `canon(s0)`, equivariance of the firing rule
//! (`fire(σa, σs) = σ fire(a, s)`) makes the discovered set exactly
//! `canon(Reach(s0))`, so orbit-invariant properties — deadlock-freedom,
//! 1-safety over a pair set closed under the permutation — hold in the
//! quotient iff they hold in the full space. Each state records the
//! rotation applied at its discovery, so concrete (replayable) witness
//! traces are reconstructed by un-rotating each step's action
//! ([`StateSymmetry::unrotate_action`]).

use crate::{PetriNet, TransitionId};
use rap_obs::Obs;

pub mod shard;

use shard::{Handle, Probe, ShardIndex};

/// Sentinel parent id of the initial state in [`ExploredGraph::parents`].
pub const NO_PARENT: u32 = u32::MAX;

/// `anchor_slot` sentinel of a delta-stored state.
const DELTA: u32 = u32::MAX;

/// Reads bit `i` of a word-packed bitset.
#[must_use]
#[inline]
pub fn get_bit(words: &[u64], i: usize) -> bool {
    words[i / 64] >> (i % 64) & 1 == 1
}

/// Writes bit `i` of a word-packed bitset.
#[inline]
pub fn set_bit(words: &mut [u64], i: usize, v: bool) {
    let mask = 1u64 << (i % 64);
    if v {
        words[i / 64] |= mask;
    } else {
        words[i / 64] &= !mask;
    }
}

/// A transition system whose states are fixed-width `u64` bitset slices.
///
/// All slices handed to the methods have length `state_words().max(1)`
/// (states) or `action_count().div_ceil(64).max(1)` (enabled sets); unused
/// high bits are zero and must stay zero.
///
/// Methods take `&mut self` so implementations can keep decode/scratch
/// buffers without interior mutability. The parallel engine builds one
/// instance per worker through a factory closure, so implementations need
/// no internal synchronisation.
pub trait TransitionSystem {
    /// Number of `u64` words a state occupies.
    fn state_words(&self) -> usize;

    /// Total number of actions (enabled-set width in bits).
    fn action_count(&self) -> usize;

    /// Writes the initial state into `out` (pre-zeroed).
    fn write_initial(&mut self, out: &mut [u64]);

    /// Computes the enabled set of `state` from scratch (pre-zeroed `out`).
    /// Called once, for the initial state.
    fn write_enabled_full(&mut self, state: &[u64], out: &mut [u64]);

    /// Applies the (enabled) action `a` to `state`, writing the successor
    /// into `out`. `out` holds arbitrary garbage on entry.
    fn apply(&mut self, a: usize, state: &[u64], out: &mut [u64]);

    /// Incrementally fixes up `enabled` — pre-seeded with the predecessor's
    /// enabled set — after action `a` produced `state`. Only actions whose
    /// conditions intersect the variables changed by `a` need re-checking.
    fn update_enabled(&mut self, a: usize, state: &[u64], enabled: &mut [u64]);
}

/// How an exploration ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploreOutcome {
    /// The full reachable set was enumerated.
    Complete,
    /// The state budget stopped the exploration early; `limit` is the
    /// budget that was hit, so callers can propagate *which* bound made a
    /// verdict inconclusive instead of a bare flag.
    Truncated {
        /// The `max_states` budget in force.
        limit: usize,
    },
}

impl ExploreOutcome {
    /// Did exploration stop early on the state budget?
    #[must_use]
    pub fn is_truncated(self) -> bool {
        matches!(self, ExploreOutcome::Truncated { .. })
    }
}

/// Engine knobs shared by both frontends.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Maximum number of distinct states to store before truncating.
    pub max_states: usize,
    /// Worker threads; `0` = one per available core (capped at 8).
    pub threads: usize,
    /// Full-snapshot anchor every this many BFS levels (delta-compress the
    /// states in between); `0` = auto (all-anchor for states ≤ 2 words,
    /// every 8 levels otherwise), `1` = store every state in full.
    pub anchor_interval: usize,
    /// Wall-clock budget for the parallel engine; `None` = unbounded (the
    /// state cap is then the only stop). A runaway exploration becomes the
    /// ordinary typed [`ExploreOutcome::Truncated`] outcome instead of
    /// running to the cap.
    ///
    /// **Deterministic cut semantics:** the clock is consulted *only at
    /// level-commit barriers* — after a BFS level has been fully expanded,
    /// committed and deduplicated — never mid-level. The explored prefix
    /// is therefore always a complete-level prefix of the canonical BFS
    /// order, and for a given cut level the resulting graph is bit-
    /// identical at every thread count; wall-clock variance can only move
    /// the cut to a different level boundary, never produce a state set no
    /// serial exploration could. Deadline-truncated artifacts are
    /// outcome-typed (`Truncated` / `Inconclusive`), so downstream layers
    /// treat them exactly like budget-truncated ones — and the session's
    /// persistent store never caches them under a deadline-free key.
    /// The serial reference engine ([`explore`]) deliberately ignores the
    /// deadline: it is the determinism oracle the differential tests
    /// compare against.
    pub deadline: Option<std::time::Duration>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_states: 2_000_000,
            threads: 0,
            anchor_interval: 0,
            deadline: None,
        }
    }
}

impl EngineConfig {
    /// The actual worker count (`threads`, or the auto policy for 0).
    #[must_use]
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get().min(8))
        } else {
            self.threads
        }
    }

    fn resolved_anchor_interval(&self, stride: usize) -> usize {
        match self.anchor_interval {
            0 if stride <= 2 => 1,
            0 => 8,
            n => n,
        }
    }
}

/// View over the engine's `rap-obs` counters after a traced exploration
/// ([`explore_parallel_traced`] with a live collector) — the engine-side
/// member of the workspace's unified stats family (`SessionStats`,
/// `StoreStats`, `SweepStats` are views the same way).
///
/// Recording is observation-only: a traced run produces a bit-identical
/// graph to an untraced one; these counters merely describe it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// BFS levels processed (`engine.levels`).
    pub levels: u64,
    /// Distinct states committed (`engine.states`).
    pub states: u64,
    /// Edges committed (`engine.edges`).
    pub edges: u64,
    /// Edges whose target was already committed in an earlier level
    /// (`engine.dedup.known`).
    pub dedup_known: u64,
    /// Edges deduplicated against a same-level pending entry
    /// (`engine.dedup.pending`).
    pub dedup_pending: u64,
    /// Dedup probes that found their shard lock held by another worker
    /// (`engine.shard.contended`).
    pub shard_contended: u64,
}

impl EngineStats {
    /// Builds the view from a coherent counter snapshot (taxonomy names in
    /// the field docs above). Counters accumulate across explorations
    /// recorded into the same collector.
    #[must_use]
    pub fn from_counters(c: &rap_obs::CounterSnapshot) -> EngineStats {
        EngineStats {
            levels: c.get("engine.levels"),
            states: c.get("engine.states"),
            edges: c.get("engine.edges"),
            dedup_known: c.get("engine.dedup.known"),
            dedup_pending: c.get("engine.dedup.pending"),
            shard_contended: c.get("engine.shard.contended"),
        }
    }
}

/// The reachable graph produced by [`explore`] / [`explore_parallel`]:
/// delta-compressed states plus parent links and a CSR successor list, all
/// keyed by dense state ids in BFS discovery order (0 = initial state).
///
/// State `i` is stored either as a full snapshot (*anchor*) in the anchor
/// arena, or as a sparse XOR delta against its parent;
/// [`ExploredGraph::fill_state`] reconstructs by XOR-ing the delta chain up
/// the parent links to the nearest anchor (XOR is commutative, so the
/// walk-down order is free). The initial state is always an anchor.
#[derive(Debug, Clone)]
pub struct ExploredGraph {
    /// Words per state (≥ 1 even for zero-width states).
    stride: usize,
    /// Anchor snapshots, `stride` words each.
    anchors: Vec<u64>,
    /// Per state: anchor index, or [`DELTA`] for delta-stored states.
    anchor_slot: Vec<u32>,
    /// CSR offsets into the delta arrays, one per state plus a sentinel.
    delta_off: Vec<u32>,
    /// Delta word indices (parallel to `delta_xor`).
    delta_word: Vec<u32>,
    /// Delta XOR masks against the parent's words.
    delta_xor: Vec<u64>,
    /// Per state: `(parent, action)`; the initial state has parent
    /// [`NO_PARENT`].
    pub parents: Vec<(u32, u32)>,
    /// Per state: the symmetry rotation applied at discovery (empty when
    /// exploring without symmetry — all rotations are then 0).
    rotations: Vec<u16>,
    /// CSR offsets into `succ`, one entry per state plus a final sentinel.
    pub succ_off: Vec<u32>,
    /// Outgoing edges `(action, successor)` in firing order.
    pub succ: Vec<(u32, u32)>,
    /// How exploration ended.
    outcome: ExploreOutcome,
}

impl ExploredGraph {
    fn with_initial(stride: usize, initial: &[u64], rotation: u32, symmetric: bool) -> Self {
        let mut g = ExploredGraph {
            stride,
            anchors: initial.to_vec(),
            anchor_slot: vec![0],
            delta_off: vec![0, 0],
            delta_word: Vec::new(),
            delta_xor: Vec::new(),
            parents: vec![(NO_PARENT, 0)],
            rotations: if symmetric { vec![0] } else { Vec::new() },
            succ_off: vec![0],
            succ: Vec::new(),
            outcome: ExploreOutcome::Complete,
        };
        if symmetric {
            g.rotations[0] = u16::try_from(rotation).expect("rotation fits u16");
        }
        g
    }

    /// Appends a state, stored as an anchor or as a delta against
    /// `parent_words` (its parent's full snapshot).
    fn push_state(
        &mut self,
        words: &[u64],
        parent_words: &[u64],
        anchor: bool,
        parent: u32,
        action: u32,
        rotation: u32,
    ) {
        if anchor {
            self.anchor_slot
                .push(u32::try_from(self.anchors.len() / self.stride).expect("anchor count"));
            self.anchors.extend_from_slice(words);
        } else {
            self.anchor_slot.push(DELTA);
            for (w, (&a, &b)) in words.iter().zip(parent_words).enumerate() {
                if a != b {
                    self.delta_word.push(w as u32);
                    self.delta_xor.push(a ^ b);
                }
            }
        }
        self.delta_off.push(self.delta_word.len() as u32);
        self.parents.push((parent, action));
        if !self.rotations.is_empty() {
            self.rotations
                .push(u16::try_from(rotation).expect("rotation fits u16"));
        }
    }

    /// Builds an all-anchor (uncompressed) graph from dense parts — used by
    /// the serial engine and the naive reference explorers, which keep a
    /// dense arena anyway.
    ///
    /// # Panics
    ///
    /// Panics when `arena` is not exactly `parents.len() * stride` words.
    #[must_use]
    pub fn from_dense(
        stride: usize,
        arena: Vec<u64>,
        parents: Vec<(u32, u32)>,
        succ_off: Vec<u32>,
        succ: Vec<(u32, u32)>,
        outcome: ExploreOutcome,
    ) -> Self {
        let n = parents.len();
        assert_eq!(arena.len(), n * stride, "arena/parents length mismatch");
        ExploredGraph {
            stride,
            anchors: arena,
            anchor_slot: (0..u32::try_from(n).expect("state count")).collect(),
            delta_off: vec![0; n + 1],
            delta_word: Vec::new(),
            delta_xor: Vec::new(),
            parents,
            rotations: Vec::new(),
            succ_off,
            succ,
            outcome,
        }
    }

    /// Number of states discovered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// `true` when no state was stored (never happens: the initial state
    /// always exists); kept for `len`/`is_empty` pairing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// Words per state.
    #[must_use]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// How exploration ended.
    #[must_use]
    pub fn outcome(&self) -> ExploreOutcome {
        self.outcome
    }

    /// Did exploration stop early on the state budget?
    #[must_use]
    pub fn is_truncated(&self) -> bool {
        self.outcome.is_truncated()
    }

    /// Reconstructs the bitset words of state `i` into `out` (exactly
    /// `stride` words; previous contents are overwritten).
    pub fn fill_state(&self, i: usize, out: &mut [u64]) {
        debug_assert_eq!(out.len(), self.stride);
        out.fill(0);
        let mut cur = i;
        while self.anchor_slot[cur] == DELTA {
            for k in self.delta_off[cur] as usize..self.delta_off[cur + 1] as usize {
                out[self.delta_word[k] as usize] ^= self.delta_xor[k];
            }
            cur = self.parents[cur].0 as usize;
        }
        let base = self.anchor_slot[cur] as usize * self.stride;
        for (w, o) in out.iter_mut().enumerate() {
            *o ^= self.anchors[base + w];
        }
    }

    /// The bitset words of state `i` as a fresh vector.
    #[must_use]
    pub fn state_vec(&self, i: usize) -> Vec<u64> {
        let mut out = vec![0u64; self.stride];
        self.fill_state(i, &mut out);
        out
    }

    /// Outgoing edges `(action, successor)` of state `i`.
    #[must_use]
    pub fn successors(&self, i: usize) -> &[(u32, u32)] {
        &self.succ[self.succ_off[i] as usize..self.succ_off[i + 1] as usize]
    }

    /// Action sequence from the initial state to state `i` (over quotient
    /// representatives when exploring with symmetry — see
    /// [`ExploredGraph::rotation`] for making such a trace concrete).
    #[must_use]
    pub fn trace_to(&self, i: usize) -> Vec<u32> {
        let mut rev = Vec::new();
        let mut cur = i;
        while self.parents[cur].0 != NO_PARENT {
            let (p, a) = self.parents[cur];
            rev.push(a);
            cur = p as usize;
        }
        rev.reverse();
        rev
    }

    /// The symmetry rotation applied when state `i` was canonicalized at
    /// discovery (0 without symmetry).
    #[must_use]
    pub fn rotation(&self, i: usize) -> u32 {
        self.rotations.get(i).copied().map_or(0, u32::from)
    }

    /// Number of states stored as full anchors (diagnostics/tests).
    #[must_use]
    pub fn anchor_count(&self) -> usize {
        self.anchor_slot.iter().filter(|&&s| s != DELTA).count()
    }
}

/// Multiplicative word mixer (splitmix-style) over a state slice.
#[inline]
#[must_use]
pub fn hash_words(words: &[u64]) -> u64 {
    let mut h = 0x9E37_79B9_7F4A_7C15u64;
    for &w in words {
        h ^= w.wrapping_mul(0xA24B_AED4_963E_E407);
        h = h.rotate_left(29).wrapping_mul(0x9FB2_1C65_1E98_DF25);
    }
    h ^ (h >> 32)
}

const EMPTY_SLOT: u32 = u32::MAX;

/// Open-addressing dedup table over arena-resident states (serial engine).
/// Slots store state ids; collisions are resolved by comparing the actual
/// arena slices, so the compact hash never mis-identifies a state.
struct DedupTable {
    slots: Vec<u32>,
    mask: usize,
    len: usize,
}

impl DedupTable {
    fn new() -> Self {
        let cap = 1024;
        DedupTable {
            slots: vec![EMPTY_SLOT; cap],
            mask: cap - 1,
            len: 0,
        }
    }

    fn find(&self, hash: u64, cand: &[u64], arena: &[u64], stride: usize) -> Option<u32> {
        let mut i = (hash as usize) & self.mask;
        loop {
            let slot = self.slots[i];
            if slot == EMPTY_SLOT {
                return None;
            }
            let s = slot as usize * stride;
            if &arena[s..s + stride] == cand {
                return Some(slot);
            }
            i = (i + 1) & self.mask;
        }
    }

    fn insert_raw(&mut self, hash: u64, id: u32) {
        let mut i = (hash as usize) & self.mask;
        while self.slots[i] != EMPTY_SLOT {
            i = (i + 1) & self.mask;
        }
        self.slots[i] = id;
    }

    /// Inserts a freshly appended state, growing at 50% load (cheap probes
    /// beat memory here: slots are 4 bytes). State ids are dense, so growth
    /// rehashes by re-reading the arena.
    fn insert(&mut self, hash: u64, id: u32, arena: &[u64], stride: usize) {
        if (self.len + 1) * 2 > self.slots.len() {
            let cap = self.slots.len() * 2;
            self.slots = vec![EMPTY_SLOT; cap];
            self.mask = cap - 1;
            for prev in 0..self.len as u32 {
                let s = prev as usize * stride;
                self.insert_raw(hash_words(&arena[s..s + stride]), prev);
            }
        }
        self.insert_raw(hash, id);
        self.len += 1;
    }
}

/// Serial breadth-first exploration of `sys` up to `max_states` distinct
/// states — the reference engine.
///
/// Truncation mirrors the historical explorers exactly: when storing state
/// number `max_states` would be required, exploration stops immediately —
/// successors of the state being expanded that were found *before* the
/// overflow stay recorded, the overflowing edge does not. The parallel
/// engine reproduces this behaviour bit-for-bit (see the module docs), and
/// the differential suite keeps it honest.
pub fn explore<S: TransitionSystem>(sys: &mut S, max_states: usize) -> ExploredGraph {
    let stride = sys.state_words().max(1);
    let astride = sys.action_count().div_ceil(64).max(1);

    let mut arena = vec![0u64; stride];
    sys.write_initial(&mut arena[..stride]);
    let mut en_arena = vec![0u64; astride];
    {
        // split borrows: arena immutable, en_arena mutable
        let (state, enabled) = (&arena[..stride], &mut en_arena[..astride]);
        sys.write_enabled_full(state, enabled);
    }

    let mut parents: Vec<(u32, u32)> = vec![(NO_PARENT, 0)];
    let mut succ_off: Vec<u32> = vec![0];
    let mut succ: Vec<(u32, u32)> = Vec::new();
    let mut table = DedupTable::new();
    table.insert(hash_words(&arena[..stride]), 0, &arena, stride);

    let mut scratch = vec![0u64; stride];
    let mut en_scratch = vec![0u64; astride];
    let mut outcome = ExploreOutcome::Complete;

    // States are discovered in BFS order, so a cursor over dense ids is the
    // queue: everything behind it is expanded, everything ahead is frontier.
    let mut cursor = 0usize;
    'bfs: while cursor < parents.len() {
        let s = cursor;
        cursor += 1;
        let en_base = s * astride;
        for wi in 0..astride {
            let mut bits = en_arena[en_base + wi];
            while bits != 0 {
                let a = wi * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                sys.apply(a, &arena[s * stride..(s + 1) * stride], &mut scratch);
                let hash = hash_words(&scratch);
                let id = match table.find(hash, &scratch, &arena, stride) {
                    Some(id) => id,
                    None => {
                        if parents.len() >= max_states {
                            outcome = ExploreOutcome::Truncated { limit: max_states };
                            break 'bfs;
                        }
                        let id = parents.len() as u32;
                        arena.extend_from_slice(&scratch);
                        en_scratch.copy_from_slice(&en_arena[en_base..en_base + astride]);
                        sys.update_enabled(a, &scratch, &mut en_scratch);
                        en_arena.extend_from_slice(&en_scratch);
                        parents.push((s as u32, a as u32));
                        table.insert(hash, id, &arena, stride);
                        id
                    }
                };
                succ.push((a as u32, id));
            }
        }
        succ_off.push(succ.len() as u32);
    }
    // close offsets of states that were never (or only partially) expanded
    while succ_off.len() < parents.len() + 1 {
        succ_off.push(succ.len() as u32);
    }

    ExploredGraph::from_dense(stride, arena, parents, succ_off, succ, outcome)
}

/// A cyclic symmetry of a [`TransitionSystem`], given by one generator: a
/// permutation of the state bits and the matching permutation of the
/// actions. Powers up to the generator's order are precomputed, so
/// canonicalization is `order - 1` sparse bit-permutes plus lexicographic
/// compares.
#[derive(Debug, Clone)]
pub struct StateSymmetry {
    order: usize,
    /// `bit_pow[j-1]` maps each state bit to its position under the j-th
    /// power of the generator.
    bit_pow: Vec<Vec<u32>>,
    /// Same for action bits.
    act_pow: Vec<Vec<u32>>,
}

fn check_permutation(perm: &[u32]) -> Result<(), String> {
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        let i = p as usize;
        if i >= perm.len() || seen[i] {
            return Err(format!(
                "not a permutation: image {p} repeated or out of range"
            ));
        }
        seen[i] = true;
    }
    Ok(())
}

fn perm_order(perm: &[u32]) -> usize {
    let mut seen = vec![false; perm.len()];
    let mut order = 1usize;
    for start in 0..perm.len() {
        if seen[start] {
            continue;
        }
        let mut len = 0usize;
        let mut cur = start;
        while !seen[cur] {
            seen[cur] = true;
            cur = perm[cur] as usize;
            len += 1;
        }
        order = lcm(order, len.max(1));
    }
    order
}

fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Permutes the low `perm.len()` bits of `src` into the pre-zeroed `dst`.
fn permute_bits(perm: &[u32], src: &[u64], dst: &mut [u64]) {
    for (wi, &w) in src.iter().enumerate() {
        let mut bits = w;
        while bits != 0 {
            let b = wi * 64 + bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let t = perm[b] as usize;
            dst[t / 64] |= 1u64 << (t % 64);
        }
    }
}

impl StateSymmetry {
    /// Builds the symmetry from one generator. `bit_perm[i]` is the state
    /// bit that bit `i` maps to, `action_perm[a]` the action `a` maps to;
    /// both must be permutations covering *all* bits the system uses (the
    /// engine checks the widths at exploration time).
    ///
    /// # Errors
    ///
    /// When either map is not a permutation, or the generator's order
    /// exceeds 4096 (no hardware replicates that many ways; a bound keeps
    /// the precomputed powers small).
    pub fn new(bit_perm: Vec<u32>, action_perm: Vec<u32>) -> Result<Self, String> {
        check_permutation(&bit_perm)?;
        check_permutation(&action_perm)?;
        let order = lcm(perm_order(&bit_perm), perm_order(&action_perm));
        if order > 4096 {
            return Err(format!("symmetry order {order} out of range"));
        }
        let mut bit_pow = vec![bit_perm.clone()];
        let mut act_pow = vec![action_perm.clone()];
        for j in 1..order.saturating_sub(1) {
            let prev = &bit_pow[j - 1];
            bit_pow.push(prev.iter().map(|&i| bit_perm[i as usize]).collect());
            let prev = &act_pow[j - 1];
            act_pow.push(prev.iter().map(|&a| action_perm[a as usize]).collect());
        }
        Ok(StateSymmetry {
            order,
            bit_pow,
            act_pow,
        })
    }

    /// Group order of the generator (1 = trivial symmetry).
    #[must_use]
    pub fn order(&self) -> usize {
        self.order
    }

    /// Number of state bits the permutation covers.
    #[must_use]
    pub fn state_bits(&self) -> usize {
        self.bit_pow.first().map_or(0, Vec::len)
    }

    /// Number of action bits the permutation covers.
    #[must_use]
    pub fn action_bits(&self) -> usize {
        self.act_pow.first().map_or(0, Vec::len)
    }

    /// Writes the lexicographically-least rotation of `raw` into `canon`
    /// and returns the rotation amount `j` with `canon = g^j(raw)`. `tmp`
    /// is scratch of the same width.
    pub fn canonicalize(&self, raw: &[u64], canon: &mut [u64], tmp: &mut [u64]) -> u32 {
        canon.copy_from_slice(raw);
        let mut best = 0u32;
        for j in 1..self.order {
            tmp.fill(0);
            permute_bits(&self.bit_pow[j - 1], raw, tmp);
            if *tmp < *canon {
                canon.copy_from_slice(tmp);
                best = j as u32;
            }
        }
        best
    }

    /// Applies the j-th power of the generator to a state (pre-existing
    /// contents of `dst` are overwritten).
    pub fn apply_state(&self, j: u32, src: &[u64], dst: &mut [u64]) {
        dst.fill(0);
        if j == 0 {
            dst.copy_from_slice(src);
        } else {
            permute_bits(&self.bit_pow[j as usize - 1], src, dst);
        }
    }

    /// Applies the j-th power of the generator to an enabled set.
    pub fn apply_enabled(&self, j: u32, src: &[u64], dst: &mut [u64]) {
        dst.fill(0);
        if j == 0 {
            dst.copy_from_slice(src);
        } else {
            permute_bits(&self.act_pow[j as usize - 1], src, dst);
        }
    }

    /// The image of action `a` under the j-th power of the generator.
    #[must_use]
    pub fn rotate_action(&self, j: u32, a: u32) -> u32 {
        if j == 0 {
            a
        } else {
            self.act_pow[j as usize - 1][a as usize]
        }
    }

    /// The image of action `a` under the *inverse* j-th power — the step
    /// that turns a quotient trace concrete (see the module docs).
    #[must_use]
    pub fn unrotate_action(&self, j: u32, a: u32) -> u32 {
        let inv = (self.order as u32 - j % self.order as u32) % self.order as u32;
        self.rotate_action(inv, a)
    }

    /// The inverse j-th power applied to a state.
    pub fn unapply_state(&self, j: u32, src: &[u64], dst: &mut [u64]) {
        let inv = (self.order as u32 - j % self.order as u32) % self.order as u32;
        self.apply_state(inv, src, dst);
    }
}

/// One proposed edge out of an expanded frontier state.
struct EdgeRec {
    action: u32,
    rotation: u32,
    target: Target,
}

enum Target {
    Known(u32),
    Pending(Handle),
}

/// Edges proposed by one worker for one contiguous chunk of the frontier.
struct ChunkOut {
    /// Level-local index of the first parent in the chunk.
    start: usize,
    /// Per parent (in chunk order): cumulative edge count.
    offs: Vec<u32>,
    edges: Vec<EdgeRec>,
}

/// Level-synchronous parallel BFS over `factory`-built systems.
///
/// Observationally identical to [`explore`] at every thread count — see the
/// module docs for the commit-pass argument. With `symmetry`, explores the
/// rotation quotient instead (canonicalizing every successor before dedup);
/// the result is then the quotient graph over orbit representatives, with
/// per-state discovery rotations for concrete trace reconstruction.
///
/// # Panics
///
/// Panics when `symmetry` does not cover the system's state/action bits.
pub fn explore_parallel<S, F>(
    factory: F,
    cfg: &EngineConfig,
    symmetry: Option<&StateSymmetry>,
) -> ExploredGraph
where
    S: TransitionSystem + Send,
    F: Fn() -> S + Sync,
{
    explore_parallel_traced(factory, cfg, symmetry, &Obs::none())
}

/// [`explore_parallel`] with a recorder attached.
///
/// Per BFS level the engine opens `engine.level.expand` (worker expansion,
/// including concurrent dedup probes), `engine.level.dedup` (barrier-side
/// chunk ordering and pending-slot reset) and `engine.level.commit`
/// (canonical-order commit) spans; at the end it records the
/// [`EngineStats`] counters and the `engine.frontier.peak` gauge. All
/// recording happens at level barriers or after the run — the per-state
/// hot path never touches the recorder — and recording is observation-only:
/// the returned graph is bit-identical to an untraced run at every thread
/// count (pinned by the parallel≡serial proptests running with a live
/// collector).
///
/// # Panics
///
/// Panics when `symmetry` does not cover the system's state/action bits.
pub fn explore_parallel_traced<S, F>(
    factory: F,
    cfg: &EngineConfig,
    symmetry: Option<&StateSymmetry>,
    obs: &Obs,
) -> ExploredGraph
where
    S: TransitionSystem + Send,
    F: Fn() -> S + Sync,
{
    let started = std::time::Instant::now();
    let threads = cfg.resolved_threads().max(1);
    // one system per worker for the whole run (`factory` can be expensive);
    // workers re-acquire their own instance each level, uncontended
    let systems: Vec<std::sync::Mutex<S>> = (0..threads)
        .map(|_| std::sync::Mutex::new(factory()))
        .collect();
    let (stride, astride, action_count) = {
        let sys = systems[0].lock().expect("engine worker system");
        (
            sys.state_words().max(1),
            sys.action_count().div_ceil(64).max(1),
            sys.action_count(),
        )
    };
    let anchor_every = cfg.resolved_anchor_interval(stride);
    let sym = symmetry.filter(|s| s.order() > 1);
    if let Some(sy) = sym {
        assert!(
            sy.state_bits() <= stride * 64,
            "symmetry permutes more bits than the state holds"
        );
        assert!(
            sy.action_bits() >= action_count && sy.action_bits() <= astride * 64,
            "symmetry must cover every action"
        );
    }

    // initial state: canonicalize, then recompute its enabled set from
    // scratch directly on the representative
    let (init, rot0, en0) = {
        let mut sys0 = systems[0].lock().expect("engine worker system");
        let mut raw0 = vec![0u64; stride];
        sys0.write_initial(&mut raw0);
        let (init, rot0) = match sym {
            Some(sy) => {
                let mut canon = vec![0u64; stride];
                let mut tmp = vec![0u64; stride];
                let r = sy.canonicalize(&raw0, &mut canon, &mut tmp);
                (canon, r)
            }
            None => (raw0, 0),
        };
        let mut en0 = vec![0u64; astride];
        sys0.write_enabled_full(&init, &mut en0);
        (init, rot0, en0)
    };

    let mut g = ExploredGraph::with_initial(stride, &init, rot0, sym.is_some());
    let mut index = ShardIndex::new(threads.max(8) * 8, stride, astride);
    match index.probe_or_insert(
        hash_words(&init),
        &init,
        |_| false,
        |en| {
            en.copy_from_slice(&en0);
        },
    ) {
        Probe::Inserted(h) => index.assign(h, 0),
        p => unreachable!("initial state already present: {p:?}"),
    }
    index.clear_pending();

    let mut frontier_words = init;
    let mut frontier_en = en0;
    let mut level_start = 0usize;
    let mut level_num = 0usize;
    // observability tallies — plain locals, flushed to the recorder once
    // after the run so the level loop never locks the collector for them
    let mut levels_done = 0u64;
    let mut peak_frontier = 0usize;
    let mut dedup_known = 0u64;
    let mut dedup_pending = 0u64;

    loop {
        let level_len = g.len() - level_start;
        if level_len == 0 {
            break;
        }
        levels_done += 1;
        peak_frontier = peak_frontier.max(level_len);

        // expansion: workers propose edges for chunks of the frontier
        let t_level = if level_len < 512 { 1 } else { threads };
        let chunk = level_len.div_ceil(t_level * 4).max(32).min(level_len);
        let queues = rap_pool::StealQueues::new(t_level);
        queues.deal(
            (0..level_len)
                .step_by(chunk)
                .map(|a| (a, (a + chunk).min(level_len))),
        );
        let fw: &[u64] = &frontier_words;
        let fe: &[u64] = &frontier_en;
        let g_ref = &g;
        let index_ref = &index;
        let expand_span = obs.span("engine.level.expand");
        let mut chunk_outs: Vec<ChunkOut> = rap_pool::run_workers(t_level, |me| {
            let mut sys = systems[me].lock().expect("engine worker system");
            let mut raw = vec![0u64; stride];
            let mut canon = vec![0u64; stride];
            let mut tmp = vec![0u64; stride];
            let mut cmp = vec![0u64; stride];
            let mut en_scratch = vec![0u64; astride];
            let mut outs = Vec::new();
            while let Some((a, b)) = queues.next(me) {
                let mut out = ChunkOut {
                    start: a,
                    offs: Vec::with_capacity(b - a),
                    edges: Vec::new(),
                };
                for li in a..b {
                    let p_state = &fw[li * stride..(li + 1) * stride];
                    let p_en = &fe[li * astride..(li + 1) * astride];
                    for wi in 0..astride {
                        let mut bits = p_en[wi];
                        while bits != 0 {
                            let act = wi * 64 + bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            sys.apply(act, p_state, &mut raw);
                            let (cand, rotation): (&[u64], u32) = match sym {
                                Some(sy) => {
                                    let r = sy.canonicalize(&raw, &mut canon, &mut tmp);
                                    (&canon, r)
                                }
                                None => (&raw, 0),
                            };
                            let hash = hash_words(cand);
                            let probe = index_ref.probe_or_insert(
                                hash,
                                cand,
                                |id| {
                                    g_ref.fill_state(id as usize, &mut cmp);
                                    cmp == cand
                                },
                                |en_out| {
                                    // the incremental update is valid for the
                                    // *raw* successor; rotate the result into
                                    // the representative's frame
                                    match sym {
                                        Some(sy) if rotation > 0 => {
                                            en_scratch.copy_from_slice(p_en);
                                            sys.update_enabled(act, &raw, &mut en_scratch);
                                            sy.apply_enabled(rotation, &en_scratch, en_out);
                                        }
                                        _ => {
                                            en_out.copy_from_slice(p_en);
                                            sys.update_enabled(act, &raw, en_out);
                                        }
                                    }
                                },
                            );
                            out.edges.push(EdgeRec {
                                action: act as u32,
                                rotation,
                                target: match probe {
                                    Probe::Committed(id) => Target::Known(id),
                                    Probe::Pending(h) | Probe::Inserted(h) => Target::Pending(h),
                                },
                            });
                        }
                    }
                    out.offs.push(out.edges.len() as u32);
                }
                outs.push(out);
            }
            outs
        })
        .into_iter()
        .flat_map(|r| {
            // a dead worker is unrecoverable here: the level barrier needs
            // every chunk, so escalate instead of committing a partial level
            r.unwrap_or_else(|e| panic!("state-space engine worker died: {e}"))
        })
        .collect();

        drop(expand_span);

        // commit: one pass in canonical (parent id, action) order assigns
        // dense ids exactly as the serial engine would
        {
            let _dedup = obs.span("engine.level.dedup");
            chunk_outs.sort_by_key(|c| c.start);
        }
        let commit_span = obs.span("engine.level.commit");
        let anchor_next = anchor_every == 1 || (level_num + 1).is_multiple_of(anchor_every);
        let mut next_words: Vec<u64> = Vec::new();
        let mut next_en: Vec<u64> = Vec::new();
        'commit: for co in &chunk_outs {
            let mut e0 = 0usize;
            for (k, &e1) in co.offs.iter().enumerate() {
                let parent_local = co.start + k;
                let parent_id = (level_start + parent_local) as u32;
                for e in &co.edges[e0..e1 as usize] {
                    let id = match e.target {
                        Target::Known(id) => {
                            dedup_known += 1;
                            id
                        }
                        Target::Pending(h) => match index.assigned(h) {
                            Some(id) => {
                                dedup_pending += 1;
                                id
                            }
                            None => {
                                if g.len() >= cfg.max_states {
                                    g.outcome = ExploreOutcome::Truncated {
                                        limit: cfg.max_states,
                                    };
                                    break 'commit;
                                }
                                let id = g.len() as u32;
                                let (w, en) = index.pending_data(h);
                                let pw = &frontier_words
                                    [parent_local * stride..(parent_local + 1) * stride];
                                g.push_state(w, pw, anchor_next, parent_id, e.action, e.rotation);
                                next_words.extend_from_slice(w);
                                next_en.extend_from_slice(en);
                                index.assign(h, id);
                                id
                            }
                        },
                    };
                    g.succ.push((e.action, id));
                }
                e0 = e1 as usize;
                g.succ_off.push(g.succ.len() as u32);
            }
        }

        drop(commit_span);

        if g.is_truncated() {
            break;
        }
        // wall-clock deadline, consulted only here — at the level-commit
        // barrier — so the explored prefix is always a complete-level
        // prefix of the canonical BFS order (see `EngineConfig::deadline`)
        if cfg.deadline.is_some_and(|d| started.elapsed() >= d) {
            g.outcome = ExploreOutcome::Truncated { limit: g.len() };
            break;
        }
        {
            let _dedup = obs.span("engine.level.dedup");
            index.clear_pending();
        }
        level_start = g.len() - next_words.len() / stride;
        frontier_words = next_words;
        frontier_en = next_en;
        level_num += 1;
    }

    // close offsets of states that were never (or only partially) expanded
    while g.succ_off.len() < g.len() + 1 {
        g.succ_off.push(g.succ.len() as u32);
    }

    if obs.is_enabled() {
        obs.add("engine.levels", levels_done);
        obs.add("engine.states", g.len() as u64);
        obs.add("engine.edges", g.succ.len() as u64);
        obs.add("engine.dedup.known", dedup_known);
        obs.add("engine.dedup.pending", dedup_pending);
        obs.add("engine.shard.contended", index.contention());
        #[allow(clippy::cast_precision_loss)]
        obs.gauge("engine.frontier.peak", peak_frontier as f64);
    }
    g
}

/// Sparse masks per transition, CSR-packed: `data[off[t]..off[t+1]]` holds
/// `(word index, bit mask)` pairs.
#[derive(Debug, Clone)]
struct MaskCsr {
    off: Vec<u32>,
    data: Vec<(u32, u64)>,
}

impl MaskCsr {
    fn builder(rows: usize) -> MaskCsrBuilder {
        MaskCsrBuilder {
            rows: vec![Vec::new(); rows],
        }
    }

    #[inline]
    fn row(&self, t: usize) -> &[(u32, u64)] {
        &self.data[self.off[t] as usize..self.off[t + 1] as usize]
    }
}

struct MaskCsrBuilder {
    rows: Vec<Vec<(u32, u64)>>,
}

impl MaskCsrBuilder {
    /// Adds place index `p` to row `t`, merging into an existing word mask.
    fn add(&mut self, t: usize, p: usize) {
        let (w, m) = ((p / 64) as u32, 1u64 << (p % 64));
        let row = &mut self.rows[t];
        match row.iter_mut().find(|(rw, _)| *rw == w) {
            Some((_, rm)) => *rm |= m,
            None => row.push((w, m)),
        }
    }

    fn finish(self) -> MaskCsr {
        let mut off = Vec::with_capacity(self.rows.len() + 1);
        let mut data = Vec::new();
        off.push(0);
        for mut row in self.rows {
            row.sort_unstable_by_key(|&(w, _)| w);
            data.extend_from_slice(&row);
            off.push(data.len() as u32);
        }
        MaskCsr { off, data }
    }
}

/// Precomputed place→transition incidence of a [`PetriNet`], specialised for
/// word-packed markings.
///
/// Per transition it stores the enabledness condition as word masks —
/// `need` (consumed ∪ read places, must all be marked) and `forbid`
/// (produced-but-not-consumed places, must all be empty, the 1-safety rule)
/// — the firing effect (`clear`/`set` masks), and the *affected set*: the
/// transitions whose enabledness can change when this transition fires,
/// i.e. those whose `need`/`forbid` places intersect this transition's
/// changed places. The affected sets are what makes exploration
/// event-driven.
#[derive(Debug, Clone)]
pub struct Incidence {
    words: usize,
    transitions: usize,
    need: MaskCsr,
    forbid: MaskCsr,
    clear: MaskCsr,
    set: MaskCsr,
    affected_off: Vec<u32>,
    affected: Vec<u32>,
}

impl Incidence {
    /// Builds the incidence index of `net`.
    #[must_use]
    pub fn from_net(net: &PetriNet) -> Self {
        let np = net.place_count();
        let nt = net.transition_count();
        let mut need = MaskCsr::builder(nt);
        let mut forbid = MaskCsr::builder(nt);
        let mut clear = MaskCsr::builder(nt);
        let mut set = MaskCsr::builder(nt);
        // place -> transitions whose enabledness depends on it
        let mut watchers: Vec<Vec<u32>> = vec![Vec::new(); np];
        // per transition: places toggled by firing (consumes Δ produces)
        let mut changed: Vec<Vec<usize>> = vec![Vec::new(); nt];

        for t in net.transitions() {
            let ti = t.index();
            let tr = net.transition(t);
            for &p in tr.consumes() {
                need.add(ti, p.index());
                clear.add(ti, p.index());
                watchers[p.index()].push(ti as u32);
                if tr.produces().binary_search(&p).is_err() {
                    changed[ti].push(p.index());
                }
            }
            for &p in tr.reads() {
                if tr.consumes().binary_search(&p).is_err() {
                    watchers[p.index()].push(ti as u32);
                }
                need.add(ti, p.index());
            }
            for &p in tr.produces() {
                set.add(ti, p.index());
                if tr.consumes().binary_search(&p).is_err() {
                    forbid.add(ti, p.index());
                    watchers[p.index()].push(ti as u32);
                    changed[ti].push(p.index());
                }
            }
        }

        let mut affected_off = Vec::with_capacity(nt + 1);
        let mut affected = Vec::new();
        affected_off.push(0);
        let mut row: Vec<u32> = Vec::new();
        for changed_places in &changed {
            row.clear();
            for &p in changed_places {
                row.extend_from_slice(&watchers[p]);
            }
            row.sort_unstable();
            row.dedup();
            affected.extend_from_slice(&row);
            affected_off.push(affected.len() as u32);
        }

        Incidence {
            words: np.div_ceil(64),
            transitions: nt,
            need: need.finish(),
            forbid: forbid.finish(),
            clear: clear.finish(),
            set: set.finish(),
            affected_off,
            affected,
        }
    }

    /// Words per packed marking.
    #[must_use]
    pub fn marking_words(&self) -> usize {
        self.words
    }

    /// Number of transitions indexed.
    #[must_use]
    pub fn transition_count(&self) -> usize {
        self.transitions
    }

    /// Is `t` enabled in the word-packed marking `state`? Equivalent to
    /// [`PetriNet::is_enabled`] on the corresponding [`crate::Marking`].
    #[must_use]
    #[inline]
    pub fn is_enabled(&self, t: TransitionId, state: &[u64]) -> bool {
        let ti = t.index();
        self.need
            .row(ti)
            .iter()
            .all(|&(w, m)| state[w as usize] & m == m)
            && self
                .forbid
                .row(ti)
                .iter()
                .all(|&(w, m)| state[w as usize] & m == 0)
    }

    /// Fires `t` (assumed enabled) on `src`, writing the successor marking
    /// into `dst`.
    #[inline]
    pub fn fire_into(&self, t: TransitionId, src: &[u64], dst: &mut [u64]) {
        dst.copy_from_slice(src);
        for &(w, m) in self.clear.row(t.index()) {
            dst[w as usize] &= !m;
        }
        for &(w, m) in self.set.row(t.index()) {
            dst[w as usize] |= m;
        }
    }

    /// The transitions whose enabledness must be re-checked after `t` fires.
    #[must_use]
    #[inline]
    pub fn affected(&self, t: TransitionId) -> &[u32] {
        let ti = t.index();
        &self.affected[self.affected_off[ti] as usize..self.affected_off[ti + 1] as usize]
    }
}

/// [`TransitionSystem`] view of a [`PetriNet`]: actions are transitions,
/// states are word-packed markings.
pub struct NetSystem {
    inc: Incidence,
    initial: Vec<u64>,
}

impl NetSystem {
    /// Builds the system (and its [`Incidence`] index) for `net`.
    #[must_use]
    pub fn new(net: &PetriNet) -> Self {
        let inc = Incidence::from_net(net);
        let mut initial = vec![0u64; inc.marking_words().max(1)];
        for p in net.places() {
            if net.place(p).initially_marked {
                set_bit(&mut initial, p.index(), true);
            }
        }
        NetSystem { inc, initial }
    }

    /// The underlying incidence index.
    #[must_use]
    pub fn incidence(&self) -> &Incidence {
        &self.inc
    }
}

impl TransitionSystem for NetSystem {
    fn state_words(&self) -> usize {
        self.inc.marking_words()
    }

    fn action_count(&self) -> usize {
        self.inc.transition_count()
    }

    fn write_initial(&mut self, out: &mut [u64]) {
        out.copy_from_slice(&self.initial);
    }

    fn write_enabled_full(&mut self, state: &[u64], out: &mut [u64]) {
        for ti in 0..self.inc.transition_count() {
            set_bit(
                out,
                ti,
                self.inc.is_enabled(TransitionId::from_index(ti), state),
            );
        }
    }

    fn apply(&mut self, a: usize, state: &[u64], out: &mut [u64]) {
        self.inc.fire_into(TransitionId::from_index(a), state, out);
    }

    fn update_enabled(&mut self, a: usize, state: &[u64], enabled: &mut [u64]) {
        for &t2 in self.inc.affected(TransitionId::from_index(a)) {
            set_bit(
                enabled,
                t2 as usize,
                self.inc
                    .is_enabled(TransitionId::from_index(t2 as usize), state),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Marking;

    fn ring(n: usize) -> PetriNet {
        let mut net = PetriNet::new();
        let places: Vec<_> = (0..n)
            .map(|i| net.add_place(format!("p{i}"), i == 0))
            .collect();
        for i in 0..n {
            let t = net.add_transition(format!("t{i}"));
            net.consume(t, places[i]);
            net.produce(t, places[(i + 1) % n]);
        }
        net
    }

    fn marking_of(net: &PetriNet, words: &[u64]) -> Marking {
        let mut m = Marking::empty(net.place_count());
        for p in net.places() {
            m.set(p, get_bit(words, p.index()));
        }
        m
    }

    #[test]
    fn incidence_agrees_with_net_enabledness() {
        let net = ring(5);
        let inc = Incidence::from_net(&net);
        let mut sys = NetSystem::new(&net);
        let g = explore(&mut sys, 1_000);
        for i in 0..g.len() {
            let words = g.state_vec(i);
            let m = marking_of(&net, &words);
            for t in net.transitions() {
                assert_eq!(inc.is_enabled(t, &words), net.is_enabled(t, &m));
            }
        }
    }

    #[test]
    fn fire_into_matches_net_fire() {
        let net = ring(4);
        let inc = Incidence::from_net(&net);
        let mut sys = NetSystem::new(&net);
        let g = explore(&mut sys, 1_000);
        let mut dst = vec![0u64; g.stride()];
        for i in 0..g.len() {
            let words = g.state_vec(i);
            let m = marking_of(&net, &words);
            for t in net.transitions() {
                if inc.is_enabled(t, &words) {
                    inc.fire_into(t, &words, &mut dst);
                    assert_eq!(marking_of(&net, &dst), net.fire(t, &m).unwrap());
                }
            }
        }
    }

    #[test]
    fn affected_sets_cover_every_status_flip() {
        // brute-force cross-check: firing t in any reachable marking only
        // changes the enabledness of transitions in affected(t)
        let net = ring(6);
        let inc = Incidence::from_net(&net);
        let mut sys = NetSystem::new(&net);
        let g = explore(&mut sys, 1_000);
        let mut dst = vec![0u64; g.stride()];
        for i in 0..g.len() {
            let words = g.state_vec(i);
            for t in net.transitions() {
                if !inc.is_enabled(t, &words) {
                    continue;
                }
                inc.fire_into(t, &words, &mut dst);
                for t2 in net.transitions() {
                    let flipped = inc.is_enabled(t2, &words) != inc.is_enabled(t2, &dst);
                    if flipped {
                        assert!(
                            inc.affected(t).contains(&(t2.index() as u32)),
                            "{t2:?} flipped but is not in affected({t:?})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn dedup_table_grows_correctly() {
        // a ring large enough to force several table growths
        let net = ring(3000);
        let mut sys = NetSystem::new(&net);
        let g = explore(&mut sys, 10_000);
        assert_eq!(g.len(), 3000);
        assert!(!g.is_truncated());
    }

    #[test]
    fn zero_place_net_has_single_state() {
        let mut net = PetriNet::new();
        net.add_transition("noop");
        let mut sys = NetSystem::new(&net);
        let g = explore(&mut sys, 10);
        // `noop` has no arcs: it is enabled and loops on the only state
        assert_eq!(g.len(), 1);
        assert_eq!(g.successors(0), &[(0, 0)]);
        assert!(!g.is_truncated());
    }

    #[test]
    fn truncation_reports_the_limit() {
        let net = ring(10);
        let mut sys = NetSystem::new(&net);
        let g = explore(&mut sys, 4);
        assert_eq!(g.outcome(), ExploreOutcome::Truncated { limit: 4 });
        let g = explore_parallel(|| NetSystem::new(&net), &cfg(4, 2, 0), None);
        assert_eq!(g.outcome(), ExploreOutcome::Truncated { limit: 4 });
    }

    fn cfg(max_states: usize, threads: usize, anchor_interval: usize) -> EngineConfig {
        EngineConfig {
            max_states,
            threads,
            anchor_interval,
            deadline: None,
        }
    }

    /// Parallel ≡ serial on a ring, across thread counts, anchor settings
    /// and budgets — the unit-level version of the differential suite.
    #[test]
    fn parallel_matches_serial_exactly() {
        let net = ring(64);
        let mut sys = NetSystem::new(&net);
        for budget in [usize::MAX, 64, 17, 3, 1] {
            let a = explore(&mut sys, budget);
            for threads in [1usize, 2, 4] {
                for anchors in [0usize, 1, 3] {
                    let b = explore_parallel(
                        || NetSystem::new(&net),
                        &cfg(budget, threads, anchors),
                        None,
                    );
                    assert_eq!(a.len(), b.len(), "t={threads} a={anchors} b={budget}");
                    assert_eq!(a.outcome(), b.outcome());
                    assert_eq!(a.succ, b.succ);
                    assert_eq!(a.succ_off, b.succ_off);
                    assert_eq!(a.parents, b.parents);
                    for i in 0..a.len() {
                        assert_eq!(a.state_vec(i), b.state_vec(i));
                    }
                }
            }
        }
    }

    /// Delta storage with a forced small anchor interval reconstructs every
    /// state bit-exactly on a wide-state system (stride > 1).
    #[test]
    fn delta_reconstruction_is_exact_on_wide_states() {
        let net = ring(150); // 3 words per marking
        let a = explore_parallel(|| NetSystem::new(&net), &cfg(1_000, 1, 1), None);
        let b = explore_parallel(|| NetSystem::new(&net), &cfg(1_000, 1, 5), None);
        assert_eq!(a.len(), b.len());
        assert!(b.anchor_count() < b.len(), "deltas were actually used");
        for i in 0..a.len() {
            assert_eq!(a.state_vec(i), b.state_vec(i), "state {i}");
        }
    }

    /// A ring is rotation-symmetric: the quotient under the full cyclic
    /// group collapses all n token positions into one orbit.
    #[test]
    fn ring_quotient_collapses_rotations() {
        let n = 8usize;
        let net = ring(n);
        // generator: place i -> i+1, transition i -> i+1 (mod n)
        let bit_perm: Vec<u32> = (0..n as u32).map(|i| (i + 1) % n as u32).collect();
        let act_perm = bit_perm.clone();
        let sym = StateSymmetry::new(bit_perm, act_perm).unwrap();
        assert_eq!(sym.order(), n);
        let full = explore_parallel(|| NetSystem::new(&net), &cfg(1_000, 1, 0), None);
        let quo = explore_parallel(|| NetSystem::new(&net), &cfg(1_000, 1, 0), Some(&sym));
        assert_eq!(full.len(), n);
        assert_eq!(quo.len(), 1);
        // concrete trace reconstruction: the quotient self-loop unrotates to
        // a concretely firable transition from the concrete initial state
        let rep_rot = quo.rotation(0);
        let mut concrete = vec![0u64; quo.stride()];
        sym.unapply_state(rep_rot, &quo.state_vec(0), &mut concrete);
        assert_eq!(concrete, full.state_vec(0));
    }

    #[test]
    fn symmetry_rejects_non_permutations() {
        assert!(StateSymmetry::new(vec![0, 0], vec![0, 1]).is_err());
        assert!(StateSymmetry::new(vec![0, 2], vec![0, 1]).is_err());
        let id = StateSymmetry::new(vec![0, 1], vec![0]).unwrap();
        assert_eq!(id.order(), 1);
    }

    #[test]
    fn canonicalize_picks_least_rotation_and_reports_it() {
        // 4-bit cyclic shift: states 0b0010 -> canon 0b0001 at some power
        let perm: Vec<u32> = (0..4).map(|i| (i + 1) % 4).collect();
        let sym = StateSymmetry::new(perm, vec![0]).unwrap();
        let raw = [0b0100u64];
        let mut canon = [0u64];
        let mut tmp = [0u64];
        let j = sym.canonicalize(&raw, &mut canon, &mut tmp);
        assert_eq!(canon[0], 0b0001);
        // applying g^j to raw reproduces the canon, and the inverse returns
        let mut back = [0u64];
        sym.apply_state(j, &raw, &mut back);
        assert_eq!(back, canon);
        sym.unapply_state(j, &canon, &mut back);
        assert_eq!(back, raw);
    }
}
