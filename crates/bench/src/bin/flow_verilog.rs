//! FLOW — The backend hand-off (§II-D): map a verified DFS model to an
//! NCL-D gate netlist and export structural Verilog for a conventional
//! EDA flow, reporting the area cost of the chain-vs-tree completion
//! choice (the §IV discussion item).

use dfs_core::DfsBuilder;
use rap_bench::banner;
use rap_bench::cli::BenchCli;
use rap_silicon::components::CompletionStyle;
use rap_silicon::map::{map_dfs, BlockFunction, MapConfig};
use rap_silicon::verilog::to_verilog;

fn main() {
    let cli = BenchCli::parse("flow_verilog", None);
    rap_bench::trace::with_trace(&cli, |_obs| run(&cli));
}

fn run(cli: &BenchCli) {
    banner("Flow — DFS -> NCL-D netlist -> Verilog export");

    // a small OPE-style stage: window register + comparator + rank adder
    let mut b = DfsBuilder::new();
    let win = b.register("window").marked().build();
    let item = b.register("item").build();
    let cmp = b.logic("cmp").build();
    let rank = b.register("rank").marked().build();
    let add = b.logic("add").build();
    let out = b.register("out").build();
    b.connect(win, cmp);
    b.connect(item, cmp);
    b.connect(cmp, add);
    b.connect(rank, add);
    b.connect(add, out);
    let dfs = b.finish().unwrap();

    for (name, style) in [
        ("tree", CompletionStyle::Tree { fan_in: 2 }),
        ("daisy-chain", CompletionStyle::Chain),
    ] {
        let mut cfg = MapConfig::with_width(16);
        cfg.completion = style;
        cfg.functions.insert("cmp".into(), BlockFunction::CompareGt);
        cfg.functions.insert("add".into(), BlockFunction::Add);
        let mapped = map_dfs(&dfs, &cfg).unwrap();
        println!(
            "{name:>12} completion: {} cells, {} nets, area {:.1} NAND-eq",
            mapped.netlist.cell_count(),
            mapped.netlist.net_count(),
            mapped.netlist.area()
        );
    }

    let mut cfg = MapConfig::with_width(16);
    cfg.functions.insert("cmp".into(), BlockFunction::CompareGt);
    cfg.functions.insert("add".into(), BlockFunction::Add);
    let mapped = map_dfs(&dfs, &cfg).unwrap();
    let verilog = to_verilog(&mapped.netlist, "ope_stage");
    let lines: Vec<&str> = verilog.lines().collect();
    let shown = if cli.quick { 10 } else { 40 };
    println!("\nVerilog ({} lines); first {shown}:", lines.len());
    for l in lines.iter().take(shown) {
        println!("  {l}");
    }
}
