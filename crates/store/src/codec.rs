//! Little-endian byte codec shared by the frame format and the payload
//! encoders in `rap-session`.
//!
//! The vendored `serde` is an intentional no-op shim, so persistence is
//! hand-rolled: a [`Writer`] appends fixed-width little-endian fields and
//! length-prefixed strings; a [`Reader`] consumes them back, returning
//! `None` on any truncation so decoders degrade to "corrupt frame"
//! (quarantine + recompute) instead of panicking. Floats always travel as
//! their IEEE-754 bit patterns ([`f64::to_bits`]) — the round-trip is
//! bit-exact by construction, which is what the differential fault suite
//! asserts.

/// Append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Consumes the writer, yielding the encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Checked little-endian decoder over a byte slice.
///
/// Every accessor returns `None` on underrun; [`Reader::finish`] returns
/// `None` unless the slice was consumed exactly — trailing garbage is as
/// corrupt as truncation.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    /// Reads a single byte.
    pub fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Option<String> {
        let len = usize::try_from(self.u64()?).ok()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    /// Succeeds only if every byte has been consumed.
    pub fn finish(self) -> Option<()> {
        (self.pos == self.buf.len()).then_some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_field_kinds() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.str("critical: mul→acc");
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u32(), Some(0xDEAD_BEEF));
        assert_eq!(r.u64(), Some(u64::MAX - 3));
        assert_eq!(r.f64().map(f64::to_bits), Some((-0.0f64).to_bits()));
        assert_eq!(r.f64().map(f64::to_bits), Some(f64::NAN.to_bits()));
        assert_eq!(r.str().as_deref(), Some("critical: mul→acc"));
        assert_eq!(r.finish(), Some(()));
    }

    #[test]
    fn truncation_and_trailing_bytes_are_errors() {
        let mut w = Writer::new();
        w.u64(42);
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes[..7]);
        assert_eq!(r.u64(), None);

        let mut r = Reader::new(&bytes);
        assert_eq!(r.u32(), Some(42));
        assert_eq!(r.finish(), None); // 4 bytes left over

        let mut r = Reader::new(&bytes);
        let huge_len = r.u64().unwrap();
        let mut r2 = Reader::new(&bytes);
        // a string whose length prefix overruns the buffer must fail
        assert_eq!(r2.str(), None);
        assert_eq!(huge_len, 42);
    }
}
