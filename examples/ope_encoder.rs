//! Ordinal pattern encoding with the chip model: normal-mode streaming,
//! window-size reconfiguration, and the random-mode checksum flow used for
//! testbench-free measurements — plus the session-compiled DFS models of
//! the same reconfigurations, showing what each window size costs in
//! pipeline throughput.
//!
//! Run with `cargo run --example ope_encoder`.

use rap::ope::chip::{behavioural_checksum, Chip, ChipConfig, Mode};
use rap::ope::dfs_model::reconfigurable_ope_dfs;
use rap::ope::reference::windows_ranked;
use rap::Session;

fn main() -> Result<(), rap::Error> {
    // the §III-A example stream
    let stream: Vec<u16> = vec![3, 1, 4, 1, 5, 9, 2, 6];
    println!("stream: {stream:?}\n");

    // full rank lists (what OPE computes conceptually)
    println!("rank lists for window size 6:");
    for (i, ranks) in windows_ranked(&stream, 6).enumerate() {
        println!("  window {}: {ranks:?}", i + 1);
    }

    // "Users of OPE engines often try multiple window sizes N (via
    // reconfiguration) to discover hidden patterns" — §III-A. Each window
    // size is one operating depth of the same reconfigurable pipeline;
    // the session caches one throughput analysis per depth, so asking
    // again (or asking for energy next) costs nothing.
    let session = Session::new();
    println!("\nnewest-item ranks and exact pipeline period per window size:");
    for depth in [3usize, 4, 6] {
        let mut chip = Chip::new(ChipConfig::Reconfigurable { depth });
        let out = chip.run_normal(&stream);
        let model = session.compile(&reconfigurable_ope_dfs(6, depth)?.dfs);
        let perf = model.perf()?;
        println!(
            "  N = {depth}: {out:?}  (period {} time units, throughput {:.4})",
            perf.period, perf.throughput
        );
    }
    let stats = session.stats();
    println!(
        "  ({} models compiled, {} throughput analyses performed)",
        stats.models, stats.queries.perf_analyses
    );

    // random mode: LFSR -> pipeline -> accumulator, one checksum out
    let seed = 0xD00D_FEED;
    let count = 1_000_000;
    let mut chip = Chip::new(ChipConfig::Reconfigurable { depth: 9 });
    let checksum = chip.run(Mode::Random { seed, count }, &[]);
    let golden = behavioural_checksum(9, seed, count);
    println!("\nrandom mode (seed 0x{seed:08X}, {count} items, N=9):");
    println!("  chip accumulator : 0x{checksum:016X}");
    println!("  behavioural model: 0x{golden:016X}");
    assert_eq!(checksum, golden, "validation flow of §IV");
    println!("  validated ✓");
    Ok(())
}
