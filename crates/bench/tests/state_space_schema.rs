//! The `state_space_scaling` sweep must emit schema-valid JSON, and the
//! engine must beat the naive explorer on every swept shape (no regression
//! is tolerated anywhere; the acceptance shape demands a real speedup).
//!
//! Runs the quick sweep in-process — the CI workflow additionally runs the
//! binary itself (`state_space_scaling --quick`), which re-validates what it
//! wrote to disk.

use rap_bench::state_space::{render_json, run_sweep, validate, SCHEMA};

#[test]
fn quick_sweep_emits_valid_json() {
    let cases = run_sweep(true);
    assert!(!cases.is_empty());
    let json = render_json(&cases, true);
    assert!(json.contains(SCHEMA));
    let summary = validate(&json).expect("emitted JSON validates against the v2 schema");
    assert_eq!(summary.cases, cases.len());
    assert!(summary.min_speedup.is_finite());
    assert!(summary.max_thread_speedup.is_finite());
    assert!(summary.max_quotient_reduction >= 1.0);
}

#[test]
fn engine_never_regresses_on_quick_shapes() {
    // debug builds on shared CI hardware are noisy and the quick shapes run
    // sub-millisecond, so demand only "not grossly slower" (one preempted
    // sample must not fail the suite); the recorded release sweep documents
    // the real (≥3x) margins
    for c in run_sweep(true) {
        assert!(
            c.engine_ms <= c.naive_ms * 2.0,
            "{} [{}]: engine {:.3}ms vs naive {:.3}ms — a real regression, not noise",
            c.name,
            c.backend,
            c.engine_ms,
            c.naive_ms
        );
    }
}
