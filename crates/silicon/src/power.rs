//! Energy model: dynamic (switching) and static (leakage) components.
//!
//! * Each output transition switches an effective capacitance proportional
//!   to the gate's complexity: `E_switch(V) = e0 · complexity · (V/V0)²`
//!   (the `C·V²` law).
//! * Leakage power grows with supply roughly exponentially in the
//!   subthreshold regime; a simple `P_leak(V) = p0 · (V/V0) · e^{(V−V0)/vk}`
//!   fit captures the measured floor of Fig. 9b (the flat ~µW consumption
//!   while the circuit idles at 0.5 V and below).
//!
//! The absolute constants are calibrated in `rap-ope` so that the static
//! OPE pipeline at 1.2 V reproduces the paper's reference measurement
//! (1.22 s, 2.74 mJ for 16M items).

use serde::{Deserialize, Serialize};

/// Energy/power model parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Nominal supply (V).
    pub v0: f64,
    /// Energy per unit-complexity output transition at `v0` (J).
    pub e_switch0: f64,
    /// Leakage power of the whole circuit at `v0` (W) per unit area.
    pub p_leak0: f64,
    /// Exponential voltage sensitivity of leakage (V).
    pub vk: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            v0: 1.2,
            e_switch0: 1.0e-15, // 1 fJ per NAND-equivalent transition
            p_leak0: 1.0e-9,    // 1 nW per NAND-equivalent of area
            vk: 0.5,
        }
    }
}

impl EnergyModel {
    /// Energy of one output transition of a gate with the given complexity
    /// at supply `v`.
    #[must_use]
    pub fn switch_energy(&self, complexity: f64, v: f64) -> f64 {
        self.e_switch0 * complexity * (v / self.v0).powi(2)
    }

    /// Leakage power of a circuit of the given total area at supply `v`.
    #[must_use]
    pub fn leakage_power(&self, area: f64, v: f64) -> f64 {
        self.p_leak0 * area * (v / self.v0) * ((v - self.v0) / self.vk).exp()
    }
}

/// A sampled power trace (for the Fig. 9b plot).
#[derive(Debug, Clone, Default)]
pub struct PowerTrace {
    /// Sample instants.
    pub time: Vec<f64>,
    /// Average power over the preceding sampling interval (W).
    pub power: Vec<f64>,
    /// Supply voltage at the sample instant (V).
    pub voltage: Vec<f64>,
}

impl PowerTrace {
    /// Appends a sample.
    pub fn push(&mut self, time: f64, power: f64, voltage: f64) {
        self.time.push(time);
        self.power.push(power);
        self.voltage.push(voltage);
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.time.len()
    }

    /// Is the trace empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.time.is_empty()
    }

    /// The peak power sample.
    #[must_use]
    pub fn peak(&self) -> Option<(f64, f64)> {
        self.power
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &p)| (self.time[i], p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switching_energy_scales_quadratically() {
        let m = EnergyModel::default();
        let e12 = m.switch_energy(1.0, 1.2);
        let e06 = m.switch_energy(1.0, 0.6);
        assert!((e12 / e06 - 4.0).abs() < 1e-9, "V² law");
        assert!(m.switch_energy(2.0, 1.2) > m.switch_energy(1.0, 1.2));
    }

    #[test]
    fn leakage_grows_with_voltage() {
        let m = EnergyModel::default();
        assert!(m.leakage_power(100.0, 1.2) > m.leakage_power(100.0, 0.5));
        assert!(m.leakage_power(100.0, 0.5) > 0.0);
    }

    #[test]
    fn power_trace_peak() {
        let mut t = PowerTrace::default();
        assert!(t.is_empty());
        t.push(0.0, 1.0, 0.5);
        t.push(1.0, 5.0, 0.5);
        t.push(2.0, 2.0, 0.4);
        assert_eq!(t.len(), 3);
        assert_eq!(t.peak(), Some((1.0, 5.0)));
    }
}
