//! Pins the tentpole claim that a detached [`Obs`] handle is free: the
//! disabled counter/span paths should be within noise of the empty loop,
//! and orders of magnitude under the enabled paths.

use criterion::{criterion_group, criterion_main, Criterion};
use rap_obs::{Collector, Obs};
use std::sync::Arc;

const ITERS: u64 = 4096;

fn bench_disabled(c: &mut Criterion) {
    let off = Obs::none();
    c.bench_function("obs_baseline_empty_loop", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..ITERS {
                acc = acc.wrapping_add(i);
            }
            acc
        })
    });
    c.bench_function("obs_disabled_counter_add", |b| {
        b.iter(|| {
            for _ in 0..ITERS {
                off.add("bench.counter", 1);
            }
        })
    });
    c.bench_function("obs_disabled_span_open_close", |b| {
        b.iter(|| {
            for _ in 0..ITERS {
                let _t = off.span("bench.span");
            }
        })
    });
}

fn bench_enabled(c: &mut Criterion) {
    let collector = Arc::new(Collector::new());
    let on = Obs::collecting(&collector);
    c.bench_function("obs_enabled_counter_add", |b| {
        b.iter(|| {
            for _ in 0..ITERS {
                on.add("bench.counter", 1);
            }
        })
    });
    c.bench_function("obs_enabled_span_open_close", |b| {
        b.iter(|| {
            for _ in 0..ITERS {
                let _t = on.span("bench.span");
            }
        })
    });
}

criterion_group!(noop_overhead, bench_disabled, bench_enabled);
criterion_main!(noop_overhead);
