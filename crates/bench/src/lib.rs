//! Shared helpers for the experiment binaries that regenerate every table
//! and figure of the paper's evaluation (see `DESIGN.md` §4 for the index
//! and `EXPERIMENTS.md` for recorded results).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod dse;
pub mod json;
pub mod state_space;
pub mod trace;

/// The paper's reference measurements (static pipeline at nominal voltage,
/// §IV): 1.22 s and 2.74 mJ for 16M items.
pub const REF_TIME_S: f64 = 1.22;
/// Reference energy (J).
pub const REF_ENERGY_J: f64 = 2.74e-3;
/// Items per measured run.
pub const ITEMS: u64 = 16_000_000;
/// Nominal supply voltage (V).
pub const V_NOMINAL: f64 = 1.2;

/// Prints a row of fixed-width columns.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Formats a float with the given precision, or `inf`/`-` for non-finite.
#[must_use]
pub fn num(x: f64, digits: usize) -> String {
    if x.is_finite() {
        format!("{x:.digits$}")
    } else {
        "frozen".to_string()
    }
}

/// A simple banner for experiment output.
pub fn banner(title: &str) {
    println!("{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(num(1.23456, 2), "1.23");
        assert_eq!(num(f64::INFINITY, 2), "frozen");
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }
}
