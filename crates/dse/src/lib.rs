//! **rap-dse** — parallel design-space exploration for reconfigurable
//! asynchronous pipelines.
//!
//! The paper's configurations trade throughput against power and area
//! (Fig. 5 performance rows, Fig. 9 voltage/power sweeps); this crate
//! answers the question those trade-offs pose — *which design should I
//! build?* — by sweeping a declarative configuration space and emitting
//! the exact Pareto front over **(throughput, energy per item, area)** for
//! every workload demand:
//!
//! * [`space`] — the space: hardware candidates (static, reconfigurable,
//!   wagged-replicated pipelines) × workload window demands × datapath
//!   sizing × supply voltage;
//! * [`models`] — the wagged-OPE topology (full-pipeline replication
//!   behind round-robin steering);
//! * [`eval`] — exact per-point evaluation: period from
//!   `dfs_core::perf::analyse` (phase-unfolded where the schedule has
//!   choice), switching energy from the exact per-node activity, area
//!   from the `rap_silicon::cost` gate-equivalent model, and a budgeted
//!   deadlock/1-safety screen through `rap_petri`;
//! * [`pareto`] — the dominance kernel (deterministic, order-independent,
//!   property-tested against an O(n²) oracle);
//! * [`driver`] — the work-stealing thread pool with sharded result
//!   collection, structural memoization and pruning.
//!
//! # Guarantees
//!
//! **Memoization is exact.** Configurations compile into a shared
//! `rap_session::Session`, which interns models by the canonical
//! `Dfs::structural_hash` plus a byte-exact identity digest: two points
//! that build identical timing models — e.g. the same silicon at two
//! supply voltages, or non-reconfigurable hardware under two workload
//! demands — share one `CompiledModel` and therefore one evaluation, and
//! voltage is applied analytically (`period(V) = period(V₀)·factor(V)`
//! under the uniform alpha-power scaling). Supplying an external session
//! ([`explore_with_session`]) extends the sharing across sweeps.
//!
//! **Pruning is admissible: it never drops a true Pareto point.** A
//! candidate is skipped only when an *optimistic* bound on its objectives
//! — throughput bounded above via a certified period **lower** bound,
//! energy bounded below via the family's activity lower bound and the
//! same period bound, area exact — is dominated by an already-evaluated
//! exact point of the same workload class. Since the bound is at least as
//! good as the candidate's true objectives on every axis, and dominance
//! against the bound is required to be strict on an axis where the bound
//! does not understate (see `Objectives::dominates` and the derivation in
//! [`eval::optimistic_bound`]), the dominating exact point also strictly
//! dominates the candidate's true objectives — so the skipped point was
//! not on the front. Consequently the emitted front is **identical** with
//! pruning (and memoization, and any thread count) on or off; the
//! test-suite asserts this equivalence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod eval;
pub mod models;
pub mod pareto;
pub mod space;

pub use driver::{
    explore, explore_traced, explore_with_session, DseConfig, DseOutcome, Evaluation, SweepStats,
};
pub use eval::{evaluate_structural, StructuralEval};
pub use models::{wagged_ope, WaggedOpe};
pub use pareto::{naive_front_indices, pareto_front_indices, Objectives};
pub use space::{Config, DesignSpace, Hardware};
