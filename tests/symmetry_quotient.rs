//! Symmetry-reduction soundness on the paper's wagged pipelines.
//!
//! The wagged construction (paper §V) replicates the computation stages
//! into `k` ways fed round-robin; rotating the ways (and shifting the
//! distribution/collection rings by 3) is a structural automorphism of the
//! model. The quotient engine explores one canonical representative per
//! rotation orbit, so it must (a) reach the *same* 1-safety and deadlock
//! verdicts as the unreduced engine, and (b) shrink the state count by a
//! factor approaching `k`. Both claims are pinned here — (b) with exact
//! state counts, as a regression guard on the canonicalization.

use rap::dfs::wagging::wagged_pipeline;
use rap::dfs::{node_rotation_symmetry, to_petri, Lts};
use rap::petri::analysis::{quick_check, quick_check_quotient, QuickVerdict};
use rap::petri::engine::EngineConfig;

/// Full reachable state count of the 2-way wagged pipeline (comp depth 1)
/// and its rotation quotient. The orbit of every reachable state off the
/// symmetry axis has size exactly 2 here, and fixed points are rare enough
/// not to show at this scale: the reduction is *exactly* 2x.
const WAGGED2_FULL: usize = 1_476_774;
const WAGGED2_QUOTIENT: usize = 738_387;

#[test]
fn wagged2_quotient_verdicts_equal_full_verdicts() {
    let w = wagged_pipeline(2, 1, 1.0).unwrap();
    let img = to_petri(&w.dfs);
    let pairs = img.complementary_pairs();
    let sym = img.induced_symmetry(&w.way_rotation).unwrap();
    assert_eq!(sym.order(), 2);
    assert!(
        sym.pairs_closed(&pairs),
        "wagging replicates complementary pairs into every way, so the pair \
         set must be closed under the way rotation"
    );

    let budget = 2_000_000;
    let full = quick_check(&img.net, &pairs, budget);
    let quo = quick_check_quotient(&img.net, &pairs, budget, &sym);

    // both complete within budget and agree: clean on the whole space
    assert!(!full.truncated && !quo.truncated);
    assert_eq!(full.deadlock_free, QuickVerdict::Holds);
    assert_eq!(full.safe, QuickVerdict::Holds);
    assert_eq!(quo.deadlock_free, full.deadlock_free);
    assert_eq!(quo.safe, full.safe);

    // the exact-count regression guard: 2x reduction, to the state
    assert_eq!(full.states, WAGGED2_FULL);
    assert_eq!(quo.states, WAGGED2_QUOTIENT);
    assert_eq!(quo.states * 2, full.states);
}

#[test]
fn wagged2_lts_quotient_matches_petri_quotient() {
    // the direct-semantics backend must agree with the Petri backend on
    // both the full and the quotient counts (the two engines share the
    // canonicalization, not the encoding — agreement is evidence neither
    // quotient is an artifact of its state layout)
    let w = wagged_pipeline(2, 1, 1.0).unwrap();
    let sym = node_rotation_symmetry(&w.dfs, &w.way_rotation).unwrap();
    assert_eq!(sym.order(), 2);

    let full = Lts::explore_truncated(&w.dfs, 2_000_000);
    assert!(!full.is_truncated());
    assert_eq!(full.len(), WAGGED2_FULL);
    assert!(full.deadlocks().is_empty());

    let cfg = EngineConfig {
        max_states: 2_000_000,
        threads: 0,
        anchor_interval: 0,
        deadline: None,
    };
    let quo = Lts::explore_with(&w.dfs, &cfg, Some(&sym));
    assert!(!quo.is_truncated());
    assert_eq!(quo.len(), WAGGED2_QUOTIENT);
    assert!(quo.deadlocks().is_empty());
}

#[test]
fn wagged3_quotient_verdicts_equal_full_verdicts_under_budget() {
    // the 3-way full space exceeds 16M states (it truncates even the
    // release bench sweep), so the k=3 verdict comparison is budget-bounded:
    // under an equal budget both engines must report the same Inconclusive
    // verdicts with no violation claimed — the quotient must not
    // manufacture a deadlock or safety counterexample out of
    // canonicalization, and must not claim completeness it does not have
    let w = wagged_pipeline(3, 1, 1.0).unwrap();
    let img = to_petri(&w.dfs);
    let pairs = img.complementary_pairs();
    let sym = img.induced_symmetry(&w.way_rotation).unwrap();
    assert_eq!(sym.order(), 3);
    assert!(sym.pairs_closed(&pairs));

    let budget = 60_000;
    let full = quick_check(&img.net, &pairs, budget);
    let quo = quick_check_quotient(&img.net, &pairs, budget, &sym);

    assert!(full.truncated && quo.truncated);
    assert!(full.no_violation() && quo.no_violation());
    assert_eq!(full.deadlock_free, QuickVerdict::Inconclusive { budget });
    assert_eq!(quo.deadlock_free, full.deadlock_free);
    assert_eq!(quo.safe, full.safe);
    assert_eq!(full.states, budget);
    assert_eq!(quo.states, budget);
}

#[test]
fn wagged3_quotient_explores_only_canonical_representatives() {
    // internal invariant behind the counting argument: every state the
    // quotient engine numbers is the lexicographically-least rotation of
    // its orbit (otherwise orbits would be double-counted and the k x
    // reduction would silently erode)
    let w = wagged_pipeline(3, 1, 1.0).unwrap();
    let img = to_petri(&w.dfs);
    let sym = img.induced_symmetry(&w.way_rotation).unwrap();
    let ssym = sym.state_symmetry();

    let space = rap::petri::reachability::explore_quotient_truncated(
        &img.net,
        rap::petri::reachability::ExploreConfig {
            max_states: 5_000,
            threads: 2,
            deadline: None,
        },
        &ssym,
    );
    let words = space.word_count();
    let mut raw = vec![0u64; words];
    let mut canon = vec![0u64; words];
    let mut tmp = vec![0u64; words];
    for s in space.states() {
        space.fill_marking_words(s, &mut raw);
        ssym.canonicalize(&raw, &mut canon, &mut tmp);
        assert_eq!(
            raw, canon,
            "quotient engine stored a non-canonical representative"
        );
    }
}
