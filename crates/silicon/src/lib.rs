//! NCL-D dual-rail asynchronous circuit backend.
//!
//! The paper's DFS models are "translated into a circuit implementation
//! netlist using a library of pre-built NCL-D style asynchronous dual-rail
//! components (comparator, adder, and a set of registers) that rely on
//! \[the\] 4-phase communication protocol" (§III-A), fabricated in TSMC 90nm,
//! and measured over 0.3–1.6 V (§IV). This crate provides the equivalent
//! software substrate:
//!
//! * [`gate`] — NULL Convention Logic threshold gates (`THmn`, with
//!   hysteresis), C-elements and ordinary Boolean gates;
//! * [`netlist`] — flat gate-level netlists;
//! * [`components`] — the pre-built dual-rail library: completion
//!   detectors, NCL pipeline registers, a ripple-carry adder and a
//!   comparator;
//! * [`verilog`] — structural Verilog export (plus behavioural models of
//!   the primitives), the hand-off point to a conventional backend flow;
//! * [`sim`] — an event-driven gate-level simulator whose per-gate delay
//!   follows an **alpha-power-law voltage model** with a freeze threshold,
//!   and which integrates switching and leakage **energy** — the software
//!   stand-in for the fabricated chip, the Virtex-7 testbench and the
//!   Keithley source meter;
//! * [`delay`] / [`power`] — the voltage/delay/energy models and
//!   time-varying supply profiles (for the Fig. 9b experiment).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod components;
pub mod cost;
pub mod delay;
pub mod gate;
pub mod map;
pub mod netlist;
pub mod power;
pub mod sim;
pub mod verilog;

pub use cost::{CostModel, GateCosts};
pub use delay::{DelayModel, VoltageProfile};
pub use gate::GateKind;
pub use netlist::{CellId, NetId, Netlist};
pub use power::EnergyModel;
pub use sim::{SimConfig, Simulator};
