//! Labelled transition system of the direct DFS semantics.
//!
//! Exhaustive exploration of [`crate::DfsState`]s under
//! [`Dfs::enabled_events`]. This is the reference object for the
//! PN-translation bisimulation tests, and the substrate of the verification
//! queries that do not go through the Petri-net backend.
//!
//! Since PR 2 exploration runs on the shared incremental engine of
//! [`rap_petri::engine`]: states are packed into two bit-planes (`active`,
//! `false-valued`) in a dense arena, and after each event only the events of
//! *dependent* nodes — the event's own node plus everything reading it
//! through data edges, R-presets/postsets or guards — are re-checked for
//! enabledness. This PR moves the default path onto the *parallel* engine
//! with delta-compressed state storage; results are identical at every
//! thread count (see the engine docs for the determinism contract). The
//! original explorer is retained as [`Lts::explore_naive_truncated`] for
//! property-based cross-checking and as the benchmark baseline, and the
//! serial engine as [`Lts::explore_serial_truncated`].
//!
//! Symmetric models (wagged replicas) can be explored as a rotation
//! *quotient* via [`Lts::explore_with`] and a [`StateSymmetry`] built by
//! [`node_rotation_symmetry`] from a node permutation.

use crate::graph::Dfs;
use crate::node::{NodeId, NodeKind, TokenValue};
use crate::semantics::Event;
use crate::state::DfsState;
use crate::DfsError;
use rap_petri::engine::{
    self, get_bit, set_bit, EngineConfig, ExploredGraph, StateSymmetry, TransitionSystem, NO_PARENT,
};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

/// Dense id of a state in an [`Lts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LtsStateId(u32);

impl LtsStateId {
    /// Dense index of the state (0 = initial).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The reachable labelled transition system of a DFS model.
///
/// States live delta-compressed in the underlying [`ExploredGraph`];
/// [`Lts::state`] materialises a [`DfsState`] snapshot on demand.
#[derive(Debug, Clone)]
pub struct Lts {
    node_count: usize,
    graph: ExploredGraph,
    actions: Vec<Event>,
    parent_events: Vec<Event>,
    succ: Vec<(Event, LtsStateId)>,
    /// Present when this is a quotient LTS: the symmetry used to
    /// canonicalize states, needed to make traces concrete again.
    symmetry: Option<StateSymmetry>,
}

impl Lts {
    /// Explores the reachable states of `dfs`, up to `max_states`.
    ///
    /// # Errors
    ///
    /// [`DfsError::StateBudgetExceeded`] when the bound is hit.
    pub fn explore(dfs: &Dfs, max_states: usize) -> Result<Lts, DfsError> {
        Self::explore_traced(dfs, max_states, &rap_obs::Obs::none())
    }

    /// [`Lts::explore`] with a recorder attached: the engine emits its
    /// per-level spans and counters into `obs` (see
    /// [`engine::explore_parallel_traced`]). Recording is
    /// observation-only — the LTS is bit-identical to [`Lts::explore`].
    ///
    /// # Errors
    ///
    /// [`DfsError::StateBudgetExceeded`] when the bound is hit.
    pub fn explore_traced(
        dfs: &Dfs,
        max_states: usize,
        obs: &rap_obs::Obs,
    ) -> Result<Lts, DfsError> {
        let lts = Self::explore_with_traced(
            dfs,
            &EngineConfig {
                max_states,
                ..EngineConfig::default()
            },
            None,
            obs,
        );
        if lts.is_truncated() {
            return Err(DfsError::StateBudgetExceeded { budget: max_states });
        }
        Ok(lts)
    }

    /// Like [`Lts::explore`] but returns the partial LTS on budget overrun.
    #[must_use]
    pub fn explore_truncated(dfs: &Dfs, max_states: usize) -> Lts {
        Self::explore_with(
            dfs,
            &EngineConfig {
                max_states,
                ..EngineConfig::default()
            },
            None,
        )
    }

    /// Full-control frontend: explores on the parallel engine with explicit
    /// [`EngineConfig`] knobs, optionally as the rotation quotient under
    /// `symmetry` (build one with [`node_rotation_symmetry`]).
    #[must_use]
    pub fn explore_with(dfs: &Dfs, cfg: &EngineConfig, symmetry: Option<&StateSymmetry>) -> Lts {
        Self::explore_with_traced(dfs, cfg, symmetry, &rap_obs::Obs::none())
    }

    /// [`Lts::explore_with`] with a recorder attached; see
    /// [`Lts::explore_traced`] for the recording contract.
    #[must_use]
    pub fn explore_with_traced(
        dfs: &Dfs,
        cfg: &EngineConfig,
        symmetry: Option<&StateSymmetry>,
        obs: &rap_obs::Obs,
    ) -> Lts {
        let graph = engine::explore_parallel_traced(|| DfsSystem::new(dfs), cfg, symmetry, obs);
        let sys = DfsSystem::new(dfs);
        Self::from_graph(graph, &sys, symmetry.cloned())
    }

    /// The serial engine (PR 2), kept as a reference implementation: the
    /// differential suite pins the parallel engine against it
    /// state-for-state. Use [`Lts::explore_truncated`] everywhere else.
    #[must_use]
    pub fn explore_serial_truncated(dfs: &Dfs, max_states: usize) -> Lts {
        let mut sys = DfsSystem::new(dfs);
        let graph = engine::explore(&mut sys, max_states);
        Self::from_graph(graph, &sys, None)
    }

    fn from_graph(
        mut g: ExploredGraph,
        sys: &DfsSystem<'_>,
        symmetry: Option<StateSymmetry>,
    ) -> Lts {
        let parent_events = g
            .parents
            .iter()
            .map(|&(p, a)| {
                if p == NO_PARENT {
                    // arbitrary filler for the root (never read)
                    Event::Eval(NodeId::from_index(0))
                } else {
                    sys.actions[a as usize]
                }
            })
            .collect();
        let succ = std::mem::take(&mut g.succ)
            .into_iter()
            .map(|(a, s)| (sys.actions[a as usize], LtsStateId(s)))
            .collect();
        Lts {
            node_count: sys.dfs.node_count(),
            graph: g,
            actions: sys.actions.clone(),
            parent_events,
            succ,
            symmetry,
        }
    }

    /// The original (pre-engine) explorer: `HashMap<DfsState, _>` dedup with
    /// cloned keys and a full `enabled_events` scan per state.
    ///
    /// Retained as the reference implementation for the engine-equivalence
    /// property tests and the `state_space_scaling` baseline; use
    /// [`Lts::explore`] / [`Lts::explore_truncated`] everywhere else.
    #[must_use]
    pub fn explore_naive_truncated(dfs: &Dfs, max_states: usize) -> Lts {
        let s0 = DfsState::initial(dfs);
        let mut index: HashMap<DfsState, LtsStateId> = HashMap::new();
        let mut states = vec![s0.clone()];
        let mut edges: Vec<Vec<(Event, LtsStateId)>> = vec![Vec::new()];
        let mut parents: Vec<(u32, u32)> = vec![(NO_PARENT, 0)];
        let mut parent_events: Vec<Event> = vec![Event::Eval(NodeId::from_index(0))];
        index.insert(s0, LtsStateId(0));
        let mut queue = VecDeque::from([LtsStateId(0)]);
        let mut outcome = engine::ExploreOutcome::Complete;

        'bfs: while let Some(s) = queue.pop_front() {
            let state = states[s.index()].clone();
            for ev in dfs.enabled_events(&state) {
                let next = dfs.apply(&state, ev);
                let succ = match index.entry(next) {
                    Entry::Occupied(e) => *e.get(),
                    Entry::Vacant(e) => {
                        if states.len() >= max_states {
                            outcome = engine::ExploreOutcome::Truncated { limit: max_states };
                            break 'bfs;
                        }
                        let id = LtsStateId(states.len() as u32);
                        states.push(e.key().clone());
                        edges.push(Vec::new());
                        parents.push((s.0, 0));
                        parent_events.push(ev);
                        queue.push_back(id);
                        e.insert(id);
                        id
                    }
                };
                edges[s.index()].push((ev, succ));
            }
        }

        // pack into the graph representation shared with the engine path
        let node_count = dfs.node_count();
        let stride = DfsSystem::stride_for(node_count);
        let mut arena = Vec::with_capacity(states.len() * stride);
        let mut buf = vec![0u64; stride];
        for st in &states {
            buf.iter_mut().for_each(|w| *w = 0);
            DfsSystem::encode(st, node_count, &mut buf);
            arena.extend_from_slice(&buf);
        }
        let mut succ_off = Vec::with_capacity(states.len() + 1);
        let mut succ = Vec::new();
        succ_off.push(0u32);
        for row in &edges {
            succ.extend_from_slice(row);
            succ_off.push(succ.len() as u32);
        }

        let sys = DfsSystem::new(dfs);
        let graph =
            ExploredGraph::from_dense(stride, arena, parents, succ_off, Vec::new(), outcome);
        Lts {
            node_count,
            graph,
            actions: sys.actions,
            parent_events,
            succ,
            symmetry: None,
        }
    }

    /// Number of reachable states (orbit representatives for a quotient).
    #[must_use]
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// Always false (the initial state exists); pairs with [`Lts::len`].
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Was exploration cut short by the state budget?
    #[must_use]
    pub fn is_truncated(&self) -> bool {
        self.graph.is_truncated()
    }

    /// How exploration ended (carries the budget on truncation).
    #[must_use]
    pub fn outcome(&self) -> engine::ExploreOutcome {
        self.graph.outcome()
    }

    /// The symmetry this LTS is a quotient under, if any.
    #[must_use]
    pub fn symmetry(&self) -> Option<&StateSymmetry> {
        self.symmetry.as_ref()
    }

    /// The initial state id.
    #[must_use]
    pub fn initial(&self) -> LtsStateId {
        LtsStateId(0)
    }

    /// The state snapshot for `id`, reconstructed from the compressed store.
    #[must_use]
    pub fn state(&self, id: LtsStateId) -> DfsState {
        let mut out = DfsState {
            active: vec![false; self.node_count],
            value: vec![TokenValue::True; self.node_count],
        };
        self.fill_state(id, &mut out);
        out
    }

    /// Decodes the state `id` into `out`. `out` must come from the same
    /// model (same node count).
    pub fn fill_state(&self, id: LtsStateId, out: &mut DfsState) {
        assert_eq!(out.active.len(), self.node_count, "state buffer mismatch");
        let mut words = vec![0u64; self.graph.stride()];
        self.graph.fill_state(id.index(), &mut words);
        DfsSystem::decode_words(&words, self.node_count, out);
    }

    /// Iterates over all state ids.
    pub fn states(&self) -> impl Iterator<Item = LtsStateId> {
        (0..self.graph.len() as u32).map(LtsStateId)
    }

    /// Outgoing labelled edges of `id`.
    #[must_use]
    pub fn successors(&self, id: LtsStateId) -> &[(Event, LtsStateId)] {
        let i = id.index();
        &self.succ[self.graph.succ_off[i] as usize..self.graph.succ_off[i + 1] as usize]
    }

    /// Event sequence from the initial state to `id`.
    ///
    /// For a quotient LTS this trace is over orbit *representatives*; use
    /// [`Lts::concrete_trace_to`] for a replayable sequence of the original
    /// model.
    #[must_use]
    pub fn trace_to(&self, id: LtsStateId) -> Vec<Event> {
        let mut rev = Vec::new();
        let mut cur = id.index();
        while self.graph.parents[cur].0 != NO_PARENT {
            rev.push(self.parent_events[cur]);
            cur = self.graph.parents[cur].0 as usize;
        }
        rev.reverse();
        rev
    }

    /// The symmetry rotation applied when `id` was canonicalized at
    /// discovery (always 0 outside quotient LTSs).
    #[must_use]
    pub fn rotation(&self, id: LtsStateId) -> u32 {
        self.graph.rotation(id.index())
    }

    /// An event sequence of the *original* model from its concrete initial
    /// state to a concrete member of `id`'s orbit. Falls back to
    /// [`Lts::trace_to`] when this is not a quotient LTS.
    ///
    /// Each quotient step fires in the representative's frame; un-rotating
    /// by the cumulative rotation accumulated along the discovery path
    /// yields the concrete event — see the soundness argument in the
    /// [`rap_petri::engine`] docs.
    #[must_use]
    pub fn concrete_trace_to(&self, id: LtsStateId) -> Vec<Event> {
        let Some(sym) = &self.symmetry else {
            return self.trace_to(id);
        };
        let mut path = vec![id.index()];
        while self.graph.parents[*path.last().expect("non-empty path")].0 != NO_PARENT {
            path.push(self.graph.parents[*path.last().expect("non-empty path")].0 as usize);
        }
        path.reverse();
        let order = sym.order() as u32;
        let mut rot = self.graph.rotation(path[0]);
        let mut out = Vec::with_capacity(path.len() - 1);
        for &child in &path[1..] {
            let a = self.graph.parents[child].1;
            out.push(self.actions[sym.unrotate_action(rot, a) as usize]);
            rot = (rot + self.graph.rotation(child)) % order;
        }
        out
    }

    /// States with no outgoing edges (deadlocks).
    #[must_use]
    pub fn deadlocks(&self) -> Vec<LtsStateId> {
        self.states()
            .filter(|&s| self.successors(s).is_empty())
            .collect()
    }

    /// Finds a state satisfying `pred`, in BFS (shortest-trace) order,
    /// decoding into a single reused buffer.
    pub fn find_state(&self, mut pred: impl FnMut(&DfsState) -> bool) -> Option<LtsStateId> {
        let mut scratch = DfsState {
            active: vec![false; self.node_count],
            value: vec![TokenValue::True; self.node_count],
        };
        self.states().find(|&s| {
            self.fill_state(s, &mut scratch);
            pred(&scratch)
        })
    }
}

/// Builds the engine-level [`StateSymmetry`] of a DFS model generated by a
/// node permutation (`node_perm[i]` = image of node `i`), for quotient
/// exploration via [`Lts::explore_with`].
///
/// The permutation must preserve the model's *structure*: node kinds, guard
/// modes, and the (inversion-flagged) data-edge, R-preset/postset and guard
/// relations. The initial state is deliberately **not** required to be
/// symmetric — the engine canonicalizes it first (see its docs) — which is
/// what makes the rotation of a wagged pipeline usable even though its
/// control tokens start in way 0 only.
///
/// # Errors
///
/// When `node_perm` is not a permutation of the nodes or fails to preserve
/// the structure.
pub fn node_rotation_symmetry(dfs: &Dfs, node_perm: &[u32]) -> Result<StateSymmetry, String> {
    let n = dfs.node_count();
    if node_perm.len() != n {
        return Err(format!(
            "node permutation covers {} of {n} nodes",
            node_perm.len()
        ));
    }
    let mut seen = vec![false; n];
    for &p in node_perm {
        let i = p as usize;
        if i >= n || seen[i] {
            return Err(format!(
                "not a permutation: node image {p} repeated or out of range"
            ));
        }
        seen[i] = true;
    }

    for node in dfs.nodes() {
        let img = NodeId::from_index(node_perm[node.index()] as usize);
        if dfs.kind(node) != dfs.kind(img) {
            return Err(format!(
                "node {} and its image differ in kind",
                node.index()
            ));
        }
        if dfs.guard_mode(node) != dfs.guard_mode(img) {
            return Err(format!(
                "node {} and its image differ in guard mode",
                node.index()
            ));
        }
        let edge_key = |edges: &[crate::graph::EdgeRef], map: bool| -> Vec<(usize, bool)> {
            let mut v: Vec<(usize, bool)> = edges
                .iter()
                .map(|e| {
                    let i = e.node.index();
                    (if map { node_perm[i] as usize } else { i }, e.inverted)
                })
                .collect();
            v.sort_unstable();
            v
        };
        let rref_key = |refs: &[crate::graph::RRef], map: bool| -> Vec<(usize, bool)> {
            let mut v: Vec<(usize, bool)> = refs
                .iter()
                .map(|r| {
                    let i = r.node.index();
                    (if map { node_perm[i] as usize } else { i }, r.inverted)
                })
                .collect();
            v.sort_unstable();
            v
        };
        let preserved = edge_key(dfs.preds(node), true) == edge_key(dfs.preds(img), false)
            && edge_key(dfs.succs(node), true) == edge_key(dfs.succs(img), false)
            && rref_key(dfs.r_preset(node), true) == rref_key(dfs.r_preset(img), false)
            && rref_key(dfs.r_postset(node), true) == rref_key(dfs.r_postset(img), false)
            && rref_key(dfs.guards(node), true) == rref_key(dfs.guards(img), false);
        if !preserved {
            return Err(format!(
                "not an automorphism: node {} and its image differ in arc structure",
                node.index()
            ));
        }
    }

    // two-plane bit permutation: plane 0 (active) and plane 1 (false-valued)
    // each permute by the node map; pad bits map to themselves
    let w = DfsSystem::plane_words(n);
    let bits = DfsSystem::stride_for(n) * 64;
    let mut bit_perm: Vec<u32> = (0..bits as u32).collect();
    for (i, &p) in node_perm.iter().enumerate() {
        bit_perm[i] = p;
        bit_perm[w * 64 + i] = (w * 64) as u32 + p;
    }

    // action permutation: slot s of node i maps to slot s of its image
    // (same kind, hence the same slot layout)
    let mut base = Vec::with_capacity(n);
    let mut total = 0u32;
    for node in dfs.nodes() {
        base.push(total);
        total += action_slots(dfs.kind(node));
    }
    let mut act_perm = vec![0u32; total as usize];
    for node in dfs.nodes() {
        let i = node.index();
        let j = node_perm[i] as usize;
        for s in 0..action_slots(dfs.kind(node)) {
            act_perm[(base[i] + s) as usize] = base[j] + s;
        }
    }

    StateSymmetry::new(bit_perm, act_perm)
}

/// Maximum actions a node can offer, by kind (see the action layout below).
fn action_slots(kind: NodeKind) -> u32 {
    match kind {
        NodeKind::Logic | NodeKind::Register => 2,
        NodeKind::Control | NodeKind::Push | NodeKind::Pop => 3,
    }
}

/// [`TransitionSystem`] view of a DFS model for the shared engine.
///
/// States are two bit-planes over the nodes: plane 0 holds `active`
/// (`C`/`M`), plane 1 holds "marked with a False token" (zero whenever the
/// node is inactive, matching [`DfsState`]'s canonicalisation). The action
/// table enumerates, per node and in [`Dfs::enabled_events`] order, every
/// event the node can ever offer:
///
/// * logic — `Eval`, `Reset`;
/// * plain register — `Mark(True)`, `Unmark`;
/// * control/push/pop — `Mark(True)`, `Mark(False)`, `Unmark`.
///
/// The affected map is the syntactic dependency closure of the semantics
/// (eqs. (1)–(5)): the events of node `m` are re-checked after an event of
/// node `n` iff `n ∈ {m} ∪ preds(m) ∪ ?m ∪ m? ∪ guards(m)`. The
/// engine-equivalence property tests pin this closure against the naive
/// full-scan explorer.
struct DfsSystem<'a> {
    dfs: &'a Dfs,
    actions: Vec<Event>,
    /// First action index of each node.
    base: Vec<u32>,
    /// Per node: the nodes whose events must be re-checked after it changes.
    dependents: Vec<Vec<u32>>,
    scratch: DfsState,
    evbuf: Vec<Event>,
}

impl<'a> DfsSystem<'a> {
    fn new(dfs: &'a Dfs) -> Self {
        let n = dfs.node_count();
        let mut actions = Vec::new();
        let mut base = Vec::with_capacity(n);
        for node in dfs.nodes() {
            base.push(actions.len() as u32);
            match dfs.kind(node) {
                NodeKind::Logic => {
                    actions.push(Event::Eval(node));
                    actions.push(Event::Reset(node));
                }
                NodeKind::Register => {
                    actions.push(Event::Mark(node, TokenValue::True));
                    actions.push(Event::Unmark(node));
                }
                NodeKind::Control | NodeKind::Push | NodeKind::Pop => {
                    actions.push(Event::Mark(node, TokenValue::True));
                    actions.push(Event::Mark(node, TokenValue::False));
                    actions.push(Event::Unmark(node));
                }
            }
        }

        let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); n];
        for m in dfs.nodes() {
            let mut deps: Vec<NodeId> = vec![m];
            deps.extend(dfs.preds(m).iter().map(|e| e.node));
            deps.extend(dfs.r_preset(m).iter().map(|r| r.node));
            deps.extend(dfs.r_postset(m).iter().map(|r| r.node));
            deps.extend(dfs.guards(m).iter().map(|r| r.node));
            deps.sort_unstable();
            deps.dedup();
            for d in deps {
                dependents[d.index()].push(m.index() as u32);
            }
        }
        for row in &mut dependents {
            row.sort_unstable();
            row.dedup();
        }

        DfsSystem {
            dfs,
            actions,
            base,
            dependents,
            scratch: DfsState::initial(dfs),
            evbuf: Vec::new(),
        }
    }

    fn stride_for(node_count: usize) -> usize {
        (node_count.div_ceil(64) * 2).max(1)
    }

    fn plane_words(node_count: usize) -> usize {
        node_count.div_ceil(64)
    }

    /// Packs `state` into `out` (pre-zeroed, `stride_for` words).
    fn encode(state: &DfsState, node_count: usize, out: &mut [u64]) {
        let w = Self::plane_words(node_count);
        for i in 0..node_count {
            if state.active[i] {
                set_bit(&mut out[..w], i, true);
                if state.value[i] == TokenValue::False {
                    set_bit(&mut out[w..], i, true);
                }
            }
        }
    }

    fn decode_words(words: &[u64], node_count: usize, out: &mut DfsState) {
        let w = Self::plane_words(node_count);
        for i in 0..node_count {
            out.active[i] = get_bit(&words[..w], i);
            out.value[i] = if w > 0 && get_bit(&words[w..], i) {
                TokenValue::False
            } else {
                TokenValue::True
            };
        }
    }

    /// The action id of `ev` (which must be one of `ev.node()`'s slots).
    fn action_id(&self, ev: Event) -> usize {
        let node = ev.node();
        let offset = match ev {
            Event::Eval(_) => 0,
            Event::Reset(_) => 1,
            Event::Mark(n, v) => {
                if self.dfs.kind(n) == NodeKind::Register || v == TokenValue::True {
                    0
                } else {
                    1
                }
            }
            Event::Unmark(n) => {
                if self.dfs.kind(n) == NodeKind::Register {
                    1
                } else {
                    2
                }
            }
        };
        self.base[node.index()] as usize + offset
    }
}

impl TransitionSystem for DfsSystem<'_> {
    fn state_words(&self) -> usize {
        Self::stride_for(self.dfs.node_count())
    }

    fn action_count(&self) -> usize {
        self.actions.len()
    }

    fn write_initial(&mut self, out: &mut [u64]) {
        let s0 = DfsState::initial(self.dfs);
        Self::encode(&s0, self.dfs.node_count(), out);
    }

    fn write_enabled_full(&mut self, state: &[u64], out: &mut [u64]) {
        Self::decode_words(state, self.dfs.node_count(), &mut self.scratch);
        for ev in self.dfs.enabled_events(&self.scratch) {
            set_bit(out, self.action_id(ev), true);
        }
    }

    fn apply(&mut self, a: usize, state: &[u64], out: &mut [u64]) {
        out.copy_from_slice(state);
        let w = Self::plane_words(self.dfs.node_count());
        match self.actions[a] {
            Event::Eval(n) => set_bit(&mut out[..w], n.index(), true),
            Event::Mark(n, v) => {
                set_bit(&mut out[..w], n.index(), true);
                set_bit(&mut out[w..], n.index(), v == TokenValue::False);
            }
            Event::Reset(n) | Event::Unmark(n) => {
                set_bit(&mut out[..w], n.index(), false);
                set_bit(&mut out[w..], n.index(), false);
            }
        }
    }

    fn update_enabled(&mut self, a: usize, state: &[u64], enabled: &mut [u64]) {
        Self::decode_words(state, self.dfs.node_count(), &mut self.scratch);
        let node = self.actions[a].node();
        for &mi in &self.dependents[node.index()] {
            let m = NodeId::from_index(mi as usize);
            let b = self.base[mi as usize] as usize;
            for slot in 0..action_slots(self.dfs.kind(m)) {
                set_bit(enabled, b + slot as usize, false);
            }
            self.evbuf.clear();
            self.dfs.node_events(&self.scratch, m, &mut self.evbuf);
            for i in 0..self.evbuf.len() {
                set_bit(enabled, self.action_id(self.evbuf[i]), true);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfsBuilder;
    use crate::node::TokenValue;

    /// Closed three-register ring — the paper notes three registers are the
    /// minimum for a token to oscillate (§III, control loops), and the same
    /// holds for plain rings under the spread-token semantics.
    fn ring() -> Dfs {
        let mut b = DfsBuilder::new();
        let r0 = b.register("a").marked().build();
        let r1 = b.register("b").build();
        let r2 = b.register("c").build();
        b.connect(r0, r1);
        b.connect(r1, r2);
        b.connect(r2, r0);
        b.finish().unwrap()
    }

    /// Two disjoint copies of the three-register ring: the swap of the two
    /// copies is a structural automorphism of order 2.
    fn double_ring() -> (Dfs, Vec<u32>) {
        let mut b = DfsBuilder::new();
        let mut ids = Vec::new();
        for copy in 0..2 {
            let r0 = b.register(format!("a{copy}")).marked().build();
            let r1 = b.register(format!("b{copy}")).build();
            let r2 = b.register(format!("c{copy}")).build();
            b.connect(r0, r1);
            b.connect(r1, r2);
            b.connect(r2, r0);
            ids.extend([r0, r1, r2]);
        }
        let dfs = b.finish().unwrap();
        let perm: Vec<u32> = (0..6u32).map(|i| (i + 3) % 6).collect();
        (dfs, perm)
    }

    #[test]
    fn two_register_ring_deadlocks() {
        // With fewer than three registers a token cannot oscillate: the
        // receiving register's R-postset is the marked sender itself.
        let mut b = DfsBuilder::new();
        let r0 = b.register("a").marked().build();
        let r1 = b.register("b").build();
        b.connect(r0, r1);
        b.connect(r1, r0);
        let dfs = b.finish().unwrap();
        let lts = Lts::explore(&dfs, 1_000).unwrap();
        assert!(!lts.deadlocks().is_empty());
    }

    #[test]
    fn ring_is_live_and_bounded() {
        let dfs = ring();
        let lts = Lts::explore(&dfs, 10_000).unwrap();
        assert!(lts.deadlocks().is_empty());
        assert!(lts.len() > 2);
        // traces replay
        for s in lts.states() {
            let mut st = DfsState::initial(&dfs);
            for ev in lts.trace_to(s) {
                st = dfs.apply(&st, ev);
            }
            assert_eq!(st, lts.state(s));
        }
    }

    #[test]
    fn budget_overrun_reports() {
        let dfs = ring();
        assert!(matches!(
            Lts::explore(&dfs, 2),
            Err(crate::DfsError::StateBudgetExceeded { budget: 2 })
        ));
        let partial = Lts::explore_truncated(&dfs, 2);
        assert!(partial.is_truncated());
        assert_eq!(
            partial.outcome(),
            engine::ExploreOutcome::Truncated { limit: 2 }
        );
        assert_eq!(partial.len(), 2);
    }

    #[test]
    fn mismatch_init_deadlocks() {
        // push guarded by two controls initialised inconsistently — the
        // §III-A "incorrect initialisation" bug class
        let mut b = DfsBuilder::new();
        let i = b.register("in").marked().build();
        let c1 = b.control("c1").marked_with(TokenValue::True).build();
        let c2 = b.control("c2").marked_with(TokenValue::False).build();
        let p = b.push("p").build();
        let o = b.register("out").build();
        b.connect(i, p);
        b.connect(c1, p);
        b.connect(c2, p);
        b.connect(p, o);
        let dfs = b.finish().unwrap();
        let lts = Lts::explore(&dfs, 10_000).unwrap();
        assert!(!lts.deadlocks().is_empty());
        let mismatch = lts.find_state(|s| dfs.has_control_mismatch(s));
        assert!(mismatch.is_some());
    }

    /// The engine-backed explorers are indistinguishable from the naive
    /// reference: same numbering, edges, traces and truncation behaviour,
    /// at every thread count.
    #[test]
    fn engine_matches_naive_reference() {
        let dfs = ring();
        for budget in [usize::MAX, 5, 2] {
            for threads in [1usize, 2, 4] {
                let a = Lts::explore_with(
                    &dfs,
                    &EngineConfig {
                        max_states: budget,
                        threads,
                        anchor_interval: 0,
                        deadline: None,
                    },
                    None,
                );
                let s = Lts::explore_serial_truncated(&dfs, budget);
                let b = Lts::explore_naive_truncated(&dfs, budget);
                assert_eq!(a.len(), b.len());
                assert_eq!(s.len(), b.len());
                assert_eq!(a.is_truncated(), b.is_truncated());
                for (sa, sb) in a.states().zip(b.states()) {
                    assert_eq!(a.state(sa), b.state(sb));
                    assert_eq!(s.state(sa), b.state(sb));
                    assert_eq!(a.successors(sa), b.successors(sb));
                    assert_eq!(a.trace_to(sa), b.trace_to(sb));
                }
            }
        }
    }

    /// The swap of two disjoint identical rings is an automorphism; the
    /// quotient halves (most of) the space and preserves deadlock-freedom,
    /// and its concrete traces replay through the real semantics.
    #[test]
    fn quotient_under_copy_swap_is_sound() {
        let (dfs, perm) = double_ring();
        let sym = node_rotation_symmetry(&dfs, &perm).unwrap();
        assert_eq!(sym.order(), 2);
        let full = Lts::explore_truncated(&dfs, 100_000);
        let quo = Lts::explore_with(&dfs, &EngineConfig::default(), Some(&sym));
        assert!(quo.len() < full.len());
        assert!(quo.len() * 2 >= full.len());
        assert_eq!(full.deadlocks().is_empty(), quo.deadlocks().is_empty());
        // concrete traces must replay step-enabled through the semantics
        for s in quo.states() {
            let mut st = DfsState::initial(&dfs);
            for ev in quo.concrete_trace_to(s) {
                assert!(dfs.is_event_enabled(&st, ev), "concrete trace not enabled");
                st = dfs.apply(&st, ev);
            }
        }
    }

    #[test]
    fn broken_node_permutations_are_rejected() {
        let (dfs, _) = double_ring();
        // not a permutation
        assert!(node_rotation_symmetry(&dfs, &[0, 0, 1, 2, 3, 4]).is_err());
        // wrong width
        assert!(node_rotation_symmetry(&dfs, &[0, 1, 2]).is_err());
        // a permutation that breaks the arc structure
        assert!(node_rotation_symmetry(&dfs, &[1, 0, 2, 3, 4, 5]).is_err());
    }
}
