//! Voltage-dependent delay model and supply-voltage profiles.
//!
//! The fabricated chip "is fully asynchronous and can therefore operate in
//! a wide range of voltages, dynamically adapting its speed" (§IV). The
//! standard first-order model for CMOS gate delay versus supply voltage is
//! the **alpha-power law**:
//!
//! ```text
//! d(V) = d0 · (V/V0) · ((V0 − Vt) / (V − Vt))^α
//! ```
//!
//! with `V0` the nominal supply (1.2 V for the paper's TSMC 90nm LP
//! process), `Vt` an effective threshold voltage and `α` the velocity
//! saturation exponent. Below a freeze voltage the circuit stops making
//! progress — the paper observed the chip freezing at 0.34 V and resuming
//! when the supply was raised (Fig. 9b); we model this as unbounded delay.

use serde::{Deserialize, Serialize};

/// Alpha-power-law delay model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DelayModel {
    /// Nominal supply voltage (V).
    pub v0: f64,
    /// Effective threshold voltage (V).
    pub vt: f64,
    /// Velocity-saturation exponent.
    pub alpha: f64,
    /// Supply below which no progress is made (the paper's 0.34 V).
    pub v_freeze: f64,
}

impl Default for DelayModel {
    /// Calibrated for the Fig. 9a curve shape: computation time ≈ 10× at
    /// 0.5 V and ≈ 0.6× at 1.6 V, both relative to 1.2 V (see
    /// `DESIGN.md` §6).
    fn default() -> Self {
        DelayModel {
            v0: 1.2,
            vt: 0.33,
            alpha: 2.0,
            v_freeze: 0.34,
        }
    }
}

impl DelayModel {
    /// The delay scaling factor at supply `v` relative to the nominal
    /// voltage: `d(v)/d(v0)`. Returns `f64::INFINITY` at or below the
    /// freeze voltage.
    #[must_use]
    pub fn factor(&self, v: f64) -> f64 {
        if v <= self.v_freeze || v <= self.vt {
            return f64::INFINITY;
        }
        (v / self.v0) * ((self.v0 - self.vt) / (v - self.vt)).powf(self.alpha)
    }

    /// Is the circuit frozen at supply `v`?
    #[must_use]
    pub fn is_frozen(&self, v: f64) -> bool {
        v <= self.v_freeze
    }
}

/// A (possibly time-varying) supply-voltage waveform.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum VoltageProfile {
    /// Constant supply.
    Constant(f64),
    /// Piecewise-constant: `(start_time, voltage)` steps, sorted by time.
    /// Before the first step the first voltage applies.
    Steps(Vec<(f64, f64)>),
}

impl VoltageProfile {
    /// The supply voltage at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if a `Steps` profile is empty.
    #[must_use]
    pub fn at(&self, t: f64) -> f64 {
        match self {
            VoltageProfile::Constant(v) => *v,
            VoltageProfile::Steps(steps) => {
                assert!(!steps.is_empty(), "empty voltage profile");
                let mut v = steps[0].1;
                for &(start, volt) in steps {
                    if t >= start {
                        v = volt;
                    } else {
                        break;
                    }
                }
                v
            }
        }
    }

    /// The earliest time `≥ t` at which the supply exceeds `v_min`, or
    /// `None` if it never does again. Used by the simulator to park events
    /// while the circuit is frozen and resume them on recovery — the
    /// Fig. 9b behaviour.
    #[must_use]
    pub fn next_time_above(&self, v_min: f64, t: f64) -> Option<f64> {
        match self {
            VoltageProfile::Constant(v) => (*v > v_min).then_some(t),
            VoltageProfile::Steps(steps) => {
                if self.at(t) > v_min {
                    return Some(t);
                }
                steps
                    .iter()
                    .find(|&&(start, volt)| start > t && volt > v_min)
                    .map(|&(start, _)| start)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_factor_is_one() {
        let m = DelayModel::default();
        assert!((m.factor(1.2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn calibrated_shape_matches_fig9a() {
        let m = DelayModel::default();
        let at_05 = m.factor(0.5);
        let at_16 = m.factor(1.6);
        assert!(
            (6.0..20.0).contains(&at_05),
            "0.5 V should be roughly 10x slower, got {at_05}"
        );
        assert!(
            (0.4..0.8).contains(&at_16),
            "1.6 V should be moderately faster, got {at_16}"
        );
        // monotone: lower voltage, slower
        assert!(m.factor(0.6) > m.factor(0.8));
        assert!(m.factor(0.8) > m.factor(1.0));
    }

    #[test]
    fn freeze_threshold() {
        let m = DelayModel::default();
        assert!(m.is_frozen(0.34));
        assert!(!m.is_frozen(0.35));
        assert!(m.factor(0.30).is_infinite());
    }

    #[test]
    fn step_profile_lookup() {
        let p = VoltageProfile::Steps(vec![(0.0, 0.5), (10.0, 0.4), (20.0, 0.34), (30.0, 0.5)]);
        assert_eq!(p.at(5.0), 0.5);
        assert_eq!(p.at(10.0), 0.4);
        assert_eq!(p.at(25.0), 0.34);
        assert_eq!(p.at(35.0), 0.5);
    }

    #[test]
    fn recovery_time_is_found() {
        let p = VoltageProfile::Steps(vec![(0.0, 0.5), (20.0, 0.34), (30.0, 0.5)]);
        // frozen at t=25 (0.34 V), recovers at t=30
        assert_eq!(p.next_time_above(0.34, 25.0), Some(30.0));
        // already above
        assert_eq!(p.next_time_above(0.34, 5.0), Some(5.0));
        let dead = VoltageProfile::Constant(0.3);
        assert_eq!(dead.next_time_above(0.34, 0.0), None);
    }
}
