//! Node kinds of the DFS model (Fig. 2 of the paper).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node within a [`crate::Dfs`] graph.
///
/// Dense indices in insertion order, meaningful only for the owning graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Dense index of the node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a raw index previously obtained via
    /// [`NodeId::index`].
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The five DFS node types (Fig. 2): the two *static* kinds inherited from
/// SDFS, and the three *dynamic* register kinds that model reconfiguration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// Combinational dataflow component (eq. (1)).
    Logic,
    /// Sequential dataflow component holding at most one token (eq. (2)).
    Register,
    /// Register whose token carries a Boolean value; guards other nodes
    /// (eq. (5)).
    Control,
    /// Register that consumes-and-destroys its token when false-controlled.
    Push,
    /// Register that produces an "empty" token when false-controlled.
    Pop,
}

impl NodeKind {
    /// Is this one of the register kinds (everything except [`Logic`])?
    ///
    /// [`Logic`]: NodeKind::Logic
    #[must_use]
    pub fn is_register(self) -> bool {
        !matches!(self, NodeKind::Logic)
    }

    /// Is this one of the dynamic kinds introduced by the DFS extension
    /// (control, push, pop)?
    #[must_use]
    pub fn is_dynamic(self) -> bool {
        matches!(self, NodeKind::Control | NodeKind::Push | NodeKind::Pop)
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeKind::Logic => "logic",
            NodeKind::Register => "register",
            NodeKind::Control => "control",
            NodeKind::Push => "push",
            NodeKind::Pop => "pop",
        };
        f.write_str(s)
    }
}

/// The Boolean carried by a dynamic register's token.
///
/// For control registers this is the guard value; for push/pop registers
/// [`TokenValue::True`] means "received while true-controlled — behaving as a
/// static register" (the paper's `Mt`), and [`TokenValue::False`] means the
/// token is being destroyed (push) or is an empty bypass token (pop).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TokenValue {
    /// `Mt` — true / static-behaving token.
    True,
    /// `Mf` — false / bypass token.
    False,
}

impl TokenValue {
    /// Boolean view of the value.
    #[must_use]
    pub fn as_bool(self) -> bool {
        matches!(self, TokenValue::True)
    }

    /// Logical negation (used by inverting guard arcs).
    #[must_use]
    pub fn negate(self) -> Self {
        match self {
            TokenValue::True => TokenValue::False,
            TokenValue::False => TokenValue::True,
        }
    }
}

impl From<bool> for TokenValue {
    fn from(b: bool) -> Self {
        if b {
            TokenValue::True
        } else {
            TokenValue::False
        }
    }
}

impl fmt::Display for TokenValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.as_bool() { "True" } else { "False" })
    }
}

/// Initial token state of a register node (the `M0` component of
/// `DFS = ⟨V, E, M0⟩`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InitialMarking {
    /// No token.
    Empty,
    /// A plain token (static registers).
    Marked,
    /// A valued token (dynamic registers; e.g. a control loop initialised
    /// with `True` to include a pipeline stage, `False` to exclude it).
    MarkedWith(TokenValue),
}

impl InitialMarking {
    /// Does this initial state carry a token?
    #[must_use]
    pub fn is_marked(self) -> bool {
        !matches!(self, InitialMarking::Empty)
    }

    /// The token value, defaulting to `True` for plain markings (a marked
    /// static register behaves like a true-marked dynamic one).
    #[must_use]
    pub fn value(self) -> Option<TokenValue> {
        match self {
            InitialMarking::Empty => None,
            InitialMarking::Marked => Some(TokenValue::True),
            InitialMarking::MarkedWith(v) => Some(v),
        }
    }
}

/// A DFS node: name, kind, initial marking and a latency used by the timed
/// simulator and the performance analyser (Fig. 5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// Unique name within the graph.
    pub name: String,
    /// Which of the five kinds this node is.
    pub kind: NodeKind,
    /// Initial token (registers only; `Empty` for logic).
    pub initial: InitialMarking,
    /// Latency of the node in arbitrary time units (the tool lets designers
    /// annotate per-node delays; defaults to 1.0).
    pub delay: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_classification() {
        assert!(!NodeKind::Logic.is_register());
        assert!(NodeKind::Register.is_register());
        assert!(NodeKind::Push.is_register());
        assert!(!NodeKind::Register.is_dynamic());
        assert!(NodeKind::Control.is_dynamic());
        assert!(NodeKind::Pop.is_dynamic());
    }

    #[test]
    fn token_value_conversions() {
        assert!(TokenValue::from(true).as_bool());
        assert!(!TokenValue::from(false).as_bool());
        assert_eq!(TokenValue::True.negate(), TokenValue::False);
        assert_eq!(TokenValue::True.to_string(), "True");
    }

    #[test]
    fn initial_marking_values() {
        assert_eq!(InitialMarking::Empty.value(), None);
        assert_eq!(InitialMarking::Marked.value(), Some(TokenValue::True));
        assert_eq!(
            InitialMarking::MarkedWith(TokenValue::False).value(),
            Some(TokenValue::False)
        );
        assert!(InitialMarking::Marked.is_marked());
        assert!(!InitialMarking::Empty.is_marked());
    }

    #[test]
    fn ids_roundtrip_and_display() {
        let n = NodeId::from_index(12);
        assert_eq!(n.index(), 12);
        assert_eq!(n.to_string(), "n12");
        assert_eq!(NodeKind::Push.to_string(), "push");
    }
}
