//! Offline stand-in for `serde_derive`.
//!
//! The workspace is built in a hermetic environment with no crates.io
//! access, and nothing in the tree actually serialises — the `Serialize` /
//! `Deserialize` derives only declare interchange intent. This shim accepts
//! the same derive syntax (including `#[serde(...)]` field/variant
//! attributes) and expands to nothing, which is sound because no code in the
//! workspace requires the serde traits as bounds.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and `#[serde(...)]` attributes; expands to
/// nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and `#[serde(...)]` attributes; expands
/// to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
