//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

macro_rules! arbitrary_tuples {
    ($(($($t:ident),+))*) => {$(
        impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($t::arbitrary(rng),)+)
            }
        }
    )*};
}

arbitrary_tuples! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
