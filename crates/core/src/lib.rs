//! Dataflow Structures (DFS): a formal model for reconfigurable
//! asynchronous pipelines.
//!
//! This crate implements the primary contribution of *Reconfigurable
//! Asynchronous Pipelines: from Formal Models to Silicon* (Sokolov, de
//! Gennaro, Mokhov — DATE 2018): the DFS formalism extending Static Dataflow
//! Structures with **control**, **push** and **pop** register kinds for
//! modelling dynamic pipeline reconfiguration, together with
//!
//! * an executable operational semantics (eqs. (1)–(5)) — [`mod@semantics`],
//! * a translation to 1-safe Petri nets with read arcs (Fig. 3) —
//!   [`mod@to_petri`],
//! * formal verification (deadlock, control mismatch, persistence) through
//!   the `rap-petri` explorer and `rap-reach` predicates — [`verify`],
//! * interactive and timed simulation — [`sim`], [`timed`],
//! * performance analysis: maximum-cycle-ratio throughput bounds and
//!   bottleneck cycles (Fig. 5) — [`perf`], with automatic buffer
//!   insertion — [`optimize`],
//! * the pipeline design methodology of §III (generic, static and
//!   reconfigurable stages, Fig. 6) — [`pipelines`],
//! * a textual DSL, DOT export and serde interchange — [`dsl`], [`mod@dot`],
//! * the wagging transformation (\[15\] in the paper) — [`wagging`].
//!
//! # Quick start
//!
//! ```
//! use dfs_core::{DfsBuilder, Lts};
//!
//! // A three-register ring: the smallest live asynchronous pipeline loop
//! // (the paper notes three registers are the minimum for oscillation).
//! let mut b = DfsBuilder::new();
//! let a = b.register("a").marked().build();
//! let f = b.logic("f").build();
//! let c = b.register("b").build();
//! let d = b.register("c").build();
//! b.connect(a, f);
//! b.connect(f, c);
//! b.connect(c, d);
//! b.connect(d, a);
//! let dfs = b.finish()?;
//!
//! let lts = Lts::explore(&dfs, 10_000)?;
//! assert!(lts.deadlocks().is_empty());
//! # Ok::<(), dfs_core::DfsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
mod graph;
mod lts;
mod node;
mod state;

pub mod dot;
pub mod dsl;
pub mod examples;
pub mod hash;
pub mod optimize;
pub mod perf;
pub mod pipelines;
pub mod semantics;
pub mod sim;
pub mod timed;
pub mod to_petri;
pub mod verify;
pub mod wagging;

pub use builder::{DfsBuilder, NodeBuilder};
pub use error::DfsError;
pub use graph::{Dfs, EdgeRef, GuardMode, RRef};
pub use lts::{node_rotation_symmetry, Lts, LtsStateId};
pub use node::{InitialMarking, Node, NodeId, NodeKind, TokenValue};
pub use semantics::{Event, GuardStatus};
pub use state::DfsState;
pub use to_petri::{to_petri, PetriImage};
