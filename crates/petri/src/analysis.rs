//! Standard verification analyses: deadlock and persistence.
//!
//! These are the "standard properties" the paper verifies through MPSAT
//! (§II-D): deadlock freedom, and persistence (absence of hazards — an
//! enabled event must not be disabled by another event firing). Custom
//! functional properties are expressed in the Reach-style language of the
//! `rap-reach` crate and evaluated over the same state space.

use crate::reachability::{
    explore_quotient_truncated, explore_truncated, ExploreConfig, StateId, StateSpace,
};
use crate::symmetry::Symmetry;
use crate::{Marking, PetriNet, PlaceId, TransitionId};

/// A reachable deadlock: a state with no enabled transitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Deadlock {
    /// The dead state.
    pub state: StateId,
    /// The dead marking itself.
    pub marking: Marking,
    /// Firing sequence from the initial marking to the dead state.
    pub trace: Vec<TransitionId>,
}

/// Searches the state space for deadlocks.
///
/// Returns all dead states (often one suffices for debugging, but incorrect
/// control initialisation in DFS models typically produces families of dead
/// states; reporting them all mirrors the tool's behaviour).
#[must_use]
pub fn find_deadlocks(space: &StateSpace) -> Vec<Deadlock> {
    space
        .states()
        .filter(|&s| space.successors(s).is_empty())
        .map(|s| Deadlock {
            state: s,
            marking: space.marking(s),
            trace: space.trace_to(s),
        })
        .collect()
}

/// A persistence violation: in `state`, both `enabled` and `disabler` were
/// enabled, but firing `disabler` disabled `enabled` without it having fired.
#[derive(Debug, Clone)]
pub struct PersistenceViolation {
    /// State in which the conflict occurs.
    pub state: StateId,
    /// The transition that loses its enabledness.
    pub enabled: TransitionId,
    /// The transition whose firing disables `enabled`.
    pub disabler: TransitionId,
    /// Trace from the initial marking to `state`.
    pub trace: Vec<TransitionId>,
}

/// Checks persistence over the reachable state space.
///
/// A net is *persistent* when no enabled transition can be disabled by the
/// firing of a different transition. Non-persistence in the PN image of a
/// DFS model indicates a hazard (§III-A: "several cases of deadlock and
/// non-persistent behaviour ... were identified").
///
/// `allowed_conflicts` lets the caller exempt transition pairs that are
/// *intended* choices (e.g. the non-deterministic `Mt+`/`Mf+` evaluation of a
/// control register fed by a data predicate); the predicate receives both
/// transition ids and should return `true` when the pair is an intended
/// choice rather than a hazard.
#[must_use]
pub fn find_persistence_violations(
    net: &PetriNet,
    space: &StateSpace,
    mut allowed_conflicts: impl FnMut(TransitionId, TransitionId) -> bool,
) -> Vec<PersistenceViolation> {
    // word-level enabledness via the incidence index: the check runs over
    // every ordered pair of concurrently enabled transitions, so avoiding a
    // Marking materialisation per probe matters on large spaces
    let inc = crate::engine::Incidence::from_net(net);
    let mut after_words = vec![0u64; space.word_count()];
    let mut out = Vec::new();
    for s in space.states() {
        let succs = space.successors(s);
        if succs.len() < 2 {
            continue;
        }
        for &(disabler, after) in succs {
            space.fill_marking_words(after, &mut after_words);
            for &(enabled, _) in succs {
                if enabled == disabler {
                    continue;
                }
                if inc.is_enabled(enabled, &after_words) {
                    continue;
                }
                if allowed_conflicts(enabled, disabler) {
                    continue;
                }
                out.push(PersistenceViolation {
                    state: s,
                    enabled,
                    disabler,
                    trace: space.trace_to(s),
                });
            }
        }
    }
    out
}

/// Outcome of one property of a budget-bounded [`quick_check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuickVerdict {
    /// The property holds over the *entire* reachable space (the budget was
    /// not hit, so the exploration was exhaustive).
    Holds,
    /// A genuine violation was found (violations found within a truncated
    /// prefix are still real).
    Violated,
    /// No violation found, but the state budget truncated the exploration —
    /// the property holds on the explored prefix only. Carries the budget
    /// that was hit so callers can report (or retry past) the exact bound.
    Inconclusive {
        /// The `max_states` budget that stopped exploration.
        budget: usize,
    },
}

impl QuickVerdict {
    /// Did the check find a violation?
    #[must_use]
    pub fn is_violated(self) -> bool {
        self == QuickVerdict::Violated
    }
}

/// Result of a budget-bounded deadlock + 1-safety check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuickCheck {
    /// States explored.
    pub states: usize,
    /// Whether the budget truncated the exploration.
    pub truncated: bool,
    /// Deadlock-freedom verdict; [`QuickCheck::deadlock`] carries the
    /// counterexample on violation.
    pub deadlock_free: QuickVerdict,
    /// The first deadlock found, if any.
    pub deadlock: Option<Deadlock>,
    /// Complementary-pair (1-safety) verdict over the supplied pairs;
    /// [`QuickVerdict::Holds`] trivially when `pairs` is empty and the
    /// space was exhausted.
    pub safe: QuickVerdict,
    /// On a safety violation: the offending state and pair index.
    pub unsafe_witness: Option<(StateId, usize)>,
}

impl QuickCheck {
    /// Both properties verified over the whole space.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.deadlock_free == QuickVerdict::Holds && self.safe == QuickVerdict::Holds
    }

    /// Neither property violated (possibly only on a truncated prefix).
    #[must_use]
    pub fn no_violation(&self) -> bool {
        !self.deadlock_free.is_violated() && !self.safe.is_violated()
    }
}

/// Budget-bounded deadlock and 1-safety check — the cheap screen a design
/// sweep runs on every candidate before trusting its performance numbers.
///
/// Explores at most `max_states` markings (never erroring on overrun,
/// unlike [`crate::reachability::explore`]) and checks the explored prefix
/// for deadlocks and for violations of the complementary-pair 1-safety
/// invariant (see [`check_complementary_pairs`]; DFS translations obtain
/// the pairs from `PetriImage::complementary_pairs`).
///
/// Truncation is handled soundly in both directions: a violation found in
/// the prefix is a real violation of the net, and a prefix state without
/// recorded successors is re-checked against the net for enabled
/// transitions before being called a deadlock — an unexpanded frontier
/// state of a truncated exploration is *not* a counterexample. When the
/// budget was hit and nothing was found, the verdicts say
/// [`QuickVerdict::Inconclusive`] instead of over-claiming.
#[must_use]
pub fn quick_check(net: &PetriNet, pairs: &[(PlaceId, PlaceId)], max_states: usize) -> QuickCheck {
    quick_check_traced(net, pairs, max_states, &rap_obs::Obs::none())
}

/// [`quick_check`] with a recorder attached: the underlying exploration
/// emits its per-level spans and engine counters into `obs` (see
/// [`crate::reachability::explore_truncated_traced`]). Recording is
/// observation-only — the verdicts are identical to [`quick_check`].
#[must_use]
pub fn quick_check_traced(
    net: &PetriNet,
    pairs: &[(PlaceId, PlaceId)],
    max_states: usize,
    obs: &rap_obs::Obs,
) -> QuickCheck {
    let cfg = ExploreConfig {
        max_states,
        ..ExploreConfig::default()
    };
    let space = crate::reachability::explore_truncated_traced(net, cfg, obs);
    verdicts_over(net, &space, pairs, max_states)
}

/// [`quick_check`] under an explicit [`ExploreConfig`] — the variant that
/// exposes the wall-clock [`deadline`](ExploreConfig::deadline) (and the
/// thread count) in addition to the state budget.
///
/// A deadline expiry produces the same *typed* outcomes as a budget hit:
/// the exploration stops `Truncated` at a level-commit barrier and the
/// verdicts over the (complete-level, deterministic) prefix degrade to
/// [`QuickVerdict::Inconclusive`] unless a genuine violation was already
/// found — a runaway check never over-claims, and never runs past its
/// time box to the state cap. The reported `Inconclusive` budget is the
/// state budget in force when the clock cut the run.
#[must_use]
pub fn quick_check_with(
    net: &PetriNet,
    pairs: &[(PlaceId, PlaceId)],
    cfg: &ExploreConfig,
) -> QuickCheck {
    let space = explore_truncated(net, *cfg);
    verdicts_over(net, &space, pairs, cfg.max_states)
}

/// Symmetry-reduced [`quick_check`]: explores the rotation *quotient* under
/// `sym` (up to `sym.order()`× fewer states for the same verdicts) and
/// checks the same two properties on the representatives.
///
/// Soundness: deadlock-freedom is orbit-invariant (a representative is dead
/// iff every member of its orbit is), and the engine's quotient discovers
/// exactly the canonical image of the reachable set, so the deadlock
/// verdict transfers unchanged. The 1-safety verdict over `pairs` transfers
/// **iff the pair set is closed under the symmetry** — this function
/// panics otherwise rather than return an unsound verdict (DFS wagging
/// replicates every variable's complementary pair into each way, so the
/// pair sets it produces are closed by construction).
///
/// Counterexamples are made concrete before being reported: the attached
/// deadlock trace replays on the original net from its real initial
/// marking ([`StateSpace::concrete_trace_to`]).
///
/// # Panics
///
/// When `pairs` is not closed under `sym` (see above).
#[must_use]
pub fn quick_check_quotient(
    net: &PetriNet,
    pairs: &[(PlaceId, PlaceId)],
    max_states: usize,
    sym: &Symmetry,
) -> QuickCheck {
    assert!(
        sym.pairs_closed(pairs),
        "complementary-pair set is not closed under the symmetry; the quotient verdict would be unsound"
    );
    let ssym = sym.state_symmetry();
    let space = explore_quotient_truncated(
        net,
        ExploreConfig {
            max_states,
            ..ExploreConfig::default()
        },
        &ssym,
    );
    verdicts_over(net, &space, pairs, max_states)
}

/// Shared verdict pass of [`quick_check`] / [`quick_check_quotient`].
fn verdicts_over(
    net: &PetriNet,
    space: &StateSpace,
    pairs: &[(PlaceId, PlaceId)],
    max_states: usize,
) -> QuickCheck {
    let truncated = space.is_truncated();

    let mut deadlock = None;
    let mut marking = Marking::empty(net.place_count());
    let mut enabled = Vec::new();
    for s in space.states() {
        if !space.successors(s).is_empty() {
            continue;
        }
        // deadness is re-verified on the net itself (a truncated frontier
        // state has no recorded successors but is not dead); for a quotient
        // space the representative's marking is checked — deadness is
        // orbit-invariant, so this equals checking the concrete member
        space.fill_marking(s, &mut marking);
        net.enabled_transitions_into(&marking, &mut enabled);
        if enabled.is_empty() {
            deadlock = Some(Deadlock {
                state: s,
                marking: space.concrete_marking(s),
                trace: space.concrete_trace_to(s),
            });
            break;
        }
    }
    let deadlock_free = match (&deadlock, truncated) {
        (Some(_), _) => QuickVerdict::Violated,
        (None, false) => QuickVerdict::Holds,
        (None, true) => QuickVerdict::Inconclusive { budget: max_states },
    };

    let unsafe_witness = check_complementary_pairs(space, pairs);
    let safe = match (&unsafe_witness, truncated) {
        (Some(_), _) => QuickVerdict::Violated,
        (None, false) => QuickVerdict::Holds,
        (None, true) => QuickVerdict::Inconclusive { budget: max_states },
    };

    QuickCheck {
        states: space.len(),
        truncated,
        deadlock_free,
        deadlock,
        safe,
        unsafe_witness,
    }
}

/// Verifies that every reachable marking keeps the net 1-safe with respect to
/// a set of *complementary place pairs*: for each pair exactly one of the two
/// places is marked.
///
/// The DFS translation introduces `x_0`/`x_1` place pairs per state variable;
/// this check is the structural invariant that validates the translation.
#[must_use]
pub fn check_complementary_pairs(
    space: &StateSpace,
    pairs: &[(crate::PlaceId, crate::PlaceId)],
) -> Option<(StateId, usize)> {
    let mut words = vec![0u64; space.word_count()];
    for s in space.states() {
        space.fill_marking_words(s, &mut words);
        for (i, &(p0, p1)) in pairs.iter().enumerate() {
            if crate::engine::get_bit(&words, p0.index())
                == crate::engine::get_bit(&words, p1.index())
            {
                return Some((s, i));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reachability::{explore, ExploreConfig};
    use crate::PetriNet;

    #[test]
    fn detects_deadlock_with_trace() {
        // a -> b -> (dead)
        let mut net = PetriNet::new();
        let a = net.add_place("a", true);
        let b = net.add_place("b", false);
        let c = net.add_place("c", false);
        let t1 = net.add_transition("t1");
        net.consume(t1, a);
        net.produce(t1, b);
        let t2 = net.add_transition("t2");
        net.consume(t2, b);
        net.produce(t2, c);
        let space = explore(&net, ExploreConfig::default()).unwrap();
        let dls = find_deadlocks(&space);
        assert_eq!(dls.len(), 1);
        assert_eq!(dls[0].trace, vec![t1, t2]);
        assert!(dls[0].marking.is_marked(c));
    }

    #[test]
    fn live_ring_has_no_deadlock() {
        let mut net = PetriNet::new();
        let a = net.add_place("a", true);
        let b = net.add_place("b", false);
        let t1 = net.add_transition("t1");
        net.consume(t1, a);
        net.produce(t1, b);
        let t2 = net.add_transition("t2");
        net.consume(t2, b);
        net.produce(t2, a);
        let space = explore(&net, ExploreConfig::default()).unwrap();
        assert!(find_deadlocks(&space).is_empty());
    }

    #[test]
    fn detects_choice_as_persistence_violation() {
        // one token, two competing consumers => classic conflict
        let mut net = PetriNet::new();
        let a = net.add_place("a", true);
        let b = net.add_place("b", false);
        let c = net.add_place("c", false);
        let t1 = net.add_transition("t1");
        net.consume(t1, a);
        net.produce(t1, b);
        let t2 = net.add_transition("t2");
        net.consume(t2, a);
        net.produce(t2, c);
        let space = explore(&net, ExploreConfig::default()).unwrap();
        let v = find_persistence_violations(&net, &space, |_, _| false);
        // both orderings are reported
        assert_eq!(v.len(), 2);
        let allowed = find_persistence_violations(&net, &space, |_, _| true);
        assert!(allowed.is_empty());
    }

    #[test]
    fn concurrent_transitions_are_persistent() {
        let mut net = PetriNet::new();
        let a = net.add_place("a", true);
        let b = net.add_place("b", true);
        let a1 = net.add_place("a1", false);
        let b1 = net.add_place("b1", false);
        let t1 = net.add_transition("t1");
        net.consume(t1, a);
        net.produce(t1, a1);
        let t2 = net.add_transition("t2");
        net.consume(t2, b);
        net.produce(t2, b1);
        let space = explore(&net, ExploreConfig::default()).unwrap();
        assert!(find_persistence_violations(&net, &space, |_, _| false).is_empty());
    }

    #[test]
    fn complementary_pair_check() {
        let mut net = PetriNet::new();
        let x0 = net.add_place("x_0", true);
        let x1 = net.add_place("x_1", false);
        let t = net.add_transition("x+");
        net.consume(t, x0);
        net.produce(t, x1);
        let space = explore(&net, ExploreConfig::default()).unwrap();
        assert!(check_complementary_pairs(&space, &[(x0, x1)]).is_none());

        // a broken net where the pair can both become marked
        let mut bad = PetriNet::new();
        let y0 = bad.add_place("y_0", true);
        let y1 = bad.add_place("y_1", false);
        let t = bad.add_transition("oops");
        bad.read(t, y0);
        bad.produce(t, y1);
        let space = explore(&bad, ExploreConfig::default()).unwrap();
        let hit = check_complementary_pairs(&space, &[(y0, y1)]);
        assert!(hit.is_some());
    }

    /// a → b → c: a genuine dead end the quick check must find and trace.
    fn dead_end_net() -> (PetriNet, PlaceId, PlaceId) {
        let mut net = PetriNet::new();
        let a = net.add_place("a", true);
        let b = net.add_place("b", false);
        let c = net.add_place("c", false);
        let t1 = net.add_transition("t1");
        net.consume(t1, a);
        net.produce(t1, b);
        let t2 = net.add_transition("t2");
        net.consume(t2, b);
        net.produce(t2, c);
        (net, a, c)
    }

    fn live_ring_net(n: usize) -> PetriNet {
        let mut net = PetriNet::new();
        let places: Vec<PlaceId> = (0..n)
            .map(|i| net.add_place(format!("p{i}"), i == 0))
            .collect();
        for i in 0..n {
            let t = net.add_transition(format!("t{i}"));
            net.consume(t, places[i]);
            net.produce(t, places[(i + 1) % n]);
        }
        net
    }

    #[test]
    fn quick_check_finds_real_deadlocks_and_certifies_live_nets() {
        let (net, _, c) = dead_end_net();
        let qc = quick_check(&net, &[], 1_000);
        assert_eq!(qc.deadlock_free, QuickVerdict::Violated);
        assert!(!qc.no_violation());
        let dl = qc.deadlock.expect("counterexample attached");
        assert_eq!(dl.trace.len(), 2);
        assert!(dl.marking.is_marked(c));

        let qc = quick_check(&live_ring_net(5), &[], 1_000);
        assert!(qc.is_clean(), "{qc:?}");
        assert_eq!(qc.states, 5);
        assert!(!qc.truncated);
    }

    /// Truncation must downgrade "no violation" to Inconclusive, and an
    /// unexpanded frontier state must not masquerade as a deadlock.
    #[test]
    fn quick_check_is_sound_under_truncation() {
        // the dead-end net truncated to 2 of its 3 states: state b has no
        // recorded successors but t2 is enabled there — not a deadlock
        let (net, _, _) = dead_end_net();
        let qc = quick_check(&net, &[], 2);
        assert!(qc.truncated);
        assert_eq!(qc.deadlock_free, QuickVerdict::Inconclusive { budget: 2 });
        assert!(qc.deadlock.is_none());
        assert!(qc.no_violation() && !qc.is_clean());

        // a live ring truncated mid-way: inconclusive, carrying the budget
        // that was hit, not violated
        let qc = quick_check(&live_ring_net(8), &[], 3);
        assert!(qc.truncated);
        assert_eq!(qc.deadlock_free, QuickVerdict::Inconclusive { budget: 3 });
        assert_eq!(qc.safe, QuickVerdict::Inconclusive { budget: 3 });
    }

    #[test]
    fn quotient_quick_check_agrees_with_full_on_a_symmetric_ring() {
        let net = live_ring_net(6);
        let perm: Vec<u32> = (0..6u32).map(|i| (i + 1) % 6).collect();
        let sym = Symmetry::new(&net, perm).unwrap();
        let full = quick_check(&net, &[], 1_000);
        let quo = quick_check_quotient(&net, &[], 1_000, &sym);
        assert_eq!(full.deadlock_free, quo.deadlock_free);
        assert_eq!(full.safe, quo.safe);
        assert_eq!(full.states, 6);
        assert_eq!(quo.states, 1, "all 6 token positions are one orbit");
    }

    #[test]
    fn quotient_deadlock_traces_are_concrete() {
        // two independent dead-end chains a->b (way 0 / way 1), swap-symmetric
        let mut net = PetriNet::new();
        let a0 = net.add_place("a0", true);
        let b0 = net.add_place("b0", false);
        let a1 = net.add_place("a1", true);
        let b1 = net.add_place("b1", false);
        let t0 = net.add_transition("t0");
        net.consume(t0, a0);
        net.produce(t0, b0);
        let t1 = net.add_transition("t1");
        net.consume(t1, a1);
        net.produce(t1, b1);
        // generator: swap ways (a0<->a1, b0<->b1)
        let sym = Symmetry::new(&net, vec![2, 3, 0, 1]).unwrap();
        assert_eq!(sym.order(), 2);
        let qc = quick_check_quotient(&net, &[], 1_000, &sym);
        assert_eq!(qc.deadlock_free, QuickVerdict::Violated);
        let dl = qc.deadlock.expect("deadlock witness");
        // the concrete trace replays on the original net into the concrete
        // dead marking
        let mut m = net.initial_marking();
        for t in &dl.trace {
            m = net.fire(*t, &m).unwrap();
        }
        assert_eq!(m, dl.marking);
        assert!(net.enabled_transitions(&m).is_empty());
        let _ = (a0, b0, a1, b1);
    }

    #[test]
    #[should_panic(expected = "not closed under the symmetry")]
    fn quotient_rejects_unclosed_pair_sets() {
        let net = live_ring_net(4);
        let perm: Vec<u32> = (0..4u32).map(|i| (i + 1) % 4).collect();
        let sym = Symmetry::new(&net, perm).unwrap();
        let p = |i: usize| PlaceId::from_index(i);
        let _ = quick_check_quotient(&net, &[(p(0), p(1))], 1_000, &sym);
    }

    #[test]
    fn quick_check_reports_unsafe_pairs_even_when_truncated() {
        let mut bad = PetriNet::new();
        let y0 = bad.add_place("y_0", true);
        let y1 = bad.add_place("y_1", false);
        let t = bad.add_transition("oops");
        bad.read(t, y0);
        bad.produce(t, y1);
        let qc = quick_check(&bad, &[(y0, y1)], 2);
        assert_eq!(qc.safe, QuickVerdict::Violated);
        assert!(qc.unsafe_witness.is_some());
    }
}
