//! Self-tests of the proptest stand-in: the harness must actually run the
//! configured number of cases, honour bounds, and reject/retry correctly.
//! If the shim silently stopped generating, every property in the
//! workspace would pass vacuously — these tests make that failure loud.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

static CASES_RUN: AtomicU32 = AtomicU32::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn runs_exactly_the_configured_cases(_x in 0u8..10) {
        CASES_RUN.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn case_budget_is_spent() {
    runs_exactly_the_configured_cases();
    assert_eq!(CASES_RUN.load(Ordering::SeqCst), 40);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn ranges_stay_in_bounds(x in 3u8..17, y in -5i32..5, z in 0usize..1) {
        prop_assert!((3..17).contains(&x));
        prop_assert!((-5..5).contains(&y));
        prop_assert_eq!(z, 0);
    }

    #[test]
    fn vec_sizes_are_honoured(
        exact in proptest::collection::vec(any::<bool>(), 7),
        ranged in proptest::collection::vec(0u8..5, 2..6),
    ) {
        prop_assert_eq!(exact.len(), 7);
        prop_assert!((2..6).contains(&ranged.len()));
        prop_assert!(ranged.iter().all(|&v| v < 5));
    }

    #[test]
    fn assume_rejects_without_failing(x in 0u8..100) {
        prop_assume!(x % 2 == 0);
        prop_assert_eq!(x % 2, 0);
    }

    #[test]
    fn filter_map_only_yields_some(x in (0u32..1000).prop_filter_map("odd", |x| {
        if x % 2 == 0 { Some(x / 2) } else { None }
    })) {
        prop_assert!(x < 500);
    }
}

#[test]
fn generation_is_diverse_and_deterministic() {
    use proptest::strategy::Strategy;
    use proptest::test_runner::TestRng;
    let strat = proptest::collection::vec(0u64..1_000_000, 4);
    let mut a = TestRng::from_name("seed");
    let mut b = TestRng::from_name("seed");
    let va: Vec<_> = (0..50).map(|_| strat.generate(&mut a)).collect();
    let vb: Vec<_> = (0..50).map(|_| strat.generate(&mut b)).collect();
    // same seed → same stream
    assert_eq!(va, vb);
    // different draws are not all identical (the RNG advances)
    assert!(va.windows(2).any(|w| w[0] != w[1]));
}

#[test]
fn oneof_hits_every_arm() {
    use proptest::strategy::Strategy;
    use proptest::test_runner::TestRng;
    let strat = prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
    let mut rng = TestRng::from_name("arms");
    let mut seen = [false; 3];
    for _ in 0..200 {
        seen[strat.generate(&mut rng) as usize] = true;
    }
    assert_eq!(seen, [true; 3]);
}

#[test]
fn recursive_strategies_nest_but_terminate() {
    use proptest::strategy::Strategy;
    use proptest::test_runner::TestRng;
    let leaf = Just("x".to_string()).boxed();
    let expr = leaf.prop_recursive(3, 24, 2, |inner| {
        (inner.clone(), inner).prop_map(|(a, b)| format!("({a} {b})"))
    });
    let mut rng = TestRng::from_name("rec");
    let v = expr.generate(&mut rng);
    // depth 3 over a binary combinator: 8 leaves exactly
    assert_eq!(v.matches('x').count(), 8);
    assert!(v.starts_with('('));
}
