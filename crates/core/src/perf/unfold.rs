//! Phase unfolding: exact event graphs for models with choice.
//!
//! The direct construction of [`EventGraph::build`](super::EventGraph::build)
//! gives every node two vertices and assumes every dependency fires once per
//! period — an *always-included* abstraction that silently under-reports the
//! period of k-way wagging (each way's entry push accepts a true token only
//! every k-th item) and of reconfigurable pipelines with excluded stages.
//!
//! This module builds the event graph on the **k-phase unfolding** of the
//! choice schedule instead:
//!
//! 1. **Replay.** The untimed operational semantics is replayed with a
//!    deterministic scheduler (first enabled event in node order) and the
//!    `AlwaysTrue` resolution of data-dependent free choices. Guard values
//!    copied around control rings make the schedule of every choice
//!    deterministic, so the replay reaches a periodic orbit: the state
//!    recurs, and the events fired between two recurrences are one
//!    *hyper-period* of the steady-state schedule (k items for k-way
//!    round-robin wagging).
//! 2. **Cause extraction.** During one further period every fired event
//!    records, per enabling condition of its semantic rule — the rules of
//!    eqs. (1)–(5) *split by token variant*, so a false-controlled push's
//!    consume-and-destroy timing differs from its true-controlled
//!    mark — the occurrence of the neighbouring event that last established
//!    that condition. Conditions that never lapse during a period (an
//!    excluded stage's frozen control loop) impose no steady-state timing
//!    constraint and produce no arc.
//! 3. **Unfolded graph.** Every event that fires `R` times per hyper-period
//!    becomes `R` phase-replicated vertices; each recorded cause becomes an
//!    arc between the right phase copies, weighted by the target's latency
//!    and carrying the number of hyper-period wrap-arounds as its token
//!    offset. The result is a *choice-free* marked event graph, and the
//!    unchanged MCR solvers ([`super::mcr`], [`super::howard`]) apply: the
//!    maximum cycle ratio is the exact duration of one hyper-period.
//!
//! Dependency extraction by replay is valid because the supported models
//! are *persistent* once choices are scheduled (an enabled event is never
//! disabled by another firing), which makes the occurrence-to-occurrence
//! matching independent of the interleaving order. The property is not
//! assumed blindly: the timed simulator's steady-state detector
//! ([`crate::timed::measure_steady_period`]) is an independent oracle, and
//! the equality of the two is pinned across the wagging/reconfigurable
//! shape grid in `tests/perf_cross_check.rs`.

use super::{dedup, EventArc, EventGraph, EventVertex};
use crate::graph::Dfs;
use crate::node::{NodeId, NodeKind, TokenValue};
use crate::semantics::Event;
use crate::state::DfsState;
use crate::DfsError;
use std::collections::HashMap;

/// Hard cap on replay steps before giving up on finding a periodic orbit.
pub const STEP_BUDGET: usize = 1_000_000;

/// The phase-unfolded, choice-free event graph of a model.
#[derive(Debug, Clone)]
pub struct Unfolding {
    /// The unfolded graph: one vertex per (event, phase), arcs carrying
    /// hyper-period wrap-arounds as token offsets.
    pub graph: EventGraph,
    /// Occurrences of the fastest event per hyper-period — the number of
    /// items the environment streams through one period of the choice
    /// schedule (`k` for k-way wagging).
    pub items_per_period: u32,
    /// Events fired per hyper-period of the untimed replay.
    pub steps_per_period: usize,
}

/// State predicates the operational semantics conditions events on. Each is
/// established by exactly one event family of its node: positive predicates
/// by the `+` event (eval/mark), negative ones by the `-` event
/// (reset/unmark).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pred {
    /// `C(l)` — logic evaluated.
    Active,
    /// `!C(l)` — logic reset.
    Inactive,
    /// `M(r)` — register marked (any value).
    Marked,
    /// `!M(r)` — register empty.
    Unmarked,
    /// `Mt(r)` — marked with a true token.
    TrueMarked,
    /// `!Mt(r)` — not holding a true token (established by the unmark that
    /// releases a true token; a false mark keeps it true without
    /// re-establishing it).
    NotTrueMarked,
}

const PRED_COUNT: usize = 6;

fn pred_slot(n: NodeId, p: Pred) -> usize {
    n.index() * PRED_COUNT + p as usize
}

fn establisher_plus(p: Pred) -> bool {
    matches!(p, Pred::Active | Pred::Marked | Pred::TrueMarked)
}

/// Event-family slot: `2·node` for the `+` event, `2·node + 1` for `-`.
fn ev_slot(n: NodeId, plus: bool) -> usize {
    n.index() * 2 + usize::from(!plus)
}

fn event_plus(ev: Event) -> bool {
    matches!(ev, Event::Eval(_) | Event::Mark(..))
}

/// One fired event of the extraction window with its direct causes.
struct Firing {
    /// Event-family slot of the fired event.
    slot: usize,
    /// Absolute occurrence index (0-based) of the fired event.
    occ: u64,
    /// Per enabling condition: (source event slot, source occurrence,
    /// replay step at which the condition was established).
    causes: Vec<(usize, u64, u64)>,
}

/// Builds the phase-unfolded event graph of `dfs`.
///
/// # Errors
///
/// * [`DfsError::SimulationStalled`] — the replay deadlocked (e.g.
///   mismatched guards disable a node for good).
/// * [`DfsError::StateBudgetExceeded`] — no periodic orbit within
///   [`STEP_BUDGET`] steps.
pub fn unfold(dfs: &Dfs) -> Result<Unfolding, DfsError> {
    let n = dfs.node_count();
    let mut state = DfsState::initial(dfs);
    let mut est: Vec<Option<(u64, u64)>> = vec![None; n * PRED_COUNT];
    let mut counts: Vec<u64> = vec![0; n * 2];
    let mut seen: HashMap<DfsState, u64> = HashMap::new();
    let mut step: u64 = 0;
    let mut conds: Vec<(NodeId, Pred)> = Vec::new();

    // phase 1: drive the deterministic replay onto its periodic orbit
    let regime_start = loop {
        if step as usize >= STEP_BUDGET {
            return Err(DfsError::StateBudgetExceeded {
                budget: STEP_BUDGET,
            });
        }
        if let Some(&prev) = seen.get(&state) {
            break prev;
        }
        seen.insert(state.clone(), step);
        let Some(ev) = pick_event(dfs, &state) else {
            return Err(DfsError::SimulationStalled {
                time: 0.0,
                produced: 0,
            });
        };
        fire(dfs, &mut state, ev, &mut est, &mut counts, step);
        step += 1;
    };
    let period_len = step - regime_start;

    // phase 2: replay one more full period, recording per-event causes
    let start_counts = counts.clone();
    let mut firings: Vec<Firing> = Vec::with_capacity(period_len as usize);
    for _ in 0..period_len {
        let ev = pick_event(dfs, &state).expect("a periodic orbit cannot stall");
        conditions(dfs, &state, ev, &mut conds);
        let causes = conds
            .iter()
            .filter_map(|&(q, p)| {
                est[pred_slot(q, p)].map(|(occ, st)| (ev_slot(q, establisher_plus(p)), occ, st))
            })
            .collect();
        firings.push(Firing {
            slot: ev_slot(ev.node(), event_plus(ev)),
            occ: counts[ev_slot(ev.node(), event_plus(ev))],
            causes,
        });
        fire(dfs, &mut state, ev, &mut est, &mut counts, step);
        step += 1;
    }

    Ok(build_graph(
        dfs,
        &start_counts,
        &counts,
        &firings,
        regime_start,
    ))
}

/// The deterministic replay scheduler: the first enabled event in node
/// order, with data-dependent free choices resolved to `True` (the policy
/// the simulator cross-checks use).
fn pick_event(dfs: &Dfs, s: &DfsState) -> Option<Event> {
    let enabled = dfs.enabled_events(s);
    enabled.iter().copied().find(|&ev| {
        !matches!(ev, Event::Mark(c, TokenValue::False)
            if enabled.contains(&Event::Mark(c, TokenValue::True)))
    })
}

/// Applies `ev` and updates occurrence counts and the
/// predicate-establishment table.
fn fire(
    dfs: &Dfs,
    state: &mut DfsState,
    ev: Event,
    est: &mut [Option<(u64, u64)>],
    counts: &mut [u64],
    step: u64,
) {
    let node = ev.node();
    // `!Mt` is established only by the unmark that releases a *true* token
    let released_true = matches!(ev, Event::Unmark(r) if state.is_true_marked(r));
    let slot = ev_slot(node, event_plus(ev));
    let occ = counts[slot];
    *state = dfs.apply(state, ev);
    counts[slot] += 1;
    let stamp = Some((occ, step));
    match ev {
        Event::Eval(_) => est[pred_slot(node, Pred::Active)] = stamp,
        Event::Reset(_) => est[pred_slot(node, Pred::Inactive)] = stamp,
        Event::Mark(_, v) => {
            est[pred_slot(node, Pred::Marked)] = stamp;
            if v == TokenValue::True {
                est[pred_slot(node, Pred::TrueMarked)] = stamp;
            }
        }
        Event::Unmark(_) => {
            est[pred_slot(node, Pred::Unmarked)] = stamp;
            if released_true {
                est[pred_slot(node, Pred::NotTrueMarked)] = stamp;
            }
        }
    }
}

/// The enabling conditions of `ev` in `s`, mirroring the rule branches of
/// [`crate::semantics`] — crucially *split by token variant*: a
/// false-controlled push or pop conditions on a strictly smaller predicate
/// set than its true-controlled sibling.
fn conditions(dfs: &Dfs, s: &DfsState, ev: Event, out: &mut Vec<(NodeId, Pred)>) {
    out.clear();
    match ev {
        Event::Eval(l) => {
            out.push((l, Pred::Inactive));
            for e in dfs.preds(l) {
                out.push((
                    e.node,
                    match dfs.kind(e.node) {
                        NodeKind::Logic => Pred::Active,
                        NodeKind::Push => Pred::TrueMarked,
                        _ => Pred::Marked,
                    },
                ));
            }
        }
        Event::Reset(l) => {
            out.push((l, Pred::Active));
            for e in dfs.preds(l) {
                out.push((
                    e.node,
                    match dfs.kind(e.node) {
                        NodeKind::Logic => Pred::Inactive,
                        NodeKind::Push => Pred::NotTrueMarked,
                        // registers share the `C`/`M` state variable: the
                        // reset waits for the register to *unmark*
                        _ => Pred::Unmarked,
                    },
                ));
            }
        }
        Event::Mark(r, v) => {
            out.push((r, Pred::Unmarked));
            match (dfs.kind(r), v) {
                (NodeKind::Push, TokenValue::False) => {
                    // consume-and-destroy: preset half only (eq. (3))
                    mark_core_preset(dfs, r, out);
                }
                (NodeKind::Pop, TokenValue::False) => {
                    // spontaneous empty token: guards ready, postset empty;
                    // the data preset is not consulted (eq. (4))
                    for g in dedup(dfs.guards(r)) {
                        out.push((g, Pred::Marked));
                    }
                    for q in dedup(dfs.r_postset(r)) {
                        out.push((q, Pred::Unmarked));
                    }
                }
                _ => {
                    mark_core_preset(dfs, r, out);
                    for q in dedup(dfs.r_postset(r)) {
                        out.push((q, Pred::Unmarked));
                    }
                }
            }
        }
        Event::Unmark(r) => {
            out.push((r, Pred::Marked));
            let false_token = s.token_value(r) == Some(TokenValue::False);
            match (dfs.kind(r), false_token) {
                (NodeKind::Push, true) => {
                    // destroy once the preset withdraws; the R-postset
                    // never saw the token
                    for e in dfs.preds(r) {
                        if dfs.kind(e.node) == NodeKind::Logic {
                            out.push((e.node, Pred::Inactive));
                        }
                    }
                    for q in dedup(dfs.r_preset(r)) {
                        out.push((q, Pred::Unmarked));
                    }
                }
                (NodeKind::Pop, true) => {
                    // empty token moves on once the guard released and the
                    // downstream accepted
                    for g in dedup(dfs.guards(r)) {
                        out.push((g, Pred::Unmarked));
                    }
                    for q in dedup(dfs.r_postset(r)) {
                        out.push((
                            q,
                            if dfs.kind(q) == NodeKind::Pop {
                                Pred::TrueMarked
                            } else {
                                Pred::Marked
                            },
                        ));
                    }
                }
                _ => unmark_core_conditions(dfs, r, out),
            }
        }
    }
}

/// The preset half of `M↑` (eqs. (2)/(4)): preset logic evaluated, `?r`
/// marked with pushes tested via `Mt`.
fn mark_core_preset(dfs: &Dfs, r: NodeId, out: &mut Vec<(NodeId, Pred)>) {
    for e in dfs.preds(r) {
        if dfs.kind(e.node) == NodeKind::Logic {
            out.push((e.node, Pred::Active));
        }
    }
    for q in dedup(dfs.r_preset(r)) {
        out.push((
            q,
            if dfs.kind(q) == NodeKind::Push {
                Pred::TrueMarked
            } else {
                Pred::Marked
            },
        ));
    }
}

/// The static `M↓` conditions (eqs. (2)/(4)) including the pop-`Mt`
/// refinement and its control-register exemption.
fn unmark_core_conditions(dfs: &Dfs, r: NodeId, out: &mut Vec<(NodeId, Pred)>) {
    let exempt_pops = dfs.kind(r) == NodeKind::Control;
    for e in dfs.preds(r) {
        if dfs.kind(e.node) == NodeKind::Logic {
            out.push((e.node, Pred::Inactive));
        }
    }
    for q in dedup(dfs.r_preset(r)) {
        out.push((
            q,
            if dfs.kind(q) == NodeKind::Push {
                Pred::NotTrueMarked
            } else {
                Pred::Unmarked
            },
        ));
    }
    for q in dedup(dfs.r_postset(r)) {
        out.push((
            q,
            if dfs.kind(q) == NodeKind::Pop && !exempt_pops {
                Pred::TrueMarked
            } else {
                Pred::Marked
            },
        ));
    }
}

/// Assembles the unfolded graph from one recorded period.
fn build_graph(
    dfs: &Dfs,
    start: &[u64],
    end: &[u64],
    firings: &[Firing],
    regime_start: u64,
) -> Unfolding {
    let slots = start.len();
    let rates: Vec<u64> = (0..slots).map(|i| end[i] - start[i]).collect();
    // vertex layout: contiguous phase copies per event family
    let mut base = vec![usize::MAX; slots];
    let mut vertices = Vec::new();
    for i in 0..slots {
        if rates[i] > 0 {
            base[i] = vertices.len();
            let v = EventVertex {
                node: NodeId::from_index(i / 2),
                plus: i % 2 == 0,
            };
            vertices.extend(std::iter::repeat_n(v, rates[i] as usize));
        }
    }
    let mut arcs = Vec::new();
    for f in firings {
        let j = (f.occ - start[f.slot]) as usize;
        let weight = dfs.node(NodeId::from_index(f.slot / 2)).delay;
        for &(src, occ, st) in &f.causes {
            if st < regime_start {
                // established before the periodic regime and never again
                // during a full period: an eternally-true condition with no
                // steady-state timing constraint
                continue;
            }
            let r = rates[src] as i64;
            debug_assert!(r > 0, "periodic-regime cause from a rate-0 event");
            let d = occ as i64 - start[src] as i64;
            // phase of the causing occurrence, and how many hyper-periods
            // back it lies — the wrap-around becomes the token offset
            let q = d.rem_euclid(r) as usize;
            let wraps = -d.div_euclid(r);
            arcs.push(EventArc {
                from: base[src] + q,
                to: base[f.slot] + j,
                weight,
                tokens: u32::try_from(wraps).expect("causes precede their effects"),
            });
        }
    }
    let items = rates.iter().max().copied().unwrap_or(0);
    Unfolding {
        graph: EventGraph::new(vertices, arcs),
        items_per_period: u32::try_from(items).unwrap_or(u32::MAX),
        steps_per_period: firings.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfsBuilder;
    use crate::perf::mcr::maximum_cycle_ratio;

    fn ring(n: usize) -> Dfs {
        let mut b = DfsBuilder::new();
        let regs: Vec<NodeId> = (0..n)
            .map(|i| {
                let nb = b.register(format!("r{i}"));
                if i == 0 {
                    nb.marked().build()
                } else {
                    nb.build()
                }
            })
            .collect();
        for i in 0..n {
            b.connect(regs[i], regs[(i + 1) % n]);
        }
        b.finish().unwrap()
    }

    #[test]
    fn unfolding_matches_direct_graph_on_choice_free_rings() {
        for n in [3usize, 4, 5, 8] {
            let dfs = ring(n);
            let direct = maximum_cycle_ratio(&EventGraph::build(&dfs)).unwrap();
            let u = unfold(&dfs).unwrap();
            let unfolded = maximum_cycle_ratio(&u.graph).unwrap();
            let period = unfolded.ratio / f64::from(u.items_per_period);
            assert!(
                (period - direct.ratio).abs() < 1e-9,
                "ring {n}: unfolded {period} vs direct {}",
                direct.ratio
            );
        }
    }

    #[test]
    fn deadlocked_model_reports_a_stall() {
        use crate::node::TokenValue;
        let mut b = DfsBuilder::new();
        let i = b.register("in").marked().build();
        let c1 = b.control("c1").marked_with(TokenValue::True).build();
        let c2 = b.control("c2").marked_with(TokenValue::False).build();
        let p = b.push("p").build();
        b.connect(i, p);
        b.connect(c1, p);
        b.connect(c2, p);
        let dfs = b.finish().unwrap();
        assert!(matches!(
            unfold(&dfs),
            Err(DfsError::SimulationStalled { .. })
        ));
    }

    #[test]
    fn wagging_unfolds_with_k_phases() {
        let w = crate::wagging::wagged_pipeline(3, 1, 2.0).unwrap();
        let u = unfold(&w.dfs).unwrap();
        assert_eq!(
            u.items_per_period, 3,
            "3-way wagging streams 3 items per schedule period"
        );
        // way-internal events carry one phase copy, globals three
        assert!(u.graph.vertices.len() > 2 * w.dfs.node_count());
    }
}
