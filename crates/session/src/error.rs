//! The unified error of the facade: one enum over every per-crate error.
//!
//! Callers composing the full paper flow — model construction
//! (`DfsError`), Petri-net firing (`PetriError`), Reach predicates
//! (`ReachError`), gate-level mapping (`MapError`), raw MCR solving
//! (`McrError`) — previously had to stitch five error enums by hand
//! (`Box<dyn Error>` in the examples, bespoke `From` chains elsewhere).
//! [`Error`] is the single `?`-target: every per-crate error converts
//! [`From`] it, [`Display`](std::fmt::Display) renders a layer-tagged
//! message, and [`source()`](std::error::Error::source) exposes the
//! original error for callers that walk chains.

use dfs_core::perf::McrError;
use dfs_core::DfsError;
use rap_petri::PetriError;
use rap_reach::ReachError;
use rap_silicon::map::MapError;
use std::fmt;

/// The unified facade error: any layer of the model → Petri → verification
/// → performance → silicon flow.
///
/// `Display` prefixes the failing layer; `source()` returns the wrapped
/// per-crate error, so `anyhow`-style chain walkers see both.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The dataflow layer: model construction, semantics, simulation,
    /// throughput analysis ([`dfs_core`]).
    Dfs(DfsError),
    /// The Petri-net backend ([`rap_petri`]).
    Petri(PetriError),
    /// The Reach property language ([`rap_reach`]).
    Reach(ReachError),
    /// Gate-level mapping ([`rap_silicon::map`]).
    Map(MapError),
    /// A raw max-cycle-ratio solver ([`dfs_core::perf`]); reported only
    /// when solvers are driven directly — `perf::analyse` renders these
    /// into [`DfsError::TokenFreeCycle`] with real event names first.
    Mcr(McrError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Dfs(e) => write!(f, "dataflow: {e}"),
            Error::Petri(e) => write!(f, "petri net: {e}"),
            Error::Reach(e) => write!(f, "reach predicate: {e}"),
            Error::Map(e) => write!(f, "gate mapping: {e}"),
            Error::Mcr(e) => write!(f, "cycle-ratio solver: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Dfs(e) => Some(e),
            Error::Petri(e) => Some(e),
            Error::Reach(e) => Some(e),
            Error::Map(e) => Some(e),
            Error::Mcr(e) => Some(e),
        }
    }
}

impl From<DfsError> for Error {
    fn from(e: DfsError) -> Self {
        Error::Dfs(e)
    }
}

impl From<PetriError> for Error {
    fn from(e: PetriError) -> Self {
        Error::Petri(e)
    }
}

impl From<ReachError> for Error {
    fn from(e: ReachError) -> Self {
        Error::Reach(e)
    }
}

impl From<MapError> for Error {
    fn from(e: MapError) -> Self {
        Error::Map(e)
    }
}

impl From<McrError> for Error {
    fn from(e: McrError) -> Self {
        Error::Mcr(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as StdError;

    #[test]
    fn every_layer_converts_and_chains() {
        let cases: Vec<(Error, &str)> = vec![
            (
                DfsError::UnknownNode("x".into()).into(),
                "dataflow: unknown node `x`",
            ),
            (
                PetriError::StateBudgetExceeded { budget: 7 }.into(),
                "petri net: state space exceeds the budget of 7 states",
            ),
            (
                ReachError::UnboundVariable { var: "p".into() }.into(),
                "reach predicate: unbound variable `p`",
            ),
            (
                MapError::NoSource("r".into()).into(),
                "gate mapping: register `r` has no data source",
            ),
            (
                McrError::TokenFreeCycle {
                    vertices: vec![3, 7],
                }
                .into(),
                "cycle-ratio solver: cycle without tokens through event vertices v3 -> v7",
            ),
        ];
        for (err, display) in cases {
            assert_eq!(err.to_string(), display);
            let source = err.source().expect("source chain present");
            // the wrapper's message embeds the source's own rendering
            assert!(
                err.to_string().contains(&source.to_string()),
                "{err} should contain {source}"
            );
        }
    }
}
