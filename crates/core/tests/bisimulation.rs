//! The PN translation (Fig. 3) must be behaviour-preserving: the reachable
//! LTS of the generated net, labelled by base transition names, must be
//! isomorphic to the LTS of the direct operational semantics labelled by
//! [`Dfs::event_label`].
//!
//! Both systems are deterministic per label in every state (a label
//! identifies one node event; multiple PN variant transitions with the same
//! label lead to the same marking), so a product BFS that pairs states and
//! compares outgoing label sets decides strong bisimilarity exactly.

use dfs_core::pipelines::{build_pipeline, PipelineSpec};
use dfs_core::{to_petri, Dfs, DfsBuilder, DfsState, TokenValue};
use rap_petri::Marking;
use std::collections::{HashMap, HashSet, VecDeque};

/// Checks label-wise bisimilarity between the direct LTS and the PN image.
fn assert_bisimilar(dfs: &Dfs, max_states: usize) {
    let img = to_petri(dfs);
    let net = &img.net;

    let mut pairing: HashMap<DfsState, Marking> = HashMap::new();
    let mut queue: VecDeque<(DfsState, Marking)> = VecDeque::new();
    let s0 = DfsState::initial(dfs);
    let m0 = net.initial_marking();
    pairing.insert(s0.clone(), m0.clone());
    queue.push_back((s0, m0));
    let mut visited = 0usize;

    while let Some((s, m)) = queue.pop_front() {
        visited += 1;
        assert!(
            visited <= max_states,
            "state budget exceeded during bisimulation check"
        );

        // direct side: label -> successor state
        let mut direct: HashMap<String, DfsState> = HashMap::new();
        for ev in dfs.enabled_events(&s) {
            let label = dfs.event_label(&s, ev);
            let next = dfs.apply(&s, ev);
            if let Some(prev) = direct.insert(label.clone(), next.clone()) {
                assert_eq!(prev, next, "direct semantics not label-deterministic");
            }
        }

        // net side: label -> successor marking
        let mut petri: HashMap<String, Marking> = HashMap::new();
        for t in net.transitions() {
            if !net.is_enabled(t, &m) {
                continue;
            }
            let label = img.label(t).to_string();
            let next = net.fire(t, &m).unwrap();
            if let Some(prev) = petri.insert(label.clone(), next.clone()) {
                assert_eq!(
                    prev, next,
                    "PN variants with label {label} diverge — translation bug"
                );
            }
        }

        let direct_labels: HashSet<&String> = direct.keys().collect();
        let petri_labels: HashSet<&String> = petri.keys().collect();
        assert_eq!(
            direct_labels,
            petri_labels,
            "label sets differ in state {}\n direct only: {:?}\n petri only: {:?}",
            s.describe(dfs),
            direct_labels.difference(&petri_labels).collect::<Vec<_>>(),
            petri_labels.difference(&direct_labels).collect::<Vec<_>>(),
        );

        for (label, next_s) in direct {
            let next_m = petri.remove(&label).expect("label sets already equal");
            match pairing.get(&next_s) {
                Some(existing) => assert_eq!(
                    existing, &next_m,
                    "state paired with two different markings via {label}"
                ),
                None => {
                    pairing.insert(next_s.clone(), next_m.clone());
                    queue.push_back((next_s, next_m));
                }
            }
        }
    }
}

/// Fig. 1b: the conditional-computation motivating example.
fn fig1b() -> Dfs {
    dfs_core::examples::conditional_dfs(2, 3.0).unwrap().dfs
}

#[test]
fn fig1b_is_bisimilar() {
    assert_bisimilar(&fig1b(), 1_000_000);
}

#[test]
fn plain_ring_is_bisimilar() {
    let mut b = DfsBuilder::new();
    let r0 = b.register("r0").marked().build();
    let f = b.logic("f").build();
    let r1 = b.register("r1").build();
    let r2 = b.register("r2").build();
    b.connect(r0, f);
    b.connect(f, r1);
    b.connect(r1, r2);
    b.connect(r2, r0);
    assert_bisimilar(&b.finish().unwrap(), 100_000);
}

#[test]
fn control_loop_is_bisimilar() {
    let mut b = DfsBuilder::new();
    let c0 = b.control("c0").marked_with(TokenValue::False).build();
    let c1 = b.control("c1").build();
    let c2 = b.control("c2").build();
    b.connect(c0, c1);
    b.connect(c1, c2);
    b.connect(c2, c0);
    assert_bisimilar(&b.finish().unwrap(), 100_000);
}

#[test]
fn reconfigurable_stage_is_bisimilar_in_both_configurations() {
    for depth in 1..=2 {
        let p = build_pipeline(&PipelineSpec::reconfigurable_depth(2, depth).unwrap()).unwrap();
        assert_bisimilar(&p.dfs, 2_000_000);
    }
}

#[test]
fn mismatched_guards_are_bisimilar_too() {
    // even pathological models must translate faithfully
    let mut b = DfsBuilder::new();
    let i = b.register("in").marked().build();
    let c1 = b.control("c1").marked_with(TokenValue::True).build();
    let c2 = b.control("c2").marked_with(TokenValue::False).build();
    let p = b.push("p").build();
    let o = b.register("out").build();
    b.connect(i, p);
    b.connect(c1, p);
    b.connect(c2, p);
    b.connect(p, o);
    assert_bisimilar(&b.finish().unwrap(), 100_000);
}

#[test]
fn and_or_guard_modes_are_bisimilar() {
    use dfs_core::GuardMode;
    for mode in [GuardMode::And, GuardMode::Or] {
        let mut b = DfsBuilder::new();
        let i = b.register("in").marked().build();
        let c1 = b.control("c1").marked_with(TokenValue::True).build();
        let c2 = b.control("c2").marked_with(TokenValue::False).build();
        let p = b.push("p").guard_mode(mode).build();
        let o = b.register("out").build();
        b.connect(i, p);
        b.connect(c1, p);
        b.connect(c2, p);
        b.connect(p, o);
        b.connect(o, i);
        assert_bisimilar(&b.finish().unwrap(), 500_000);
    }
}

#[test]
fn inverted_guards_are_bisimilar() {
    let mut b = DfsBuilder::new();
    let i = b.register("in").marked().build();
    let c = b.control("c").marked_with(TokenValue::False).build();
    let p = b.push("p").build();
    let o = b.register("out").build();
    b.connect(i, p);
    b.connect_inverted(c, p);
    b.connect(p, o);
    b.connect(o, i);
    assert_bisimilar(&b.finish().unwrap(), 500_000);
}

#[test]
fn wagged_pipeline_is_bisimilar() {
    let w = dfs_core::wagging::wagged_pipeline(2, 1, 2.0).unwrap();
    assert_bisimilar(&w.dfs, 5_000_000);
}
