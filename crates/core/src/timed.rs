//! Timed, event-driven simulation of DFS models.
//!
//! Each node carries a latency (see [`crate::Node::delay`]); an event fires
//! `delay(node)` time units after its enabling condition became true. This
//! yields the dataflow-level performance picture the Workcraft tool reports
//! (Fig. 5): steady-state throughput, per-node activity, bottlenecks. The
//! measured throughput is cross-validated against the analytical
//! maximum-cycle-ratio bound of [`crate::perf`] in the integration tests.
//!
//! Event counts per node are also the basis of the energy accounting used by
//! the chip-scale model in `rap-ope` (each dataflow event corresponds to a
//! bounded amount of switched capacitance in the NCL-D implementation).

use crate::graph::Dfs;
use crate::node::{NodeId, TokenValue};
use crate::semantics::Event;
use crate::state::DfsState;
use crate::DfsError;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashMap;
use std::collections::HashSet;

/// Policy deciding the value of a *free-choice* control register (one with
/// no upstream control sources — a data-dependent predicate).
#[derive(Debug, Clone)]
pub enum ChoicePolicy {
    /// Always choose `True`.
    AlwaysTrue,
    /// Always choose `False`.
    AlwaysFalse,
    /// Alternate `True`, `False`, `True`, … per control register.
    Alternate,
    /// Bernoulli with probability `p_true`, using a seeded xorshift.
    Bernoulli {
        /// Probability of choosing `True` (clamped to `[0,1]`).
        p_true: f64,
        /// RNG seed (0 remapped to 1).
        seed: u64,
    },
}

/// Configuration of a timed run.
#[derive(Debug, Clone)]
pub struct TimedConfig {
    /// Hard cap on fired events.
    pub max_events: u64,
    /// Free-choice policy for control registers.
    pub choice: ChoicePolicy,
    /// Stop once this register has accepted this many tokens.
    pub stop_after_marks: Option<(NodeId, u64)>,
}

impl Default for TimedConfig {
    fn default() -> Self {
        TimedConfig {
            max_events: 1_000_000,
            choice: ChoicePolicy::AlwaysTrue,
            stop_after_marks: None,
        }
    }
}

/// Result of a timed run.
#[derive(Debug, Clone)]
pub struct TimedRun {
    /// Simulated time of the last fired event.
    pub time: f64,
    /// Total events fired.
    pub events: u64,
    /// Per node: number of `Mark` events (token acceptances).
    pub mark_counts: Vec<u64>,
    /// Per node: number of events of any kind (for energy accounting).
    pub event_counts: Vec<u64>,
    /// Times at which the watched register (see
    /// [`TimedConfig::stop_after_marks`]) accepted tokens.
    pub watch_times: Vec<f64>,
    /// Final state.
    pub final_state: DfsState,
}

impl TimedRun {
    /// Steady-state throughput estimate at the watched register: tokens per
    /// time unit between the `skip`-th and the last watched acceptance.
    ///
    /// Returns `None` when fewer than `skip + 2` tokens were observed.
    #[must_use]
    pub fn throughput(&self, skip: usize) -> Option<f64> {
        if self.watch_times.len() < skip + 2 {
            return None;
        }
        let first = self.watch_times[skip];
        let last = *self.watch_times.last()?;
        let n = (self.watch_times.len() - 1 - skip) as f64;
        if last > first {
            Some(n / (last - first))
        } else {
            None
        }
    }
}

#[derive(Debug)]
struct Pending {
    time: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> Ordering {
        // min-heap: reverse on time, then seq for determinism
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct XorShift(u64);
impl XorShift {
    fn next_f64(&mut self) -> f64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// An exact steady-state recurrence of the timed simulation, found by
/// [`measure_steady_period`].
#[derive(Debug, Clone, Copy)]
pub struct SteadyStatePeriod {
    /// Exact steady-state period: time per token at the watched register.
    pub period: f64,
    /// Watched tokens per recurrence of the timed configuration (the
    /// hyper-period of the schedule, e.g. `k` for k-way wagging — or a
    /// multiple of it).
    pub cycle_marks: u64,
    /// Watched tokens produced before the recurrence closed.
    pub transient_marks: u64,
}

/// Recurrence detector over timed configurations. A timed configuration is
/// the untimed state plus the pending events with their time *offsets* from
/// now (plus any scheduling-policy state); if the same configuration recurs
/// the future evolution repeats shifted by a constant, so
/// `Δtime / Δtokens` is the exact steady-state period — no asymptotic
/// averaging involved.
struct PeriodDetector {
    seen: HashMap<ConfigKey, (u64, f64)>,
    found: Option<SteadyStatePeriod>,
    /// Offset quantisation grid, scaled to the model's delays.
    quantum: f64,
}

type ConfigKey = (DfsState, Vec<(Event, i64)>, Vec<TokenValue>, u64);

/// Offsets are keyed on a grid so float dust from long time accumulation
/// cannot mask a genuine recurrence. The grid must sit far below the
/// smallest delay of the model, or distinct offsets would collapse into
/// the same key and fake a recurrence — hence the per-model scaling in
/// [`measure_steady_period`] rather than a fixed constant.
fn quantise(offset: f64, quantum: f64) -> i64 {
    #[allow(clippy::cast_possible_truncation)]
    let q = (offset / quantum).round() as i64;
    q
}

/// Event budget of the steady-state search: keeps the search finite even
/// when the watched register never marks (e.g. a register starved by an
/// excluded stage). Scaled from the requested mark count with orders of
/// magnitude of headroom over any realistic hyper-period, clamped to keep
/// tiny requests cheap and huge ones bounded.
fn steady_state_event_budget(max_marks: u64) -> u64 {
    max_marks.saturating_mul(50_000).clamp(200_000, 20_000_000)
}

/// Runs the timed simulation.
///
/// # Errors
///
/// [`DfsError::SimulationStalled`] when no event is pending before the stop
/// condition is met (the model deadlocked under the chosen control values).
pub fn simulate_timed(dfs: &Dfs, config: &TimedConfig) -> Result<TimedRun, DfsError> {
    simulate_timed_with(dfs, config, None)
}

fn simulate_timed_with(
    dfs: &Dfs,
    config: &TimedConfig,
    mut detector: Option<&mut PeriodDetector>,
) -> Result<TimedRun, DfsError> {
    let mut state = DfsState::initial(dfs);
    let mut heap: BinaryHeap<Pending> = BinaryHeap::new();
    let mut scheduled: HashSet<Event> = HashSet::new();
    let mut seq = 0u64;
    let mut rng = XorShift(1);
    let mut alternate_next: Vec<TokenValue> = vec![TokenValue::True; dfs.node_count()];

    let mut mark_counts = vec![0u64; dfs.node_count()];
    let mut event_counts = vec![0u64; dfs.node_count()];
    let mut watch_times = Vec::new();
    let mut now = 0.0f64;
    let mut fired = 0u64;

    if let ChoicePolicy::Bernoulli { seed, .. } = config.choice {
        rng = XorShift(if seed == 0 { 1 } else { seed });
    }

    // resolve free choices: given both Mark(n,True/False) enabled, keep one
    let resolve = |events: Vec<Event>,
                   alternate_next: &mut Vec<TokenValue>,
                   rng: &mut XorShift|
     -> Vec<Event> {
        let mut out = Vec::with_capacity(events.len());
        let mut skip: Option<Event> = None;
        for &ev in &events {
            if Some(ev) == skip {
                continue;
            }
            if let Event::Mark(n, TokenValue::True) = ev {
                let partner = Event::Mark(n, TokenValue::False);
                if events.contains(&partner) {
                    let pick = match &config.choice {
                        ChoicePolicy::AlwaysTrue => TokenValue::True,
                        ChoicePolicy::AlwaysFalse => TokenValue::False,
                        ChoicePolicy::Alternate => {
                            let v = alternate_next[n.index()];
                            alternate_next[n.index()] = v.negate();
                            v
                        }
                        ChoicePolicy::Bernoulli { p_true, .. } => {
                            TokenValue::from(rng.next_f64() < p_true.clamp(0.0, 1.0))
                        }
                    };
                    out.push(Event::Mark(n, pick));
                    skip = Some(partner);
                    continue;
                }
            }
            out.push(ev);
        }
        out
    };

    // initial scheduling
    for ev in resolve(dfs.enabled_events(&state), &mut alternate_next, &mut rng) {
        heap.push(Pending {
            time: dfs.node(ev.node()).delay,
            seq,
            event: ev,
        });
        seq += 1;
        scheduled.insert(ev);
    }

    while fired < config.max_events {
        let Some(p) = heap.pop() else {
            return Err(DfsError::SimulationStalled {
                time: now,
                produced: watch_times.len() as u64,
            });
        };
        scheduled.remove(&p.event);
        // lazy invalidation: skip events whose condition lapsed
        if !dfs.is_event_enabled(&state, p.event) {
            continue;
        }
        now = p.time;
        state = dfs.apply(&state, p.event);
        fired += 1;
        let n = p.event.node();
        event_counts[n.index()] += 1;
        // schedule newly enabled events (before the stop/detect bookkeeping,
        // so a recurrence check sees the complete pending set)
        for ev in resolve(dfs.enabled_events(&state), &mut alternate_next, &mut rng) {
            if scheduled.contains(&ev) {
                continue;
            }
            heap.push(Pending {
                time: now + dfs.node(ev.node()).delay,
                seq,
                event: ev,
            });
            seq += 1;
            scheduled.insert(ev);
        }
        if let Event::Mark(..) = p.event {
            mark_counts[n.index()] += 1;
            if let Some((watch, limit)) = config.stop_after_marks {
                if n == watch {
                    watch_times.push(now);
                    let marks = mark_counts[n.index()];
                    if let Some(det) = detector.as_deref_mut() {
                        // timed configuration: state + *all* pending
                        // offsets + scheduling-policy state. Stale entries
                        // (conditions lapsed since scheduling) must stay in
                        // the key: they still shape the future — they
                        // suppress rescheduling and may fire at their old
                        // timestamp if re-enabled — so dropping them could
                        // declare a false recurrence.
                        let mut pending: Vec<(Event, i64)> = heap
                            .iter()
                            .map(|q| (q.event, quantise(q.time - now, det.quantum)))
                            .collect();
                        pending.sort_unstable();
                        let key = (state.clone(), pending, alternate_next.clone(), rng.0);
                        if let Some(&(marks0, t0)) = det.seen.get(&key) {
                            det.found = Some(SteadyStatePeriod {
                                period: (now - t0) / (marks - marks0) as f64,
                                cycle_marks: marks - marks0,
                                transient_marks: marks0,
                            });
                            break;
                        }
                        det.seen.insert(key, (marks, now));
                    }
                    if marks >= limit {
                        break;
                    }
                }
            }
        }
    }

    Ok(TimedRun {
        time: now,
        events: fired,
        mark_counts,
        event_counts,
        watch_times,
        final_state: state,
    })
}

/// Convenience: steady-state throughput at `output`, skipping `warmup`
/// tokens and measuring over `measure` further tokens.
///
/// # Errors
///
/// Propagates [`DfsError::SimulationStalled`]; returns
/// [`DfsError::SimulationStalled`] as well when the run ended before
/// producing enough tokens.
pub fn measure_throughput(
    dfs: &Dfs,
    output: NodeId,
    warmup: u64,
    measure: u64,
    choice: ChoicePolicy,
) -> Result<f64, DfsError> {
    let run = simulate_timed(
        dfs,
        &TimedConfig {
            max_events: u64::MAX,
            choice,
            stop_after_marks: Some((output, warmup + measure)),
        },
    )?;
    run.throughput(warmup as usize)
        .ok_or(DfsError::SimulationStalled {
            time: run.time,
            produced: run.watch_times.len() as u64,
        })
}

/// Measures the **exact** steady-state period at `output` by detecting a
/// recurrence of the timed configuration (untimed state + pending-event
/// offsets): once the configuration repeats, every later event is a
/// time-shifted copy of an earlier one, so the period is `Δtime / Δtokens`
/// with no warm-up averaging error. This is the independent oracle the
/// phase-unfolded analysis ([`crate::perf::analyse`]) is certified against.
///
/// `max_marks` bounds the search (backed by a global event budget, so a
/// watched register that never marks — e.g. one starved by an excluded
/// stage — terminates too); deterministic schedules (any of the stateless
/// or counter-based [`ChoicePolicy`] values) on live models recur within a
/// few hyper-periods. A `Bernoulli` policy almost never recurs (the RNG
/// state is part of the configuration) — expect `NoSteadyState` there.
///
/// # Errors
///
/// * [`DfsError::SimulationStalled`] — the model deadlocked.
/// * [`DfsError::NoSteadyState`] — no recurrence within `max_marks` watched
///   tokens (or the event budget), or `output` is a logic node (logic never
///   fires `Mark` events, so there is nothing to watch — returned
///   immediately).
pub fn measure_steady_period(
    dfs: &Dfs,
    output: NodeId,
    max_marks: u64,
    choice: ChoicePolicy,
) -> Result<SteadyStatePeriod, DfsError> {
    if !dfs.kind(output).is_register() {
        return Err(DfsError::NoSteadyState { marks: 0 });
    }
    // key offsets on a grid three decades under the smallest positive
    // delay (capped at 1 µ-unit): coarse enough to absorb float dust,
    // fine enough that sub-unit delay scales cannot alias distinct
    // configurations into a false recurrence
    let min_delay = dfs
        .nodes()
        .map(|n| dfs.node(n).delay)
        .filter(|&d| d > 0.0)
        .fold(f64::INFINITY, f64::min);
    let quantum = if min_delay.is_finite() {
        (min_delay * 1e-3).min(1e-6)
    } else {
        1e-6
    };
    let mut det = PeriodDetector {
        seen: HashMap::new(),
        found: None,
        quantum,
    };
    let run = simulate_timed_with(
        dfs,
        &TimedConfig {
            max_events: steady_state_event_budget(max_marks),
            choice,
            stop_after_marks: Some((output, max_marks)),
        },
        Some(&mut det),
    )?;
    det.found.ok_or(DfsError::NoSteadyState {
        marks: run.watch_times.len() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfsBuilder;

    /// Ring of `n` registers with one token and unit delays.
    fn ring(n: usize) -> Dfs {
        let mut b = DfsBuilder::new();
        let regs: Vec<NodeId> = (0..n)
            .map(|i| {
                let nb = b.register(format!("r{i}"));
                if i == 0 {
                    nb.marked().build()
                } else {
                    nb.build()
                }
            })
            .collect();
        for i in 0..n {
            b.connect(regs[i], regs[(i + 1) % n]);
        }
        b.finish().unwrap()
    }

    #[test]
    fn ring_throughput_matches_cycle_analysis() {
        // One token over 4 registers, unit delay: the mark wavefront
        // advances one register per time unit while releases retract
        // concurrently, so the wave wraps every n units: throughput 1/4.
        // (A 3-ring is tighter: the bubble constraint makes it 1/6 — see
        // the perf module tests.)
        let dfs = ring(4);
        let out = dfs.node_by_name("r0").unwrap();
        let thr = measure_throughput(&dfs, out, 5, 50, ChoicePolicy::AlwaysTrue).unwrap();
        let expected = 1.0 / 4.0;
        assert!(
            (thr - expected).abs() < 1e-9,
            "throughput {thr}, expected {expected}"
        );
    }

    #[test]
    fn slower_node_dominates_cycle_time() {
        let mut b = DfsBuilder::new();
        let r0 = b.register("r0").marked().build();
        let r1 = b.register("r1").delay(5.0).build();
        let r2 = b.register("r2").build();
        b.connect(r0, r1);
        b.connect(r1, r2);
        b.connect(r2, r0);
        let dfs = b.finish().unwrap();
        let out = dfs.node_by_name("r0").unwrap();
        let thr = measure_throughput(&dfs, out, 5, 50, ChoicePolicy::AlwaysTrue).unwrap();
        // 3-ring bubble constraint: period = 2 * (1 + 5 + 1) = 14
        assert!((thr - 1.0 / 14.0).abs() < 1e-9, "throughput {thr}");
    }

    #[test]
    fn stalled_simulation_is_reported() {
        // mismatched guards: the push is disabled and nothing can move
        use crate::node::TokenValue;
        let mut b = DfsBuilder::new();
        let i = b.register("in").marked().build();
        let c1 = b.control("c1").marked_with(TokenValue::True).build();
        let c2 = b.control("c2").marked_with(TokenValue::False).build();
        let p = b.push("p").build();
        b.connect(i, p);
        b.connect(c1, p);
        b.connect(c2, p);
        let dfs = b.finish().unwrap();
        let out = dfs.node_by_name("p").unwrap();
        let err = measure_throughput(&dfs, out, 0, 10, ChoicePolicy::AlwaysTrue).unwrap_err();
        assert!(matches!(err, DfsError::SimulationStalled { .. }));
    }

    #[test]
    fn choice_policies_steer_control_values() {
        // in -> cond -> ctrl (free choice); observe the accepted values
        let mk = || {
            let mut b = DfsBuilder::new();
            let i = b.register("in").marked().build();
            let f = b.logic("cond").build();
            let c = b.control("ctrl").build();
            let r = b.register("ret").build();
            b.connect(i, f);
            b.connect(f, c);
            b.connect(c, r);
            b.connect(r, i);
            b.finish().unwrap()
        };
        let dfs = mk();
        let c = dfs.node_by_name("ctrl").unwrap();
        let run = simulate_timed(
            &dfs,
            &TimedConfig {
                max_events: 200,
                choice: ChoicePolicy::AlwaysFalse,
                stop_after_marks: Some((c, 5)),
            },
        )
        .unwrap();
        assert_eq!(run.mark_counts[c.index()], 5);
        // final acceptance left a False token or it was already released;
        // the policy is observable through the absence of True marks only
        // when the register is currently marked, so instead check alternation
        let run_alt = simulate_timed(
            &dfs,
            &TimedConfig {
                max_events: 400,
                choice: ChoicePolicy::Alternate,
                stop_after_marks: Some((c, 6)),
            },
        )
        .unwrap();
        assert_eq!(run_alt.mark_counts[c.index()], 6);
    }

    #[test]
    fn steady_period_detection_is_exact_on_rings() {
        // 4-ring period 4, 3-ring bubble-limited period 6: the recurrence
        // detector must report them exactly, with a short transient
        for (n, expected) in [(4usize, 4.0), (3, 6.0)] {
            let dfs = ring(n);
            let out = dfs.node_by_name("r0").unwrap();
            let steady = measure_steady_period(&dfs, out, 100, ChoicePolicy::AlwaysTrue).unwrap();
            assert!(
                (steady.period - expected).abs() < 1e-12,
                "ring {n}: period {}",
                steady.period
            );
            assert!(steady.cycle_marks >= 1);
        }
    }

    #[test]
    fn steady_period_rejects_logic_watch_nodes() {
        // logic nodes never fire Mark events: watching one must error out
        // immediately instead of spinning forever
        let mut b = DfsBuilder::new();
        let r0 = b.register("r0").marked().build();
        let f = b.logic("f").build();
        let r1 = b.register("r1").build();
        let r2 = b.register("r2").build();
        b.connect(r0, f);
        b.connect(f, r1);
        b.connect(r1, r2);
        b.connect(r2, r0);
        let dfs = b.finish().unwrap();
        let f = dfs.node_by_name("f").unwrap();
        assert!(matches!(
            measure_steady_period(&dfs, f, 10, ChoicePolicy::AlwaysTrue),
            Err(DfsError::NoSteadyState { marks: 0 })
        ));
    }

    /// A live model whose *watched* register is starved (an excluded
    /// stage's pipeline never moves) must hit the event budget and report
    /// `NoSteadyState` instead of spinning forever.
    #[test]
    fn steady_period_terminates_when_the_watched_register_is_starved() {
        use crate::pipelines::{build_pipeline, PipelineSpec};
        let p = build_pipeline(&PipelineSpec::reconfigurable_depth(3, 1).unwrap()).unwrap();
        // stage 2 is excluded: its local pipeline register never marks
        let starved = p.local_outs[1];
        let err = measure_steady_period(&p.dfs, starved, 2, ChoicePolicy::AlwaysTrue).unwrap_err();
        assert!(matches!(err, DfsError::NoSteadyState { marks: 0 }));
    }

    /// Sub-unit delay scales must not alias distinct pending offsets into
    /// a false recurrence: the quantisation grid follows the model's
    /// smallest delay.
    #[test]
    fn steady_period_is_exact_at_tiny_delay_scales() {
        let mut b = DfsBuilder::new();
        let scale = 2.5e-7;
        let r0 = b.register("r0").marked().delay(scale).build();
        let r1 = b.register("r1").delay(3.0 * scale).build();
        let r2 = b.register("r2").delay(scale).build();
        let r3 = b.register("r3").delay(scale).build();
        b.connect(r0, r1);
        b.connect(r1, r2);
        b.connect(r2, r3);
        b.connect(r3, r0);
        let dfs = b.finish().unwrap();
        let steady = measure_steady_period(&dfs, r0, 100, ChoicePolicy::AlwaysTrue).unwrap();
        // the exact MCR analysis is the independent reference; a detector
        // whose grid aliased distinct offsets would disagree with it
        let report = crate::perf::analyse(&dfs).unwrap();
        assert!(
            (steady.period - report.period).abs() < 1e-9 * report.period,
            "steady {} vs analysis {}",
            steady.period,
            report.period
        );
        assert!(steady.period > 0.0 && steady.period < 1e-5);
    }

    #[test]
    fn event_counts_cover_all_nodes() {
        let dfs = ring(3);
        let out = dfs.node_by_name("r0").unwrap();
        let run = simulate_timed(
            &dfs,
            &TimedConfig {
                max_events: u64::MAX,
                choice: ChoicePolicy::AlwaysTrue,
                stop_after_marks: Some((out, 10)),
            },
        )
        .unwrap();
        assert!(run.event_counts.iter().all(|&c| c > 0));
        assert_eq!(run.mark_counts[out.index()], 10);
        assert_eq!(run.watch_times.len(), 10);
    }
}
