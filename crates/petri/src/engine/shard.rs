//! Sharded concurrent dedup index for the parallel state-space engine.
//!
//! A fixed power-of-two array of shards, each an open-addressing table
//! behind its own mutex. A state's shard is selected from the *high* bits
//! of its hash (multiply-shift prefix routing), its slot within the shard
//! from the low bits, so the two indices are independent. Workers of one
//! BFS level probe and insert concurrently; between levels the single
//! committing thread assigns dense ids to the *pending* entries (states
//! first seen this level) in canonical order.
//!
//! Correctness under concurrency rests on two invariants:
//!
//! * **Pending entries own their bytes.** A pending state's words and
//!   enabled set are copied into per-shard arenas *under the shard lock* at
//!   insertion, so any later probe — from any worker — compares against
//!   stable memory it can reach while holding that same lock. Nothing a
//!   worker writes outside the lock is ever read by another worker.
//! * **Committed entries are frozen.** Ids tagged committed refer to states
//!   already published in the (immutable-during-expansion) graph; the probe
//!   calls back into the caller to reconstruct and compare them. The graph
//!   is only mutated by the committing thread, strictly between levels.
//!
//! Hash collisions are therefore *never* trusted: every positive lookup is
//! confirmed by a full word compare, either against the pending arena or
//! through the reconstruction callback. The schedule-stress test
//! (`crates/petri/tests/shard_stress.rs`) hammers a single shard with
//! deliberately colliding hashes from many threads and checks that every
//! distinct state is inserted exactly once and every duplicate resolves to
//! that one entry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, TryLockError};

/// `tag` value of a free slot.
const EMPTY: u32 = u32::MAX;
/// High bit of `tag`: set = committed id, clear = pending index.
const COMMITTED: u32 = 1 << 31;
/// `assigned` value of a pending entry that has no id yet.
const UNASSIGNED: u32 = u32::MAX;

#[derive(Clone, Copy)]
struct Slot {
    hash: u64,
    tag: u32,
}

struct PendingEntry {
    /// Current slot of this entry in `slots` (kept up to date on rehash).
    slot: u32,
    /// Dense id assigned at commit, or [`UNASSIGNED`].
    assigned: u32,
}

struct Shard {
    slots: Vec<Slot>,
    mask: usize,
    committed: usize,
    pending: Vec<PendingEntry>,
    /// Pending state words, `stride` per entry.
    words: Vec<u64>,
    /// Pending enabled sets, `astride` per entry.
    enabled: Vec<u64>,
}

impl Shard {
    fn new() -> Self {
        let cap = 64;
        Shard {
            slots: vec![
                Slot {
                    hash: 0,
                    tag: EMPTY
                };
                cap
            ],
            mask: cap - 1,
            committed: 0,
            pending: Vec::new(),
            words: Vec::new(),
            enabled: Vec::new(),
        }
    }

    fn grow(&mut self) {
        let cap = self.slots.len() * 2;
        let old = std::mem::replace(
            &mut self.slots,
            vec![
                Slot {
                    hash: 0,
                    tag: EMPTY
                };
                cap
            ],
        );
        self.mask = cap - 1;
        for slot in old {
            if slot.tag == EMPTY {
                continue;
            }
            let mut i = (slot.hash as usize) & self.mask;
            while self.slots[i].tag != EMPTY {
                i = (i + 1) & self.mask;
            }
            self.slots[i] = slot;
            if slot.tag & COMMITTED == 0 {
                self.pending[slot.tag as usize].slot = i as u32;
            }
        }
    }
}

/// A reference to a pending (not yet committed) entry of a [`ShardIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handle {
    shard: u32,
    idx: u32,
}

/// Result of [`ShardIndex::probe_or_insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// The state is already committed under this dense id.
    Committed(u32),
    /// The state was already pending (inserted earlier, by any worker).
    Pending(Handle),
    /// The state was not present; this call inserted it as pending.
    Inserted(Handle),
}

/// The sharded dedup index. See the module docs for the concurrency
/// contract.
pub struct ShardIndex {
    shards: Vec<Mutex<Shard>>,
    stride: usize,
    astride: usize,
    /// Probe calls that found their shard lock held by another worker
    /// (observability only — never consulted by any dedup decision).
    contended: AtomicU64,
}

impl ShardIndex {
    /// Creates an index with `shards` shards (rounded up to a power of two)
    /// over states of `stride` words and enabled sets of `astride` words.
    #[must_use]
    pub fn new(shards: usize, stride: usize, astride: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        ShardIndex {
            shards: (0..n).map(|_| Mutex::new(Shard::new())).collect(),
            stride,
            astride,
            contended: AtomicU64::new(0),
        }
    }

    /// Number of [`probe_or_insert`](ShardIndex::probe_or_insert) calls so
    /// far that found their shard lock held by another worker — the
    /// engine's shard-contention counter (`engine.shard.contended`).
    #[must_use]
    pub fn contention(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }

    /// The shard routing: a multiply-shift range partition of the hash, i.e.
    /// the top `log2(shards)` bits.
    #[inline]
    fn shard_of(&self, hash: u64) -> usize {
        ((u128::from(hash) * self.shards.len() as u128) >> 64) as usize
    }

    /// Looks `cand` (hashing to `hash`) up, inserting it as pending when
    /// absent. Safe to call from many workers concurrently.
    ///
    /// `eq_committed(id)` must report whether committed state `id` equals
    /// `cand` (the caller reconstructs it from the frozen graph); it runs
    /// under the shard lock. `fill_enabled(out)` is called exactly once, only
    /// on insertion, to produce the enabled set stored alongside the state.
    pub fn probe_or_insert(
        &self,
        hash: u64,
        cand: &[u64],
        mut eq_committed: impl FnMut(u32) -> bool,
        fill_enabled: impl FnOnce(&mut [u64]),
    ) -> Probe {
        debug_assert_eq!(cand.len(), self.stride);
        let si = self.shard_of(hash);
        // try_lock first purely to *count* contention; the fallback blocks
        // exactly like a plain lock, so behaviour is unchanged
        let mut sh = match self.shards[si].try_lock() {
            Ok(g) => g,
            Err(TryLockError::WouldBlock) => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                self.shards[si].lock().expect("shard index")
            }
            Err(TryLockError::Poisoned(_)) => panic!("shard index poisoned"),
        };
        let mut i = (hash as usize) & sh.mask;
        loop {
            let slot = sh.slots[i];
            if slot.tag == EMPTY {
                break;
            }
            if slot.hash == hash {
                if slot.tag & COMMITTED != 0 {
                    let id = slot.tag & !COMMITTED;
                    if eq_committed(id) {
                        return Probe::Committed(id);
                    }
                } else {
                    let p = slot.tag as usize;
                    if &sh.words[p * self.stride..(p + 1) * self.stride] == cand {
                        return Probe::Pending(Handle {
                            shard: si as u32,
                            idx: slot.tag,
                        });
                    }
                }
            }
            i = (i + 1) & sh.mask;
        }
        // not present: insert as pending (50% max load, like the serial table)
        if (sh.committed + sh.pending.len() + 1) * 2 > sh.slots.len() {
            sh.grow();
            i = (hash as usize) & sh.mask;
            while sh.slots[i].tag != EMPTY {
                i = (i + 1) & sh.mask;
            }
        }
        let idx = sh.pending.len() as u32;
        sh.words.extend_from_slice(cand);
        let en_base = sh.enabled.len();
        sh.enabled.resize(en_base + self.astride, 0);
        fill_enabled(&mut sh.enabled[en_base..]);
        sh.pending.push(PendingEntry {
            slot: i as u32,
            assigned: UNASSIGNED,
        });
        sh.slots[i] = Slot { hash, tag: idx };
        Probe::Inserted(Handle {
            shard: si as u32,
            idx,
        })
    }

    /// The id assigned to pending entry `h` at commit, if any.
    pub fn assigned(&mut self, h: Handle) -> Option<u32> {
        let sh = self.shards[h.shard as usize]
            .get_mut()
            .expect("shard index");
        match sh.pending[h.idx as usize].assigned {
            UNASSIGNED => None,
            id => Some(id),
        }
    }

    /// The state words and enabled set of pending entry `h`.
    #[must_use]
    pub fn pending_data(&mut self, h: Handle) -> (&[u64], &[u64]) {
        let sh = self.shards[h.shard as usize]
            .get_mut()
            .expect("shard index");
        let p = h.idx as usize;
        (
            &sh.words[p * self.stride..(p + 1) * self.stride],
            &sh.enabled[p * self.astride..(p + 1) * self.astride],
        )
    }

    /// Commits pending entry `h` under dense id `id`: later probes resolve
    /// it through `eq_committed`. Commit-phase only (single thread).
    ///
    /// # Panics
    ///
    /// Panics if `h` was already assigned or `id` collides with the
    /// committed tag space.
    pub fn assign(&mut self, h: Handle, id: u32) {
        assert_eq!(id & COMMITTED, 0, "dense id overflows the tag space");
        let sh = self.shards[h.shard as usize]
            .get_mut()
            .expect("shard index");
        let e = &mut sh.pending[h.idx as usize];
        assert_eq!(e.assigned, UNASSIGNED, "pending entry committed twice");
        e.assigned = id;
        sh.slots[e.slot as usize].tag = id | COMMITTED;
        sh.committed += 1;
    }

    /// Drops the pending arenas after a fully committed level. Every pending
    /// entry must have been assigned (the engine commits a level atomically;
    /// on truncation the index is abandoned instead).
    pub fn clear_pending(&mut self) {
        for shard in &mut self.shards {
            let sh = shard.get_mut().expect("shard index");
            debug_assert!(sh.pending.iter().all(|p| p.assigned != UNASSIGNED));
            sh.pending.clear();
            sh.words.clear();
            sh.enabled.clear();
        }
    }

    /// Total pending entries across all shards (test support).
    #[must_use]
    pub fn pending_len(&mut self) -> usize {
        self.shards
            .iter_mut()
            .map(|s| s.get_mut().expect("shard index").pending.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_probe_finds_pending() {
        let mut idx = ShardIndex::new(4, 2, 1);
        let a = [1u64, 2];
        let p = idx.probe_or_insert(42, &a, |_| false, |en| en[0] = 7);
        let Probe::Inserted(h) = p else {
            panic!("expected insert, got {p:?}")
        };
        assert_eq!(
            idx.probe_or_insert(42, &a, |_| false, |_| panic!("no refill")),
            Probe::Pending(h)
        );
        let (w, en) = idx.pending_data(h);
        assert_eq!(w, &a);
        assert_eq!(en, &[7]);
    }

    #[test]
    fn colliding_hashes_stay_distinct() {
        let mut idx = ShardIndex::new(1, 1, 1);
        let mut handles = Vec::new();
        for v in 0..100u64 {
            match idx.probe_or_insert(0, &[v], |_| false, |_| {}) {
                Probe::Inserted(h) => handles.push(h),
                p => panic!("distinct state deduped: {p:?}"),
            }
        }
        assert_eq!(idx.pending_len(), 100);
        for (v, &h) in handles.iter().enumerate() {
            assert_eq!(
                idx.probe_or_insert(0, &[v as u64], |_| false, |_| {}),
                Probe::Pending(h)
            );
        }
    }

    #[test]
    fn commit_retags_and_probe_consults_caller() {
        let mut idx = ShardIndex::new(2, 1, 1);
        let Probe::Inserted(h) = idx.probe_or_insert(9, &[5], |_| false, |_| {}) else {
            panic!()
        };
        assert_eq!(idx.assigned(h), None);
        idx.assign(h, 3);
        assert_eq!(idx.assigned(h), Some(3));
        idx.clear_pending();
        // now the probe must ask the graph-side comparator for id 3
        let mut asked = Vec::new();
        let p = idx.probe_or_insert(
            9,
            &[5],
            |id| {
                asked.push(id);
                true
            },
            |_| {},
        );
        assert_eq!(p, Probe::Committed(3));
        assert_eq!(asked, vec![3]);
        // same hash, different words: comparator says no, fresh insert
        let p = idx.probe_or_insert(9, &[6], |_| false, |_| {});
        assert!(matches!(p, Probe::Inserted(_)));
    }
}
