//! Schedule-stress test for the sharded dedup index.
//!
//! `loom` cannot be vendored here, so this is a seeded-interleaving
//! harness instead of a model checker: each round derives per-thread
//! operation orders and yield points from a seed, and every thread races
//! every state through [`ShardIndex::probe_or_insert`] with *deliberately
//! colliding hashes* (all states hash identically, forcing one shard and
//! maximal probe-chain contention). The invariants under test are the two
//! the engine's level commit depends on:
//!
//! * no state is ever double-inserted (exactly one `Inserted` per distinct
//!   state across all threads and schedules), and
//! * no state is ever lost (every duplicate probe resolves to that one
//!   entry, with the right bytes and the enabled-set filler run once).
//!
//! A second test races probes against *committed* entries — the cross-level
//! case where resolution goes through the caller's reconstruction callback
//! instead of the pending arena.

use rap_petri::engine::shard::{Handle, Probe, ShardIndex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// SplitMix64 step — the harness's only randomness, fully seed-determined.
fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seed-determined shuffle of `0..n`.
fn shuffled(n: u64, rng: &mut u64) -> Vec<u64> {
    let mut order: Vec<u64> = (0..n).collect();
    for i in (1..order.len()).rev() {
        let j = (splitmix(rng) as usize) % (i + 1);
        order.swap(i, j);
    }
    order
}

const THREADS: usize = 8;
const STATES: u64 = 96;

#[test]
fn colliding_concurrent_inserts_never_lose_or_double_count() {
    for seed in 0..8u64 {
        // single shard + constant hash: every probe walks the same chain
        let idx = ShardIndex::new(1, 1, 1);
        let fills = AtomicUsize::new(0);
        let results: Vec<Vec<(u64, Probe)>> = std::thread::scope(|s| {
            let workers: Vec<_> = (0..THREADS)
                .map(|t| {
                    let idx = &idx;
                    let fills = &fills;
                    s.spawn(move || {
                        let mut rng = seed
                            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                            .wrapping_add(t as u64);
                        // every thread attempts every state, in its own
                        // seed-dependent order: each insert is a race
                        let mut out = Vec::with_capacity(STATES as usize);
                        for v in shuffled(STATES, &mut rng) {
                            if splitmix(&mut rng) & 3 == 0 {
                                std::thread::yield_now();
                            }
                            let p = idx.probe_or_insert(
                                0,
                                &[v],
                                |_| unreachable!("nothing is committed"),
                                |en| {
                                    fills.fetch_add(1, Ordering::Relaxed);
                                    en[0] = v ^ 0xabcd;
                                },
                            );
                            out.push((v, p));
                        }
                        out
                    })
                })
                .collect();
            workers.into_iter().map(|w| w.join().unwrap()).collect()
        });

        // exactly one Inserted per state across all threads — no double count
        let mut inserted: HashMap<u64, Handle> = HashMap::new();
        for &(v, p) in results.iter().flatten() {
            if let Probe::Inserted(h) = p {
                assert!(
                    inserted.insert(v, h).is_none(),
                    "seed {seed}: state {v} inserted twice"
                );
            }
        }
        assert_eq!(inserted.len(), STATES as usize, "seed {seed}: state lost");
        assert_eq!(fills.load(Ordering::Relaxed), STATES as usize);

        // every duplicate probe resolved to that one entry — no state lost
        for &(v, p) in results.iter().flatten() {
            if let Probe::Pending(h) = p {
                assert_eq!(h, inserted[&v], "seed {seed}: duplicate went astray");
            }
        }

        // and the entry holds the right bytes, with the filler's output
        let mut idx = idx;
        assert_eq!(idx.pending_len(), STATES as usize);
        for (&v, &h) in &inserted {
            let (w, en) = idx.pending_data(h);
            assert_eq!(w, &[v]);
            assert_eq!(en, &[v ^ 0xabcd]);
        }
    }
}

#[test]
fn probes_against_committed_entries_race_with_fresh_inserts() {
    const OLD: u64 = 32;
    for seed in 0..4u64 {
        let mut idx = ShardIndex::new(1, 1, 1);
        // level 1, serial: insert and commit states 0..OLD under id == value
        for v in 0..OLD {
            match idx.probe_or_insert(0, &[v], |_| false, |_| {}) {
                Probe::Inserted(h) => idx.assign(h, v as u32),
                p => panic!("fresh state deduped: {p:?}"),
            }
        }
        idx.clear_pending();

        // level 2, concurrent: every thread probes old and new states mixed;
        // old ones must resolve through the reconstruction callback
        let results: Vec<Vec<(u64, Probe)>> = std::thread::scope(|s| {
            let workers: Vec<_> = (0..THREADS)
                .map(|t| {
                    let idx = &idx;
                    s.spawn(move || {
                        let mut rng = seed
                            .wrapping_mul(0x2545_f491_4f6c_dd1d)
                            .wrapping_add(t as u64);
                        let mut out = Vec::with_capacity(2 * OLD as usize);
                        for v in shuffled(2 * OLD, &mut rng) {
                            if splitmix(&mut rng) & 1 == 0 {
                                std::thread::yield_now();
                            }
                            // committed id == value for this harness, so the
                            // graph-side comparator is just `id == v`
                            let p = idx.probe_or_insert(0, &[v], |id| u64::from(id) == v, |_| {});
                            out.push((v, p));
                        }
                        out
                    })
                })
                .collect();
            workers.into_iter().map(|w| w.join().unwrap()).collect()
        });

        // pass 1: collect the unique Inserted per fresh state (threads are
        // joined in spawn order, so a Pending can precede its Inserted in
        // the flattened results — resolve all inserts first)
        let mut inserted: HashMap<u64, Handle> = HashMap::new();
        for &(v, p) in results.iter().flatten() {
            if let Probe::Inserted(h) = p {
                assert!(v >= OLD, "seed {seed}: committed state {v} re-inserted");
                assert!(
                    inserted.insert(v, h).is_none(),
                    "seed {seed}: state {v} inserted twice"
                );
            }
        }
        // pass 2: every other probe resolved to the right place
        for &(v, p) in results.iter().flatten() {
            match p {
                Probe::Committed(id) => {
                    assert!(v < OLD, "seed {seed}: fresh state {v} claimed committed");
                    assert_eq!(u64::from(id), v, "seed {seed}: wrong committed id");
                }
                Probe::Pending(h) => {
                    assert!(v >= OLD);
                    assert_eq!(h, inserted[&v], "seed {seed}: duplicate went astray");
                }
                Probe::Inserted(_) => {}
            }
        }
        assert_eq!(inserted.len(), OLD as usize, "seed {seed}: state lost");
        assert_eq!(idx.pending_len(), OLD as usize);
    }
}
