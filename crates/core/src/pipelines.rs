//! The pipeline design methodology of §III (Fig. 6).
//!
//! A generic `N`-stage pipeline (Fig. 6a) has per-stage *local* channels
//! (stage-to-stage dataflow) and *global* channels (a common input broadcast
//! to every stage, and an aggregated output). Each stage applies `f` to its
//! local input and `g` to the pair (local result, global input), producing a
//! global output (Fig. 6b).
//!
//! The reconfigurable stage (Fig. 6c) makes the interfaces dynamic:
//!
//! * `local_in` is a **push** guarded by the 3-register `local_ctrl` loop;
//! * `global_in` is a **push** and `global_out` a **pop**, both guarded by
//!   the 3-register `global_ctrl` loop.
//!
//! Initialising the loops with `True` includes the stage; `False` excludes
//! it: the pushes destroy incoming tokens and the pop emits empty tokens so
//! the output aggregation still completes. The two loops are separate for
//! the reason the paper hints at ("a token starts oscillating in local_ctrl
//! only if the previous stage is included"): in a stage whose predecessor is
//! excluded no local data ever arrives, so `local_ctrl` simply never
//! oscillates — harmlessly — while `global_ctrl` keeps synchronising the
//! global interfaces, which see a token every iteration regardless of the
//! configuration.
//!
//! The first reconfigurable stage after an always-included one may share a
//! single loop for both interfaces (the `s2` optimisation of Fig. 7) —
//! enabled with [`PipelineSpec::share_ctrl_after_static`].

use crate::builder::DfsBuilder;
use crate::graph::Dfs;
use crate::node::{NodeId, TokenValue};
use crate::DfsError;

/// Per-node latencies used when building pipelines (arbitrary units).
#[derive(Debug, Clone, Copy)]
pub struct StageDelays {
    /// Latency of the `f` logic (the stage computation).
    pub f: f64,
    /// Latency of the `g` logic (the global aggregation step).
    pub g: f64,
    /// Latency of every register.
    pub register: f64,
    /// Latency of control-loop registers.
    pub control: f64,
}

impl Default for StageDelays {
    fn default() -> Self {
        StageDelays {
            f: 2.0,
            g: 1.0,
            register: 1.0,
            control: 0.5,
        }
    }
}

/// What to build.
#[derive(Debug, Clone)]
pub struct PipelineSpec {
    /// Number of stages `N`.
    pub stages: usize,
    /// Per stage: `true` = reconfigurable (Fig. 6c), `false` = static
    /// (Fig. 6b). The OPE pipeline of Fig. 7 uses `[false, true, …, true]`.
    pub reconfigurable: Vec<bool>,
    /// Per stage: is it included in the current configuration? Ignored for
    /// static stages (always included). Must be a prefix for meaningful
    /// OPE-style depth configuration, but any vector is accepted — invalid
    /// configurations are exactly what verification is for.
    pub included: Vec<bool>,
    /// Apply the Fig. 7 `s2` optimisation to the first reconfigurable stage
    /// directly after a static one: one shared control loop for both
    /// interfaces.
    pub share_ctrl_after_static: bool,
    /// Node latencies (the `f` entry is the default for stages without a
    /// per-stage override).
    pub delays: StageDelays,
    /// Per-stage `f` latency, one entry per stage. The constructors fill
    /// this with `delays.f`; design-space sweeps replace it to size
    /// individual stages. Must stay non-empty and `stages` long — see
    /// [`PipelineSpec::validate`].
    pub f_delays: Vec<f64>,
}

impl PipelineSpec {
    /// A fully static `n`-stage pipeline.
    #[must_use]
    pub fn fully_static(n: usize) -> Self {
        let delays = StageDelays::default();
        PipelineSpec {
            stages: n,
            reconfigurable: vec![false; n],
            included: vec![true; n],
            share_ctrl_after_static: false,
            f_delays: vec![delays.f; n],
            delays,
        }
    }

    /// The Fig. 7 shape: first stage static, the rest reconfigurable, the
    /// first `depth` stages included.
    ///
    /// # Errors
    ///
    /// [`DfsError::InvalidSpec`] on a degenerate configuration: `n == 0`,
    /// `depth == 0` (no stage included) or `depth > n`.
    pub fn reconfigurable_depth(n: usize, depth: usize) -> Result<Self, DfsError> {
        if n == 0 {
            return Err(DfsError::InvalidSpec {
                reason: "pipeline needs at least one stage".into(),
            });
        }
        if depth == 0 || depth > n {
            return Err(DfsError::InvalidSpec {
                reason: format!("configured depth {depth} outside 1..={n}"),
            });
        }
        let mut reconfigurable = vec![true; n];
        reconfigurable[0] = false;
        let delays = StageDelays::default();
        let spec = PipelineSpec {
            stages: n,
            reconfigurable,
            included: (0..n).map(|i| i < depth).collect(),
            share_ctrl_after_static: true,
            f_delays: vec![delays.f; n],
            delays,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Replaces all node latencies, refreshing the per-stage `f` vector
    /// with the new default.
    #[must_use]
    pub fn with_delays(mut self, delays: StageDelays) -> Self {
        self.delays = delays;
        self.f_delays = vec![delays.f; self.stages];
        self
    }

    /// Replaces the per-stage `f` latencies (validated by
    /// [`PipelineSpec::validate`] at build time).
    #[must_use]
    pub fn with_f_delays(mut self, f_delays: Vec<f64>) -> Self {
        self.f_delays = f_delays;
        self
    }

    /// Checks the specification for degeneracies the builder would turn
    /// into a nonsense model: zero stages, mis-sized per-stage vectors, an
    /// empty or invalid delay vector, or a configuration that includes no
    /// stage at all. Called by [`build_pipeline`] (and, for the depth
    /// parameters, by [`PipelineSpec::reconfigurable_depth`]).
    ///
    /// # Errors
    ///
    /// [`DfsError::InvalidSpec`] describing the first violation found.
    pub fn validate(&self) -> Result<(), DfsError> {
        let fail = |reason: String| Err(DfsError::InvalidSpec { reason });
        if self.stages == 0 {
            return fail("pipeline needs at least one stage".into());
        }
        if self.reconfigurable.len() != self.stages {
            return fail(format!(
                "reconfigurable flags: {} entries for {} stages",
                self.reconfigurable.len(),
                self.stages
            ));
        }
        if self.included.len() != self.stages {
            return fail(format!(
                "included flags: {} entries for {} stages",
                self.included.len(),
                self.stages
            ));
        }
        if self.f_delays.is_empty() {
            return fail("empty per-stage delay vector".into());
        }
        if self.f_delays.len() != self.stages {
            return fail(format!(
                "per-stage delays: {} entries for {} stages",
                self.f_delays.len(),
                self.stages
            ));
        }
        if let Some(d) = self.f_delays.iter().find(|d| !d.is_finite() || **d < 0.0) {
            return fail(format!(
                "per-stage delay {d} is not a finite non-negative number"
            ));
        }
        let any_included = (0..self.stages).any(|i| !self.reconfigurable[i] || self.included[i]);
        if !any_included {
            return fail("configuration includes no stage (depth 0)".into());
        }
        Ok(())
    }
}

/// The built pipeline with handles to its interface nodes.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// The model.
    pub dfs: Dfs,
    /// The common input register (`in`).
    pub input: NodeId,
    /// The aggregated output register (`out`).
    pub output: NodeId,
    /// Per stage: the `local_out` register.
    pub local_outs: Vec<NodeId>,
    /// Per stage: the `global_out` register/pop.
    pub global_outs: Vec<NodeId>,
}

/// Builds a closed (environment-recycled) pipeline per `spec`.
///
/// The environment is modelled by feeding `out` back to `in`, so the model
/// is autonomous and can be explored exhaustively.
///
/// # Errors
///
/// [`DfsError::InvalidSpec`] for degenerate specifications (see
/// [`PipelineSpec::validate`]); otherwise propagates builder validation
/// errors ([`DfsError`]).
pub fn build_pipeline(spec: &PipelineSpec) -> Result<Pipeline, DfsError> {
    spec.validate()?;
    let d = spec.delays;
    let mut b = DfsBuilder::new();

    let input = b.register("in").marked().delay(d.register).build();
    let agg = b.logic("agg").delay(d.g).build();
    let output = b.register("out").delay(d.register).build();
    b.connect(agg, output);
    // environment: recycle the output token into the input
    b.connect(output, input);

    let mut prev_local: NodeId = input;
    let mut prev_was_static = true;
    let mut local_outs = Vec::new();
    let mut global_outs = Vec::new();

    for i in 0..spec.stages {
        let s = i + 1;
        let value = TokenValue::from(spec.included[i]);
        if !spec.reconfigurable[i] {
            // Fig. 6b: static stage
            let local_in = b
                .register(format!("s{s}_local_in"))
                .delay(d.register)
                .build();
            let f = b.logic(format!("s{s}_f")).delay(spec.f_delays[i]).build();
            let local_out = b
                .register(format!("s{s}_local_out"))
                .delay(d.register)
                .build();
            let global_in = b
                .register(format!("s{s}_global_in"))
                .delay(d.register)
                .build();
            let g = b.logic(format!("s{s}_g")).delay(d.g).build();
            let global_out = b
                .register(format!("s{s}_global_out"))
                .delay(d.register)
                .build();
            b.connect(prev_local, local_in);
            b.connect(local_in, f);
            b.connect(f, local_out);
            b.connect(input, global_in);
            b.connect(local_out, g);
            b.connect(global_in, g);
            b.connect(g, global_out);
            b.connect(global_out, agg);
            prev_local = local_out;
            prev_was_static = true;
            local_outs.push(local_out);
            global_outs.push(global_out);
        } else {
            // Fig. 6c: reconfigurable stage
            let shared = spec.share_ctrl_after_static && prev_was_static;
            let gc = control_loop(&mut b, &format!("s{s}_gctrl"), value, d.control);
            let lc = if shared {
                gc
            } else {
                control_loop(&mut b, &format!("s{s}_lctrl"), value, d.control)
            };
            let local_in = b.push(format!("s{s}_local_in")).delay(d.register).build();
            let f = b.logic(format!("s{s}_f")).delay(spec.f_delays[i]).build();
            let local_out = b
                .register(format!("s{s}_local_out"))
                .delay(d.register)
                .build();
            let global_in = b.push(format!("s{s}_global_in")).delay(d.register).build();
            let g = b.logic(format!("s{s}_g")).delay(d.g).build();
            let global_out = b.pop(format!("s{s}_global_out")).delay(d.register).build();
            b.connect(prev_local, local_in);
            b.connect(local_in, f);
            b.connect(f, local_out);
            b.connect(input, global_in);
            b.connect(local_out, g);
            b.connect(global_in, g);
            b.connect(g, global_out);
            b.connect(global_out, agg);
            // guard wiring
            b.connect(lc, local_in);
            b.connect(gc, global_in);
            b.connect(gc, global_out);
            prev_local = local_out;
            prev_was_static = false;
            local_outs.push(local_out);
            global_outs.push(global_out);
        }
    }

    let dfs = b.finish()?;
    Ok(Pipeline {
        input,
        output,
        local_outs: local_outs.into_iter().collect(),
        global_outs,
        dfs,
    })
}

/// Builds a 3-register control loop (the minimum for token oscillation) and
/// returns the register that guards the stage interfaces.
fn control_loop(b: &mut DfsBuilder, prefix: &str, value: TokenValue, delay: f64) -> NodeId {
    let c0 = b
        .control(format!("{prefix}0"))
        .marked_with(value)
        .delay(delay)
        .build();
    let c1 = b.control(format!("{prefix}1")).delay(delay).build();
    let c2 = b.control(format!("{prefix}2")).delay(delay).build();
    b.connect(c0, c1);
    b.connect(c1, c2);
    b.connect(c2, c0);
    c0
}

/// A plain linear pipeline `in → f1 → r1 → … → fN → rN` (open at the end;
/// terminal registers self-drain). Useful as a test fixture.
///
/// # Errors
///
/// Propagates builder validation errors.
pub fn linear_pipeline(n: usize, f_delay: f64) -> Result<Pipeline, DfsError> {
    let mut b = DfsBuilder::new();
    let input = b.register("in").marked().build();
    let mut prev = input;
    let mut last = input;
    for i in 1..=n {
        let f = b.logic(format!("f{i}")).delay(f_delay).build();
        let r = b.register(format!("r{i}")).build();
        b.connect(prev, f);
        b.connect(f, r);
        prev = r;
        last = r;
    }
    // recycle to keep the model closed
    b.connect(last, input);
    let dfs = b.finish()?;
    Ok(Pipeline {
        input,
        output: last,
        local_outs: Vec::new(),
        global_outs: Vec::new(),
        dfs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify, VerifyConfig};

    fn cfg() -> VerifyConfig {
        VerifyConfig {
            max_states: 5_000_000,
        }
    }

    #[test]
    fn static_two_stage_pipeline_is_clean() {
        let p = build_pipeline(&PipelineSpec::fully_static(2)).unwrap();
        let report = verify(&p.dfs, &cfg()).unwrap();
        assert!(report.is_clean(), "deadlocks: {:?}", report.deadlocks);
    }

    #[test]
    fn reconfigurable_two_stage_all_depths_are_clean() {
        for depth in 1..=2 {
            let p = build_pipeline(&PipelineSpec::reconfigurable_depth(2, depth).unwrap()).unwrap();
            let report = verify(&p.dfs, &cfg()).unwrap();
            assert!(
                report.is_clean(),
                "depth {depth}: deadlocks {:?} mismatch {:?} hazards {}",
                report.deadlocks.len(),
                report.control_mismatch.as_ref().map(|c| &c.reason),
                report.hazards.len()
            );
        }
    }

    #[test]
    fn pipeline_simulates_and_produces_output() {
        use crate::timed::{measure_throughput, ChoicePolicy};
        let p = build_pipeline(&PipelineSpec::reconfigurable_depth(3, 2).unwrap()).unwrap();
        let thr = measure_throughput(&p.dfs, p.output, 3, 20, ChoicePolicy::AlwaysTrue).unwrap();
        assert!(thr > 0.0);
    }

    /// Excluded stages used to be analysed as if included (the event graph
    /// abstracted every dynamic register as true-controlled). The phase
    /// unfolding analyses the *configured* schedule: every depth of a
    /// reconfigurable pipeline gets an exact period.
    #[test]
    fn every_depth_configuration_is_analysed_exactly() {
        use crate::perf::{analyse, Construction};
        use crate::timed::{measure_steady_period, ChoicePolicy};
        for depth in 1..=3 {
            let p = build_pipeline(&PipelineSpec::reconfigurable_depth(3, depth).unwrap()).unwrap();
            let report = analyse(&p.dfs).unwrap();
            assert!(matches!(
                report.construction,
                Construction::PhaseUnfolded { .. }
            ));
            let steady =
                measure_steady_period(&p.dfs, p.output, 200, ChoicePolicy::AlwaysTrue).unwrap();
            assert!(
                (report.period - steady.period).abs() <= 1e-9 * steady.period,
                "depth {depth}: analysis {} vs steady {}",
                report.period,
                steady.period
            );
        }
        // deeper configurations must not be reported as faster
        let periods: Vec<f64> = (1..=3)
            .map(|d| {
                analyse(
                    &build_pipeline(&PipelineSpec::reconfigurable_depth(3, d).unwrap())
                        .unwrap()
                        .dfs,
                )
                .unwrap()
                .period
            })
            .collect();
        assert!(
            periods.windows(2).all(|w| w[0] <= w[1] + 1e-9),
            "{periods:?}"
        );
    }

    #[test]
    fn degenerate_specs_are_rejected_with_typed_errors() {
        // depth out of range, both ends
        for (n, depth) in [(4, 0), (4, 5), (0, 0), (0, 1)] {
            assert!(
                matches!(
                    PipelineSpec::reconfigurable_depth(n, depth),
                    Err(DfsError::InvalidSpec { .. })
                ),
                "reconfigurable_depth({n}, {depth}) must be rejected"
            );
        }
        // empty delay vector
        let spec = PipelineSpec::fully_static(3).with_f_delays(Vec::new());
        let err = build_pipeline(&spec).unwrap_err();
        assert!(
            matches!(&err, DfsError::InvalidSpec { reason } if reason.contains("empty")),
            "{err}"
        );
        // mis-sized delay vector
        let spec = PipelineSpec::fully_static(3).with_f_delays(vec![1.0; 2]);
        assert!(matches!(
            build_pipeline(&spec),
            Err(DfsError::InvalidSpec { .. })
        ));
        // non-finite delay
        let spec = PipelineSpec::fully_static(2).with_f_delays(vec![1.0, f64::NAN]);
        assert!(matches!(
            build_pipeline(&spec),
            Err(DfsError::InvalidSpec { .. })
        ));
        // mis-sized flag vectors
        let mut spec = PipelineSpec::fully_static(3);
        spec.included.pop();
        assert!(matches!(
            build_pipeline(&spec),
            Err(DfsError::InvalidSpec { .. })
        ));
        // all-excluded configuration (depth 0 expressed via the vectors)
        let mut spec = PipelineSpec::reconfigurable_depth(3, 1).unwrap();
        spec.reconfigurable[0] = true;
        spec.included = vec![false; 3];
        assert!(matches!(
            build_pipeline(&spec),
            Err(DfsError::InvalidSpec { .. })
        ));
        // a healthy spec still validates
        PipelineSpec::reconfigurable_depth(3, 2)
            .unwrap()
            .validate()
            .unwrap();
    }

    #[test]
    fn per_stage_delays_shape_the_analysis() {
        use crate::perf::analyse;
        // slowing one stage's f must not speed the pipeline up, and the
        // slowed instance must differ from the uniform one
        let uniform = build_pipeline(&PipelineSpec::fully_static(3)).unwrap();
        let slowed =
            build_pipeline(&PipelineSpec::fully_static(3).with_f_delays(vec![2.0, 8.0, 2.0]))
                .unwrap();
        let p0 = analyse(&uniform.dfs).unwrap().period;
        let p1 = analyse(&slowed.dfs).unwrap().period;
        assert!(p1 > p0, "slowed {p1} vs uniform {p0}");
        assert_ne!(uniform.dfs.structural_hash(), slowed.dfs.structural_hash());
    }

    #[test]
    fn linear_pipeline_lives() {
        let p = linear_pipeline(4, 1.0).unwrap();
        let report = verify(&p.dfs, &cfg()).unwrap();
        assert!(report.deadlocks.is_empty());
    }
}
