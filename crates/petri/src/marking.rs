//! Markings of 1-safe nets, stored as fixed-width bitsets.

use crate::PlaceId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A marking of a 1-safe net: the set of marked places.
///
/// Stored as a `u64` bitset so that markings hash and compare quickly during
/// state-space exploration. Cloning a marking is a small `Vec` copy.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Marking {
    words: Vec<u64>,
    /// Number of places this marking covers (bits above this are zero).
    len: u32,
}

impl Marking {
    /// Creates an empty (all-unmarked) marking over `places` places.
    #[must_use]
    pub fn empty(places: usize) -> Self {
        Marking {
            words: vec![0; places.div_ceil(64)],
            len: u32::try_from(places).expect("too many places"),
        }
    }

    /// Number of places covered by this marking.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` if the marking covers no places at all (a net with no places).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Is `place` marked?
    ///
    /// # Panics
    ///
    /// Panics if `place` does not belong to a net with as many places.
    #[must_use]
    pub fn is_marked(&self, place: PlaceId) -> bool {
        let i = place.index();
        assert!(i < self.len(), "place {place} out of range");
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets the token count of `place` (true = one token, false = none).
    pub fn set(&mut self, place: PlaceId, marked: bool) {
        let i = place.index();
        assert!(i < self.len(), "place {place} out of range");
        let mask = 1u64 << (i % 64);
        if marked {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Builds a marking over `places` places from word-packed bits (as used
    /// by the [`crate::engine`] arena). Bits above `places` must be zero.
    pub(crate) fn from_words(words: Vec<u64>, places: usize) -> Self {
        debug_assert_eq!(words.len(), places.div_ceil(64));
        Marking {
            words,
            len: u32::try_from(places).expect("too many places"),
        }
    }

    /// The word-packed bits of this marking.
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable word-packed bits, for in-place reconstruction from the
    /// delta-compressed state store. The caller must keep bits above
    /// `len()` zero.
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Overwrites this marking's bits from a word slice of at least
    /// `len().div_ceil(64)` words (extra high words are ignored).
    pub(crate) fn copy_from_words(&mut self, words: &[u64]) {
        let n = self.words.len();
        self.words.copy_from_slice(&words[..n]);
    }

    /// Number of marked places.
    #[must_use]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the marked places in increasing index order.
    pub fn iter_marked(&self) -> impl Iterator<Item = PlaceId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(PlaceId::from_index(wi * 64 + b))
            })
        })
    }
}

impl fmt::Debug for Marking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Marking{{")?;
        for (i, p) in self.iter_marked().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_query() {
        let mut m = Marking::empty(130);
        assert_eq!(m.len(), 130);
        assert!(!m.is_empty());
        let p = PlaceId::from_index(129);
        assert!(!m.is_marked(p));
        m.set(p, true);
        assert!(m.is_marked(p));
        assert_eq!(m.count(), 1);
        m.set(p, false);
        assert!(!m.is_marked(p));
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn iter_marked_in_order() {
        let mut m = Marking::empty(200);
        for i in [0usize, 63, 64, 65, 128, 199] {
            m.set(PlaceId::from_index(i), true);
        }
        let got: Vec<usize> = m.iter_marked().map(PlaceId::index).collect();
        assert_eq!(got, vec![0, 63, 64, 65, 128, 199]);
    }

    #[test]
    fn equality_and_hash_are_content_based() {
        use std::collections::HashSet;
        let mut a = Marking::empty(70);
        let mut b = Marking::empty(70);
        a.set(PlaceId::from_index(5), true);
        b.set(PlaceId::from_index(5), true);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let m = Marking::empty(10);
        let _ = m.is_marked(PlaceId::from_index(10));
    }

    #[test]
    fn debug_is_never_empty() {
        let m = Marking::empty(4);
        assert_eq!(format!("{m:?}"), "Marking{}");
    }
}
