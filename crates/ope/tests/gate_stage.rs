//! Gate-level cross-validation of the OPE stage datapath: one stage's
//! contribution (`held <= new`, i.e. `!(held > new)`) and the rank
//! accumulation adder, computed by the NCL-D dual-rail library and checked
//! against the software engine.
//!
//! This closes the loop between the behavioural models (`rap-ope`) and the
//! silicon substrate (`rap-silicon`): the functions `f`/`g` that the DFS
//! stage abstracts are the very comparator/adder components the paper's
//! component library provides.

use rap_ope::Lfsr;
use rap_silicon::components::{comparator_gt, dr_input_bus, dr_not, ripple_add_bit, DrBus};
use rap_silicon::netlist::Netlist;
use rap_silicon::sim::{SimConfig, Simulator};

const W: usize = 16;
const RANK_W: usize = 8;

/// Builds the datapath of one OPE stage: `contribution = (held <= new)`,
/// `rank_out = rank_in + contribution`.
struct StageNetlist {
    nl: Netlist,
    held: DrBus,
    new_item: DrBus,
    rank_in: DrBus,
    rank_out: DrBus,
    contribution: DrBus,
}

fn build_stage() -> StageNetlist {
    let mut nl = Netlist::new();
    let held = dr_input_bus(&mut nl, "held", W);
    let new_item = dr_input_bus(&mut nl, "new", W);
    let rank_in = dr_input_bus(&mut nl, "rank", RANK_W);
    // held <= new  <=>  !(held > new): dual-rail NOT is a free rail swap
    let gt = comparator_gt(&mut nl, "cmp", &held, &new_item);
    let le = dr_not(gt);
    let contribution = DrBus(vec![le]);
    // rank accumulation: add the single contribution bit (half-adder chain
    // — every gate sees the NULL wave)
    let rank_out = ripple_add_bit(&mut nl, "acc", &rank_in, le);
    StageNetlist {
        nl,
        held,
        new_item,
        rank_in,
        rank_out,
        contribution,
    }
}

#[test]
fn stage_datapath_matches_software_on_lfsr_data() {
    let stage = build_stage();
    let mut sim = Simulator::new(&stage.nl, SimConfig::default());
    sim.run_until_quiet(100_000);

    let mut lfsr = Lfsr::new(0xA11CE);
    for i in 0..12 {
        let held = lfsr.next_item();
        let new = lfsr.next_item();
        let rank = u64::from(lfsr.next_item() % 200);
        sim.set_bus(&stage.held, u64::from(held));
        sim.set_bus(&stage.new_item, u64::from(new));
        sim.set_bus(&stage.rank_in, rank);
        let expect_contrib = u64::from(held <= new);
        let got = sim
            .wait_bus_data(&stage.rank_out, 5_000_000)
            .expect("stage completes");
        assert_eq!(
            got,
            (rank + expect_contrib) & 0xFF,
            "iteration {i}: held={held} new={new} rank={rank}"
        );
        assert_eq!(
            sim.bus_value(&stage.contribution),
            Some(expect_contrib),
            "contribution bit"
        );
        // NULL wave between items (4-phase)
        sim.set_bus_null(&stage.held);
        sim.set_bus_null(&stage.new_item);
        sim.set_bus_null(&stage.rank_in);
        sim.run_until_quiet(5_000_000);
        assert!(sim.bus_is_null(&stage.rank_out), "RTZ completed");
    }
}

#[test]
fn stage_energy_scales_with_voltage() {
    use rap_silicon::VoltageProfile;
    let run_energy = |v: f64| {
        let stage = build_stage();
        let mut sim = Simulator::new(
            &stage.nl,
            SimConfig {
                supply: VoltageProfile::Constant(v),
                ..SimConfig::default()
            },
        );
        sim.run_until_quiet(100_000);
        sim.set_bus(&stage.held, 123);
        sim.set_bus(&stage.new_item, 456);
        sim.set_bus(&stage.rank_in, 7);
        let _ = sim.wait_bus_data(&stage.rank_out, 5_000_000);
        sim.settle_accounting();
        sim.switching_energy()
    };
    let e12 = run_energy(1.2);
    let e06 = run_energy(0.6);
    // same switching activity, V² energy: ratio ≈ 4
    let ratio = e12 / e06;
    assert!(
        (3.5..4.5).contains(&ratio),
        "V² scaling at the stage level: ratio {ratio}"
    );
}
