//! Standard verification analyses: deadlock and persistence.
//!
//! These are the "standard properties" the paper verifies through MPSAT
//! (§II-D): deadlock freedom, and persistence (absence of hazards — an
//! enabled event must not be disabled by another event firing). Custom
//! functional properties are expressed in the Reach-style language of the
//! `rap-reach` crate and evaluated over the same state space.

use crate::reachability::{StateId, StateSpace};
use crate::{Marking, PetriNet, TransitionId};

/// A reachable deadlock: a state with no enabled transitions.
#[derive(Debug, Clone)]
pub struct Deadlock {
    /// The dead state.
    pub state: StateId,
    /// The dead marking itself.
    pub marking: Marking,
    /// Firing sequence from the initial marking to the dead state.
    pub trace: Vec<TransitionId>,
}

/// Searches the state space for deadlocks.
///
/// Returns all dead states (often one suffices for debugging, but incorrect
/// control initialisation in DFS models typically produces families of dead
/// states; reporting them all mirrors the tool's behaviour).
#[must_use]
pub fn find_deadlocks(space: &StateSpace) -> Vec<Deadlock> {
    space
        .states()
        .filter(|&s| space.successors(s).is_empty())
        .map(|s| Deadlock {
            state: s,
            marking: space.marking(s),
            trace: space.trace_to(s),
        })
        .collect()
}

/// A persistence violation: in `state`, both `enabled` and `disabler` were
/// enabled, but firing `disabler` disabled `enabled` without it having fired.
#[derive(Debug, Clone)]
pub struct PersistenceViolation {
    /// State in which the conflict occurs.
    pub state: StateId,
    /// The transition that loses its enabledness.
    pub enabled: TransitionId,
    /// The transition whose firing disables `enabled`.
    pub disabler: TransitionId,
    /// Trace from the initial marking to `state`.
    pub trace: Vec<TransitionId>,
}

/// Checks persistence over the reachable state space.
///
/// A net is *persistent* when no enabled transition can be disabled by the
/// firing of a different transition. Non-persistence in the PN image of a
/// DFS model indicates a hazard (§III-A: "several cases of deadlock and
/// non-persistent behaviour ... were identified").
///
/// `allowed_conflicts` lets the caller exempt transition pairs that are
/// *intended* choices (e.g. the non-deterministic `Mt+`/`Mf+` evaluation of a
/// control register fed by a data predicate); the predicate receives both
/// transition ids and should return `true` when the pair is an intended
/// choice rather than a hazard.
#[must_use]
pub fn find_persistence_violations(
    net: &PetriNet,
    space: &StateSpace,
    mut allowed_conflicts: impl FnMut(TransitionId, TransitionId) -> bool,
) -> Vec<PersistenceViolation> {
    // word-level enabledness via the incidence index: the check runs over
    // every ordered pair of concurrently enabled transitions, so avoiding a
    // Marking materialisation per probe matters on large spaces
    let inc = crate::engine::Incidence::from_net(net);
    let mut out = Vec::new();
    for s in space.states() {
        let succs = space.successors(s);
        if succs.len() < 2 {
            continue;
        }
        for &(disabler, after) in succs {
            for &(enabled, _) in succs {
                if enabled == disabler {
                    continue;
                }
                if inc.is_enabled(enabled, space.marking_words(after)) {
                    continue;
                }
                if allowed_conflicts(enabled, disabler) {
                    continue;
                }
                out.push(PersistenceViolation {
                    state: s,
                    enabled,
                    disabler,
                    trace: space.trace_to(s),
                });
            }
        }
    }
    out
}

/// Verifies that every reachable marking keeps the net 1-safe with respect to
/// a set of *complementary place pairs*: for each pair exactly one of the two
/// places is marked.
///
/// The DFS translation introduces `x_0`/`x_1` place pairs per state variable;
/// this check is the structural invariant that validates the translation.
#[must_use]
pub fn check_complementary_pairs(
    space: &StateSpace,
    pairs: &[(crate::PlaceId, crate::PlaceId)],
) -> Option<(StateId, usize)> {
    for s in space.states() {
        for (i, &(p0, p1)) in pairs.iter().enumerate() {
            if space.is_marked(s, p0) == space.is_marked(s, p1) {
                return Some((s, i));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reachability::{explore, ExploreConfig};
    use crate::PetriNet;

    #[test]
    fn detects_deadlock_with_trace() {
        // a -> b -> (dead)
        let mut net = PetriNet::new();
        let a = net.add_place("a", true);
        let b = net.add_place("b", false);
        let c = net.add_place("c", false);
        let t1 = net.add_transition("t1");
        net.consume(t1, a);
        net.produce(t1, b);
        let t2 = net.add_transition("t2");
        net.consume(t2, b);
        net.produce(t2, c);
        let space = explore(&net, ExploreConfig::default()).unwrap();
        let dls = find_deadlocks(&space);
        assert_eq!(dls.len(), 1);
        assert_eq!(dls[0].trace, vec![t1, t2]);
        assert!(dls[0].marking.is_marked(c));
    }

    #[test]
    fn live_ring_has_no_deadlock() {
        let mut net = PetriNet::new();
        let a = net.add_place("a", true);
        let b = net.add_place("b", false);
        let t1 = net.add_transition("t1");
        net.consume(t1, a);
        net.produce(t1, b);
        let t2 = net.add_transition("t2");
        net.consume(t2, b);
        net.produce(t2, a);
        let space = explore(&net, ExploreConfig::default()).unwrap();
        assert!(find_deadlocks(&space).is_empty());
    }

    #[test]
    fn detects_choice_as_persistence_violation() {
        // one token, two competing consumers => classic conflict
        let mut net = PetriNet::new();
        let a = net.add_place("a", true);
        let b = net.add_place("b", false);
        let c = net.add_place("c", false);
        let t1 = net.add_transition("t1");
        net.consume(t1, a);
        net.produce(t1, b);
        let t2 = net.add_transition("t2");
        net.consume(t2, a);
        net.produce(t2, c);
        let space = explore(&net, ExploreConfig::default()).unwrap();
        let v = find_persistence_violations(&net, &space, |_, _| false);
        // both orderings are reported
        assert_eq!(v.len(), 2);
        let allowed = find_persistence_violations(&net, &space, |_, _| true);
        assert!(allowed.is_empty());
    }

    #[test]
    fn concurrent_transitions_are_persistent() {
        let mut net = PetriNet::new();
        let a = net.add_place("a", true);
        let b = net.add_place("b", true);
        let a1 = net.add_place("a1", false);
        let b1 = net.add_place("b1", false);
        let t1 = net.add_transition("t1");
        net.consume(t1, a);
        net.produce(t1, a1);
        let t2 = net.add_transition("t2");
        net.consume(t2, b);
        net.produce(t2, b1);
        let space = explore(&net, ExploreConfig::default()).unwrap();
        assert!(find_persistence_violations(&net, &space, |_, _| false).is_empty());
    }

    #[test]
    fn complementary_pair_check() {
        let mut net = PetriNet::new();
        let x0 = net.add_place("x_0", true);
        let x1 = net.add_place("x_1", false);
        let t = net.add_transition("x+");
        net.consume(t, x0);
        net.produce(t, x1);
        let space = explore(&net, ExploreConfig::default()).unwrap();
        assert!(check_complementary_pairs(&space, &[(x0, x1)]).is_none());

        // a broken net where the pair can both become marked
        let mut bad = PetriNet::new();
        let y0 = bad.add_place("y_0", true);
        let y1 = bad.add_place("y_1", false);
        let t = bad.add_transition("oops");
        bad.read(t, y0);
        bad.produce(t, y1);
        let space = explore(&bad, ExploreConfig::default()).unwrap();
        let hit = check_complementary_pairs(&space, &[(y0, y1)]);
        assert!(hit.is_some());
    }
}
