//! Parallel ↔ serial engine equivalence, property-tested.
//!
//! The parallel engine (`rap_petri::engine::explore_parallel`) claims to be
//! *observationally identical* to the serial engine at every thread count:
//! same state numbering, same edges, same truncation point, same witness
//! traces — not just equal counts. This suite pins that claim on random
//! inputs from both ends of the tool (raw random Petri nets and the paper's
//! pipeline generators), at threads ∈ {1, 2, 8} plus whatever
//! `RAP_TEST_THREADS` asks for, including under tiny truncation budgets and
//! with forced delta-compression (`anchor_interval` > 1). It mirrors
//! `engine_equivalence.rs`, which pinned the serial engine against the
//! naive explorers in PR 2.
//!
//! Since the observability layer landed, every parallel run here executes
//! **with a live [`rap::obs::Collector`] attached** — the suite therefore
//! simultaneously pins the tracing determinism contract: recording is
//! observation-only and can never perturb state numbering, edge order,
//! witness traces or truncation, at any thread count.

use proptest::prelude::*;
use rap::dfs::pipelines::{build_pipeline, PipelineSpec};
use rap::dfs::wagging::wagged_pipeline;
use rap::dfs::{to_petri, Dfs, Lts};
use rap::obs::{Collector, Obs};
use rap::petri::engine::EngineConfig;
use rap::petri::reachability::{
    explore_serial_truncated, explore_truncated, explore_truncated_traced, ExploreConfig,
    StateSpace,
};
use rap::petri::{PetriNet, PlaceId};
use std::sync::Arc;

/// Thread counts under test: the fixed {1, 2, 8} ladder plus the
/// `RAP_TEST_THREADS` environment override (the CI matrix sets 2).
fn thread_counts() -> Vec<usize> {
    let mut ts = vec![1usize, 2, 8];
    if let Some(t) = std::env::var("RAP_TEST_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&t| t >= 1)
    {
        if !ts.contains(&t) {
            ts.push(t);
        }
    }
    ts
}

/// Random net over `np` places and `nt` transitions with small arc lists.
fn arb_net(np: usize, nt: usize) -> impl Strategy<Value = PetriNet> {
    let place_marks = proptest::collection::vec(any::<bool>(), np);
    let arcs = proptest::collection::vec(
        (
            proptest::collection::vec(0..np, 0..3), // consumes
            proptest::collection::vec(0..np, 0..3), // produces
            proptest::collection::vec(0..np, 0..2), // reads
        ),
        nt,
    );
    (place_marks, arcs).prop_map(move |(marks, arcs)| {
        let mut net = PetriNet::new();
        let places: Vec<PlaceId> = marks
            .iter()
            .enumerate()
            .map(|(i, &m)| net.add_place(format!("p{i}"), m))
            .collect();
        for (i, (cons, prod, reads)) in arcs.into_iter().enumerate() {
            let t = net.add_transition(format!("t{i}"));
            for c in cons {
                net.consume(t, places[c]);
            }
            for p in prod {
                net.produce(t, places[p]);
            }
            for r in reads {
                net.read(t, places[r]);
            }
        }
        net
    })
}

/// Random paper-flow pipeline: 2–3 stages, random reconfigurability pattern
/// and inclusion depth.
fn arb_pipeline() -> impl Strategy<Value = Dfs> {
    (
        2usize..=3,
        proptest::collection::vec(any::<bool>(), 3),
        0usize..=3,
    )
        .prop_map(|(stages, reconf, depth)| {
            let mut spec =
                PipelineSpec::reconfigurable_depth(stages, depth.clamp(1, stages)).unwrap();
            for (i, flag) in reconf.iter().take(stages).enumerate().skip(1) {
                spec.reconfigurable[i] = *flag;
            }
            build_pipeline(&spec).expect("spec builds").dfs
        })
}

/// Exact observational identity of two state spaces: numbering, markings,
/// edges, traces, truncation.
fn assert_spaces_identical(a: &StateSpace, b: &StateSpace, ctx: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len(), "{}: state count", ctx);
    prop_assert_eq!(a.outcome(), b.outcome(), "{}: outcome", ctx);
    for (sa, sb) in a.states().zip(b.states()) {
        prop_assert_eq!(&a.marking(sa), &b.marking(sb), "{}: marking", ctx);
        prop_assert_eq!(a.successors(sa), b.successors(sb), "{}: edges", ctx);
        prop_assert_eq!(a.trace_to(sa), b.trace_to(sb), "{}: trace", ctx);
    }
    Ok(())
}

/// Parallel at every thread count ≡ serial, for one net and budget. The
/// parallel side runs **traced** (live collector): equivalence holding
/// here is the proof that recording is observation-only.
fn assert_parallel_equivalent(net: &PetriNet, max_states: usize) -> Result<(), TestCaseError> {
    let serial = explore_serial_truncated(
        net,
        ExploreConfig {
            max_states,
            ..ExploreConfig::default()
        },
    );
    for threads in thread_counts() {
        let collector = Arc::new(Collector::new());
        let par = explore_truncated_traced(
            net,
            ExploreConfig {
                max_states,
                threads,
                deadline: None,
            },
            &Obs::collecting(&collector),
        );
        assert_spaces_identical(&par, &serial, &format!("threads={threads}"))?;
        // the collector really was live: the engine flushed its counters
        prop_assert_eq!(
            collector.snapshot().counters.get("engine.states"),
            par.len() as u64,
            "threads={}: collector missed the run",
            threads
        );
    }
    Ok(())
}

fn assert_lts_parallel_equivalent(dfs: &Dfs, max_states: usize) -> Result<(), TestCaseError> {
    let serial = Lts::explore_serial_truncated(dfs, max_states);
    for threads in thread_counts() {
        // anchor_interval 3 forces delta-compressed storage into the
        // comparison as well; tracing through a live collector keeps the
        // observation-only contract under test on the LTS backend too
        for anchor_interval in [0usize, 3] {
            let collector = Arc::new(Collector::new());
            let par = Lts::explore_with_traced(
                dfs,
                &EngineConfig {
                    max_states,
                    threads,
                    anchor_interval,
                    deadline: None,
                },
                None,
                &Obs::collecting(&collector),
            );
            let ctx = format!("threads={threads} anchors={anchor_interval}");
            prop_assert_eq!(par.len(), serial.len(), "{}: state count", &ctx);
            prop_assert_eq!(par.outcome(), serial.outcome(), "{}: outcome", &ctx);
            for (sa, sb) in par.states().zip(serial.states()) {
                prop_assert_eq!(par.state(sa), serial.state(sb), "{}: state", &ctx);
                prop_assert_eq!(par.successors(sa), serial.successors(sb), "{}: edges", &ctx);
                prop_assert_eq!(par.trace_to(sa), serial.trace_to(sb), "{}: trace", &ctx);
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random raw nets: the level-synchronous commit makes the parallel
    /// engine's ids, edges and traces identical to the serial engine's.
    #[test]
    fn random_nets_parallel_equals_serial(net in arb_net(10, 8)) {
        assert_parallel_equivalent(&net, 3_000)?;
    }

    /// Random nets under tiny budgets: truncation must bite at exactly the
    /// same state in every parallel configuration (the commit pass stops at
    /// the same canonical point regardless of worker schedule).
    #[test]
    fn random_nets_truncate_identically(net in arb_net(9, 8)) {
        for cap in [1usize, 2, 7, 40] {
            assert_parallel_equivalent(&net, cap)?;
        }
    }

    /// Random paper pipelines, both backends, with forced delta anchors.
    #[test]
    fn random_pipelines_parallel_equals_serial(dfs in arb_pipeline()) {
        let img = to_petri(&dfs);
        assert_parallel_equivalent(&img.net, 3_000)?;
        assert_lts_parallel_equivalent(&dfs, 3_000)?;
    }
}

/// The deterministic wagged shapes (guard/choice structure beyond what the
/// random pipelines reach), including truncation budgets.
#[test]
fn wagged_shapes_parallel_equals_serial() {
    for ways in [1usize, 2] {
        let w = wagged_pipeline(ways, 1, 1.0).unwrap();
        let img = to_petri(&w.dfs);
        for cap in [30_000usize, 500] {
            let serial = explore_serial_truncated(
                &img.net,
                ExploreConfig {
                    max_states: cap,
                    ..ExploreConfig::default()
                },
            );
            for threads in thread_counts() {
                let par = explore_truncated(
                    &img.net,
                    ExploreConfig {
                        max_states: cap,
                        threads,
                        deadline: None,
                    },
                );
                assert_eq!(par.len(), serial.len(), "ways={ways} threads={threads}");
                assert_eq!(par.outcome(), serial.outcome());
                for (sa, sb) in par.states().zip(serial.states()) {
                    assert_eq!(par.successors(sa), serial.successors(sb));
                }
            }
        }
    }
}

/// Witness traces from the parallel engine replay through the net's own
/// firing rule — step-enabled, landing exactly on the recorded marking.
#[test]
fn parallel_witness_traces_replay() {
    let w = wagged_pipeline(2, 1, 1.0).unwrap();
    let img = to_petri(&w.dfs);
    let space = explore_truncated(
        &img.net,
        ExploreConfig {
            max_states: 2_000,
            threads: 8,
            deadline: None,
        },
    );
    assert!(space.is_truncated());
    for s in space.states() {
        let mut m = img.net.initial_marking();
        for t in space.trace_to(s) {
            assert!(img.net.is_enabled(t, &m), "trace step not enabled");
            m = img.net.fire(t, &m).unwrap();
        }
        assert_eq!(m, space.marking(s));
    }
}
