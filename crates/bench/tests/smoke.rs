//! Smoke tests: every experiment binary must build, run to completion and
//! exit 0 with non-empty output. These shell out to `cargo run` so the test
//! exercises exactly what a user typing the command gets.

use std::process::Command;

fn run_bin(name: &str) {
    run_bin_with(name, &[]);
}

fn run_bin_with(name: &str, extra: &[&str]) {
    let out = Command::new(env!("CARGO"))
        .args(["run", "-q", "-p", "rap-bench", "--bin", name, "--"])
        .args(extra)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo run --bin {name}: {e}"));
    assert!(
        out.status.success(),
        "{name} exited with {:?}\nstderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        !out.stdout.is_empty(),
        "{name} produced no output — experiment binaries must print their table/figure"
    );
}

macro_rules! bin_smoke {
    ($($test:ident => $bin:literal),+ $(,)?) => {$(
        #[test]
        fn $test() {
            run_bin($bin);
        }
    )+};
}

bin_smoke! {
    smoke_depth_scaling => "depth_scaling",
    smoke_fig1_motivating => "fig1_motivating",
    smoke_fig4_petri_translation => "fig4_petri_translation",
    smoke_fig5_performance => "fig5_performance",
    smoke_fig7_verification => "fig7_verification",
    smoke_fig8_chip => "fig8_chip",
    smoke_fig9a_voltage_sweep => "fig9a_voltage_sweep",
    smoke_fig9b_power_trace => "fig9b_power_trace",
    smoke_flow_verilog => "flow_verilog",
    smoke_table_ranklists => "table_ranklists",
}

/// The DSE binary: quick sweep into a scratch file, then check the emitted
/// JSON independently against the schema validator (the binary also
/// self-validates — and cross-checks parallel vs serial fronts — before
/// exiting 0).
#[test]
fn smoke_dse_pareto() {
    let out_path =
        std::env::temp_dir().join(format!("rap_bench_dse_smoke_{}.json", std::process::id()));
    let _ = std::fs::remove_file(&out_path);
    run_bin_with(
        "dse_pareto",
        &["--quick", "--out", out_path.to_str().unwrap()],
    );
    let json = std::fs::read_to_string(&out_path).expect("binary wrote the JSON file");
    let summary = rap_bench::dse::validate(&json).expect("emitted JSON is schema-valid");
    assert!(summary.design_point_on_front);
    assert!(summary.configurations >= 48);
    let _ = std::fs::remove_file(&out_path);
}

/// The perf-trajectory binary: quick sweep into a scratch file, then check
/// the emitted JSON independently against the schema validator (the binary
/// also self-validates before exiting 0).
#[test]
fn smoke_state_space_scaling() {
    // per-process name: concurrent test runs must not race on the file
    let out_path = std::env::temp_dir().join(format!(
        "rap_bench_state_space_smoke_{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&out_path);
    run_bin_with(
        "state_space_scaling",
        &["--quick", "--out", out_path.to_str().unwrap()],
    );
    let json = std::fs::read_to_string(&out_path).expect("binary wrote the JSON file");
    let summary = rap_bench::state_space::validate(&json).expect("emitted JSON is schema-valid");
    assert!(summary.cases >= 3);
    let _ = std::fs::remove_file(&out_path);
}
