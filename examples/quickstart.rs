//! Quickstart: model the paper's motivating example (Fig. 1b), verify it,
//! inspect its Petri-net semantics and measure its throughput.
//!
//! Run with `cargo run --example quickstart`.

use rap::dfs::examples::conditional_dfs;
use rap::dfs::timed::{measure_throughput, ChoicePolicy};
use rap::dfs::verify::{verify, VerifyConfig};
use rap::dfs::{to_petri, Lts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the Fig. 1b model: a cheap predicate `cond` fills a control
    //    register that guards the expensive `comp` pipeline between a push
    //    (`filt`) and a pop (`out`). False tokens bypass comp entirely.
    let model = conditional_dfs(2, 4.0)?;
    println!(
        "model: {} nodes, {} arcs",
        model.dfs.node_count(),
        model.dfs.edge_count()
    );

    // 2. Formal verification through the Petri-net backend: deadlock
    //    freedom, no control mismatches, no hazards.
    let report = verify(&model.dfs, &VerifyConfig::default())?;
    println!(
        "verification: {} reachable states, clean = {}",
        report.states,
        report.is_clean()
    );

    // 3. The Fig. 3/4 translation, for the curious.
    let img = to_petri(&model.dfs);
    println!(
        "petri-net image: {} places, {} transitions",
        img.net.place_count(),
        img.net.transition_count()
    );

    // 4. Both behaviours are reachable: bypass (comp untouched) and
    //    compute-through.
    let lts = Lts::explore(&model.dfs, 1_000_000)?;
    let bypass = lts.find_state(|s| {
        s.is_false_marked(model.output) && model.comp_regs.iter().all(|&r| !s.is_marked(r))
    });
    println!("bypass behaviour reachable: {}", bypass.is_some());

    // 5. Throughput under different predicate hit-rates.
    for (label, policy) in [
        ("always compute", ChoicePolicy::AlwaysTrue),
        ("always bypass ", ChoicePolicy::AlwaysFalse),
        (
            "50/50         ",
            ChoicePolicy::Bernoulli {
                p_true: 0.5,
                seed: 7,
            },
        ),
    ] {
        let thr = measure_throughput(&model.dfs, model.output, 10, 100, policy)?;
        println!("throughput ({label}): {thr:.4} tokens/time-unit");
    }
    Ok(())
}
