//! Abstract syntax of Reach predicates.

use std::fmt;

/// Which net component set a quantifier ranges over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetKind {
    /// `places("glob")`
    Places,
    /// `transitions("glob")`
    Transitions,
}

/// The argument of `marked(..)` / `enabled(..)`: a literal name or a
/// quantifier-bound variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameRef {
    /// A double-quoted literal name.
    Literal(String),
    /// A bare identifier bound by an enclosing `forall`/`exists`.
    Var(String),
}

/// Expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Boolean constant.
    Const(bool),
    /// `marked(name)` — the named place carries a token.
    Marked(NameRef),
    /// `enabled(name)` — the named transition is enabled.
    Enabled(NameRef),
    /// `!e`
    Not(Box<Expr>),
    /// `a & b`
    And(Box<Expr>, Box<Expr>),
    /// `a | b`
    Or(Box<Expr>, Box<Expr>),
    /// `a ^ b`
    Xor(Box<Expr>, Box<Expr>),
    /// `a -> b`
    Imp(Box<Expr>, Box<Expr>),
    /// `a <-> b`
    Iff(Box<Expr>, Box<Expr>),
    /// `forall v in set("glob"): body`
    Forall {
        /// Bound variable name.
        var: String,
        /// Set the variable ranges over.
        set: SetKind,
        /// Glob pattern selecting the set members.
        pattern: String,
        /// Quantified body.
        body: Box<Expr>,
    },
    /// `exists v in set("glob"): body`
    Exists {
        /// Bound variable name.
        var: String,
        /// Set the variable ranges over.
        set: SetKind,
        /// Glob pattern selecting the set members.
        pattern: String,
        /// Quantified body.
        body: Box<Expr>,
    },
}

impl fmt::Display for NameRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameRef::Literal(s) => write!(f, "\"{s}\""),
            NameRef::Var(v) => write!(f, "{v}"),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(b) => write!(f, "{b}"),
            Expr::Marked(n) => write!(f, "marked({n})"),
            Expr::Enabled(n) => write!(f, "enabled({n})"),
            Expr::Not(e) => write!(f, "!{e}"),
            Expr::And(a, b) => write!(f, "({a} & {b})"),
            Expr::Or(a, b) => write!(f, "({a} | {b})"),
            Expr::Xor(a, b) => write!(f, "({a} ^ {b})"),
            Expr::Imp(a, b) => write!(f, "({a} -> {b})"),
            Expr::Iff(a, b) => write!(f, "({a} <-> {b})"),
            Expr::Forall {
                var,
                set,
                pattern,
                body,
            } => write!(
                f,
                "forall {var} in {}(\"{pattern}\"): {body}",
                set_name(*set)
            ),
            Expr::Exists {
                var,
                set,
                pattern,
                body,
            } => write!(
                f,
                "exists {var} in {}(\"{pattern}\"): {body}",
                set_name(*set)
            ),
        }
    }
}

fn set_name(k: SetKind) -> &'static str {
    match k {
        SetKind::Places => "places",
        SetKind::Transitions => "transitions",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrips_through_parser() {
        let e = Expr::And(
            Box::new(Expr::Marked(NameRef::Literal("a".into()))),
            Box::new(Expr::Not(Box::new(Expr::Enabled(NameRef::Literal(
                "t".into(),
            ))))),
        );
        assert_eq!(e.to_string(), "(marked(\"a\") & !enabled(\"t\"))");
    }
}
