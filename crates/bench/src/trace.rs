//! The `rap/trace/v1` exporter and validator for `--trace-out`.
//!
//! Every experiment binary accepts `--trace-out PATH`: it attaches a live
//! [`rap_obs::Collector`] to the run and, on exit, renders the collector's
//! [`Snapshot`] as a small schema-stable JSON document. The document is an
//! offline artifact in the same spirit as `BENCH_*.json` — reusing this
//! crate's [`json`](crate::json) emitter/parser — so traces can be
//! archived, diffed and validated without any external tooling.
//!
//! # Document shape (`rap/trace/v1`)
//!
//! ```json
//! {
//!   "schema": "rap/trace/v1",
//!   "wall_ns": 1234567,
//!   "coverage": 0.97,
//!   "spans": [
//!     {"id": 0, "name": "root", "parent": null, "count": 0,
//!      "total_ns": 1234567, "self_ns": 0},
//!     {"id": 1, "name": "dse.sweep", "parent": 0, "count": 3,
//!      "total_ns": 1200000, "self_ns": 400000}
//!   ],
//!   "counters": {"dse.eval.full": 12},
//!   "gauges": {"engine.frontier.peak": 96.0},
//!   "histograms": [
//!     {"name": "store.read_ns", "count": 4, "total_ns": 80000,
//!      "buckets": [{"pow2": 15, "count": 4}]}
//!   ],
//!   "events": [{"kind": "dse.full", "label": "static/d4", "value": "0x00baf00d"}],
//!   "dropped_events": 0,
//!   "summary": {"top_self": [{"name": "session.compute", "self_ns": 700000}]}
//! }
//! ```
//!
//! Spans are the *aggregated* tree of [`rap_obs`]: one node per
//! (parent, name) pair with entry counts and total/self nanoseconds —
//! bounded in size and directly chartable, rather than an unbounded event
//! log. `parent` is an index into the same array (`null` only for the
//! root at index 0), and parents always precede children, so a single
//! forward pass can rebuild the tree. Event `value`s are rendered as hex
//! strings because they carry full 64-bit payloads (structural hashes)
//! that a float-typed JSON number would corrupt.
//!
//! [`validate`] checks all of this plus the headline acceptance property:
//! when the root has children at all (i.e. the binary actually recorded
//! spans), they must account for **at least 90%** of the collector's
//! wall-clock — a trace that cannot say where the time went is rejected
//! rather than silently archived. A small absolute slack
//! ([`COVERAGE_SLACK_NS`]) keeps the floor about untraced *work*: a
//! near-instant run whose only uncovered time is the fixed
//! collector-setup/teardown overhead still passes.

use crate::cli::BenchCli;
use crate::json::{escape, Json};
use rap_obs::{Collector, Obs, Snapshot};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

/// The schema tag of the emitted document.
pub const SCHEMA: &str = "rap/trace/v1";

/// Minimum fraction of wall-clock the root's children must account for
/// (only enforced when the root has children; see [`validate`]).
pub const MIN_COVERAGE: f64 = 0.9;

/// Absolute uncovered-time slack for the coverage floor: a trace whose
/// uncovered wall-clock — `wall_ns × (1 − coverage)` — is below this is
/// accepted even under [`MIN_COVERAGE`]. The floor exists to reject
/// traces that cannot account for real *work*; on a run measured in
/// microseconds the collector's own fixed setup/snapshot overhead would
/// otherwise dominate the ratio.
pub const COVERAGE_SLACK_NS: u64 = 5_000_000;

/// Renders a [`Snapshot`] as a `rap/trace/v1` JSON document.
#[must_use]
pub fn render(snap: &Snapshot) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": {},", escape(SCHEMA));
    let _ = writeln!(s, "  \"wall_ns\": {},", snap.wall_ns);
    let _ = writeln!(s, "  \"coverage\": {:.6},", snap.coverage());

    s.push_str("  \"spans\": [\n");
    for (i, node) in snap.spans.iter().enumerate() {
        let parent = node
            .parent
            .map_or_else(|| "null".to_string(), |p| p.to_string());
        let _ = write!(
            s,
            "    {{\"id\": {i}, \"name\": {}, \"parent\": {parent}, \"count\": {}, \"total_ns\": {}, \"self_ns\": {}}}",
            escape(node.name),
            node.count,
            node.total_ns,
            snap.self_ns(i)
        );
        s.push_str(if i + 1 < snap.spans.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  ],\n");

    s.push_str("  \"counters\": {");
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\n    {}: {value}", escape(name));
    }
    s.push_str(if snap.counters.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });

    s.push_str("  \"gauges\": {");
    for (i, (name, value)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\n    {}: {value:.6}", escape(name));
    }
    s.push_str(if snap.gauges.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });

    s.push_str("  \"histograms\": [");
    for (i, h) in snap.hists.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let buckets: Vec<String> = h
            .buckets
            .iter()
            .map(|&(pow2, count)| format!("{{\"pow2\": {pow2}, \"count\": {count}}}"))
            .collect();
        let _ = write!(
            s,
            "\n    {{\"name\": {}, \"count\": {}, \"total_ns\": {}, \"buckets\": [{}]}}",
            escape(h.name),
            h.count,
            h.total_ns,
            buckets.join(", ")
        );
    }
    s.push_str(if snap.hists.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });

    s.push_str("  \"events\": [");
    for (i, e) in snap.events.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\n    {{\"kind\": {}, \"label\": {}, \"value\": \"{:#018x}\"}}",
            escape(e.kind),
            escape(&e.label),
            e.value
        );
    }
    s.push_str(if snap.events.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });

    let _ = writeln!(s, "  \"dropped_events\": {},", snap.dropped_events);

    s.push_str("  \"summary\": {\"top_self\": [");
    for (i, (name, self_ns)) in snap.top_self(5).iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{{\"name\": {}, \"self_ns\": {self_ns}}}", escape(name));
    }
    s.push_str("]}\n}\n");
    s
}

/// The `trace_summary` member embedded into `BENCH_*.json` documents when
/// a run was traced: wall-clock, coverage and the top-5 spans by
/// self-time. `indent` prefixes every emitted line (the caller controls
/// nesting depth).
#[must_use]
pub fn summary_block(snap: &Snapshot, indent: &str) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "{indent}  \"wall_ns\": {},", snap.wall_ns);
    let _ = writeln!(s, "{indent}  \"coverage\": {:.6},", snap.coverage());
    let _ = write!(s, "{indent}  \"top_self\": [");
    for (i, (name, self_ns)) in snap.top_self(5).iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{{\"name\": {}, \"self_ns\": {self_ns}}}", escape(name));
    }
    s.push_str("]\n");
    let _ = write!(s, "{indent}}}");
    s
}

fn req<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, String> {
    doc.get(key).ok_or_else(|| format!("missing `{key}`"))
}

fn req_u64(doc: &Json, key: &str) -> Result<u64, String> {
    let x = req(doc, key)?
        .as_f64()
        .ok_or_else(|| format!("`{key}` is not a number"))?;
    if x < 0.0 || x.fract() != 0.0 {
        return Err(format!("`{key}` is not a non-negative integer"));
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    Ok(x as u64)
}

/// Validates `src` as a `rap/trace/v1` document.
///
/// Structural checks: the schema tag, a well-formed span array (ids equal
/// indices, the root at index 0 with `parent: null`, every other parent a
/// smaller index), number-valued counters/gauges, histograms whose bucket
/// counts sum to the histogram count, hex-string event values, and a
/// `summary.top_self` of at most five entries. Semantic check: when the
/// root has children, `coverage` must be at least [`MIN_COVERAGE`] —
/// unless the uncovered wall-clock is under [`COVERAGE_SLACK_NS`], which
/// exempts near-instant runs whose only unaccounted time is the
/// collector's own fixed overhead.
///
/// # Errors
///
/// A human-readable message naming the first violated rule.
pub fn validate(src: &str) -> Result<(), String> {
    let doc = Json::parse(src)?;
    if req(&doc, "schema")?.as_str() != Some(SCHEMA) {
        return Err(format!("`schema` is not {SCHEMA:?}"));
    }
    let wall_ns = req_u64(&doc, "wall_ns")?;
    if wall_ns == 0 {
        return Err("`wall_ns` is zero".to_string());
    }
    let coverage = req(&doc, "coverage")?
        .as_f64()
        .ok_or("`coverage` is not a number")?;
    if !(0.0..=1.0).contains(&coverage) {
        return Err(format!("`coverage` {coverage} outside [0, 1]"));
    }

    let spans = req(&doc, "spans")?
        .as_arr()
        .ok_or("`spans` is not an array")?;
    if spans.is_empty() {
        return Err("`spans` is empty (no root)".to_string());
    }
    let mut root_has_children = false;
    for (i, span) in spans.iter().enumerate() {
        let id = req_u64(span, "id")?;
        if id != i as u64 {
            return Err(format!("span {i} has id {id} (ids must equal indices)"));
        }
        let name = req(span, "name")?
            .as_str()
            .ok_or_else(|| format!("span {i} name is not a string"))?;
        if name.is_empty() {
            return Err(format!("span {i} has an empty name"));
        }
        req_u64(span, "count")?;
        req_u64(span, "total_ns")?;
        req_u64(span, "self_ns")?;
        match (i, req(span, "parent")?) {
            (0, Json::Null) => {}
            (0, _) => return Err("root span parent is not null".to_string()),
            (_, Json::Null) => return Err(format!("span {i} has a null parent")),
            (_, p) => {
                let parent = p
                    .as_f64()
                    .ok_or_else(|| format!("span {i} parent is not a number"))?;
                #[allow(clippy::cast_precision_loss)]
                if !(0.0..i as f64).contains(&parent) || parent.fract() != 0.0 {
                    return Err(format!(
                        "span {i} parent {parent} is not an earlier span index"
                    ));
                }
                if parent == 0.0 {
                    root_has_children = true;
                }
            }
        }
    }
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    let uncovered_ns = (wall_ns as f64 * (1.0 - coverage)) as u64;
    if root_has_children && coverage < MIN_COVERAGE && uncovered_ns > COVERAGE_SLACK_NS {
        return Err(format!(
            "coverage {coverage:.3} below the {MIN_COVERAGE} floor with {uncovered_ns} ns \
             unaccounted: the span tree cannot account for the run's wall-clock"
        ));
    }

    match req(&doc, "counters")? {
        Json::Obj(m) => {
            for (name, v) in m {
                let x = v
                    .as_f64()
                    .ok_or(format!("counter `{name}` is not a number"))?;
                if x < 0.0 || x.fract() != 0.0 {
                    return Err(format!("counter `{name}` is not a non-negative integer"));
                }
            }
        }
        _ => return Err("`counters` is not an object".to_string()),
    }
    match req(&doc, "gauges")? {
        Json::Obj(m) => {
            for (name, v) in m {
                v.as_f64()
                    .ok_or(format!("gauge `{name}` is not a number"))?;
            }
        }
        _ => return Err("`gauges` is not an object".to_string()),
    }

    for h in req(&doc, "histograms")?
        .as_arr()
        .ok_or("`histograms` is not an array")?
    {
        let name = req(h, "name")?
            .as_str()
            .ok_or("histogram name not a string")?;
        let count = req_u64(h, "count")?;
        req_u64(h, "total_ns")?;
        let mut bucket_sum = 0u64;
        for b in req(h, "buckets")?
            .as_arr()
            .ok_or_else(|| format!("histogram `{name}` buckets is not an array"))?
        {
            let pow2 = req_u64(b, "pow2")?;
            if pow2 > 64 {
                return Err(format!("histogram `{name}` bucket pow2 {pow2} > 64"));
            }
            bucket_sum += req_u64(b, "count")?;
        }
        if bucket_sum != count {
            return Err(format!(
                "histogram `{name}` buckets sum to {bucket_sum}, count says {count}"
            ));
        }
    }

    for (i, e) in req(&doc, "events")?
        .as_arr()
        .ok_or("`events` is not an array")?
        .iter()
        .enumerate()
    {
        req(e, "kind")?
            .as_str()
            .ok_or_else(|| format!("event {i} kind is not a string"))?;
        req(e, "label")?
            .as_str()
            .ok_or_else(|| format!("event {i} label is not a string"))?;
        let value = req(e, "value")?
            .as_str()
            .ok_or_else(|| format!("event {i} value is not a string"))?;
        let hex = value
            .strip_prefix("0x")
            .ok_or_else(|| format!("event {i} value {value:?} lacks the 0x prefix"))?;
        if hex.is_empty() || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(format!("event {i} value {value:?} is not a hex literal"));
        }
    }
    req_u64(&doc, "dropped_events")?;

    let top = req(req(&doc, "summary")?, "top_self")?
        .as_arr()
        .ok_or("`summary.top_self` is not an array")?;
    if top.len() > 5 {
        return Err(format!(
            "`summary.top_self` has {} entries (max 5)",
            top.len()
        ));
    }
    for (i, row) in top.iter().enumerate() {
        req(row, "name")?
            .as_str()
            .ok_or_else(|| format!("top_self {i} name is not a string"))?;
        req_u64(row, "self_ns")?;
    }
    Ok(())
}

/// A binary's `--trace-out` plumbing: a live [`Collector`] when the flag
/// was given, nothing (and zero recording overhead) otherwise.
#[derive(Debug, Default)]
pub struct TraceSink {
    collector: Option<Arc<Collector>>,
    path: Option<PathBuf>,
}

impl TraceSink {
    /// Builds the sink from the parsed CLI: live iff `--trace-out` was
    /// passed. Construct this *before* the timed work so the collector's
    /// wall-clock covers the whole run.
    #[must_use]
    pub fn from_cli(cli: &BenchCli) -> TraceSink {
        match &cli.trace_out {
            Some(path) => TraceSink {
                collector: Some(Arc::new(Collector::new())),
                path: Some(path.clone()),
            },
            None => TraceSink::default(),
        }
    }

    /// The recorder handle to thread into the run ([`Obs::none`] when not
    /// tracing — every downstream `span`/`add` is then a no-op).
    #[must_use]
    pub fn obs(&self) -> Obs {
        self.collector
            .as_ref()
            .map_or_else(Obs::none, Obs::collecting)
    }

    /// Whether a collector is attached.
    #[must_use]
    pub fn is_live(&self) -> bool {
        self.collector.is_some()
    }

    /// A point-in-time snapshot, when live. Take it only after the spans
    /// of interest have closed — open spans are not in the aggregate.
    #[must_use]
    pub fn snapshot(&self) -> Option<Snapshot> {
        self.collector.as_ref().map(|c| c.snapshot())
    }

    /// Snapshots, renders, **self-validates** and writes the trace, then
    /// prints where it went. Returns the snapshot so callers can also
    /// embed a [`summary_block`] into their `BENCH_*.json`. No-op
    /// (returning `None`) when not tracing.
    ///
    /// # Panics
    ///
    /// When the rendered document fails its own schema validation (an
    /// emitter bug, never a user error) or the file cannot be written.
    pub fn finish(&self) -> Option<Snapshot> {
        let snap = self.snapshot()?;
        let path = self.path.as_ref().expect("trace path");
        let doc = render(&snap);
        if let Err(err) = validate(&doc) {
            panic!("emitted trace failed self-validation: {err}");
        }
        std::fs::write(path, &doc)
            .unwrap_or_else(|err| panic!("writing trace to {}: {err}", path.display()));
        println!(
            "\ntrace: wrote {} ({} spans, coverage {:.1}%)",
            path.display(),
            snap.spans.len(),
            snap.coverage() * 100.0
        );
        Some(snap)
    }
}

/// Runs `body` under a single `bench.main` span, honouring the CLI's
/// `--trace-out`. Most experiment binaries are one phase end to end, so
/// this is their entire tracing story: the span accounts for the whole
/// run (keeping [`validate`]'s coverage floor trivially satisfied), any
/// spans the body emits through the passed [`Obs`] nest inside it, and
/// the trace is rendered, self-validated and written after `body`
/// returns. Without `--trace-out` the `Obs` handle is detached and every
/// recording call in the body compiles to a no-op.
pub fn with_trace(cli: &BenchCli, body: impl FnOnce(&Obs)) {
    let sink = TraceSink::from_cli(cli);
    {
        let main_span = sink.obs().span("bench.main");
        body(&main_span.obs());
    }
    sink.finish();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collected() -> Snapshot {
        let collector = Arc::new(Collector::new());
        let obs = Obs::collecting(&collector);
        {
            let outer = obs.span("bench.main");
            let inner = outer.obs();
            inner.time("session.compute", |o| {
                o.add("session.petri.compute", 1);
                std::thread::sleep(std::time::Duration::from_millis(2));
            });
            inner.observe_ns("store.read_ns", 4096);
            inner.note("dse.full", "static/d4", 0xbaf0_0d11);
            inner.gauge("engine.frontier.peak", 96.0);
        }
        collector.snapshot()
    }

    #[test]
    fn rendered_trace_validates() {
        let snap = collected();
        let doc = render(&snap);
        validate(&doc).unwrap();
        // and the parse agrees with the snapshot on the headline numbers
        let parsed = Json::parse(&doc).unwrap();
        assert_eq!(parsed.get("schema").unwrap().as_str(), Some(SCHEMA));
        assert_eq!(
            parsed.get("spans").unwrap().as_arr().unwrap().len(),
            snap.spans.len()
        );
        let cov = parsed.get("coverage").unwrap().as_f64().unwrap();
        assert!((cov - snap.coverage()).abs() < 1e-5);
    }

    #[test]
    fn validator_rejects_broken_documents() {
        let snap = collected();
        let good = render(&snap);
        // wrong schema tag
        let bad = good.replace("rap/trace/v1", "rap/trace/v0");
        assert!(validate(&bad).unwrap_err().contains("schema"));
        // root span must exist
        assert!(validate(
            r#"{"schema": "rap/trace/v1", "wall_ns": 1, "coverage": 0.0, "spans": []}"#
        )
        .unwrap_err()
        .contains("root"));
        // low coverage with a populated tree is rejected — once the
        // unaccounted time exceeds the absolute slack (inflate wall_ns so
        // the 90% miss is real work, not fixed collector overhead)
        let lazy = good
            .replace(
                &format!("\"coverage\": {:.6}", snap.coverage()),
                "\"coverage\": 0.100000",
            )
            .replace(
                &format!("\"wall_ns\": {}", snap.wall_ns),
                "\"wall_ns\": 1000000000",
            );
        assert!(validate(&lazy).unwrap_err().contains("coverage"));
        // ...while the same miss on a near-instant run is within slack
        let tiny = good.replace(
            &format!("\"coverage\": {:.6}", snap.coverage()),
            "\"coverage\": 0.100000",
        );
        assert!(snap.wall_ns < COVERAGE_SLACK_NS, "fixture ran too long");
        validate(&tiny).expect("slack exempts near-instant runs");
        // event values must stay 64-bit-exact hex strings
        let bad = good.replace("\"0x00000000baf00d11\"", "12345");
        assert!(validate(&bad).unwrap_err().contains("value"));
    }

    #[test]
    fn summary_block_is_embeddable() {
        let snap = collected();
        let block = summary_block(&snap, "  ");
        let wrapped = format!("{{\"trace_summary\": {block}}}");
        let parsed = Json::parse(&wrapped).unwrap();
        let summary = parsed.get("trace_summary").unwrap();
        assert!(summary.get("wall_ns").unwrap().as_f64().unwrap() >= 1.0);
        let top = summary.get("top_self").unwrap().as_arr().unwrap();
        assert!(!top.is_empty() && top.len() <= 5);
    }
}
