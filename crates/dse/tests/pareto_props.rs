//! Property tests for the Pareto kernel (the satellite contract of the
//! `rap-dse` PR):
//!
//! * the fast front is **exactly** the set of non-dominated points —
//!   cross-checked against the O(n²) naive filter;
//! * the front is **deterministic and order-independent**: any permutation
//!   of the evaluation schedule yields the same sorted front;
//! * soundness invariants: no front member dominates another, and every
//!   excluded point is dominated by some front member.

use proptest::prelude::*;
use rap_dse::pareto::{naive_front_indices, pareto_front_indices, Objectives};

fn arb_point() -> impl Strategy<Value = Objectives> {
    // a small discrete grid provokes plenty of exact ties and duplicates —
    // the cases where front kernels usually go wrong
    (0u8..6, 0u8..6, 0u8..6).prop_map(|(t, e, a)| Objectives {
        throughput: f64::from(t) * 0.5,
        energy_per_item: f64::from(e) * 0.25,
        area: f64::from(a) * 2.0,
    })
}

fn arb_points() -> impl Strategy<Value = Vec<Objectives>> {
    proptest::collection::vec(arb_point(), 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn front_equals_naive_filter(points in arb_points()) {
        let fast = pareto_front_indices(&points, |p| *p);
        let naive = naive_front_indices(&points, |p| *p);
        prop_assert_eq!(fast, naive);
    }

    #[test]
    fn front_is_order_independent(points in arb_points(), seed in any::<u64>()) {
        // a cheap deterministic shuffle of the evaluation order
        let mut order: Vec<usize> = (0..points.len()).collect();
        let mut s = seed | 1;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        let shuffled: Vec<Objectives> = order.iter().map(|&i| points[i]).collect();
        let of = |f: Vec<usize>, pts: &[Objectives]| -> Vec<Objectives> {
            f.into_iter().map(|i| pts[i]).collect()
        };
        let a = of(pareto_front_indices(&points, |p| *p), &points);
        let b = of(pareto_front_indices(&shuffled, |p| *p), &shuffled);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn front_members_are_mutually_non_dominated_and_cover(points in arb_points()) {
        let front = pareto_front_indices(&points, |p| *p);
        for &i in &front {
            for &j in &front {
                prop_assert!(!points[i].dominates(&points[j]),
                    "front member {i} dominates front member {j}");
            }
        }
        // every excluded point is dominated by some front member
        for (i, p) in points.iter().enumerate() {
            if !front.contains(&i) {
                prop_assert!(
                    front.iter().any(|&k| points[k].dominates(p)),
                    "excluded point {i} is not dominated"
                );
            }
        }
    }
}
