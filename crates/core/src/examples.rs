//! The paper's motivating example (Fig. 1): conditional application of an
//! expensive pipelined function `comp`.
//!
//! * [`conditional_sdfs`] — Fig. 1a: the static (SDFS) version must run
//!   `comp` on *every* token and filter afterwards, paying worst-case
//!   latency and energy.
//! * [`conditional_dfs`] — Fig. 1b: the DFS version evaluates the cheap
//!   predicate `cond` into a control register that guards a push (`filt`)
//!   and a pop (`out`): `False` tokens bypass `comp` entirely.
//!
//! The `fig1_motivating` experiment binary quantifies the difference as a
//! function of the predicate hit-rate.

use crate::builder::DfsBuilder;
use crate::graph::Dfs;
use crate::node::NodeId;
use crate::DfsError;

/// Handles into the conditional-computation models.
#[derive(Debug, Clone)]
pub struct Conditional {
    /// The model.
    pub dfs: Dfs,
    /// Input register.
    pub input: NodeId,
    /// Output register (the pop `out` in the DFS version).
    pub output: NodeId,
    /// The control register (DFS version only).
    pub ctrl: Option<NodeId>,
    /// Registers of the `comp` pipeline, in order.
    pub comp_regs: Vec<NodeId>,
}

/// Builds the Fig. 1a SDFS model: `cond` and `comp` both always execute;
/// `filt` merges them and the result is filtered at the output.
///
/// `comp_depth` is the number of pipeline stages inside `comp`
/// (the paper draws `comp` as a shaded register for simplicity).
///
/// # Errors
///
/// Propagates builder validation errors.
pub fn conditional_sdfs(comp_depth: usize, comp_delay: f64) -> Result<Conditional, DfsError> {
    let mut b = DfsBuilder::new();
    let input = b.register("in").marked().build();
    let cond = b.logic("cond").delay(1.0).build();
    let cond_reg = b.register("cond_reg").build();
    b.connect(input, cond);
    b.connect(cond, cond_reg);

    let mut prev = input;
    let mut comp_regs = Vec::new();
    for i in 1..=comp_depth.max(1) {
        let f = b.logic(format!("comp_f{i}")).delay(comp_delay).build();
        let r = b.register(format!("comp_r{i}")).build();
        b.connect(prev, f);
        b.connect(f, r);
        comp_regs.push(r);
        prev = r;
    }

    // filt merges the predicate and the computed value; out follows
    let filt = b.logic("filt").delay(1.0).build();
    let out = b.register("out").build();
    b.connect(prev, filt);
    b.connect(cond_reg, filt);
    b.connect(filt, out);
    // environment recycles
    b.connect(out, input);

    let dfs = b.finish()?;
    Ok(Conditional {
        input,
        output: out,
        ctrl: None,
        comp_regs,
        dfs,
    })
}

/// Builds the Fig. 1b DFS model: `cond` fills the control register `ctrl`,
/// which guards the push `filt` (entry of `comp`) and the pop `out`
/// (its exit).
///
/// # Errors
///
/// Propagates builder validation errors.
pub fn conditional_dfs(comp_depth: usize, comp_delay: f64) -> Result<Conditional, DfsError> {
    let mut b = DfsBuilder::new();
    let input = b.register("in").marked().build();
    let cond = b.logic("cond").delay(1.0).build();
    let ctrl = b.control("ctrl").build();
    b.connect(input, cond);
    b.connect(cond, ctrl);

    let filt = b.push("filt").build();
    b.connect(input, filt);
    b.connect(ctrl, filt);

    let mut prev: NodeId = filt;
    let mut comp_regs = Vec::new();
    for i in 1..=comp_depth.max(1) {
        let f = b.logic(format!("comp_f{i}")).delay(comp_delay).build();
        let r = b.register(format!("comp_r{i}")).build();
        b.connect(prev, f);
        b.connect(f, r);
        comp_regs.push(r);
        prev = r;
    }

    let out = b.pop("out").build();
    b.connect(prev, out);
    b.connect(ctrl, out);
    // environment recycles
    b.connect(out, input);

    let dfs = b.finish()?;
    Ok(Conditional {
        input,
        output: out,
        ctrl: Some(ctrl),
        comp_regs,
        dfs,
    })
}

/// Builds the Fig. 1b model with a **control FIFO**: instead of a single
/// `ctrl` register spanning the whole `comp` latency, a chain of
/// `comp_depth + 1` control registers carries each token's predicate value
/// alongside its data. The entry push is guarded by the head of the FIFO
/// and the exit pop by its tail, so several tokens (with independent
/// predicate values) are in flight simultaneously — removing the
/// serialisation that the single-register version exhibits at high
/// hit-rates (see the `fig1_motivating` experiment).
///
/// # Errors
///
/// Propagates builder validation errors.
pub fn conditional_dfs_buffered(
    comp_depth: usize,
    comp_delay: f64,
) -> Result<Conditional, DfsError> {
    let mut b = DfsBuilder::new();
    let input = b.register("in").marked().build();
    let cond = b.logic("cond").delay(1.0).build();
    b.connect(input, cond);

    // control FIFO: cond -> ctrl1 -> ... -> ctrlK (values copy forward)
    let k = comp_depth.max(1) + 1;
    let ctrls: Vec<NodeId> = (1..=k)
        .map(|i| b.control(format!("ctrl{i}")).delay(0.5).build())
        .collect();
    b.connect(cond, ctrls[0]);
    for w in ctrls.windows(2) {
        b.connect(w[0], w[1]);
    }

    let filt = b.push("filt").build();
    b.connect(input, filt);
    b.connect(ctrls[0], filt);

    let mut prev: NodeId = filt;
    let mut comp_regs = Vec::new();
    for i in 1..=comp_depth.max(1) {
        let f = b.logic(format!("comp_f{i}")).delay(comp_delay).build();
        let r = b.register(format!("comp_r{i}")).build();
        b.connect(prev, f);
        b.connect(f, r);
        comp_regs.push(r);
        prev = r;
    }

    let out = b.pop("out").build();
    b.connect(prev, out);
    b.connect(ctrls[k - 1], out);
    b.connect(out, input);

    let dfs = b.finish()?;
    Ok(Conditional {
        input,
        output: out,
        ctrl: Some(ctrls[0]),
        comp_regs,
        dfs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lts::Lts;
    use crate::verify::{verify, VerifyConfig};

    #[test]
    fn both_models_are_deadlock_free() {
        for build in [conditional_sdfs, conditional_dfs] {
            let model = build(2, 3.0).unwrap();
            let report = verify(&model.dfs, &VerifyConfig::default()).unwrap();
            assert!(
                report.deadlocks.is_empty(),
                "{:?}",
                report.deadlocks.first().map(|d| &d.trace)
            );
            assert!(report.control_mismatch.is_none());
        }
    }

    #[test]
    fn dfs_version_can_bypass_comp() {
        let model = conditional_dfs(2, 3.0).unwrap();
        let lts = Lts::explore(&model.dfs, 500_000).unwrap();
        let out = model.output;
        let comp_first = model.comp_regs[0];
        // a state where the output token exists while comp never computed:
        // out false-marked, comp registers all empty
        let bypass = lts.find_state(|s| {
            s.is_false_marked(out) && model.comp_regs.iter().all(|&r| !s.is_marked(r))
        });
        assert!(bypass.is_some(), "bypass behaviour must be reachable");
        // and the through path also exists
        let through = lts.find_state(|s| s.is_marked(comp_first));
        assert!(through.is_some());
    }

    #[test]
    fn buffered_variant_verifies_and_pipelines() {
        use crate::timed::{measure_throughput, ChoicePolicy};
        let buffered = conditional_dfs_buffered(2, 4.0).unwrap();
        let report = verify(&buffered.dfs, &VerifyConfig::default()).unwrap();
        assert!(
            report.deadlocks.is_empty(),
            "{:?}",
            report.deadlocks.first().map(|d| &d.trace)
        );
        assert!(report.control_mismatch.is_none());
        // at hit-rate 1 the FIFO keeps comp pipelined: faster than the
        // single-control version
        let single = conditional_dfs(2, 4.0).unwrap();
        let t_single =
            measure_throughput(&single.dfs, single.output, 10, 60, ChoicePolicy::AlwaysTrue)
                .unwrap();
        let t_buffered = measure_throughput(
            &buffered.dfs,
            buffered.output,
            10,
            60,
            ChoicePolicy::AlwaysTrue,
        )
        .unwrap();
        assert!(
            t_buffered > t_single * 1.2,
            "control FIFO must restore pipelining: {t_single} -> {t_buffered}"
        );
        // and bypass still works
        let t_bypass = measure_throughput(
            &buffered.dfs,
            buffered.output,
            10,
            60,
            ChoicePolicy::AlwaysFalse,
        )
        .unwrap();
        assert!(t_bypass > 0.0);
    }

    #[test]
    fn sdfs_version_always_computes() {
        let model = conditional_sdfs(2, 3.0).unwrap();
        let lts = Lts::explore(&model.dfs, 500_000).unwrap();
        // the SDFS output can never mark without comp's last register having
        // been involved: out's mark requires filt evaluated, which requires
        // the comp result — structurally guaranteed; spot-check that comp
        // registers do mark somewhere
        let computed = lts.find_state(|s| model.comp_regs.iter().all(|&r| s.is_marked(r)));
        assert!(computed.is_some() || model.comp_regs.len() == 1);
    }
}
