//! FIG3/FIG4 — Petri-net semantics of DFS nodes and of the Fig. 1b model.
//!
//! Prints the structural statistics of the translation of the motivating
//! example (the net the paper draws in Fig. 4), checks the properties the
//! paper calls out in prose — `Mt_ctrl+` and `Mf_ctrl+` form a
//! non-deterministic choice while `Mt_filt+`/`Mf_filt+` are determined by
//! the control value — and emits the DOT rendering.

use dfs_core::examples::conditional_dfs;
use dfs_core::to_petri;
use rap_bench::banner;
use rap_bench::cli::BenchCli;
use rap_petri::reachability::{explore, ExploreConfig};

fn main() {
    let cli = BenchCli::parse("fig4_petri_translation", None);
    rap_bench::trace::with_trace(&cli, |_obs| run(&cli));
}

fn run(cli: &BenchCli) {
    banner("Fig. 4 — Petri-net image of the Fig. 1b DFS model");
    let model = conditional_dfs(1, 3.0).unwrap();
    let img = to_petri(&model.dfs);

    println!(
        "DFS: {} nodes, {} arcs  ->  PN: {} places, {} transitions",
        model.dfs.node_count(),
        model.dfs.edge_count(),
        img.net.place_count(),
        img.net.transition_count()
    );

    let m0 = img.net.initial_marking();
    println!("\ninitially marked places:");
    for p in m0.iter_marked() {
        println!("  {}", img.net.place(p).name);
    }

    // the paper's observation about the choice structure
    let space = explore(&img.net, ExploreConfig::default()).unwrap();
    let mt = img.net.transition_by_name("Mt_ctrl+").unwrap();
    let mf = img.net.transition_by_name("Mf_ctrl+").unwrap();
    // word-level enabledness probes: one reused buffer, no per-state
    // Marking materialisation
    let inc = rap_petri::engine::Incidence::from_net(&img.net);
    let mut w = vec![0u64; space.word_count()];
    let both = space.states().find(|&s| {
        space.fill_marking_words(s, &mut w);
        inc.is_enabled(mt, &w) && inc.is_enabled(mf, &w)
    });
    println!(
        "\nMt_ctrl+ and Mf_ctrl+ simultaneously enabled in some reachable state: {}",
        both.is_some()
    );
    let ft = img.net.transition_by_name("Mt_filt+").unwrap();
    let ff = img.net.transition_by_name("Mf_filt+").unwrap();
    let filt_conflict = space.states().find(|&s| {
        space.fill_marking_words(s, &mut w);
        inc.is_enabled(ft, &w) && inc.is_enabled(ff, &w)
    });
    println!(
        "Mt_filt+ and Mf_filt+ ever in conflict (must be false — the control\n\
         value determines the choice): {}",
        filt_conflict.is_some()
    );
    println!("\nreachable markings: {}", space.len());

    if cli.quick {
        println!("\n--- DOT (skipped under --quick) ---");
    } else {
        println!("\n--- DOT ---");
        println!("{}", rap_petri::dot::to_dot(&img.net));
    }
}
