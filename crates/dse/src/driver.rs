//! The parallel sweep driver: a work-stealing evaluation pool with
//! sharded result collection, session-backed memoization and admissible
//! pruning.
//!
//! * **Work stealing** — tasks (configurations) are dealt round-robin into
//!   per-worker deques ([`rap_pool::StealQueues`], extracted from this
//!   driver so the parallel state-space engine shares it); a worker pops
//!   its own deque from the front and, when empty, steals from the back of
//!   the others. No global queue lock on the hot path, and stragglers (the
//!   big wagged models) end up shared.
//! * **Sharded collection** — each worker appends to its own result
//!   vector; vectors are concatenated after the pool joins, then sorted
//!   canonically, so the output is deterministic regardless of schedule.
//! * **Memoization** — every configuration is compiled into a shared
//!   [`rap_session::Session`], which interns models by identity
//!   (structural hash + byte-exact digest). Configurations that differ
//!   only in supply voltage — or in demanded depth, for hardware that
//!   cannot reconfigure — build identical models and share one
//!   [`CompiledModel`], whose query slots are in-flight reservations (a
//!   `OnceLock` per artifact): concurrent twins block on the first
//!   evaluation instead of duplicating it, so each distinct structure is
//!   fully evaluated at most once per sweep regardless of thread count.
//!   (The exact full/memo/pruned *split* can still shift marginally under
//!   parallel scheduling, because pruning races the arrival of
//!   dominators; the fronts and every per-point value are
//!   schedule-invariant.) Passing an external session to
//!   [`explore_with_session`] extends the sharing across sweeps: a warm
//!   session serves every previously-analysed structure from cache.
//! * **Pruning** — before paying for a full evaluation (phase unfolding +
//!   Petri screen), a candidate's admissible optimistic bound
//!   ([`crate::eval::optimistic_bound`]) is tested against the
//!   exactly-evaluated points of its workload class; if some exact point
//!   dominates the bound, the candidate provably cannot reach the front
//!   and is skipped. The period lower bound feeding that test is the best
//!   of (a) the single-cycle bound
//!   ([`crate::eval::period_lower_bound_units`]) and (b) for
//!   reconfigurable hardware, the exact period of an already-evaluated
//!   shallower depth of the same hardware/sizing (periods are
//!   non-decreasing in depth).
//!
//! The front is invariant under all of this: pruning only ever discards
//! provably-dominated points, and memoization returns bit-identical
//! structural results, so a single-threaded sweep with pruning and
//! memoization disabled produces the same fronts (asserted in
//! `tests/driver_equivalence.rs`).

use crate::eval::{evaluate_structural, optimistic_bound, period_lower_bound_units};
use crate::pareto::{pareto_front_indices, Objectives};
use crate::space::{Config, DesignSpace, Hardware};
use dfs_core::Dfs;
use rap_obs::{CounterSnapshot, Meter, Obs};
use rap_pool::StealQueues;
use rap_session::{CompiledModel, Session};
use rap_silicon::cost::CostModel;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// Driver knobs.
#[derive(Debug, Clone, Copy)]
pub struct DseConfig {
    /// Worker threads (1 = run inline, still through the same code path).
    pub threads: usize,
    /// State budget of the per-configuration Petri screen.
    pub check_budget: usize,
    /// Serve identical configurations from the shared session's caches.
    /// When `false` every task compiles into a private throw-away session
    /// (the same code path, no sharing) — the front must not change.
    pub memoize: bool,
    /// Skip provably-dominated configurations.
    pub prune: bool,
}

impl Default for DseConfig {
    fn default() -> Self {
        DseConfig {
            threads: std::thread::available_parallelism().map_or(4, |n| n.get().min(8)),
            check_budget: 20_000,
            memoize: true,
            prune: true,
        }
    }
}

/// One evaluated configuration.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The configuration.
    pub config: Config,
    /// Its stable label ([`Config::label`]).
    pub label: String,
    /// The objective vector at the configuration's supply voltage.
    pub objectives: Objectives,
    /// Steady-state period (model time units, nominal supply).
    pub period_units: f64,
    /// Phases of the analysed schedule.
    pub phases: u32,
    /// Whether the Petri screen was truncated by its budget.
    pub check_truncated: bool,
    /// Whether the screen found a real violation (excluded from fronts).
    pub check_violated: bool,
    /// Whether this evaluation was served from the session cache (another
    /// task had already analysed the same structure).
    pub memoized: bool,
}

/// Sweep counters.
///
/// A *view* over the sweep's [`rap-obs`](rap_obs) counters (the
/// `dse.*` names in the `rap_obs` taxonomy table), materialised once
/// from a single [`Meter`] snapshot so the fields are mutually
/// coherent.
///
/// **Aliasing note:** [`memo_hits`](SweepStats::memo_hits) counts every
/// evaluation this sweep did *not* pay for itself — including those the
/// session served from **disk**, which the store layer counts again as
/// `store.read.hit` (`StoreStats::disk_hits`) and the session splits
/// out as `session.*.disk_hit`. These are deliberately
/// overlapping views of the same events; never sum them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Configurations enumerated by the space.
    pub enumerated: usize,
    /// Full structural evaluations actually performed.
    pub full_evaluations: usize,
    /// Configurations served from the memo table.
    pub memo_hits: usize,
    /// Configurations skipped by admissible pruning.
    pub pruned: usize,
    /// Configurations whose evaluation errored (structurally dead models).
    pub errors: usize,
    /// Evaluations lost to a panicking task. Panic isolation keeps the
    /// sweep alive — a panic poisons exactly one design point's result —
    /// so any non-zero value here flags an internal bug without costing
    /// the rest of the sweep.
    pub panics: usize,
    /// Full evaluations whose Petri screen was truncated (inconclusive).
    pub check_inconclusive: usize,
    /// Full evaluations whose Petri screen found a violation.
    pub check_violations: usize,
}

impl SweepStats {
    /// Materialises the view from one coherent counter snapshot.
    #[must_use]
    pub fn from_counters(c: &CounterSnapshot) -> SweepStats {
        let n = |name| c.get(name) as usize;
        SweepStats {
            enumerated: n("dse.enumerated"),
            full_evaluations: n("dse.eval.full"),
            memo_hits: n("dse.eval.memo"),
            pruned: n("dse.eval.pruned"),
            errors: n("dse.eval.error"),
            panics: n("dse.eval.panic"),
            check_inconclusive: n("dse.check.inconclusive"),
            check_violations: n("dse.check.violation"),
        }
    }
}

/// The sweep result.
#[derive(Debug, Clone)]
pub struct DseOutcome {
    /// Every non-pruned configuration's evaluation, sorted by
    /// (workload, label).
    pub evaluations: Vec<Evaluation>,
    /// Per workload demand: the exact Pareto front over the evaluated,
    /// violation-free configurations, canonically sorted.
    pub fronts: BTreeMap<usize, Vec<Evaluation>>,
    /// Counters.
    pub stats: SweepStats,
}

impl DseOutcome {
    /// The front for `workload`, empty if none.
    #[must_use]
    pub fn front(&self, workload: usize) -> &[Evaluation] {
        self.fronts.get(&workload).map_or(&[], Vec::as_slice)
    }
}

type SiblingKey = (String, u64);

struct Shared<'a> {
    space: &'a DesignSpace,
    cost: &'a CostModel,
    cfg: &'a DseConfig,
    session: &'a Session,
    tasks: Vec<Config>,
    queues: StealQueues<usize>,
    /// Exact periods of evaluated reconfigurable points, for the
    /// depth-monotonicity bound: (hardware label, sizing bits) → [(depth,
    /// period)].
    siblings: Mutex<HashMap<SiblingKey, Vec<(usize, f64)>>>,
    /// Exact, violation-free objective vectors per workload class.
    dominators: Mutex<HashMap<usize, Vec<Objectives>>>,
    /// Sweep counters, mirrored into the attached recorder (if any).
    /// Observation-only: never consulted by pruning or memoization, so a
    /// live recorder cannot perturb the fronts.
    meter: Meter,
    /// Recorder handle parented under the `dse.sweep` span; per-candidate
    /// `dse.eval` spans and provenance events hang off it.
    obs: Obs,
}

impl Shared<'_> {
    /// The best available admissible period lower bound for `config`.
    ///
    /// Note on a bound deliberately *not* used: the direct (single-phase)
    /// event-graph MCR is **not** admissible here. Its all-true
    /// abstraction under-approximates the period when a replicated column
    /// is the bottleneck, but *over*-approximates it when the shared
    /// steering environment is (every way accepting every item adds
    /// serialisation on the broadcast register) — `wagged(2×2)` direct
    /// 11.0 vs exact 10.5, pinned in `tests/driver_equivalence.rs`.
    fn period_lower_bound(&self, config: &Config, dfs: &Dfs) -> f64 {
        let mut lb = period_lower_bound_units(config, dfs);
        if let Hardware::Reconfigurable { .. } = config.hardware {
            let key = (config.hardware.label(), config.sizing.to_bits());
            if let Some(entries) = self.siblings.lock().expect("siblings").get(&key) {
                for &(depth, period) in entries {
                    // periods are non-decreasing in operating depth
                    if depth <= config.operating_depth() {
                        lb = lb.max(period);
                    }
                }
            }
        }
        lb
    }

    fn record_sibling(&self, config: &Config, period: f64) {
        if matches!(config.hardware, Hardware::Reconfigurable { .. }) {
            let key = (config.hardware.label(), config.sizing.to_bits());
            self.siblings
                .lock()
                .expect("siblings")
                .entry(key)
                .or_default()
                .push((config.operating_depth(), period));
        }
    }

    fn is_dominated(&self, workload: usize, bound: &Objectives) -> bool {
        self.dominators
            .lock()
            .expect("dominators")
            .get(&workload)
            .is_some_and(|ds| ds.iter().any(|d| d.dominates(bound)))
    }

    fn record_dominator(&self, workload: usize, objectives: Objectives) {
        self.dominators
            .lock()
            .expect("dominators")
            .entry(workload)
            .or_default()
            .push(objectives);
    }

    fn run_worker(&self, me: usize, out: &mut Vec<Evaluation>) {
        while let Some(idx) = self.queues.next(me) {
            let config = self.tasks[idx];
            // panic isolation: a panicking evaluation poisons only its own
            // result (the point is recorded in `panics` and missing from
            // the sweep), the worker and the rest of the batch continue.
            // The shared-state sections (siblings/dominators mutexes,
            // session slots) only hold locks around plain inserts, so a
            // panic inside an evaluation cannot poison them mid-update.
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.eval_task(config)))
            {
                Ok(Some(eval)) => out.push(eval),
                Ok(None) => {}
                Err(_) => {
                    self.meter.add("dse.eval.panic", 1);
                }
            }
        }
    }

    fn eval_task(&self, config: Config) -> Option<Evaluation> {
        let _eval_span = self.obs.span("dse.eval");
        {
            let dfs = match config.build() {
                Ok(dfs) => dfs,
                Err(_) => {
                    self.meter.add("dse.eval.error", 1);
                    self.obs.note("dse.error", &config.label(), 0);
                    return None;
                }
            };
            // with memoization, twins intern to one CompiledModel in the
            // shared session; without, a private throw-away session keeps
            // the code path identical but shares nothing
            let model: Arc<CompiledModel> = if self.cfg.memoize {
                self.session.compile(&dfs)
            } else {
                Session::new().compile(&dfs)
            };
            if !model.analysed() {
                // not analysed yet (though a twin may be in flight): this
                // task may still be pruned on its own merits
                if self.cfg.prune {
                    let lb = self.period_lower_bound(&config, &dfs);
                    let bound = optimistic_bound(&config, &dfs, self.cost, lb);
                    if self.is_dominated(config.workload, &bound) {
                        self.meter.add("dse.eval.pruned", 1);
                        self.obs
                            .note("dse.pruned", &config.label(), model.structural_hash());
                        return None;
                    }
                }
            }
            // whoever wins the session's in-flight reservation for the
            // throughput analysis is the task that paid for the structure:
            // exact work accounting even under concurrent twins
            let (detail, ran_here) = model.perf_detail_traced();
            if detail.is_err() {
                self.meter.add("dse.eval.error", 1);
                self.obs
                    .note("dse.error", &config.label(), model.structural_hash());
                return None;
            }
            let eval = match evaluate_structural(&model, self.cost, self.cfg.check_budget) {
                Ok(eval) => eval,
                Err(_) => {
                    self.meter.add("dse.eval.error", 1);
                    self.obs
                        .note("dse.error", &config.label(), model.structural_hash());
                    return None;
                }
            };
            if ran_here {
                self.meter.add("dse.eval.full", 1);
                self.obs
                    .note("dse.full", &config.label(), model.structural_hash());
                if eval.check_violated {
                    self.meter.add("dse.check.violation", 1);
                } else if eval.check_truncated {
                    self.meter.add("dse.check.inconclusive", 1);
                }
            } else {
                self.meter.add("dse.eval.memo", 1);
                self.obs
                    .note("dse.memo", &config.label(), model.structural_hash());
            }
            // record the sibling period on cache hits too: against a warm
            // session nothing is freshly analysed, and without this the
            // depth-monotonicity refinement of the pruning bound would be
            // lost on re-sweeps (duplicates are harmless — the bound maxes
            // over the list)
            self.record_sibling(&config, eval.period_units);
            let memoized = !ran_here;
            let objectives = eval.objectives(self.cost, config.voltage);
            if !eval.check_violated {
                self.record_dominator(config.workload, objectives);
            }
            Some(Evaluation {
                config,
                label: config.label(),
                objectives,
                period_units: eval.period_units,
                phases: eval.phases,
                check_truncated: eval.check_truncated,
                check_violated: eval.check_violated,
                memoized,
            })
        }
    }
}

/// Runs the sweep over `space` with the given cost model and driver
/// configuration, in a fresh private session.
#[must_use]
pub fn explore(space: &DesignSpace, cost: &CostModel, cfg: &DseConfig) -> DseOutcome {
    explore_with_session(space, cost, cfg, &Session::new())
}

/// [`explore`] through a caller-supplied [`Session`]: every artifact the
/// sweep derives (Petri images, phase unfoldings, verification screens,
/// cost summaries) is interned there and reused by later sweeps or other
/// queries against the same session. Re-running a sweep against a warm
/// session performs **zero** new structural analyses — only the Pareto
/// assembly and (cheap) pruning bounds are recomputed — which is what the
/// recorded `BENCH_dse.json` cold/warm split measures.
#[must_use]
pub fn explore_with_session(
    space: &DesignSpace,
    cost: &CostModel,
    cfg: &DseConfig,
    session: &Session,
) -> DseOutcome {
    explore_traced(space, cost, cfg, session, &session.recorder().clone())
}

/// [`explore_with_session`] with an explicit recorder handle: the sweep
/// opens a `dse.sweep` span under `obs`'s parent (letting callers nest
/// sweeps under their own pass spans), every candidate gets a `dse.eval`
/// span plus a provenance event (`dse.full` / `dse.memo` / `dse.pruned` /
/// `dse.error`, labelled with the configuration and its structural hash),
/// and the `dse.*` counters of [`SweepStats`] are mirrored live.
///
/// Recording is observation-only — it is never consulted by pruning,
/// memoization or scheduling — so the emitted evaluations and fronts are
/// bit-identical to an untraced run.
#[must_use]
pub fn explore_traced(
    space: &DesignSpace,
    cost: &CostModel,
    cfg: &DseConfig,
    session: &Session,
    obs: &Obs,
) -> DseOutcome {
    let sweep_span = obs.span("dse.sweep");
    let sweep_obs = sweep_span.obs();
    let tasks = space.enumerate();
    let enumerated = tasks.len();
    let threads = cfg.threads.max(1).min(tasks.len().max(1));
    let queues = StealQueues::new(threads);
    queues.deal(0..tasks.len());
    let meter = Meter::with_obs(sweep_obs.clone());
    meter.add("dse.enumerated", enumerated as u64);
    let shared = Shared {
        space,
        cost,
        cfg,
        session,
        tasks,
        queues,
        siblings: Mutex::new(HashMap::new()),
        dominators: Mutex::new(HashMap::new()),
        meter,
        obs: sweep_obs,
    };

    let mut evaluations: Vec<Evaluation> = Vec::new();
    for result in rap_pool::run_workers(threads, |me| {
        let mut out = Vec::new();
        shared.run_worker(me, &mut out);
        out
    }) {
        match result {
            Ok(out) => evaluations.extend(out),
            // per-task catch_unwind means a worker-level death can only
            // come from outside an evaluation (e.g. drop glue); its
            // completed results are lost but the sweep still reports
            Err(_) => {
                shared.meter.add("dse.eval.panic", 1);
            }
        }
    }

    evaluations.sort_by(|a, b| (a.config.workload, &a.label).cmp(&(b.config.workload, &b.label)));

    let mut fronts = BTreeMap::new();
    for &workload in shared.space.workloads.iter() {
        let class: Vec<Evaluation> = evaluations
            .iter()
            .filter(|e| e.config.workload == workload && !e.check_violated)
            .cloned()
            .collect();
        if class.is_empty() {
            continue;
        }
        let front = pareto_front_indices(&class, |e| e.objectives);
        fronts.insert(
            workload,
            front.into_iter().map(|i| class[i].clone()).collect(),
        );
    }

    let stats = SweepStats::from_counters(&shared.meter.snapshot());
    DseOutcome {
        evaluations,
        fronts,
        stats,
    }
}
