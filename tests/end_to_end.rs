//! End-to-end integration: the full paper flow — model, verify, analyse,
//! map to gates, simulate, export — across all workspace crates.

use rap::dfs::pipelines::{build_pipeline, PipelineSpec};
use rap::dfs::timed::{measure_throughput, ChoicePolicy};
use rap::dfs::verify::{verify, VerifyConfig};
use rap::dfs::{dsl, to_petri, DfsBuilder};
use rap::ope::chip::{behavioural_checksum, Chip, ChipConfig};
use rap::reach::Predicate;
use rap::silicon::map::{map_dfs, MapConfig};
use rap::silicon::sim::{SimConfig, Simulator};
use rap::silicon::verilog::to_verilog;

/// The complete §II-D flow: DSL text → model → verification → performance
/// analysis → gate-level netlist → simulation → Verilog.
#[test]
fn full_design_flow_from_dsl_to_verilog() {
    let src = r#"
# a 3-register ring with a computation stage
register r0 marked delay=1
logic    f  delay=2
register r1
register r2
chain r0 -> f -> r1
edge r1 -> r2
edge r2 -> r0
"#;
    let model = dsl::parse(src).expect("DSL parses");

    // verification
    let report = verify(&model, &VerifyConfig::default()).expect("verifies");
    assert!(report.is_clean());

    // performance analysis agrees with timed simulation
    let perf = rap::dfs::perf::analyse(&model).expect("analyses");
    let out = model.node_by_name("r0").unwrap();
    let measured = measure_throughput(&model, out, 10, 50, ChoicePolicy::AlwaysTrue).unwrap();
    assert!((perf.throughput - measured).abs() < 1e-6);

    // gate-level mapping and simulation: the ring oscillates
    let mut cfg = MapConfig::with_width(8);
    cfg.initial_values.insert("r0".into(), 0x5A);
    let mapped = map_dfs(&model, &cfg).expect("maps");
    let mut sim = Simulator::new(&mapped.netlist, SimConfig::default());
    let done = mapped.completions["r1"];
    assert!(sim.wait_net(done, true, 500_000));
    assert_eq!(sim.bus_value(&mapped.register_outputs["r1"]), Some(0x5A));

    // Verilog export is non-trivial and mentions every register
    let v = to_verilog(&mapped.netlist, "ring");
    assert!(v.contains("module ring ("));
    for r in ["r0", "r1", "r2"] {
        assert!(v.contains(&format!("{r}_q0_t")), "register {r} in netlist");
    }
}

/// Reach predicates work against DFS-generated nets across crates.
#[test]
fn reach_predicates_on_dfs_models() {
    let p = build_pipeline(&PipelineSpec::reconfigurable_depth(2, 1).unwrap()).unwrap();
    let img = to_petri(&p.dfs);
    let space = rap::petri::reachability::explore(&img.net, Default::default()).expect("explores");

    // the excluded stage's control loop forever carries a False token:
    // its guard register is never true-marked
    let pred = Predicate::parse(r#"exists p in places("Mt_s2_gctrl?_1"): marked(p)"#)
        .unwrap()
        .compile(&img.net)
        .unwrap();
    // no Mt_s2_gctrl*_1 place may ever be marked at depth 1
    let witness = rap::reach::find_witness(&img.net, &space, &pred);
    assert!(
        witness.is_none(),
        "excluded stage's control must never be True"
    );

    // but the aggregated output keeps producing: out gets marked somewhere
    let pred = Predicate::parse(r#"marked("M_out_1")"#)
        .unwrap()
        .compile(&img.net)
        .unwrap();
    assert!(rap::reach::find_witness(&img.net, &space, &pred).is_some());
}

/// The OPE chip equals its behavioural model for large LFSR streams across
/// depth reconfigurations — the §IV validation run, scaled down.
#[test]
fn chip_checksums_validate_across_reconfiguration() {
    for depth in [3usize, 10, 18] {
        let mut chip = Chip::new(ChipConfig::Reconfigurable { depth });
        let got = chip.run_random(0xF00D, 100_000);
        assert_eq!(got, behavioural_checksum(depth, 0xF00D, 100_000));
    }
}

/// A mis-initialised pipeline is caught by every layer: the direct LTS,
/// the PN backend, and the untimed simulator.
#[test]
fn misconfiguration_is_caught_at_every_level() {
    use rap::dfs::TokenValue;
    let mut b = DfsBuilder::new();
    let i = b.register("in").marked().build();
    let c1 = b.control("c1").marked_with(TokenValue::True).build();
    let c2 = b.control("c2").marked_with(TokenValue::False).build();
    let p = b.push("p").build();
    let o = b.register("out").build();
    b.connect(i, p);
    b.connect(c1, p);
    b.connect(c2, p);
    b.connect(p, o);
    b.connect(o, i);
    let dfs = b.finish().unwrap();

    // level 1: direct LTS
    let lts = rap::dfs::Lts::explore(&dfs, 100_000).unwrap();
    assert!(!lts.deadlocks().is_empty());

    // level 2: PN verification with Reach-based mismatch detection
    let report = verify(&dfs, &VerifyConfig::default()).unwrap();
    assert!(report.control_mismatch.is_some());

    // level 3: simulation stalls
    let run = rap::dfs::sim::simulate(&dfs, &rap::dfs::sim::SimConfig::default());
    assert!(run.quiescent);
}

/// 16M items through the calibrated chip-scale model match the paper's
/// reference point; the behavioural encoders survive the same scale.
#[test]
fn paper_scale_run() {
    use rap::ope::{ChipTimingModel, PipelineKind};
    let m = ChipTimingModel::paper_calibrated();
    let t = m.computation_time(PipelineKind::Static, 1.2, 16_000_000);
    assert!((t - 1.22).abs() < 0.02);

    // 16M items through the actual encoder pipeline (fast path): the
    // pipelined engine and the incremental encoder agree on the checksum
    let mut lfsr_a = rap::ope::Lfsr::new(1);
    let mut lfsr_b = rap::ope::Lfsr::new(1);
    let mut pipe = rap::ope::PipelinedOpe::new(18);
    let mut inc = rap::ope::incremental::IncrementalOpe::new(18);
    let mut acc_a = rap::ope::accumulator::Accumulator::new();
    let mut acc_b = rap::ope::accumulator::Accumulator::new();
    for _ in 0..2_000_000u32 {
        if let Some(r) = pipe.push(lfsr_a.next_item()) {
            acc_a.push(r);
        }
        if let Some(r) = inc.push(lfsr_b.next_item()) {
            acc_b.push(r);
        }
    }
    assert_eq!(acc_a.finish(), acc_b.finish());
}
