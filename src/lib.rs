//! **rap** — Reconfigurable Asynchronous Pipelines: from formal models to
//! (simulated) silicon.
//!
//! A Rust reproduction of Sokolov, de Gennaro & Mokhov, *"Reconfigurable
//! Asynchronous Pipelines: from Formal Models to Silicon"*, DATE 2018.
//! This facade crate re-exports the workspace:
//!
//! * [`dfs`] (`dfs-core`) — the Dataflow Structures formalism: five node
//!   kinds, executable semantics, Petri-net translation, verification,
//!   timed simulation, max-cycle-ratio performance analysis, pipeline
//!   builders, wagging, a DSL and DOT export;
//! * [`petri`] (`rap-petri`) — 1-safe Petri nets with read arcs and the
//!   explicit-state reachability backend;
//! * [`reach`] (`rap-reach`) — the Reach-style property language;
//! * [`silicon`] (`rap-silicon`) — NCL-D dual-rail gates, netlists,
//!   Verilog export and a voltage-aware event-driven simulator;
//! * [`ope`] (`rap-ope`) — the ordinal-pattern-encoding accelerator case
//!   study and the evaluation-chip model;
//! * [`dse`] (`rap-dse`) — parallel design-space exploration: Pareto
//!   fronts over throughput, energy per item and area, with structural
//!   memoization and admissible pruning.
//!
//! # Quick start
//!
//! ```
//! use rap::dfs::{DfsBuilder, Lts};
//!
//! // Fig. 1b in five lines: a control register guarding a push and a pop
//! let mut b = DfsBuilder::new();
//! let input = b.register("in").marked().build();
//! let cond = b.logic("cond").build();
//! let ctrl = b.control("ctrl").build();
//! let filt = b.push("filt").build();
//! let comp = b.register("comp").build();
//! let out = b.pop("out").build();
//! b.connect_chain(&[input, cond, ctrl]);
//! b.connect(input, filt);
//! b.connect(ctrl, filt);
//! b.connect_chain(&[filt, comp, out]);
//! b.connect(ctrl, out);
//! b.connect(out, input); // environment
//! let model = b.finish()?;
//!
//! let lts = Lts::explore(&model, 100_000)?;
//! assert!(lts.deadlocks().is_empty());
//! # Ok::<(), rap::dfs::DfsError>(())
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench/src/bin/` for
//! the binaries regenerating every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dfs_core as dfs;
#[cfg(feature = "dse")]
pub use rap_dse as dse;
#[cfg(feature = "ope")]
pub use rap_ope as ope;
pub use rap_petri as petri;
pub use rap_reach as reach;
#[cfg(feature = "silicon")]
pub use rap_silicon as silicon;
