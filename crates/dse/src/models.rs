//! Model builders for the hardware families the design space sweeps.
//!
//! Static and reconfigurable pipelines come straight from
//! [`dfs_core::pipelines`]; this module adds the **wagged OPE** topology:
//! `K` full replicas of the static Fig. 6b pipeline behind the round-robin
//! push/pop steering of the wagging transformation. The replicated unit is
//! the *whole* stage column — including each stage's global broadcast and
//! the output aggregation — so a wagged candidate computes the same
//! windowed function as the pipeline it competes against, and its higher
//! throughput is honestly paid for with `K×` the datapath silicon. (The
//! [`dfs_core::wagging::wagged_pipeline`] fixture replicates a plain linear
//! chain; that is the right shape for studying the transformation itself
//! but would under-bill a design sweep, because a linear chain lacks the
//! per-item global synchronisation that dominates the OPE period.)

use dfs_core::pipelines::StageDelays;
use dfs_core::wagging::rotating_ring;
use dfs_core::{Dfs, DfsBuilder, DfsError, NodeId};

/// A wagged-OPE model with interface handles.
#[derive(Debug, Clone)]
pub struct WaggedOpe {
    /// The model.
    pub dfs: Dfs,
    /// Replica count.
    pub ways: usize,
    /// The common input register.
    pub input: NodeId,
    /// The aggregated output register.
    pub output: NodeId,
    /// Per way: the entry push.
    pub entries: Vec<NodeId>,
    /// Per way: the exit pop.
    pub exits: Vec<NodeId>,
}

/// Builds a closed `ways`-way wagged pipeline whose replicated unit is a
/// full `stages`-stage static OPE column (Fig. 6b stages with per-replica
/// broadcast and aggregation). `f_delays` sizes each stage's `f` logic
/// (`stages` entries); the remaining latencies come from `delays`.
///
/// # Errors
///
/// [`DfsError::InvalidSpec`] for `ways == 0`, `stages == 0` or a mis-sized
/// `f_delays`; otherwise propagates builder validation errors.
pub fn wagged_ope(
    ways: usize,
    stages: usize,
    delays: StageDelays,
    f_delays: &[f64],
) -> Result<WaggedOpe, DfsError> {
    if ways == 0 || stages == 0 {
        return Err(DfsError::InvalidSpec {
            reason: format!("wagged OPE needs ways >= 1 and stages >= 1 (got {ways}, {stages})"),
        });
    }
    if f_delays.len() != stages {
        return Err(DfsError::InvalidSpec {
            reason: format!(
                "per-stage delays: {} entries for {stages} stages",
                f_delays.len()
            ),
        });
    }
    let d = delays;
    let mut b = DfsBuilder::new();

    let input = b.register("in").marked().delay(d.register).build();
    let agg = b.logic("agg").delay(d.g).build();
    let output = b.register("out").delay(d.register).build();
    b.connect(agg, output);
    // environment loop with in-flight buffer tokens, exactly as in the
    // verified `wagged_pipeline` fixture: the recycled token must not
    // reappear before the replicas drain, and the extra marked buffers are
    // what replication parallelises over
    let buf1 = b.register("env_buf1").marked().delay(d.register).build();
    let buf2 = b.register("env_buf2").delay(d.register).build();
    let buf3 = b.register("env_buf3").marked().delay(d.register).build();
    b.connect(output, buf1);
    b.connect(buf1, buf2);
    b.connect(buf2, buf3);
    b.connect(buf3, input);

    let dist = rotating_ring(&mut b, "dc", ways, d.control);
    let coll = rotating_ring(&mut b, "cc", ways, d.control);

    let mut entries = Vec::new();
    let mut exits = Vec::new();
    for w in 0..ways {
        let entry = b.push(format!("w{w}_in")).delay(d.register).build();
        b.connect(input, entry);
        b.connect(dist[w], entry);
        // the replica's aggregation column
        let wagg = b.logic(format!("w{w}_agg")).delay(d.g).build();
        let wres = b.register(format!("w{w}_res")).delay(d.register).build();
        b.connect(wagg, wres);

        let mut prev_local = entry;
        for (i, &f_delay) in f_delays.iter().enumerate() {
            let s = i + 1;
            let local_in = b
                .register(format!("w{w}_s{s}_local_in"))
                .delay(d.register)
                .build();
            let f = b.logic(format!("w{w}_s{s}_f")).delay(f_delay).build();
            let local_out = b
                .register(format!("w{w}_s{s}_local_out"))
                .delay(d.register)
                .build();
            let global_in = b
                .register(format!("w{w}_s{s}_global_in"))
                .delay(d.register)
                .build();
            let g = b.logic(format!("w{w}_s{s}_g")).delay(d.g).build();
            let global_out = b
                .register(format!("w{w}_s{s}_global_out"))
                .delay(d.register)
                .build();
            b.connect(prev_local, local_in);
            b.connect(local_in, f);
            b.connect(f, local_out);
            b.connect(entry, global_in);
            b.connect(local_out, g);
            b.connect(global_in, g);
            b.connect(g, global_out);
            b.connect(global_out, wagg);
            prev_local = local_out;
        }

        let exit = b.pop(format!("w{w}_out")).delay(d.register).build();
        b.connect(wres, exit);
        b.connect(coll[w], exit);
        b.connect(exit, agg);
        entries.push(entry);
        exits.push(exit);
    }

    let dfs = b.finish()?;
    Ok(WaggedOpe {
        dfs,
        ways,
        input,
        output,
        entries,
        exits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfs_core::perf::{analyse, Construction};
    use dfs_core::timed::{measure_steady_period, ChoicePolicy};
    use dfs_core::verify::{verify, VerifyConfig};

    fn ope_delays() -> StageDelays {
        StageDelays {
            f: 1.0,
            g: 2.0,
            register: 1.0,
            control: 0.5,
        }
    }

    #[test]
    fn degenerate_parameters_are_rejected() {
        let d = ope_delays();
        assert!(matches!(
            wagged_ope(0, 2, d, &[1.0, 1.0]),
            Err(DfsError::InvalidSpec { .. })
        ));
        assert!(matches!(
            wagged_ope(2, 0, d, &[]),
            Err(DfsError::InvalidSpec { .. })
        ));
        assert!(matches!(
            wagged_ope(2, 3, d, &[1.0]),
            Err(DfsError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn small_wagged_ope_verifies_clean() {
        // 1-way is small enough for the exhaustive checks (103k states)
        let w = wagged_ope(1, 1, ope_delays(), &[1.0]).unwrap();
        let report = verify(
            &w.dfs,
            &VerifyConfig {
                max_states: 1_000_000,
            },
        )
        .unwrap();
        assert!(
            report.deadlocks.is_empty(),
            "{:?}",
            report.deadlocks.first().map(|d| &d.trace)
        );
        assert!(report.control_mismatch.is_none());
    }

    /// Multi-way replication multiplies the state space past exhaustive
    /// budgets (>8M for 2×1); the budgeted screen must stay sound —
    /// no violation in a deep prefix — and the steady-state-simulation
    /// test above covers liveness of the executed schedule.
    #[test]
    fn two_way_wagged_ope_screens_clean_within_budget() {
        use dfs_core::to_petri;
        use rap_petri::analysis::quick_check;
        let w = wagged_ope(2, 1, ope_delays(), &[1.0]).unwrap();
        let img = to_petri(&w.dfs);
        let qc = quick_check(&img.net, &img.complementary_pairs(), 300_000);
        assert!(qc.truncated, "2-way space is far larger than the budget");
        assert!(qc.no_violation(), "{qc:?}");
    }

    /// The analysis of the new topology is held to the same standard as
    /// every other shape in this repo: exact equality with the timed
    /// simulator's steady-state recurrence.
    #[test]
    fn analysis_matches_steady_state_simulation() {
        for (ways, stages) in [(1usize, 2usize), (2, 2), (3, 1)] {
            let w = wagged_ope(ways, stages, ope_delays(), &vec![1.0; stages]).unwrap();
            let report = analyse(&w.dfs).unwrap();
            assert!(matches!(
                report.construction,
                Construction::PhaseUnfolded { .. }
            ));
            let steady =
                measure_steady_period(&w.dfs, w.output, 200, ChoicePolicy::AlwaysTrue).unwrap();
            assert!(
                (report.period - steady.period).abs() <= 1e-9 * steady.period,
                "ways {ways} stages {stages}: analysis {} vs steady {}",
                report.period,
                steady.period
            );
        }
    }

    /// Replication pays once the replicated column is the bottleneck
    /// (slow stages); with fast stages the shared distribution/collection
    /// environment floors the period and extra ways are wasted silicon —
    /// exactly the dominated region the DSE pruner later discards.
    #[test]
    fn replication_buys_throughput_on_slow_columns() {
        let slow = StageDelays {
            f: 8.0,
            ..ope_delays()
        };
        let one = wagged_ope(1, 2, slow, &[8.0, 8.0]).unwrap();
        let two = wagged_ope(2, 2, slow, &[8.0, 8.0]).unwrap();
        let p1 = analyse(&one.dfs).unwrap().period;
        let p2 = analyse(&two.dfs).unwrap().period;
        assert!(p2 < p1 * 0.8, "2-way {p2} vs 1-way {p1}");
        // fast columns: the environment floor, not the replicas, binds
        let one = wagged_ope(1, 2, ope_delays(), &[1.0, 1.0]).unwrap();
        let two = wagged_ope(2, 2, ope_delays(), &[1.0, 1.0]).unwrap();
        let p1 = analyse(&one.dfs).unwrap().period;
        let p2 = analyse(&two.dfs).unwrap().period;
        assert!(p2 <= p1 + 1e-9, "more ways never hurt: {p1} -> {p2}");
    }
}
