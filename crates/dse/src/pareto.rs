//! The dominance/Pareto kernel.
//!
//! Objectives are (throughput ↑, energy per item ↓, area ↓). A point
//! *dominates* another when it is at least as good on all three axes and
//! strictly better on at least one. The **Pareto front** of a set is
//! exactly its non-dominated subset — duplicated points are mutually
//! non-dominating and all stay.
//!
//! [`pareto_front_indices`] sorts candidates by (throughput descending,
//! energy ascending, area ascending) and scans once, testing each point
//! only against the front built so far. This is correct because a
//! dominator always precedes its victims in that order (domination needs
//! `throughput ≥`, and on ties the energy/area keys break the same way),
//! and because dominance is transitive, a point excluded by a non-front
//! point is also excluded by some front point. The sort also makes the
//! result **deterministic and order-independent**: any permutation of the
//! input yields the same front in the same order. Both properties, plus
//! exact agreement with the O(n²) reference filter
//! [`naive_front_indices`], are property-tested in `tests/pareto_props.rs`.

use std::cmp::Ordering;

/// An objective vector: throughput is maximised, energy and area
/// minimised. Values are expected to be non-NaN (comparisons use
/// `total_cmp`, so NaN would order deterministically but meaninglessly).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Items per second (maximise).
    pub throughput: f64,
    /// Joules per item (minimise).
    pub energy_per_item: f64,
    /// Gate-equivalent area (minimise).
    pub area: f64,
}

impl Objectives {
    /// Does `self` dominate `other` — at least as good everywhere,
    /// strictly better somewhere?
    #[must_use]
    pub fn dominates(&self, other: &Objectives) -> bool {
        let ge = self.throughput >= other.throughput
            && self.energy_per_item <= other.energy_per_item
            && self.area <= other.area;
        ge && (self.throughput > other.throughput
            || self.energy_per_item < other.energy_per_item
            || self.area < other.area)
    }

    /// The canonical sort order of the kernel: throughput descending, then
    /// energy and area ascending.
    #[must_use]
    pub fn sort_cmp(&self, other: &Objectives) -> Ordering {
        other
            .throughput
            .total_cmp(&self.throughput)
            .then(self.energy_per_item.total_cmp(&other.energy_per_item))
            .then(self.area.total_cmp(&other.area))
    }
}

/// Indices of the Pareto front of `items`, sorted canonically (throughput
/// descending, ties by energy, area, then input index).
pub fn pareto_front_indices<T>(items: &[T], obj: impl Fn(&T) -> Objectives) -> Vec<usize> {
    let objs: Vec<Objectives> = items.iter().map(obj).collect();
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| objs[a].sort_cmp(&objs[b]).then(a.cmp(&b)));
    let mut front: Vec<usize> = Vec::new();
    for i in order {
        if !front.iter().any(|&k| objs[k].dominates(&objs[i])) {
            front.push(i);
        }
    }
    front
}

/// The O(n²) reference filter: an index is on the front iff no other point
/// dominates it. Kept public as the oracle the fast kernel is
/// property-tested against.
pub fn naive_front_indices<T>(items: &[T], obj: impl Fn(&T) -> Objectives) -> Vec<usize> {
    let objs: Vec<Objectives> = items.iter().map(obj).collect();
    let mut front: Vec<usize> = (0..items.len())
        .filter(|&i| !objs.iter().any(|o| o.dominates(&objs[i])))
        .collect();
    front.sort_by(|&a, &b| objs[a].sort_cmp(&objs[b]).then(a.cmp(&b)));
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(t: f64, e: f64, a: f64) -> Objectives {
        Objectives {
            throughput: t,
            energy_per_item: e,
            area: a,
        }
    }

    #[test]
    fn dominance_requires_a_strict_edge() {
        assert!(o(2.0, 1.0, 1.0).dominates(&o(1.0, 1.0, 1.0)));
        assert!(o(1.0, 0.5, 1.0).dominates(&o(1.0, 1.0, 1.0)));
        assert!(
            !o(1.0, 1.0, 1.0).dominates(&o(1.0, 1.0, 1.0)),
            "ties never dominate"
        );
        assert!(
            !o(2.0, 2.0, 1.0).dominates(&o(1.0, 1.0, 1.0)),
            "trade-offs never dominate"
        );
    }

    #[test]
    fn front_of_a_classic_trade_off_curve() {
        let pts = [
            o(10.0, 10.0, 5.0), // fast, hungry
            o(5.0, 3.0, 5.0),   // balanced
            o(1.0, 1.0, 2.0),   // frugal
            o(4.0, 4.0, 5.0),   // dominated by balanced
            o(5.0, 3.0, 5.0),   // duplicate of balanced: stays
        ];
        let front = pareto_front_indices(&pts, |p| *p);
        assert_eq!(front, vec![0, 1, 4, 2]);
        assert_eq!(front, naive_front_indices(&pts, |p| *p));
    }

    #[test]
    fn single_and_empty_inputs() {
        let empty: [Objectives; 0] = [];
        assert!(pareto_front_indices(&empty, |p| *p).is_empty());
        assert_eq!(pareto_front_indices(&[o(1.0, 1.0, 1.0)], |p| *p), vec![0]);
    }
}
