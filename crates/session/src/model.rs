//! [`CompiledModel`]: one interned DFS model with demand-computed, memoized
//! derived artifacts.

use crate::persist::Persist;
use crate::Error;
use dfs_core::perf::{analyse_with_activity, PerfDetail, PerfReport};
use dfs_core::timed::{measure_steady_period, ChoicePolicy, SteadyStatePeriod};
use dfs_core::{to_petri, Dfs, Lts, NodeId, PetriImage};
use rap_obs::{CounterSnapshot, Meter, Obs};
use rap_petri::analysis::QuickCheck;
use rap_silicon::cost::CostModel;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A keyed cache slot. The `Arc` lets a query hold the slot outside the
/// map lock while it computes; the `OnceLock` is the in-flight
/// reservation — the first caller to reach `get_or_init` computes, every
/// concurrent caller blocks on that one computation instead of
/// duplicating it.
type Slot<T> = Arc<OnceLock<T>>;
type SlotMap<K, T> = Mutex<HashMap<K, Slot<T>>>;

fn keyed_slot<K, T>(map: &SlotMap<K, T>, key: K) -> Slot<T>
where
    K: std::hash::Hash + Eq,
{
    Arc::clone(map.lock().expect("slot map").entry(key).or_default())
}

/// Runs `f` through `slot` exactly once; the returned flag is `true` iff
/// *this* call performed the computation (it won the reservation).
fn traced_once<T>(slot: &OnceLock<T>, f: impl FnOnce() -> T) -> (&T, bool) {
    let mut ran = false;
    let v = slot.get_or_init(|| {
        ran = true;
        f()
    });
    (v, ran)
}

/// Per-query-kind counters of one [`CompiledModel`] (also the aggregate
/// shape of [`SessionStats::queries`](crate::SessionStats)).
///
/// For every query kind, `*_queries` counts calls and the second field
/// counts actual computations; the difference is the number of calls
/// served from cache. Because every computation runs under an in-flight
/// reservation, each computation counter is bounded by the number of
/// distinct cache keys of its query — `petri_translations` and
/// `perf_analyses` can never exceed 1 per model.
///
/// `ModelStats` is a *view* over the model's `rap-obs` counter set (see
/// [`ModelStats::from_counters`]); each model's counters are copied under
/// a single lock, so a query/computation pair can never tear apart. Note
/// the aliasing: a query served by a verified on-disk frame counts as a
/// cache hit here (it did not compute) *and* as a `store.read.hit` in
/// [`rap_store::StoreStats`] — the session-level and store-level views
/// deliberately overlap, so never sum them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)] // field names are the documentation (pattern above)
pub struct ModelStats {
    pub petri_queries: u64,
    pub petri_translations: u64,
    pub perf_queries: u64,
    pub perf_analyses: u64,
    pub lts_queries: u64,
    pub lts_explorations: u64,
    pub check_queries: u64,
    pub check_runs: u64,
    pub cost_queries: u64,
    pub cost_evaluations: u64,
    pub steady_queries: u64,
    pub steady_measurements: u64,
}

impl ModelStats {
    /// Total queries of every kind.
    #[must_use]
    pub fn queries(&self) -> u64 {
        self.petri_queries
            + self.perf_queries
            + self.lts_queries
            + self.check_queries
            + self.cost_queries
            + self.steady_queries
    }

    /// Total computations actually performed.
    #[must_use]
    pub fn computations(&self) -> u64 {
        self.petri_translations
            + self.perf_analyses
            + self.lts_explorations
            + self.check_runs
            + self.cost_evaluations
            + self.steady_measurements
    }

    /// Queries served from cache: [`queries`](Self::queries) −
    /// [`computations`](Self::computations).
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.queries() - self.computations()
    }

    /// Builds the view from a coherent counter snapshot, using the
    /// `session.<kind>.query` / `session.<kind>.compute` taxonomy names
    /// (see the `rap-obs` crate docs).
    #[must_use]
    pub fn from_counters(c: &CounterSnapshot) -> ModelStats {
        ModelStats {
            petri_queries: c.get("session.petri.query"),
            petri_translations: c.get("session.petri.compute"),
            perf_queries: c.get("session.perf.query"),
            perf_analyses: c.get("session.perf.compute"),
            lts_queries: c.get("session.lts.query"),
            lts_explorations: c.get("session.lts.compute"),
            check_queries: c.get("session.check.query"),
            check_runs: c.get("session.check.compute"),
            cost_queries: c.get("session.cost.query"),
            cost_evaluations: c.get("session.cost.compute"),
            steady_queries: c.get("session.steady.query"),
            steady_measurements: c.get("session.steady.compute"),
        }
    }
}

/// The silicon-cost summary of a model under one [`CostModel`]: the two
/// voltage-independent quantities every energy/area objective builds on.
/// Bit-identical to calling [`CostModel::area`] and
/// [`CostModel::switched_ge_per_item`] (with the exact activity from
/// [`analyse_with_activity`]) directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostSummary {
    /// Total gate-equivalent area (excluded stages included: silicon is
    /// committed at tape-out).
    pub area: f64,
    /// Gate equivalents switched per item, weighted by the exact per-node
    /// steady-state activity.
    pub switched_ge_per_item: f64,
}

impl CostSummary {
    /// Energy per item at supply `v` under `cost` — delegates to the
    /// single [`CostModel::energy_from_parts`] formula.
    #[must_use]
    pub fn energy_per_item(&self, cost: &CostModel, period_units: f64, v: f64) -> f64 {
        self.switching_and_leakage(cost, cost.period_seconds(period_units, v), v)
    }

    fn switching_and_leakage(&self, cost: &CostModel, period_s: f64, v: f64) -> f64 {
        cost.energy_from_parts(self.switched_ge_per_item, self.area, period_s, v)
    }
}

/// A compiled (interned) DFS model: an immutable [`Dfs`] plus a cache of
/// every derived artifact, each computed on first demand and shared by all
/// later queries — from any thread.
///
/// Obtained from [`Session::compile`](crate::Session::compile); see the
/// [crate docs](crate) for the caching and coherence contract. All queries
/// take `&self`: a compiled model is never mutated, and the underlying
/// [`Dfs`] is immutable by construction — to analyse a modified model,
/// build the new [`Dfs`] and compile it (**mutation = recompile**).
pub struct CompiledModel {
    dfs: Dfs,
    structural_hash: u64,
    identity_digest: u64,
    /// Store context of a persistent session; `None` = memory-only. The
    /// persisted queries (perf, check, cost, steady) consult the store
    /// inside their in-flight reservation: a verified disk frame fills the
    /// slot *without* counting as a computation, so restart-warm sweeps do
    /// zero full evaluations. The Petri image and LTS are recomputed, not
    /// persisted — see [`crate::persist`].
    persist: Option<Persist>,
    petri: OnceLock<PetriImage>,
    perf: OnceLock<Result<PerfDetail, Error>>,
    lts: SlotMap<usize, Result<Arc<Lts>, Error>>,
    checks: SlotMap<usize, Arc<QuickCheck>>,
    costs: SlotMap<u64, Result<CostSummary, Error>>,
    steady: SlotMap<(NodeId, u64), Result<SteadyStatePeriod, Error>>,
    /// Query/computation counters, mirrored into the session's recorder
    /// (if any) under the `session.*` taxonomy names.
    meter: Meter,
    /// The session's recorder handle; every query wraps itself in a
    /// `session.query.<kind>` span with `session.load` / `session.compute`
    /// / `session.commit` children. Recording is observation-only — it
    /// never changes what is computed or cached.
    obs: Obs,
}

impl std::fmt::Debug for CompiledModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledModel")
            .field("nodes", &self.dfs.node_count())
            .field("edges", &self.dfs.edge_count())
            .field(
                "structural_hash",
                &format_args!("{:#018x}", self.structural_hash),
            )
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl CompiledModel {
    pub(crate) fn new(
        dfs: Dfs,
        structural_hash: u64,
        identity_digest: u64,
        persist: Option<Persist>,
        obs: Obs,
    ) -> Self {
        CompiledModel {
            dfs,
            structural_hash,
            identity_digest,
            persist,
            petri: OnceLock::new(),
            perf: OnceLock::new(),
            lts: Mutex::new(HashMap::new()),
            checks: Mutex::new(HashMap::new()),
            costs: Mutex::new(HashMap::new()),
            steady: Mutex::new(HashMap::new()),
            meter: Meter::with_obs(obs.clone()),
            obs,
        }
    }

    /// The compiled model itself.
    #[must_use]
    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    /// The canonical structural hash the model was interned under
    /// (see [`Dfs::structural_hash`]).
    #[must_use]
    pub fn structural_hash(&self) -> u64 {
        self.structural_hash
    }

    /// The byte-exact identity digest the model was interned under — the
    /// second half of the intern key, and of every persistent artifact's
    /// [`rap_store::ArtifactKey`].
    #[must_use]
    pub fn identity_digest(&self) -> u64 {
        self.identity_digest
    }

    /// Per-model query/computation counters — one coherent snapshot (a
    /// single lock acquisition; the query/compute pair of a kind can never
    /// tear apart).
    #[must_use]
    pub fn stats(&self) -> ModelStats {
        ModelStats::from_counters(&self.counter_snapshot())
    }

    /// The raw coherent counter snapshot [`stats`](Self::stats) is a view
    /// over (taxonomy-named; includes the `session.<kind>.disk_hit`
    /// counters the legacy struct does not surface).
    #[must_use]
    pub fn counter_snapshot(&self) -> CounterSnapshot {
        self.meter.snapshot()
    }

    /// The recorder handle this model records into (detached unless the
    /// owning session was built with `Session::with_recorder`).
    #[must_use]
    pub fn recorder(&self) -> &Obs {
        &self.obs
    }

    /// The Petri-net image (Fig. 3 translation) — computed once, equal to
    /// [`to_petri()`]`(self.dfs())`.
    pub fn petri(&self) -> &PetriImage {
        let span = self.obs.span("session.query.petri");
        let qobs = span.obs();
        let (img, ran) = traced_once(&self.petri, || {
            qobs.time("session.compute", |_| to_petri(&self.dfs))
        });
        self.meter
            .bump2("session.petri.query", "session.petri.compute", ran);
        img
    }

    /// The exact throughput analysis with per-node activity — computed
    /// once, equal to [`analyse_with_activity`]`(self.dfs())`. For models
    /// with dynamic registers this is the single phase unfolding every
    /// perf/cost query shares.
    ///
    /// # Errors
    ///
    /// The cached [`DfsError`](dfs_core::DfsError) of the analysis (e.g. a
    /// token-free cycle); errors are cached like results, so a failing
    /// model is analysed once, not once per query.
    pub fn perf_detail(&self) -> Result<&PerfDetail, Error> {
        self.perf_detail_traced().0
    }

    /// [`perf_detail`](Self::perf_detail), also reporting whether *this*
    /// call performed the analysis (`true`) or was served from a cache —
    /// in-memory, in-flight (blocked on a concurrent twin's computation),
    /// or a verified on-disk frame of a persistent session — (`false`).
    /// Sweep drivers use this for exact work accounting; a restart-warm
    /// sweep over an intact store reports `false` throughout.
    pub fn perf_detail_traced(&self) -> (Result<&PerfDetail, Error>, bool) {
        let span = self.obs.span("session.query.perf");
        let qobs = span.obs();
        let mut analysed = false;
        let mut disk_hit = false;
        let (res, _filled) = traced_once(&self.perf, || {
            if let Some(p) = &self.persist {
                if let Some(detail) = qobs.time("session.load", |_| p.load_perf()) {
                    disk_hit = true;
                    return Ok(detail);
                }
            }
            analysed = true;
            let r = qobs.time("session.compute", |_| {
                analyse_with_activity(&self.dfs).map_err(Error::from)
            });
            if let (Some(p), Ok(detail)) = (&self.persist, &r) {
                qobs.time("session.commit", |_| p.save_perf(detail));
            }
            r
        });
        self.meter
            .bump2("session.perf.query", "session.perf.compute", analysed);
        if disk_hit {
            self.meter.add("session.perf.disk_hit", 1);
        }
        (res.as_ref().map_err(Clone::clone), analysed)
    }

    /// The throughput report — the `report` half of
    /// [`perf_detail`](Self::perf_detail), equal to
    /// [`dfs_core::perf::analyse`]`(self.dfs())`.
    ///
    /// # Errors
    ///
    /// Same as [`perf_detail`](Self::perf_detail).
    pub fn perf(&self) -> Result<&PerfReport, Error> {
        self.perf_detail().map(|d| &d.report)
    }

    /// Whether the throughput analysis has already completed (either way);
    /// `false` while a concurrent computation is still in flight.
    #[must_use]
    pub fn analysed(&self) -> bool {
        self.perf.get().is_some()
    }

    /// The reachable LTS of the direct semantics under `budget` —
    /// computed once per distinct budget, equal to
    /// [`Lts::explore`]`(self.dfs(), budget)`.
    ///
    /// # Errors
    ///
    /// The cached [`DfsError::StateBudgetExceeded`](dfs_core::DfsError)
    /// when the state space exceeds `budget`.
    pub fn lts(&self, budget: usize) -> Result<Arc<Lts>, Error> {
        let span = self.obs.span("session.query.lts");
        let qobs = span.obs();
        let slot = keyed_slot(&self.lts, budget);
        let (res, ran) = traced_once(&slot, || {
            qobs.time("session.compute", |o| {
                Lts::explore_traced(&self.dfs, budget, o)
                    .map(Arc::new)
                    .map_err(Error::from)
            })
        });
        self.meter
            .bump2("session.lts.query", "session.lts.compute", ran);
        res.clone()
    }

    /// The budgeted deadlock/1-safety screen over the Petri image —
    /// computed once per distinct budget, equal to
    /// [`quick_check`](rap_petri::analysis::quick_check)`(&img.net,
    /// &img.complementary_pairs(), budget)`.
    /// Demands [`petri`](Self::petri), so the translation is still
    /// performed at most once per model.
    #[must_use]
    pub fn quick_check(&self, budget: usize) -> Arc<QuickCheck> {
        let span = self.obs.span("session.query.check");
        let qobs = span.obs();
        let slot = keyed_slot(&self.checks, budget);
        let mut ran = false;
        let mut disk_hit = false;
        let (check, _filled) = traced_once(&slot, || {
            if let Some(p) = &self.persist {
                if let Some(check) = qobs.time("session.load", |_| p.load_check(budget)) {
                    // a disk hit skips the whole pipeline, including the
                    // Petri translation the in-memory path would demand
                    disk_hit = true;
                    return Arc::new(check);
                }
            }
            ran = true;
            let img = self.petri();
            let check = qobs.time("session.compute", |o| {
                rap_petri::analysis::quick_check_traced(
                    &img.net,
                    &img.complementary_pairs(),
                    budget,
                    o,
                )
            });
            if let Some(p) = &self.persist {
                qobs.time("session.commit", |_| p.save_check(budget, &check));
            }
            Arc::new(check)
        });
        self.meter
            .bump2("session.check.query", "session.check.compute", ran);
        if disk_hit {
            self.meter.add("session.check.disk_hit", 1);
        }
        Arc::clone(check)
    }

    /// Area and switched-GE of the model under `cost` — computed once per
    /// distinct cost model (keyed by [`CostModel::cache_key`]). Demands
    /// [`perf_detail`](Self::perf_detail) for the exact activity, so the
    /// phase unfolding is still performed at most once per model.
    ///
    /// # Errors
    ///
    /// Propagates the cached error of the throughput analysis.
    pub fn cost(&self, cost: &CostModel) -> Result<CostSummary, Error> {
        let span = self.obs.span("session.query.cost");
        let qobs = span.obs();
        let cache_key = cost.cache_key();
        let slot = keyed_slot(&self.costs, cache_key);
        let mut ran = false;
        let mut disk_hit = false;
        let (res, _filled) = traced_once(&slot, || {
            if let Some(p) = &self.persist {
                if let Some(summary) = qobs.time("session.load", |_| p.load_cost(cache_key)) {
                    disk_hit = true;
                    return Ok(summary);
                }
            }
            ran = true;
            let detail = self.perf_detail()?;
            let summary = qobs.time("session.compute", |_| CostSummary {
                area: cost.area(&self.dfs),
                switched_ge_per_item: cost
                    .switched_ge_per_item(&self.dfs, &detail.activity_per_item),
            });
            if let Some(p) = &self.persist {
                qobs.time("session.commit", |_| p.save_cost(cache_key, &summary));
            }
            Ok(summary)
        });
        self.meter
            .bump2("session.cost.query", "session.cost.compute", ran);
        if disk_hit {
            self.meter.add("session.cost.disk_hit", 1);
        }
        res.clone()
    }

    /// The timed simulator's exact steady-state recurrence at `output`
    /// under the `AlwaysTrue` choice policy (the policy the analysis is
    /// certified against) — computed once per distinct `(output,
    /// max_marks)`, equal to
    /// [`measure_steady_period`]`(self.dfs(), output, max_marks,
    /// ChoicePolicy::AlwaysTrue)`.
    ///
    /// # Errors
    ///
    /// The cached simulation error
    /// ([`SimulationStalled`](dfs_core::DfsError::SimulationStalled) /
    /// [`NoSteadyState`](dfs_core::DfsError::NoSteadyState)).
    pub fn steady_period(
        &self,
        output: NodeId,
        max_marks: u64,
    ) -> Result<SteadyStatePeriod, Error> {
        let span = self.obs.span("session.query.steady");
        let qobs = span.obs();
        let slot = keyed_slot(&self.steady, (output, max_marks));
        let mut ran = false;
        let mut disk_hit = false;
        let (res, _filled) = traced_once(&slot, || {
            if let Some(p) = &self.persist {
                if let Some(sp) = qobs.time("session.load", |_| p.load_steady(output, max_marks)) {
                    disk_hit = true;
                    return Ok(sp);
                }
            }
            ran = true;
            let r = qobs.time("session.compute", |_| {
                measure_steady_period(&self.dfs, output, max_marks, ChoicePolicy::AlwaysTrue)
                    .map_err(Error::from)
            });
            if let (Some(p), Ok(sp)) = (&self.persist, &r) {
                qobs.time("session.commit", |_| p.save_steady(output, max_marks, sp));
            }
            r
        });
        self.meter
            .bump2("session.steady.query", "session.steady.compute", ran);
        if disk_hit {
            self.meter.add("session.steady.disk_hit", 1);
        }
        res.clone()
    }
}
