//! The `dse_pareto` sweep must emit schema-valid JSON whose fronts are
//! genuinely Pareto (re-verified by the validator), whose work accounting
//! adds up, and whose design point sits on its front.
//!
//! Runs the quick sweep in-process — the CI workflow additionally runs
//! the binary itself (`dse_pareto --quick`), which re-validates what it
//! wrote to disk and cross-checks the parallel driver against a
//! single-threaded run.

use rap_bench::dse::{design_point, render_json, run_sweep, validate, SCHEMA};

#[test]
fn quick_sweep_emits_valid_json() {
    let run = run_sweep(true, None);
    assert!(run.quick);
    let json = render_json(&run);
    assert!(json.contains(SCHEMA));
    let summary = validate(&json).expect("emitted JSON validates against the current schema");
    assert_eq!(summary.configurations, 48);
    assert!(summary.design_point_on_front);
    // every demand class of the quick space produced a front
    assert_eq!(summary.front_sizes.len(), 3);
}

#[test]
fn memoization_collapses_voltage_and_demand_replicas() {
    let run = run_sweep(true, None);
    let stats = run.outcome.stats;
    // the warm pass ran the identical space against the populated
    // session: every structure analysed in the cold pass is an
    // artifact-cache hit (run_sweep has already asserted the fronts are
    // bit-identical). Only structures the cold pass *pruned* can still be
    // evaluated, and then only when parallel scheduling lets one slip
    // past the warm pruner — on one thread the count is exactly 0.
    assert!(
        run.warm_stats.full_evaluations <= stats.pruned,
        "{:?}",
        run.warm_stats
    );
    assert!(
        run.warm_stats.memo_hits >= stats.memo_hits,
        "{:?}",
        run.warm_stats
    );
    // 48 enumerated configurations share only 12 distinct structures
    // (2 sizings × (1 static + 3 reconfigurable depths + 2 wagged)), and
    // the memo's in-flight reservation guarantees each structure is fully
    // evaluated at most once *regardless of thread scheduling* — so this
    // bound is exact, not a heuristic margin
    assert!(stats.full_evaluations <= 12, "{stats:?}");
    assert!(stats.memo_hits > 0, "{stats:?}");
    assert_eq!(
        stats.full_evaluations + stats.memo_hits + stats.pruned,
        stats.enumerated
    );
}

#[test]
fn quick_design_point_has_an_exact_period() {
    let run = run_sweep(true, None);
    let (label, workload) = design_point(true);
    let e = run
        .outcome
        .front(workload)
        .iter()
        .find(|e| e.label == label)
        .expect("design point on its front");
    // reconfigurable(3) at depth 2, OPE delays: the exact analysis is
    // cross-checked against the timed simulator elsewhere; here we pin
    // that the sweep reports a sane positive period and phase count
    assert!(e.period_units > 0.0 && e.period_units.is_finite());
    assert!(e.phases >= 1);
    assert!(!e.check_violated);
}
