//! Calibrated chip-scale timing and energy model — the quantitative engine
//! behind the Fig. 9a/9b reproductions.
//!
//! Gate-level simulation of 16M items through an 18-stage dual-rail
//! pipeline is far outside a software budget; the paper's §IV claims are
//! about *aggregate* behaviour, which a stage-level model captures:
//!
//! * **cycle time** = stage datapath delay + stage-synchronisation delay,
//!   all scaled by the alpha-power-law voltage factor. The fabricated
//!   reconfigurable pipeline synchronised stages through a **daisy chain**
//!   of C-elements (linear in the active depth — the measured 36%
//!   overhead); the static pipeline and the proposed fix use a **tree**
//!   (logarithmic — the estimated <10%);
//! * **energy/item** = per-stage switching (linear in depth, quadratic in
//!   voltage) + fixed infrastructure, ×1.05 for the reconfigurable
//!   pipeline's control logic (the measured 5%); plus leakage × time;
//! * constants calibrated so the static pipeline at the nominal 1.2 V
//!   reproduces the paper's reference measurement: **1.22 s / 2.74 mJ for
//!   16M items**.
//!
//! The *shape* of the model (chain vs tree latency, V² energy, leakage
//! floor, freeze) is cross-validated against the gate-level simulator in
//! `rap-silicon` (see the `chain_completion_is_slower_than_tree` test and
//! the voltage tests there); the absolute constants are the paper's.

use rap_silicon::delay::{DelayModel, VoltageProfile};
use rap_silicon::power::PowerTrace;
use serde::{Deserialize, Serialize};

/// Stage-synchronisation structure (§IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncStyle {
    /// Linear C-element chain over the active stages — the fabricated
    /// prototype's structure ("inefficient implementation of the
    /// synchronisation between the stages using a daisy-chain C-element
    /// structure").
    DaisyChain,
    /// Balanced C-element tree — the static pipeline's structure and the
    /// proposed improvement ("estimates overhead below 10%").
    Tree,
}

/// Which pipeline is being modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineKind {
    /// The 18-stage static pipeline.
    Static,
    /// The reconfigurable pipeline with `depth` active stages and the
    /// given synchronisation structure.
    Reconfigurable {
        /// Active depth (window size), 3..=18 on the chip.
        depth: usize,
        /// Synchronisation structure.
        sync: SyncStyle,
    },
}

/// The calibrated chip model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChipTimingModel {
    /// Voltage→delay scaling.
    pub delay: DelayModel,
    /// Stage datapath delay at nominal voltage (s).
    pub stage_delay0: f64,
    /// Daisy-chain synchronisation delay per active stage (s).
    pub chain_unit0: f64,
    /// Tree synchronisation delay per ⌈log₂ depth⌉ level (s).
    pub tree_unit0: f64,
    /// Fixed reconfigurable-control latency (s).
    pub ctrl_fixed0: f64,
    /// Per-stage switching energy per item at nominal voltage (J).
    pub stage_energy0: f64,
    /// Fixed per-item infrastructure energy at nominal voltage (J).
    pub base_energy0: f64,
    /// Energy multiplier of the reconfigurable pipeline's control logic
    /// (the measured 5%).
    pub ctrl_energy_factor: f64,
    /// Leakage power at nominal voltage (W).
    pub leak0: f64,
    /// Exponential voltage sensitivity of leakage (V).
    pub leak_vk: f64,
}

/// Number of stages of the static pipeline.
pub const STATIC_DEPTH: usize = 18;

impl Default for ChipTimingModel {
    fn default() -> Self {
        ChipTimingModel::paper_calibrated()
    }
}

impl ChipTimingModel {
    /// Constants calibrated to the paper's reference point (static
    /// pipeline, 1.2 V, 16M items ⇒ 1.22 s and 2.74 mJ) and overheads
    /// (36% time via the daisy chain, 5% energy, <10% with a tree).
    #[must_use]
    pub fn paper_calibrated() -> Self {
        // static cycle: 1.22 s / 16·10⁶ = 76.25 ns
        //   = stage 60 ns + tree sync ⌈log₂ 18⌉ = 5 levels × 3.25 ns
        // reconfigurable daisy chain at depth 18: 36% over 76.25 ns
        //   (including the 5 ns fixed control latency) ⇒ chain_unit ≈ 2.15 ns
        // static energy: 2.74 mJ / 16·10⁶ = 171.25 pJ/item
        //   = base 30 pJ + 18 stages × 7.847 pJ
        ChipTimingModel {
            delay: DelayModel::default(),
            stage_delay0: 60.0e-9,
            chain_unit0: 2.15e-9,
            tree_unit0: 3.25e-9,
            ctrl_fixed0: 5.0e-9,
            stage_energy0: 7.847_22e-12,
            base_energy0: 30.0e-12,
            ctrl_energy_factor: 1.05,
            leak0: 26.6e-6,
            leak_vk: 0.35,
        }
    }

    /// Active depth of `kind`.
    #[must_use]
    pub fn depth(kind: PipelineKind) -> usize {
        match kind {
            PipelineKind::Static => STATIC_DEPTH,
            PipelineKind::Reconfigurable { depth, .. } => depth,
        }
    }

    /// Steady-state cycle time (s/item) at supply `v`; infinite when
    /// frozen.
    #[must_use]
    pub fn cycle_time(&self, kind: PipelineKind, v: f64) -> f64 {
        let factor = self.delay.factor(v);
        let sync = match kind {
            PipelineKind::Static => self.tree_unit0 * ceil_log2(STATIC_DEPTH),
            PipelineKind::Reconfigurable { depth, sync } => {
                self.ctrl_fixed0
                    + match sync {
                        SyncStyle::DaisyChain => self.chain_unit0 * depth as f64,
                        SyncStyle::Tree => self.tree_unit0 * ceil_log2(depth),
                    }
            }
        };
        (self.stage_delay0 + sync) * factor
    }

    /// Total computation time for `items` items (s); infinite when frozen.
    #[must_use]
    pub fn computation_time(&self, kind: PipelineKind, v: f64, items: u64) -> f64 {
        self.cycle_time(kind, v) * items as f64
    }

    /// Dynamic energy per item at supply `v`.
    #[must_use]
    pub fn item_energy(&self, kind: PipelineKind, v: f64) -> f64 {
        let depth = Self::depth(kind) as f64;
        let scale = (v / self.delay.v0).powi(2);
        let ctrl = match kind {
            PipelineKind::Static => 1.0,
            PipelineKind::Reconfigurable { .. } => self.ctrl_energy_factor,
        };
        (self.base_energy0 + self.stage_energy0 * depth) * scale * ctrl
    }

    /// Leakage power at supply `v`.
    #[must_use]
    pub fn leakage_power(&self, v: f64) -> f64 {
        self.leak0 * (v / self.delay.v0) * ((v - self.delay.v0) / self.leak_vk).exp()
    }

    /// Total energy for a constant-voltage run (dynamic + leakage·time);
    /// infinite when frozen.
    #[must_use]
    pub fn energy(&self, kind: PipelineKind, v: f64, items: u64) -> f64 {
        let t = self.computation_time(kind, v, items);
        if !t.is_finite() {
            return f64::INFINITY;
        }
        self.item_energy(kind, v) * items as f64 + self.leakage_power(v) * t
    }

    /// Simulates a run under a time-varying supply, sampling average power
    /// every `dt` seconds — the Fig. 9b experiment. The computation starts
    /// at `start`; before that only leakage is drawn. Returns the trace and
    /// the completion time (`None` when the supply never lets it finish
    /// within `horizon`).
    #[must_use]
    pub fn power_trace(
        &self,
        kind: PipelineKind,
        profile: &VoltageProfile,
        items: u64,
        start: f64,
        horizon: f64,
        dt: f64,
    ) -> (PowerTrace, Option<f64>) {
        let mut trace = PowerTrace::default();
        let mut progress = 0.0f64;
        let mut finished: Option<f64> = None;
        let total = items as f64;
        let mut t = 0.0;
        while t < horizon {
            let v = profile.at(t);
            let leak = self.leakage_power(v);
            let computing = t >= start && finished.is_none();
            let power = if computing && !self.delay.is_frozen(v) {
                let cycle = self.cycle_time(kind, v);
                let rate = 1.0 / cycle;
                let step_items = rate * dt;
                progress += step_items;
                if progress >= total {
                    finished = Some(t + dt);
                }
                self.item_energy(kind, v) * rate + leak
            } else {
                leak
            };
            trace.push(t + dt, power, v);
            t += dt;
        }
        (trace, finished)
    }
}

fn ceil_log2(n: usize) -> f64 {
    (n.max(1) as f64).log2().ceil()
}

#[cfg(test)]
mod tests {
    use super::*;

    const M16: u64 = 16_000_000;

    #[test]
    fn reproduces_the_reference_point() {
        let m = ChipTimingModel::paper_calibrated();
        let t = m.computation_time(PipelineKind::Static, 1.2, M16);
        let e = m.energy(PipelineKind::Static, 1.2, M16);
        assert!((t - 1.22).abs() / 1.22 < 0.01, "time {t} s vs 1.22 s");
        // leakage at nominal adds ~32 µJ on top of 2.74 mJ dynamic
        assert!(
            (e - 2.74e-3).abs() / 2.74e-3 < 0.03,
            "energy {e} J vs 2.74 mJ"
        );
    }

    #[test]
    fn reconfigurable_overheads_match_the_paper() {
        let m = ChipTimingModel::paper_calibrated();
        let t_static = m.computation_time(PipelineKind::Static, 1.2, M16);
        let t_chain = m.computation_time(
            PipelineKind::Reconfigurable {
                depth: 18,
                sync: SyncStyle::DaisyChain,
            },
            1.2,
            M16,
        );
        let overhead = t_chain / t_static - 1.0;
        assert!(
            (0.34..0.38).contains(&overhead),
            "time overhead {overhead} vs paper's 36%"
        );
        let e_static = m.energy(PipelineKind::Static, 1.2, M16);
        let e_rc = m.energy(
            PipelineKind::Reconfigurable {
                depth: 18,
                sync: SyncStyle::DaisyChain,
            },
            1.2,
            M16,
        );
        let e_overhead = e_rc / e_static - 1.0;
        assert!(
            (0.03..0.08).contains(&e_overhead),
            "energy overhead {e_overhead} vs paper's 5%"
        );
        // the proposed tree structure: below 10%
        let t_tree = m.computation_time(
            PipelineKind::Reconfigurable {
                depth: 18,
                sync: SyncStyle::Tree,
            },
            1.2,
            M16,
        );
        let tree_overhead = t_tree / t_static - 1.0;
        assert!(
            tree_overhead < 0.10 && tree_overhead > 0.0,
            "tree overhead {tree_overhead} vs paper's <10% estimate"
        );
    }

    #[test]
    fn voltage_scaling_shape() {
        let m = ChipTimingModel::paper_calibrated();
        let k = PipelineKind::Static;
        // slower but more energy-efficient at lower voltage (§IV)
        let (t05, t12, t16) = (
            m.computation_time(k, 0.5, M16),
            m.computation_time(k, 1.2, M16),
            m.computation_time(k, 1.6, M16),
        );
        assert!(t05 > 6.0 * t12 && t05 < 20.0 * t12, "≈10x slower at 0.5 V");
        assert!(t16 < t12);
        let (e05, e12, e16) = (
            m.energy(k, 0.5, M16),
            m.energy(k, 1.2, M16),
            m.energy(k, 1.6, M16),
        );
        assert!(e05 < 0.4 * e12, "much cheaper at 0.5 V");
        assert!(e16 > e12, "more expensive at 1.6 V");
        // frozen below 0.34 V
        assert!(m.computation_time(k, 0.3, M16).is_infinite());
        assert!(m.energy(k, 0.3, M16).is_infinite());
    }

    #[test]
    fn time_and_energy_scale_linearly_with_depth() {
        let m = ChipTimingModel::paper_calibrated();
        let kind = |d| PipelineKind::Reconfigurable {
            depth: d,
            sync: SyncStyle::DaisyChain,
        };
        for v in [0.5, 0.8, 1.2] {
            let times: Vec<f64> = (3..=18)
                .map(|d| m.computation_time(kind(d), v, M16))
                .collect();
            let diffs: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
            let first = diffs[0];
            assert!(
                diffs
                    .iter()
                    .all(|d| (d - first).abs() < 1e-9 * first.abs().max(1.0)),
                "constant increments = linear in depth at {v} V"
            );
        }
        // the slope shrinks as the voltage rises (§IV: "the slope of
        // increment is reverse-proportional to the supply voltage")
        let slope =
            |v: f64| m.computation_time(kind(18), v, M16) - m.computation_time(kind(17), v, M16);
        assert!(slope(0.5) > slope(0.8) && slope(0.8) > slope(1.2));
    }

    #[test]
    fn power_trace_shows_freeze_and_recovery() {
        let m = ChipTimingModel::paper_calibrated();
        let kind = PipelineKind::Reconfigurable {
            depth: 18,
            sync: SyncStyle::DaisyChain,
        };
        // Fig. 9b: start at 0.5 V, step down to 0.34 V (freeze), recover
        let profile =
            VoltageProfile::Steps(vec![(0.0, 0.5), (20.0, 0.45), (35.0, 0.34), (50.0, 0.5)]);
        // pick a count that finishes after recovery
        let items = (30.0 / m.cycle_time(kind, 0.5)) as u64;
        let (trace, finished) = m.power_trace(kind, &profile, items, 5.0, 80.0, 0.1);
        let finish = finished.expect("must complete after recovery");
        assert!(finish > 50.0, "completion only after the supply recovers");
        // during the freeze the power equals the leakage floor
        let frozen_sample = trace
            .time
            .iter()
            .position(|&t| t > 40.0 && t < 49.0)
            .unwrap();
        let floor = m.leakage_power(0.34);
        assert!((trace.power[frozen_sample] - floor).abs() < 1e-9);
        // while computing at 0.5 V the power is well above the floor
        let computing_sample = trace.time.iter().position(|&t| t > 6.0).unwrap();
        assert!(trace.power[computing_sample] > 5.0 * floor);
        // idle before start: leakage at 0.5 V only
        let idle = trace.time.iter().position(|&t| t > 1.0).unwrap();
        assert!((trace.power[idle] - m.leakage_power(0.5)).abs() < 1e-12);
    }
}
