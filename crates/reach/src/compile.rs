//! Name resolution and quantifier expansion.
//!
//! Compilation turns the textual AST into a tree over dense [`PlaceId`] /
//! [`TransitionId`] atoms, expanding quantifiers against the net's name
//! tables, so that evaluation per marking is a fast tree walk with no string
//! handling.

use crate::ast::{Expr, NameRef, SetKind};
use crate::glob::glob_match;
use crate::ReachError;
use rap_petri::{Marking, PetriNet, PlaceId, TransitionId};
use std::collections::HashMap;

/// A predicate resolved against a concrete net; evaluate with
/// [`CompiledPredicate::eval`].
#[derive(Debug, Clone)]
pub struct CompiledPredicate {
    root: Node,
}

#[derive(Debug, Clone)]
enum Node {
    Const(bool),
    Marked(PlaceId),
    Enabled(TransitionId),
    Not(Box<Node>),
    And(Box<Node>, Box<Node>),
    Or(Box<Node>, Box<Node>),
    Xor(Box<Node>, Box<Node>),
}

impl CompiledPredicate {
    /// Evaluates the predicate in `marking`.
    ///
    /// `net` is needed for `enabled(..)` atoms; it must be the same net the
    /// predicate was compiled against.
    #[must_use]
    pub fn eval(&self, net: &PetriNet, marking: &Marking) -> bool {
        eval_node(&self.root, net, marking)
    }
}

fn eval_node(n: &Node, net: &PetriNet, m: &Marking) -> bool {
    match n {
        Node::Const(b) => *b,
        Node::Marked(p) => m.is_marked(*p),
        Node::Enabled(t) => net.is_enabled(*t, m),
        Node::Not(e) => !eval_node(e, net, m),
        Node::And(a, b) => eval_node(a, net, m) && eval_node(b, net, m),
        Node::Or(a, b) => eval_node(a, net, m) || eval_node(b, net, m),
        Node::Xor(a, b) => eval_node(a, net, m) ^ eval_node(b, net, m),
    }
}

/// The value a quantifier variable is currently bound to.
#[derive(Clone, Copy)]
enum Binding {
    Place(PlaceId),
    Transition(TransitionId),
}

pub(crate) fn compile(expr: &Expr, net: &PetriNet) -> Result<CompiledPredicate, ReachError> {
    let mut env = HashMap::new();
    let root = lower(expr, net, &mut env)?;
    Ok(CompiledPredicate { root })
}

fn lower(
    expr: &Expr,
    net: &PetriNet,
    env: &mut HashMap<String, Binding>,
) -> Result<Node, ReachError> {
    Ok(match expr {
        Expr::Const(b) => Node::Const(*b),
        Expr::Marked(name) => Node::Marked(resolve_place(name, net, env)?),
        Expr::Enabled(name) => Node::Enabled(resolve_transition(name, net, env)?),
        Expr::Not(e) => Node::Not(Box::new(lower(e, net, env)?)),
        Expr::And(a, b) => Node::And(Box::new(lower(a, net, env)?), Box::new(lower(b, net, env)?)),
        Expr::Or(a, b) => Node::Or(Box::new(lower(a, net, env)?), Box::new(lower(b, net, env)?)),
        Expr::Xor(a, b) => Node::Xor(Box::new(lower(a, net, env)?), Box::new(lower(b, net, env)?)),
        Expr::Imp(a, b) => Node::Or(
            Box::new(Node::Not(Box::new(lower(a, net, env)?))),
            Box::new(lower(b, net, env)?),
        ),
        Expr::Iff(a, b) => Node::Not(Box::new(Node::Xor(
            Box::new(lower(a, net, env)?),
            Box::new(lower(b, net, env)?),
        ))),
        Expr::Forall {
            var,
            set,
            pattern,
            body,
        } => expand_quantifier(net, env, var, *set, pattern, body, true)?,
        Expr::Exists {
            var,
            set,
            pattern,
            body,
        } => expand_quantifier(net, env, var, *set, pattern, body, false)?,
    })
}

#[allow(clippy::too_many_arguments)]
fn expand_quantifier(
    net: &PetriNet,
    env: &mut HashMap<String, Binding>,
    var: &str,
    set: SetKind,
    pattern: &str,
    body: &Expr,
    conjunctive: bool,
) -> Result<Node, ReachError> {
    let bindings: Vec<Binding> = match set {
        SetKind::Places => net
            .places()
            .filter(|&p| glob_match(pattern, &net.place(p).name))
            .map(Binding::Place)
            .collect(),
        SetKind::Transitions => net
            .transitions()
            .filter(|&t| glob_match(pattern, &net.transition(t).name))
            .map(Binding::Transition)
            .collect(),
    };
    // Empty range: forall over nothing is true, exists is false.
    let mut acc = Node::Const(conjunctive);
    let shadowed = env.get(var).copied();
    let mut first = true;
    for b in bindings {
        env.insert(var.to_string(), b);
        let lowered = lower(body, net, env)?;
        acc = if first {
            first = false;
            lowered
        } else if conjunctive {
            Node::And(Box::new(acc), Box::new(lowered))
        } else {
            Node::Or(Box::new(acc), Box::new(lowered))
        };
    }
    match shadowed {
        Some(b) => {
            env.insert(var.to_string(), b);
        }
        None => {
            env.remove(var);
        }
    }
    Ok(acc)
}

fn resolve_place(
    name: &NameRef,
    net: &PetriNet,
    env: &HashMap<String, Binding>,
) -> Result<PlaceId, ReachError> {
    match name {
        NameRef::Literal(s) => net.place_by_name(s).ok_or_else(|| ReachError::UnknownName {
            name: s.clone(),
            kind: "place",
        }),
        NameRef::Var(v) => match env.get(v) {
            Some(Binding::Place(p)) => Ok(*p),
            Some(Binding::Transition(_)) => Err(ReachError::KindMismatch { var: v.clone() }),
            None => Err(ReachError::UnboundVariable { var: v.clone() }),
        },
    }
}

fn resolve_transition(
    name: &NameRef,
    net: &PetriNet,
    env: &HashMap<String, Binding>,
) -> Result<TransitionId, ReachError> {
    match name {
        NameRef::Literal(s) => net
            .transition_by_name(s)
            .ok_or_else(|| ReachError::UnknownName {
                name: s.clone(),
                kind: "transition",
            }),
        NameRef::Var(v) => match env.get(v) {
            Some(Binding::Transition(t)) => Ok(*t),
            Some(Binding::Place(_)) => Err(ReachError::KindMismatch { var: v.clone() }),
            None => Err(ReachError::UnboundVariable { var: v.clone() }),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Predicate;

    fn demo_net() -> PetriNet {
        let mut net = PetriNet::new();
        let a = net.add_place("Mt_a_1", true);
        net.add_place("Mt_b_1", false);
        net.add_place("Mf_a_1", false);
        let t = net.add_transition("go");
        net.read(t, a);
        net
    }

    fn eval(src: &str, net: &PetriNet) -> bool {
        let pred = Predicate::parse(src).unwrap();
        pred.compile(net).unwrap().eval(net, &net.initial_marking())
    }

    #[test]
    fn literals_and_operators() {
        let net = demo_net();
        assert!(eval(r#"marked("Mt_a_1")"#, &net));
        assert!(!eval(r#"marked("Mt_b_1")"#, &net));
        assert!(eval(r#"marked("Mt_a_1") & !marked("Mt_b_1")"#, &net));
        assert!(eval(r#"marked("Mt_b_1") | true"#, &net));
        assert!(eval(r#"marked("Mt_a_1") ^ marked("Mt_b_1")"#, &net));
        assert!(eval(r#"marked("Mt_b_1") -> false"#, &net));
        assert!(eval(r#"marked("Mt_a_1") <-> true"#, &net));
    }

    #[test]
    fn enabled_atom() {
        let net = demo_net();
        assert!(eval(r#"enabled("go")"#, &net));
    }

    #[test]
    fn forall_expands_over_glob() {
        let net = demo_net();
        // Mt_a_1 is marked, Mt_b_1 is not => forall is false, exists is true
        assert!(!eval(r#"forall p in places("Mt_*"): marked(p)"#, &net));
        assert!(eval(r#"exists p in places("Mt_*"): marked(p)"#, &net));
        // empty range
        assert!(eval(r#"forall p in places("ZZZ*"): marked(p)"#, &net));
        assert!(!eval(r#"exists p in places("ZZZ*"): marked(p)"#, &net));
    }

    #[test]
    fn nested_quantifiers_shadow() {
        let net = demo_net();
        // inner p shadows outer p; expression is well-formed and evaluates
        let src =
            r#"exists p in places("Mt_a_1"): (marked(p) & forall p in places("Mf_*"): !marked(p))"#;
        assert!(eval(src, &net));
    }

    #[test]
    fn unknown_names_error() {
        let net = demo_net();
        let pred = Predicate::parse(r#"marked("nope")"#).unwrap();
        assert_eq!(
            pred.compile(&net).unwrap_err(),
            ReachError::UnknownName {
                name: "nope".into(),
                kind: "place"
            }
        );
        let pred = Predicate::parse(r#"enabled("nope")"#).unwrap();
        assert!(matches!(
            pred.compile(&net).unwrap_err(),
            ReachError::UnknownName { .. }
        ));
    }

    #[test]
    fn kind_mismatch_and_unbound() {
        let net = demo_net();
        let pred = Predicate::parse(r#"forall t in transitions("*"): marked(t)"#).unwrap();
        assert!(matches!(
            pred.compile(&net).unwrap_err(),
            ReachError::KindMismatch { .. }
        ));
        let pred = Predicate::parse(r#"marked(q)"#).unwrap();
        assert!(matches!(
            pred.compile(&net).unwrap_err(),
            ReachError::UnboundVariable { .. }
        ));
    }

    #[test]
    fn witness_search_finds_shortest() {
        use rap_petri::reachability::{explore, ExploreConfig};
        let mut net = PetriNet::new();
        let a = net.add_place("a", true);
        let b = net.add_place("b", false);
        let c = net.add_place("c", false);
        let t1 = net.add_transition("t1");
        net.consume(t1, a);
        net.produce(t1, b);
        let t2 = net.add_transition("t2");
        net.consume(t2, b);
        net.produce(t2, c);
        let space = explore(&net, ExploreConfig::default()).unwrap();
        let pred = Predicate::parse(r#"marked("c")"#)
            .unwrap()
            .compile(&net)
            .unwrap();
        let w = crate::find_witness(&net, &space, &pred).unwrap();
        assert_eq!(w.trace, vec![t1, t2]);
    }
}
