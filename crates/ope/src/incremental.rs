//! Rank-reuse sliding-window encoder.
//!
//! "Ranks of elements in a window are calculated concurrently and the
//! produced rank list is reused when processing the next window" (§III-A).
//! When the window slides, the full `O(N log N)`-per-window sort is
//! unnecessary: removing the oldest item decrements every rank above its
//! rank, and inserting the new item (always at the *end*, so ties keep it
//! last) increments the ranks of all strictly-greater items. Both passes
//! are `O(N)` — and map onto `N` concurrent pipeline stages in hardware,
//! which is the accelerator's core idea (Guo et al., ref. \[9\]).

/// Incremental OPE encoder maintaining the current window and its rank
/// list.
#[derive(Debug, Clone)]
pub struct IncrementalOpe {
    window: Vec<u16>,
    ranks: Vec<u16>,
    n: usize,
}

impl IncrementalOpe {
    /// Creates an encoder with window size `n`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "window size must be positive");
        IncrementalOpe {
            window: Vec::with_capacity(n),
            ranks: Vec::with_capacity(n),
            n,
        }
    }

    /// The current rank list (meaningful once warm).
    #[must_use]
    pub fn ranks(&self) -> &[u16] {
        &self.ranks
    }

    /// Is the window full?
    #[must_use]
    pub fn is_warm(&self) -> bool {
        self.window.len() == self.n
    }

    /// Feeds one item; returns the newest item's rank once warm.
    pub fn push(&mut self, x: u16) -> Option<u16> {
        if self.window.len() == self.n {
            // retire the oldest: ranks above its rank drop by one
            let old_rank = self.ranks[0];
            self.window.remove(0);
            self.ranks.remove(0);
            for r in &mut self.ranks {
                if *r > old_rank {
                    *r -= 1;
                }
            }
        }
        // insert the new item at the end: its rank counts strictly-smaller
        // items plus *all* equal ones (they all precede it); existing items
        // strictly greater shift up by one
        let less = self.window.iter().filter(|&&y| y < x).count();
        let equal = self.window.iter().filter(|&&y| y == x).count();
        let new_rank = (less + equal + 1) as u16;
        for (w, r) in self.window.iter().zip(self.ranks.iter_mut()) {
            if *w > x {
                *r += 1;
            }
        }
        self.window.push(x);
        self.ranks.push(new_rank);
        self.is_warm().then_some(new_rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{rank_list, ReferenceEncoder};

    #[test]
    fn matches_reference_on_paper_stream() {
        let stream = [3u16, 1, 4, 1, 5, 9, 2, 6];
        let mut inc = IncrementalOpe::new(6);
        let mut reference = ReferenceEncoder::new(6);
        for &x in &stream {
            assert_eq!(inc.push(x), reference.push(x));
        }
        // final full rank list matches the last row of the paper's table
        assert_eq!(inc.ranks(), &[3, 1, 4, 6, 2, 5]);
    }

    #[test]
    fn rank_list_tracks_reference_exactly() {
        // deterministic pseudo-random stream with many ties
        let mut seed = 0x1234_5678u32;
        let mut stream = Vec::new();
        for _ in 0..200 {
            seed = seed.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            stream.push((seed >> 24) as u16 % 8);
        }
        let n = 5;
        let mut inc = IncrementalOpe::new(n);
        for (i, &x) in stream.iter().enumerate() {
            inc.push(x);
            if i + 1 >= n {
                let window = &stream[i + 1 - n..=i];
                assert_eq!(inc.ranks(), rank_list(window), "window at {i}");
            }
        }
    }

    #[test]
    fn window_size_one() {
        let mut inc = IncrementalOpe::new(1);
        assert_eq!(inc.push(42), Some(1));
        assert_eq!(inc.push(7), Some(1));
    }
}
