//! Store-backed sessions: cold / warm / restart coherence.
//!
//! The contract under test: a persistent session returns bit-identical
//! artifacts to a memory-only session in every generation, and the
//! [`SessionStats`] counters (query, computation and store counters) add
//! up exactly across a cold run, a warm re-query, and a process-restart
//! re-run over the same store directory.

use dfs_core::{Dfs, DfsBuilder, NodeId};
use rap_session::Session;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("rap-session-test-{}-{}", std::process::id(), tag))
}

struct TempDir(std::path::PathBuf);

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A marked ring with a logic stage — all four persisted queries succeed.
fn model() -> (Dfs, NodeId) {
    let mut b = DfsBuilder::new();
    let a = b.register("a").marked().build();
    let f = b.logic("f").build();
    let c = b.register("b").build();
    let d = b.register("c").build();
    b.connect(a, f);
    b.connect(f, c);
    b.connect(c, d);
    b.connect(d, a);
    (b.finish().unwrap(), a)
}

const BUDGET: usize = 10_000;
const MARKS: u64 = 64;

struct Answers {
    period_bits: u64,
    activity_bits: Vec<u64>,
    check: rap_petri::analysis::QuickCheck,
    area_bits: u64,
    switched_bits: u64,
    steady_bits: u64,
}

fn query_all(session: &Session, dfs: &Dfs, out: NodeId) -> Answers {
    let m = session.compile(dfs);
    let detail = m.perf_detail().unwrap();
    let cost = m.cost(&rap_session::CostModel::default()).unwrap();
    let steady = m.steady_period(out, MARKS).unwrap();
    Answers {
        period_bits: detail.report.period.to_bits(),
        activity_bits: detail
            .activity_per_item
            .iter()
            .map(|a| a.to_bits())
            .collect(),
        check: (*m.quick_check(BUDGET)).clone(),
        area_bits: cost.area.to_bits(),
        switched_bits: cost.switched_ge_per_item.to_bits(),
        steady_bits: steady.period.to_bits(),
    }
}

fn assert_same(a: &Answers, b: &Answers) {
    assert_eq!(a.period_bits, b.period_bits);
    assert_eq!(a.activity_bits, b.activity_bits);
    assert_eq!(a.check, b.check);
    assert_eq!(a.area_bits, b.area_bits);
    assert_eq!(a.switched_bits, b.switched_bits);
    assert_eq!(a.steady_bits, b.steady_bits);
}

#[test]
fn cold_warm_restart_counters_add_up_and_answers_are_bit_identical() {
    let dir = TempDir(temp_dir("coldwarmrestart"));
    let (dfs, out) = model();

    // the reference: a fresh memory-only session
    let reference = query_all(&Session::new(), &dfs, out);

    // ---- cold: empty store — every query misses disk, computes, persists
    let cold_answers;
    let warm_answers;
    {
        let session = Session::open(&dir.0).unwrap();
        cold_answers = query_all(&session, &dfs, out);
        let cold = session.stats();
        // perf, check, cost, steady: one disk miss each, then a commit each
        assert_eq!(cold.store.disk_misses, 4);
        assert_eq!(cold.store.disk_hits, 0);
        assert_eq!(cold.store.corrupt_recovered, 0);
        assert_eq!(cold.store.write_errors, 0);
        assert!(cold.store.bytes_written > 0);
        assert_eq!(cold.store.bytes_read, 0);
        assert_eq!(cold.queries.perf_analyses, 1);
        assert_eq!(cold.queries.check_runs, 1);
        assert_eq!(cold.queries.cost_evaluations, 1);
        assert_eq!(cold.queries.steady_measurements, 1);

        // ---- warm: same session — memory cache serves, store untouched
        warm_answers = query_all(&session, &dfs, out);
        let warm = session.stats();
        assert_eq!(warm.store, cold.store, "warm queries never touch disk");
        assert_eq!(warm.queries.computations(), cold.queries.computations());
        assert_eq!(
            warm.queries.queries(),
            cold.queries.queries() + 4,
            "warm re-queries the four top-level artifacts; the cached slots \
             demand nothing further (no petri, no nested perf)"
        );
    }

    // ---- restart: new session over the same directory — zero computations
    let session = Session::open(&dir.0).unwrap();
    let restart_answers = query_all(&session, &dfs, out);
    let restart = session.stats();
    assert_eq!(restart.store.disk_hits, 4, "every artifact loads from disk");
    assert_eq!(restart.store.disk_misses, 0);
    assert_eq!(
        restart.store.bytes_written, 0,
        "nothing recomputed, nothing rewritten"
    );
    assert!(restart.store.bytes_read > 0);
    assert_eq!(
        restart.queries.computations(),
        0,
        "restart performs zero computations"
    );
    assert_eq!(restart.queries.perf_analyses, 0);
    assert_eq!(restart.queries.check_runs, 0);
    assert_eq!(
        restart.queries.petri_queries, 0,
        "a disk-served check never demands the translation"
    );

    assert_same(&reference, &cold_answers);
    assert_same(&reference, &warm_answers);
    assert_same(&reference, &restart_answers);
}

#[test]
fn open_or_memory_degrades_to_memory_when_locked() {
    let dir = TempDir(temp_dir("degrade"));
    let holder = Session::open(&dir.0).unwrap();
    // second opener: the directory is locked by a live process (us)
    assert!(matches!(
        Session::open(&dir.0),
        Err(rap_session::StoreError::Locked { .. })
    ));
    let degraded = Session::open_or_memory(&dir.0);
    assert!(degraded.store().is_none(), "fell back to memory-only");
    // degradation changes cost, never answers
    let (dfs, out) = model();
    assert_same(
        &query_all(&holder, &dfs, out),
        &query_all(&degraded, &dfs, out),
    );
    assert_eq!(degraded.stats().store, rap_session::StoreStats::default());
}

#[test]
fn distinct_budgets_and_models_get_distinct_frames() {
    let dir = TempDir(temp_dir("distinct"));
    let (dfs, _) = model();
    {
        let session = Session::open(&dir.0).unwrap();
        let m = session.compile(&dfs);
        let c1 = m.quick_check(1_000);
        let c2 = m.quick_check(2_000);
        // budgets are part of the artifact key, so both persist
        assert_eq!(session.stats().store.disk_misses, 2);
        drop((c1, c2));
    }
    let session = Session::open(&dir.0).unwrap();
    let m = session.compile(&dfs);
    let _ = m.quick_check(1_000);
    let _ = m.quick_check(2_000);
    let stats = session.stats();
    assert_eq!(stats.store.disk_hits, 2);
    assert_eq!(stats.queries.check_runs, 0);
}
