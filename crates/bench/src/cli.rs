//! Shared command-line handling for the experiment binaries.
//!
//! Every binary in `src/bin/` accepts the same standard options:
//!
//! * `--quick` — shrink the run to a sub-second CI smoke configuration
//!   (binaries whose full run is already instant accept the flag for
//!   uniformity and say so in their module docs);
//! * `--out PATH` — for binaries that persist a `BENCH_*.json` document,
//!   override the output path (default: the file at the repository root);
//! * `--cache DIR` — for binaries that sweep through a persistent
//!   [`rap_session::Session`](../../rap_session/struct.Session.html)
//!   (currently `dse_pareto`), keep the artifact store at `DIR` so
//!   re-invocations start disk-warm (default: a scratch store discarded
//!   after the run);
//! * `--trace-out PATH` — attach a live [`rap_obs::Collector`] to the run
//!   and write the resulting `rap/trace/v1` document (see
//!   [`crate::trace`]) to `PATH`. Every binary accepts this; recording is
//!   observation-only, so the benchmark's reported numbers and emitted
//!   `BENCH_*.json` are unchanged by it.
//!
//! Anything else exits with status 2 and a usage line naming the binary —
//! previously every JSON-emitting binary hand-rolled this loop, and the
//! others accepted no arguments at all (silently ignoring typos was never
//! possible, but adding an option meant another copy of the loop).

use std::path::PathBuf;

/// Parsed standard options of one experiment binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchCli {
    /// `--quick`: run the sub-second smoke configuration.
    pub quick: bool,
    /// `--cache DIR`: persistent artifact-store directory (only on
    /// binaries that opt in; `None` = scratch store).
    pub cache: Option<PathBuf>,
    /// `--trace-out PATH`: write a `rap/trace/v1` trace of the run to
    /// `PATH` (`None` = no recorder attached, tracing compiles to
    /// nothing on the hot paths).
    pub trace_out: Option<PathBuf>,
    out: Option<PathBuf>,
    default_out: Option<&'static str>,
    accepts_cache: bool,
}

impl BenchCli {
    /// The output path: `--out` if given, else the declared default file
    /// at the repository root.
    ///
    /// # Panics
    ///
    /// Panics if the binary declared no default output file (such
    /// binaries reject `--out` at parse time, so this is a programming
    /// error, not a user error).
    #[must_use]
    pub fn out_path(&self) -> PathBuf {
        match (&self.out, self.default_out) {
            (Some(path), _) => path.clone(),
            (None, Some(default)) => {
                // crates/bench/../../ = the repository root
                PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../{default}"))
            }
            (None, None) => unreachable!("out_path() on a binary without a default output file"),
        }
    }

    fn usage(bin: &str, default_out: Option<&'static str>, accepts_cache: bool) -> String {
        let cache = if accepts_cache { " [--cache DIR]" } else { "" };
        match default_out {
            Some(file) => {
                format!(
                    "usage: {bin} [--quick] [--out PATH]{cache} [--trace-out PATH]   (default out: {file})"
                )
            }
            None => format!("usage: {bin} [--quick]{cache} [--trace-out PATH]"),
        }
    }

    /// Parses `args` (without the program name). `default_out` declares
    /// the binary's output file at the repository root; `None` means the
    /// binary writes no file and `--out` is rejected.
    ///
    /// # Errors
    ///
    /// A usage message on an unknown argument, a missing `--out` operand,
    /// or `--out` passed to a binary without an output file.
    pub fn parse_from(
        bin: &str,
        default_out: Option<&'static str>,
        args: impl IntoIterator<Item = String>,
    ) -> Result<BenchCli, String> {
        Self::parse_from_with(bin, default_out, false, args)
    }

    /// [`parse_from`](Self::parse_from) for binaries that additionally
    /// accept `--cache DIR` (a persistent artifact-store directory).
    ///
    /// # Errors
    ///
    /// See [`parse_from`](Self::parse_from); additionally a missing
    /// `--cache` operand.
    pub fn parse_from_with(
        bin: &str,
        default_out: Option<&'static str>,
        accepts_cache: bool,
        args: impl IntoIterator<Item = String>,
    ) -> Result<BenchCli, String> {
        let mut cli = BenchCli {
            quick: false,
            cache: None,
            trace_out: None,
            out: None,
            default_out,
            accepts_cache,
        };
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => cli.quick = true,
                "--out" if default_out.is_some() => {
                    let path = args.next().ok_or_else(|| {
                        format!(
                            "--out needs a path argument\n{}",
                            Self::usage(bin, default_out, accepts_cache)
                        )
                    })?;
                    cli.out = Some(PathBuf::from(path));
                }
                "--cache" if accepts_cache => {
                    let dir = args.next().ok_or_else(|| {
                        format!(
                            "--cache needs a directory argument\n{}",
                            Self::usage(bin, default_out, accepts_cache)
                        )
                    })?;
                    cli.cache = Some(PathBuf::from(dir));
                }
                "--trace-out" => {
                    let path = args.next().ok_or_else(|| {
                        format!(
                            "--trace-out needs a path argument\n{}",
                            Self::usage(bin, default_out, accepts_cache)
                        )
                    })?;
                    cli.trace_out = Some(PathBuf::from(path));
                }
                other => {
                    return Err(format!(
                        "unknown argument `{other}`\n{}",
                        Self::usage(bin, default_out, accepts_cache)
                    ));
                }
            }
        }
        Ok(cli)
    }

    /// Parses the process arguments; on error prints the usage line and
    /// exits with status 2 (the conventional bad-usage status every
    /// binary previously hand-rolled).
    #[must_use]
    pub fn parse(bin: &str, default_out: Option<&'static str>) -> BenchCli {
        Self::parse_from(bin, default_out, std::env::args().skip(1)).unwrap_or_else(|msg| {
            eprintln!("{msg}");
            std::process::exit(2);
        })
    }

    /// [`parse`](Self::parse) for binaries that additionally accept
    /// `--cache DIR`.
    #[must_use]
    pub fn parse_with_cache(bin: &str, default_out: Option<&'static str>) -> BenchCli {
        Self::parse_from_with(bin, default_out, true, std::env::args().skip(1)).unwrap_or_else(
            |msg| {
                eprintln!("{msg}");
                std::process::exit(2);
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn defaults_and_flags() {
        let cli = BenchCli::parse_from("b", Some("BENCH_x.json"), args(&[])).unwrap();
        assert!(!cli.quick);
        assert!(cli.out_path().ends_with("../../BENCH_x.json"));
        let cli = BenchCli::parse_from("b", Some("BENCH_x.json"), args(&["--quick"])).unwrap();
        assert!(cli.quick);
        let cli = BenchCli::parse_from("b", Some("BENCH_x.json"), args(&["--out", "/tmp/y.json"]))
            .unwrap();
        assert_eq!(cli.out_path(), PathBuf::from("/tmp/y.json"));
    }

    #[test]
    fn cache_flag_is_opt_in() {
        let cli = BenchCli::parse_from_with(
            "dse_pareto",
            Some("BENCH_dse.json"),
            true,
            args(&["--cache", "/tmp/c"]),
        )
        .unwrap();
        assert_eq!(cli.cache, Some(PathBuf::from("/tmp/c")));
        // binaries that did not opt in reject it and don't advertise it
        let err = BenchCli::parse_from("b", Some("BENCH_x.json"), args(&["--cache", "/tmp/c"]))
            .unwrap_err();
        assert!(err.contains("unknown argument `--cache`"));
        assert!(!err.contains("[--cache DIR]"));
        // missing operand
        let err = BenchCli::parse_from_with(
            "dse_pareto",
            Some("BENCH_dse.json"),
            true,
            args(&["--cache"]),
        )
        .unwrap_err();
        assert!(err.contains("--cache needs a directory argument"));
        assert!(err.contains("[--cache DIR]"));
    }

    #[test]
    fn trace_out_is_universal() {
        // accepted by output-file binaries …
        let cli = BenchCli::parse_from(
            "dse_pareto",
            Some("BENCH_dse.json"),
            args(&["--trace-out", "/tmp/t.json"]),
        )
        .unwrap();
        assert_eq!(cli.trace_out, Some(PathBuf::from("/tmp/t.json")));
        // … and by no-output binaries alike
        let cli = BenchCli::parse_from(
            "fig5_performance",
            None,
            args(&["--trace-out", "/tmp/t.json"]),
        )
        .unwrap();
        assert_eq!(cli.trace_out, Some(PathBuf::from("/tmp/t.json")));
        // missing operand names the flag and the usage line advertises it
        let err =
            BenchCli::parse_from("fig5_performance", None, args(&["--trace-out"])).unwrap_err();
        assert!(err.contains("--trace-out needs a path argument"));
        assert!(err.contains("[--trace-out PATH]"));
    }

    #[test]
    fn errors_name_the_binary_and_its_options() {
        let err =
            BenchCli::parse_from("fig5_performance", None, args(&["--frobnicate"])).unwrap_err();
        assert!(err.contains("--frobnicate"));
        assert!(err.contains("usage: fig5_performance [--quick]"));
        assert!(
            !err.contains("--out"),
            "no-output binaries must not advertise --out"
        );
        // --out is rejected where there is nothing to write
        let err =
            BenchCli::parse_from("fig5_performance", None, args(&["--out", "x"])).unwrap_err();
        assert!(err.contains("unknown argument `--out`"));
        // missing operand
        let err = BenchCli::parse_from("dse_pareto", Some("BENCH_dse.json"), args(&["--out"]))
            .unwrap_err();
        assert!(err.contains("--out needs a path argument"));
        assert!(err.contains("BENCH_dse.json"));
    }
}
