//! Regression locks on the reproduced paper results: each test pins one
//! quantitative claim from the evaluation (see EXPERIMENTS.md). If a model
//! change breaks a paper-level result, these fail.

use rap::ope::{ChipTimingModel, PipelineKind, SyncStyle};
use rap::silicon::VoltageProfile;

const M16: u64 = 16_000_000;

fn chain18() -> PipelineKind {
    PipelineKind::Reconfigurable {
        depth: 18,
        sync: SyncStyle::DaisyChain,
    }
}

#[test]
fn fig9a_reference_point() {
    let m = ChipTimingModel::paper_calibrated();
    let t = m.computation_time(PipelineKind::Static, 1.2, M16);
    let e = m.energy(PipelineKind::Static, 1.2, M16);
    assert!((t - 1.22).abs() / 1.22 < 0.01, "paper: 1.22 s, got {t}");
    assert!(
        (e - 2.74e-3).abs() / 2.74e-3 < 0.03,
        "paper: 2.74 mJ, got {e}"
    );
}

#[test]
fn fig9a_reconfigurability_costs() {
    let m = ChipTimingModel::paper_calibrated();
    let t_ref = m.computation_time(PipelineKind::Static, 1.2, M16);
    let e_ref = m.energy(PipelineKind::Static, 1.2, M16);
    let time_overhead = m.computation_time(chain18(), 1.2, M16) / t_ref - 1.0;
    let energy_overhead = m.energy(chain18(), 1.2, M16) / e_ref - 1.0;
    assert!(
        (0.34..=0.38).contains(&time_overhead),
        "paper: 36%, got {time_overhead}"
    );
    assert!(
        (0.03..=0.08).contains(&energy_overhead),
        "paper: 5%, got {energy_overhead}"
    );
    let tree = PipelineKind::Reconfigurable {
        depth: 18,
        sync: SyncStyle::Tree,
    };
    let tree_overhead = m.computation_time(tree, 1.2, M16) / t_ref - 1.0;
    assert!(tree_overhead < 0.10, "paper: <10%, got {tree_overhead}");
}

#[test]
fn fig9a_voltage_monotonicity() {
    // "the lower the voltage the slower, but at the same time more
    // energy-efficient, is the circuit" over the measured 0.5–1.6 V range
    let m = ChipTimingModel::paper_calibrated();
    let voltages = [0.5, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6];
    for w in voltages.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        assert!(
            m.computation_time(PipelineKind::Static, lo, M16)
                > m.computation_time(PipelineKind::Static, hi, M16),
            "slower at {lo} V than {hi} V"
        );
        assert!(
            m.energy(PipelineKind::Static, lo, M16) < m.energy(PipelineKind::Static, hi, M16),
            "cheaper at {lo} V than {hi} V"
        );
    }
}

#[test]
fn depth_scaling_is_linear_with_voltage_dependent_slope() {
    let m = ChipTimingModel::paper_calibrated();
    let kind = |d| PipelineKind::Reconfigurable {
        depth: d,
        sync: SyncStyle::DaisyChain,
    };
    let slope_at =
        |v: f64| m.computation_time(kind(18), v, M16) - m.computation_time(kind(17), v, M16);
    // linearity: constant increments
    for v in [0.5, 1.2] {
        let d1 = m.computation_time(kind(4), v, M16) - m.computation_time(kind(3), v, M16);
        let d2 = slope_at(v);
        assert!((d1 - d2).abs() < 1e-9 * d1.max(1e-12));
    }
    // slope inverse-proportional to supply
    assert!(slope_at(0.5) > slope_at(0.8));
    assert!(slope_at(0.8) > slope_at(1.2));
    assert!(slope_at(1.2) > slope_at(1.6));
}

#[test]
fn fig9b_freeze_and_recovery() {
    let m = ChipTimingModel::paper_calibrated();
    let profile = VoltageProfile::Steps(vec![(0.0, 0.5), (20.0, 0.34), (40.0, 0.5)]);
    let items = (25.0 / m.cycle_time(chain18(), 0.5)) as u64;
    let (trace, finished) = m.power_trace(chain18(), &profile, items, 1.0, 70.0, 0.25);
    let finish = finished.expect("completes after recovery");
    assert!(finish > 40.0);
    // frozen window: leakage floor only
    let idx = trace.time.iter().position(|&t| t > 30.0).unwrap();
    assert!((trace.power[idx] - m.leakage_power(0.34)).abs() < 1e-12);
    // computing at 0.5 V: at least an order of magnitude above the floor
    let idx = trace.time.iter().position(|&t| t > 2.0).unwrap();
    assert!(trace.power[idx] > 10.0 * m.leakage_power(0.34));
}

#[test]
fn sec3_table_is_exact() {
    let stream = [3u16, 1, 4, 1, 5, 9, 2, 6];
    let got: Vec<Vec<u16>> = rap::ope::reference::windows_ranked(&stream, 6).collect();
    assert_eq!(
        got,
        vec![
            vec![3, 1, 4, 2, 5, 6],
            vec![1, 4, 2, 5, 6, 3],
            vec![3, 1, 4, 6, 2, 5],
        ]
    );
    assert_eq!(
        rap::ope::reference::rank_list(&[2, 0, 1, 7]),
        vec![3, 1, 2, 4]
    );
}

/// Pins the corrected `fig5_performance` throughput numbers. The wagging
/// rows are the ones the pre-unfolding analysis silently got wrong (it
/// abstracted every way as always-included and under-reported the period);
/// pinning them — against both the analysis and the simulator's exact
/// steady-state oracle — keeps the experiment binaries from drifting back
/// to the optimistic bound.
#[test]
fn fig5_throughput_numbers_are_exact_and_pinned() {
    use rap::dfs::perf::{analyse, Construction};
    use rap::dfs::timed::{measure_steady_period, ChoicePolicy};
    use rap::dfs::wagging::wagged_pipeline;
    use rap::ope::dfs_model::{reconfigurable_ope_dfs, static_ope_dfs};

    // OPE pipeline rows (OPE stage latencies: f=1, g=2, reg=1, ctrl=0.5)
    let st = analyse(&static_ope_dfs(6).unwrap().dfs).unwrap();
    assert!((st.period - 25.0).abs() < 1e-9, "static OPE: {}", st.period);
    assert_eq!(st.construction, Construction::Direct);
    let rc = analyse(&reconfigurable_ope_dfs(6, 4).unwrap().dfs).unwrap();
    assert!(
        (rc.period - 19.0).abs() < 1e-9,
        "reconfigurable OPE depth 4: {}",
        rc.period
    );
    assert_eq!(rc.construction, Construction::PhaseUnfolded { phases: 1 });

    // wagging rows (replicated stage delay 8.0): 1-way period 20; 2-way
    // cuts it to 12 (environment-bound); a 3rd way buys nothing more
    for (ways, period) in [(1usize, 20.0), (2, 12.0), (3, 12.0)] {
        let w = wagged_pipeline(ways, 1, 8.0).unwrap();
        let rep = analyse(&w.dfs).unwrap();
        assert_eq!(
            rep.construction,
            Construction::PhaseUnfolded {
                phases: ways as u32
            }
        );
        assert!(
            (rep.period - period).abs() < 1e-9,
            "ways={ways}: analysis period {}",
            rep.period
        );
        let steady =
            measure_steady_period(&w.dfs, w.output, 200, ChoicePolicy::AlwaysTrue).unwrap();
        assert!(
            (steady.period - period).abs() < 1e-9,
            "ways={ways}: simulator period {}",
            steady.period
        );
    }
}

#[test]
fn fig1_bypass_beats_always_compute_at_low_hit_rates() {
    use rap::dfs::examples::{conditional_dfs, conditional_sdfs};
    use rap::dfs::timed::{measure_throughput, ChoicePolicy};
    let sdfs = conditional_sdfs(3, 5.0).unwrap();
    let dfs = conditional_dfs(3, 5.0).unwrap();
    let t_sdfs =
        measure_throughput(&sdfs.dfs, sdfs.output, 10, 100, ChoicePolicy::AlwaysTrue).unwrap();
    let t_dfs_bypass =
        measure_throughput(&dfs.dfs, dfs.output, 10, 100, ChoicePolicy::AlwaysFalse).unwrap();
    assert!(
        t_dfs_bypass > 2.0 * t_sdfs,
        "bypassing must be much faster than always computing: {t_dfs_bypass} vs {t_sdfs}"
    );
}
