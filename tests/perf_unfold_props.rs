//! Property tests for the phase-unfolded performance analysis.
//!
//! Two contracts:
//!
//! * On random **choice-free** shapes the phase unfolding must be a
//!   conservative extension: the unfolded graph's period equals the direct
//!   event graph's period exactly (the replay degenerates to the same
//!   marked graph, possibly replicated).
//! * On random **wagged** shapes (the choice structures the unfolding
//!   exists for) `perf::analyse` must equal the timed simulator's
//!   exact steady-state period — the full analysis == oracle contract on
//!   randomised instances, not just the pinned grid of
//!   `perf_cross_check.rs`.

use proptest::prelude::*;
use rap::dfs::perf::mcr::maximum_cycle_ratio;
use rap::dfs::perf::unfold::unfold;
use rap::dfs::perf::{analyse, Construction, EventGraph};
use rap::dfs::timed::{measure_steady_period, ChoicePolicy};
use rap::dfs::wagging::wagged_pipeline;
use rap::dfs::{Dfs, DfsBuilder, NodeId};

const DELAYS: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 4.0];

/// Random live ring: `n` registers, dyadic delays, token at 0 and (when the
/// spacing leaves three-register gaps) a second token opposite.
fn arb_ring() -> impl Strategy<Value = Dfs> {
    (
        3usize..9,
        proptest::collection::vec(0usize..DELAYS.len(), 9),
        any::<bool>(),
    )
        .prop_map(|(n, idx, two_tokens)| {
            let mut b = DfsBuilder::new();
            let second = if two_tokens && n >= 6 {
                Some(n / 2)
            } else {
                None
            };
            let regs: Vec<NodeId> = (0..n)
                .map(|i| {
                    let nb = b.register(format!("r{i}")).delay(DELAYS[idx[i]]);
                    if i == 0 || Some(i) == second {
                        nb.marked().build()
                    } else {
                        nb.build()
                    }
                })
                .collect();
            for i in 0..n {
                b.connect(regs[i], regs[(i + 1) % n]);
            }
            b.finish().unwrap()
        })
}

/// Random closed pipeline with logic between registers (a ring where every
/// other hop passes through a logic node of random delay).
fn arb_logic_ring() -> impl Strategy<Value = Dfs> {
    (
        2usize..5,
        proptest::collection::vec(0usize..DELAYS.len(), 8),
    )
        .prop_map(|(stages, idx)| {
            let mut b = DfsBuilder::new();
            let input = b.register("in").marked().delay(DELAYS[idx[0]]).build();
            let mut prev = input;
            for s in 0..stages {
                let f = b.logic(format!("f{s}")).delay(DELAYS[idx[s + 1]]).build();
                let r = b.register(format!("r{s}")).build();
                b.connect(prev, f);
                b.connect(f, r);
                prev = r;
            }
            // extra empty register keeps small instances bubble-live
            let buf = b.register("buf").build();
            b.connect(prev, buf);
            b.connect(buf, input);
            b.finish().unwrap()
        })
}

fn unfolded_period(dfs: &Dfs) -> f64 {
    let u = unfold(dfs).expect("live choice-free model unfolds");
    let sol = maximum_cycle_ratio(&u.graph).expect("unfolded graph is live");
    sol.ratio / f64::from(u.items_per_period)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Choice-free rings: unfolded period == direct event-graph period.
    #[test]
    fn random_rings_unfold_to_the_direct_period(dfs in arb_ring()) {
        let direct = maximum_cycle_ratio(&EventGraph::build(&dfs)).unwrap();
        let unfolded = unfolded_period(&dfs);
        prop_assert!(
            (unfolded - direct.ratio).abs() <= 1e-9 * direct.ratio.max(1.0),
            "unfolded {} vs direct {}", unfolded, direct.ratio
        );
        // and the public API picks the direct construction here
        let report = analyse(&dfs).unwrap();
        prop_assert_eq!(report.construction, Construction::Direct);
        prop_assert!((report.period - unfolded).abs() <= 1e-9 * unfolded.max(1.0));
    }

    /// Choice-free pipelines with logic: same conservative-extension check.
    #[test]
    fn random_logic_rings_unfold_to_the_direct_period(dfs in arb_logic_ring()) {
        let direct = maximum_cycle_ratio(&EventGraph::build(&dfs)).unwrap();
        let unfolded = unfolded_period(&dfs);
        prop_assert!(
            (unfolded - direct.ratio).abs() <= 1e-9 * direct.ratio.max(1.0),
            "unfolded {} vs direct {}", unfolded, direct.ratio
        );
    }

    /// Random wagged shapes: analysis == simulator steady-state period.
    #[test]
    fn random_wagged_shapes_match_the_simulator(
        ways in 1usize..4,
        depth in 1usize..3,
        delay_idx in 0usize..DELAYS.len(),
    ) {
        let w = wagged_pipeline(ways, depth, DELAYS[delay_idx]).unwrap();
        let report = analyse(&w.dfs).unwrap();
        let steady =
            measure_steady_period(&w.dfs, w.output, 500, ChoicePolicy::AlwaysTrue).unwrap();
        prop_assert!(
            (report.period - steady.period).abs() <= 1e-9 * steady.period.max(1.0),
            "ways={} depth={} delay={}: analysis {} vs steady {}",
            ways, depth, DELAYS[delay_idx], report.period, steady.period
        );
    }
}
