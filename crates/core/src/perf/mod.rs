//! Performance analysis of DFS models (Fig. 5 of the paper).
//!
//! The Workcraft tool "reports the throughput of the slowest cycles and
//! highlights the bottleneck nodes in each cycle". This module reproduces
//! that analysis:
//!
//! 1. The DFS model is compiled into an **event-precedence graph**: two
//!    vertices per node (`+` = evaluate/mark, `-` = reset/release), arcs for
//!    every enabling dependency of the operational semantics, each weighted
//!    by the target event's latency and carrying a *token offset* (how many
//!    occurrences apart the dependency acts — the max-plus initial marking).
//! 2. The steady-state period equals the **maximum cycle ratio**
//!    `Σdelay / Σtokens` over the cycles of that graph; throughput is its
//!    reciprocal. Two independent solvers are provided —
//!    [`mcr::maximum_cycle_ratio`] (parametric binary search over
//!    Bellman–Ford) and [`howard::howard_mcr`] (policy iteration) — and
//!    cross-checked against each other, against brute-force cycle
//!    enumeration and against the timed simulator in the test-suite.
//!
//! The event-graph construction covers both constraint families of the
//! spread-token semantics: the *forward* data dependencies and the
//! *backward* "bubble" dependencies (a register can only accept when its
//! R-postset is empty). The latter is why a 3-register ring with one token
//! has period `6·d` while a 4-register ring has period `4·d` — classic
//! asynchronous-ring behaviour that plain tokens-per-cycle counting misses.
//!
//! # Exactness contract
//!
//! The analysis is **exact** — not a bound — on every model whose choices
//! resolve deterministically under the `AlwaysTrue` free-choice policy (the
//! policy the timed simulator cross-checks use):
//!
//! * **Choice-free models** (logic + plain registers only) use the direct
//!   two-vertices-per-node construction of [`EventGraph::build`]
//!   ([`Construction::Direct`]).
//! * **Models with dynamic registers** — k-way wagging, round-robin
//!   distribution rings, reconfigurable stages with included *or excluded*
//!   configurations — are analysed on the **phase unfolding**
//!   ([`Construction::PhaseUnfolded`], [`mod@unfold`]): each event is
//!   replicated once per phase of the cyclic choice schedule, inter-phase
//!   dependencies are wired with token offsets that carry the wrap-around,
//!   and the resulting *choice-free* graph goes to the same MCR solvers.
//!   A k-way wagged pipeline, whose entry pushes accept a true token only
//!   every k-th item, is no longer flattened into an "always included"
//!   approximation — the former silent under-reporting of the period on
//!   multi-way wagging is gone.
//!
//! Exactness is certified by an independent oracle: the timed simulator's
//! steady-state period detection
//! ([`measure_steady_period`](crate::timed::measure_steady_period) finds an
//! exact recurrence of the timed configuration), and the two are asserted
//! equal in `tests/perf_cross_check.rs` for wagging up to 4 ways × depth 3.
//! [`PerfReport::construction`] records which construction produced a
//! report.
//!
//! Models whose free choices are *data-dependent* (a control register with
//! no upstream control sources) are analysed under the `AlwaysTrue`
//! resolution of those choices; other policies are the simulator's
//! territory.

pub mod howard;
pub mod mcr;
pub mod unfold;

use crate::graph::Dfs;
use crate::node::{NodeId, NodeKind};
use crate::DfsError;
use std::sync::OnceLock;

/// One vertex of the event graph: the `+` or `-` event of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventVertex {
    /// The DFS node.
    pub node: NodeId,
    /// `true` for the `+` (evaluate/mark) event, `false` for `-`.
    pub plus: bool,
}

/// A weighted arc of the event graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventArc {
    /// Source vertex index (into [`EventGraph::vertices`]).
    pub from: usize,
    /// Target vertex index.
    pub to: usize,
    /// Delay of the target event.
    pub weight: f64,
    /// Token offset of the dependency.
    pub tokens: u32,
}

/// The event-precedence graph of a DFS model.
#[derive(Debug, Clone, Default)]
pub struct EventGraph {
    /// Vertices: `2 * node_count`, `+` events first then `-` events is NOT
    /// the layout — vertex `2i` is `node i +`, vertex `2i+1` is `node i -`.
    pub vertices: Vec<EventVertex>,
    /// All dependency arcs.
    pub arcs: Vec<EventArc>,
    /// Lazily built forward adjacency (arc indices per source vertex),
    /// shared by every MCR solver instead of being rebuilt per call. Tagged
    /// with the arc count it was built from so stale use is caught.
    out_cache: OnceLock<(usize, Vec<Vec<usize>>)>,
}

impl EventGraph {
    /// Builds a graph from explicit vertex and arc lists (mostly for tests;
    /// models use [`EventGraph::build`]).
    #[must_use]
    pub fn new(vertices: Vec<EventVertex>, arcs: Vec<EventArc>) -> Self {
        EventGraph {
            vertices,
            arcs,
            out_cache: OnceLock::new(),
        }
    }

    /// Vertex index of node `n`'s `+` or `-` event.
    #[must_use]
    pub fn vertex(n: NodeId, plus: bool) -> usize {
        n.index() * 2 + usize::from(!plus)
    }

    /// Forward adjacency: for each vertex, the indices of its outgoing arcs.
    ///
    /// Built once on first use and cached — `howard_mcr`,
    /// `maximum_cycle_ratio` and `brute_force_mcr` all reuse it. Do not
    /// mutate `arcs` after the first call; the construction API builds the
    /// arc list up front.
    ///
    /// # Panics
    ///
    /// Panics if `arcs` grew or shrank since the cache was built (the
    /// mutate-after-analysis misuse a `OnceLock` cache cannot serve).
    #[must_use]
    pub fn out_adjacency(&self) -> &[Vec<usize>] {
        let (built_arcs, adj) = self.out_cache.get_or_init(|| {
            let mut out = vec![Vec::new(); self.vertices.len()];
            for (i, a) in self.arcs.iter().enumerate() {
                out[a.from].push(i);
            }
            (self.arcs.len(), out)
        });
        assert_eq!(
            *built_arcs,
            self.arcs.len(),
            "EventGraph::arcs was mutated after the adjacency cache was built"
        );
        adj
    }

    /// Builds the event graph of `dfs`.
    #[must_use]
    pub fn build(dfs: &Dfs) -> Self {
        let mut vertices = Vec::with_capacity(dfs.node_count() * 2);
        for n in dfs.nodes() {
            vertices.push(EventVertex {
                node: n,
                plus: true,
            });
            vertices.push(EventVertex {
                node: n,
                plus: false,
            });
        }
        let mut arcs = Vec::new();
        let m0 = |n: NodeId| u32::from(dfs.node(n).initial.is_marked());
        let mut push = |from: usize, to: usize, weight: f64, tokens: u32| {
            arcs.push(EventArc {
                from,
                to,
                weight,
                tokens,
            });
        };

        for v in dfs.nodes() {
            let d = dfs.node(v).delay;
            let vp = Self::vertex(v, true);
            let vm = Self::vertex(v, false);
            // self alternation: v+^k ; v-^k ; v+^(k+1)
            push(vp, vm, d, m0(v));
            push(vm, vp, d, 1 - m0(v));

            if dfs.kind(v) == NodeKind::Logic {
                // eval needs preset logic evaluated / registers marked;
                // reset needs the duals (eq. (1)); no postset conditions
                for e in dfs.preds(v) {
                    let u = e.node;
                    let up = Self::vertex(u, true);
                    let um = Self::vertex(u, false);
                    if dfs.kind(u) == NodeKind::Logic {
                        push(up, vp, d, 0);
                        push(um, vm, d, 0);
                    } else {
                        push(up, vp, d, m0(u));
                        push(um, vm, d, 0);
                    }
                }
            } else {
                // registers (eq. (2); dynamic nodes in their true-controlled
                // configuration behave identically for timing purposes)
                for e in dfs.preds(v) {
                    if dfs.kind(e.node) == NodeKind::Logic {
                        // (a') preset logic evaluated before mark,
                        // reset before release
                        push(Self::vertex(e.node, true), vp, d, 0);
                        push(Self::vertex(e.node, false), vm, d, m0(v));
                    }
                }
                for q in dedup(dfs.r_preset(v)) {
                    // (a) ?v marked before v+
                    push(Self::vertex(q, true), vp, d, m0(q));
                    // (d) ?v unmarked before v-
                    push(Self::vertex(q, false), vm, d, m0(v) * (1 - m0(q)));
                }
                for w in dedup(dfs.r_postset(v)) {
                    // (b) v? unmarked before v+
                    push(Self::vertex(w, false), vp, d, (1 - m0(w)) * (1 - m0(v)));
                    // (c) v? marked before v-; when both v and its postset
                    // register start marked, v's first release is enabled by
                    // w's *initial* token (w+^0), shifting the dependency by
                    // one occurrence — without this, adjacent initially
                    // marked registers look like a token-free cycle
                    push(Self::vertex(w, true), vm, d, m0(v) * m0(w));
                }
            }
        }
        EventGraph::new(vertices, arcs)
    }
}

/// Error of the raw MCR solvers ([`mcr::maximum_cycle_ratio`],
/// [`howard::howard_mcr`]).
///
/// Carries bare event-graph *vertex indices*: the solvers know nothing about
/// node names, and eagerly formatting placeholder labels (`"v17"`) on a path
/// that callers usually `?`-convert anyway was wasted work. Rendering
/// happens lazily at the boundary — [`analyse`] maps the indices to real
/// node event names (`"r1+"`) via the graph; the `From` fallback keeps the
/// `v{index}` form for contexts without a graph at hand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum McrError {
    /// A cycle with zero total tokens and positive total delay: the model
    /// cannot make progress around it (infinite period).
    TokenFreeCycle {
        /// Vertex indices on the offending cycle, in order.
        vertices: Vec<usize>,
    },
}

impl McrError {
    /// Renders the error against the model it came from, naming the events
    /// on the cycle (`"r1+"`, `"f-"`).
    #[must_use]
    pub fn into_dfs_error(self, dfs: &Dfs, g: &EventGraph) -> DfsError {
        match self {
            McrError::TokenFreeCycle { vertices } => DfsError::TokenFreeCycle {
                cycle: vertices
                    .iter()
                    .map(|&v| {
                        let ev = &g.vertices[v];
                        let sign = if ev.plus { '+' } else { '-' };
                        format!("{}{sign}", dfs.node(ev.node).name)
                    })
                    .collect(),
            },
        }
    }
}

impl From<McrError> for DfsError {
    fn from(e: McrError) -> Self {
        match e {
            McrError::TokenFreeCycle { vertices } => DfsError::TokenFreeCycle {
                cycle: vertices.iter().map(|v| format!("v{v}")).collect(),
            },
        }
    }
}

impl std::fmt::Display for McrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            McrError::TokenFreeCycle { vertices } => {
                write!(f, "cycle without tokens through event vertices ")?;
                for (i, v) in vertices.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "v{v}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for McrError {}

pub(crate) fn dedup(rs: &[crate::graph::RRef]) -> Vec<NodeId> {
    let mut v: Vec<NodeId> = rs.iter().map(|r| r.node).collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// Which event-graph construction produced a [`PerfReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Construction {
    /// The direct two-vertices-per-node graph of [`EventGraph::build`] —
    /// used for choice-free models (logic and plain registers only), where
    /// it is exact.
    Direct,
    /// The phase-unfolded graph of [`unfold::unfold`] — used whenever the
    /// model contains dynamic registers (control / push / pop), replicating
    /// events over the cyclic choice schedule so the analysis stays exact.
    PhaseUnfolded {
        /// Items (occurrences of the fastest event) per hyper-period of the
        /// unfolding — `k` for k-way wagging, `1` for constant-configured
        /// reconfigurable stages.
        phases: u32,
    },
}

/// `1 / period` with the degenerate cases pinned down: a zero period (no
/// constraining cycle) maps to infinite throughput, an infinite period
/// (token-free cycle) maps to zero — never NaN. Both [`PerfReport`] and
/// [`CriticalCycle::throughput`] go through this single guard.
#[must_use]
pub fn reciprocal_throughput(period: f64) -> f64 {
    if period > 0.0 {
        1.0 / period // 1/∞ = 0 handles the infinite-period case
    } else {
        f64::INFINITY
    }
}

/// A critical cycle of the analysis.
///
/// For a [`Construction::PhaseUnfolded`] report the cycle lives in the
/// unfolded graph: one token around it corresponds to one *hyper-period*
/// (`phases` items), so its ratio is `phases ×` the per-item period of the
/// report.
#[derive(Debug, Clone)]
pub struct CriticalCycle {
    /// Names of the nodes on the cycle, in order (deduplicated consecutive
    /// repeats of the same node's `+`/`-` events).
    pub nodes: Vec<String>,
    /// Total delay around the cycle.
    pub delay: f64,
    /// Total token offset around the cycle.
    pub tokens: u32,
    /// The bottleneck: the slowest node on the cycle.
    pub bottleneck: String,
}

impl CriticalCycle {
    /// Cycle period (delay / tokens): `∞` for a token-free cycle with
    /// positive delay, `0` for an empty/degenerate cycle.
    #[must_use]
    pub fn period(&self) -> f64 {
        if self.tokens > 0 {
            self.delay / f64::from(self.tokens)
        } else if self.delay > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    }

    /// Cycle throughput (tokens / delay), guarded exactly like
    /// [`PerfReport::throughput`]: `0` for a token-free cycle, `∞` for a
    /// degenerate zero-delay cycle — never NaN.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        reciprocal_throughput(self.period())
    }
}

/// Result of the performance analysis.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Steady-state period in time units per token (per item for
    /// phase-unfolded constructions).
    pub period: f64,
    /// Throughput, `1 / period` (guarded — see [`reciprocal_throughput`]).
    pub throughput: f64,
    /// The critical cycle achieving the period.
    pub critical: CriticalCycle,
    /// Which event-graph construction produced this report.
    pub construction: Construction,
}

/// A [`PerfReport`] together with the per-node steady-state **activity**:
/// how many times each node's `+` (evaluate/mark) event fires per item.
///
/// This is the cost hook the energy models build on: switching energy per
/// item is `Σ activity(n) · E_switch(n)`. The activity is exact — for
/// phase-unfolded constructions it is read off the unfolding (a node
/// replicated over `R` phases of a `k`-item hyper-period fires `R/k` times
/// per item; a node of an excluded stage that never fires contributes `0`),
/// and for choice-free models every node of the (live, strongly-connected)
/// marked graph fires exactly once per period.
#[derive(Debug, Clone)]
pub struct PerfDetail {
    /// The throughput analysis.
    pub report: PerfReport,
    /// Per node (indexed by [`NodeId::index`]): `+` firings per item.
    pub activity_per_item: Vec<f64>,
}

/// Analyses `dfs` and returns its exact steady-state throughput and
/// critical cycle.
///
/// Choice-free models go straight to the direct event graph; models with
/// dynamic registers are analysed on the phase unfolding (see the module
/// docs for the exactness contract and [`PerfReport::construction`] for the
/// provenance).
///
/// # Errors
///
/// * [`DfsError::TokenFreeCycle`] when a dependency cycle carries no
///   tokens — the model cannot make progress around that cycle (structural
///   deadlock, e.g. a ring with fewer than three registers).
/// * [`DfsError::SimulationStalled`] when the choice-schedule replay behind
///   the phase unfolding deadlocks (e.g. mismatched guards).
/// * [`DfsError::StateBudgetExceeded`] when that replay finds no periodic
///   schedule within its step budget.
pub fn analyse(dfs: &Dfs) -> Result<PerfReport, DfsError> {
    analyse_with_activity(dfs).map(|d| d.report)
}

/// [`analyse`] plus the exact per-node activity (see [`PerfDetail`]).
///
/// # Errors
///
/// Same conditions as [`analyse`].
pub fn analyse_with_activity(dfs: &Dfs) -> Result<PerfDetail, DfsError> {
    let choice_free = dfs
        .nodes()
        .all(|n| matches!(dfs.kind(n), NodeKind::Logic | NodeKind::Register));
    if choice_free {
        let g = EventGraph::build(dfs);
        let sol = mcr::maximum_cycle_ratio(&g).map_err(|e| e.into_dfs_error(dfs, &g))?;
        Ok(PerfDetail {
            report: report(dfs, &g, &sol, sol.ratio, Construction::Direct),
            activity_per_item: vec![1.0; dfs.node_count()],
        })
    } else {
        let u = unfold::unfold(dfs)?;
        let sol =
            mcr::maximum_cycle_ratio(&u.graph).map_err(|e| e.into_dfs_error(dfs, &u.graph))?;
        // the MCR of the unfolded graph is the duration of one hyper-period
        let items = f64::from(u.items_per_period.max(1));
        let period = sol.ratio / items;
        let mut activity = vec![0.0; dfs.node_count()];
        for v in &u.graph.vertices {
            if v.plus {
                activity[v.node.index()] += 1.0 / items;
            }
        }
        Ok(PerfDetail {
            report: report(
                dfs,
                &u.graph,
                &sol,
                period,
                Construction::PhaseUnfolded {
                    phases: u.items_per_period,
                },
            ),
            activity_per_item: activity,
        })
    }
}

fn report(
    dfs: &Dfs,
    g: &EventGraph,
    sol: &mcr::McrSolution,
    period: f64,
    construction: Construction,
) -> PerfReport {
    PerfReport {
        period,
        throughput: reciprocal_throughput(period),
        critical: describe_cycle(dfs, g, &sol.cycle, &sol.cycle_arcs),
        construction,
    }
}

pub(crate) fn describe_cycle(
    dfs: &Dfs,
    g: &EventGraph,
    cycle: &[usize],
    cycle_arcs: &[usize],
) -> CriticalCycle {
    let mut nodes: Vec<NodeId> = Vec::new();
    for &v in cycle {
        let n = g.vertices[v].node;
        if nodes.last() != Some(&n) {
            nodes.push(n);
        }
    }
    if nodes.len() > 1 && nodes.first() == nodes.last() {
        nodes.pop();
    }
    // sum over the arcs the solver actually traversed: a vertex-pair lookup
    // would pick an arbitrary member of a parallel-arc bundle and misreport
    // the cycle's delay/token totals
    let (delay, tokens) = mcr::cycle_totals(g, cycle_arcs);
    let bottleneck = nodes
        .iter()
        .copied()
        .max_by(|&a, &b| dfs.node(a).delay.total_cmp(&dfs.node(b).delay))
        .map(|n| dfs.node(n).name.clone())
        .unwrap_or_default();
    CriticalCycle {
        nodes: nodes
            .into_iter()
            .map(|n| dfs.node(n).name.clone())
            .collect(),
        delay,
        tokens,
        bottleneck,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfsBuilder;
    use crate::timed::{measure_throughput, ChoicePolicy};

    fn ring(n: usize, delays: &[f64]) -> Dfs {
        let mut b = DfsBuilder::new();
        let regs: Vec<NodeId> = (0..n)
            .map(|i| {
                let nb = b
                    .register(format!("r{i}"))
                    .delay(delays.get(i).copied().unwrap_or(1.0));
                if i == 0 {
                    nb.marked().build()
                } else {
                    nb.build()
                }
            })
            .collect();
        for i in 0..n {
            b.connect(regs[i], regs[(i + 1) % n]);
        }
        b.finish().unwrap()
    }

    #[test]
    fn analysis_matches_timed_simulation_on_rings() {
        for n in [3usize, 4, 5, 6, 8] {
            let dfs = ring(n, &[]);
            let report = analyse(&dfs).unwrap();
            let out = dfs.node_by_name("r0").unwrap();
            let measured = measure_throughput(&dfs, out, 10, 60, ChoicePolicy::AlwaysTrue).unwrap();
            assert!(
                (report.throughput - measured).abs() < 1e-6,
                "ring {n}: analysis {} vs simulated {measured}",
                report.throughput
            );
        }
    }

    #[test]
    fn analysis_matches_simulation_with_heterogeneous_delays() {
        let dfs = ring(3, &[1.0, 5.0, 1.0]);
        let report = analyse(&dfs).unwrap();
        let out = dfs.node_by_name("r0").unwrap();
        let measured = measure_throughput(&dfs, out, 10, 60, ChoicePolicy::AlwaysTrue).unwrap();
        assert!(
            (report.throughput - measured).abs() < 1e-6,
            "analysis {} vs simulated {measured}",
            report.throughput
        );
        assert_eq!(report.critical.bottleneck, "r1");
    }

    /// Parallel arcs between the same vertex pair (legal in unfolded and
    /// hand-built graphs) must be attributed via the solver's actual arc
    /// indices: a vertex-pair lookup would report the delay/tokens of an
    /// arbitrary bundle member.
    #[test]
    fn describe_cycle_resolves_parallel_arcs() {
        let mut b = DfsBuilder::new();
        let _ = b.register("a").marked().build();
        let dfs = b.finish().unwrap();
        let g = EventGraph::new(
            vec![
                EventVertex {
                    node: NodeId::from_index(0),
                    plus: true,
                },
                EventVertex {
                    node: NodeId::from_index(0),
                    plus: false,
                },
            ],
            vec![
                // light member of the parallel bundle listed first: a
                // first-match lookup would pick it and report delay 2
                EventArc {
                    from: 0,
                    to: 1,
                    weight: 1.0,
                    tokens: 1,
                },
                EventArc {
                    from: 0,
                    to: 1,
                    weight: 5.0,
                    tokens: 1,
                },
                EventArc {
                    from: 1,
                    to: 0,
                    weight: 1.0,
                    tokens: 0,
                },
            ],
        );
        for sol in [
            mcr::maximum_cycle_ratio(&g).unwrap(),
            howard::howard_mcr(&g).unwrap(),
        ] {
            assert!((sol.ratio - 6.0).abs() < 1e-9, "ratio {}", sol.ratio);
            let cycle = describe_cycle(&dfs, &g, &sol.cycle, &sol.cycle_arcs);
            assert!(
                (cycle.delay - 6.0).abs() < 1e-9,
                "cycle delay {} must come from the traversed heavy arc",
                cycle.delay
            );
            assert_eq!(cycle.tokens, 1);
            assert!((cycle.period() - sol.ratio).abs() < 1e-9);
        }
    }

    /// The degenerate-cycle guards: no NaN from `0/0`, zero throughput for
    /// token-free cycles, and the same guard on both `PerfReport` and
    /// `CriticalCycle`.
    #[test]
    fn zero_period_guard_is_unified() {
        let degenerate = CriticalCycle {
            nodes: Vec::new(),
            delay: 0.0,
            tokens: 0,
            bottleneck: String::new(),
        };
        assert_eq!(degenerate.period(), 0.0);
        assert_eq!(degenerate.throughput(), f64::INFINITY);
        let token_free = CriticalCycle {
            nodes: vec!["a".into()],
            delay: 3.0,
            tokens: 0,
            bottleneck: "a".into(),
        };
        assert_eq!(token_free.period(), f64::INFINITY);
        assert_eq!(token_free.throughput(), 0.0);
        assert_eq!(reciprocal_throughput(0.0), f64::INFINITY);
        assert_eq!(reciprocal_throughput(f64::INFINITY), 0.0);
        // an empty model exercises the zero-ratio path end to end: both the
        // report and its critical cycle agree on "infinitely fast"
        let empty = DfsBuilder::new().finish().unwrap();
        let report = analyse(&empty).unwrap();
        assert_eq!(report.period, 0.0);
        assert_eq!(report.throughput, f64::INFINITY);
        assert_eq!(report.critical.throughput(), f64::INFINITY);
        // and on a live model the two throughputs coincide
        let report = analyse(&ring(4, &[])).unwrap();
        assert!((report.throughput - report.critical.throughput()).abs() < 1e-9);
        assert_eq!(report.construction, Construction::Direct);
    }

    /// For a phase-unfolded report the critical cycle lives in the unfolded
    /// graph: one token there is one hyper-period, i.e. `phases` items.
    #[test]
    fn unfolded_critical_cycle_is_hyper_period_scaled() {
        let w = crate::wagging::wagged_pipeline(2, 1, 8.0).unwrap();
        let report = analyse(&w.dfs).unwrap();
        let Construction::PhaseUnfolded { phases } = report.construction else {
            panic!("wagging must unfold");
        };
        assert_eq!(phases, 2);
        assert!(
            (report.critical.period() - f64::from(phases) * report.period).abs() < 1e-6,
            "critical {} vs {} × {}",
            report.critical.period(),
            phases,
            report.period
        );
    }

    /// The exact activity hook: excluded stages contribute zero switching,
    /// wagged ways fire once every `k` items, choice-free nodes once per
    /// item.
    #[test]
    fn activity_reflects_the_configured_schedule() {
        // choice-free ring: everything fires once per item
        let d = analyse_with_activity(&ring(4, &[])).unwrap();
        assert!(d.activity_per_item.iter().all(|&a| (a - 1.0).abs() < 1e-12));

        // 2-way wagging: each way's registers fire every other item, the
        // environment once per item
        let w = crate::wagging::wagged_pipeline(2, 1, 8.0).unwrap();
        let d = analyse_with_activity(&w.dfs).unwrap();
        let act = |name: &str| d.activity_per_item[w.dfs.node_by_name(name).unwrap().index()];
        assert!((act("w0_r1") - 0.5).abs() < 1e-12, "{}", act("w0_r1"));
        assert!((act("w1_r1") - 0.5).abs() < 1e-12);
        assert!((act("in") - 1.0).abs() < 1e-12);
        assert!((act("agg") - 1.0).abs() < 1e-12);

        // reconfigurable pipeline, depth 1 of 3: the excluded stages' f
        // logic never switches, the included stage's does every item
        let p = crate::pipelines::build_pipeline(
            &crate::pipelines::PipelineSpec::reconfigurable_depth(3, 1).unwrap(),
        )
        .unwrap();
        let d = analyse_with_activity(&p.dfs).unwrap();
        let act = |name: &str| d.activity_per_item[p.dfs.node_by_name(name).unwrap().index()];
        assert!(
            (act("s1_f") - 1.0).abs() < 1e-12,
            "included f: {}",
            act("s1_f")
        );
        assert_eq!(act("s3_f"), 0.0, "excluded f must not switch");
        assert_eq!(act("s3_local_out"), 0.0);
        // activity agrees with the report from plain `analyse`
        assert!((d.report.period - analyse(&p.dfs).unwrap().period).abs() < 1e-12);
    }

    #[test]
    fn token_free_cycle_is_reported() {
        // unmarked ring: no progress possible
        let mut b = DfsBuilder::new();
        let r0 = b.register("r0").build();
        let r1 = b.register("r1").build();
        let r2 = b.register("r2").build();
        b.connect(r0, r1);
        b.connect(r1, r2);
        b.connect(r2, r0);
        let dfs = b.finish().unwrap();
        assert!(matches!(
            analyse(&dfs),
            Err(DfsError::TokenFreeCycle { .. })
        ));
    }

    #[test]
    fn more_tokens_raise_throughput_until_bubble_limit() {
        // 8-ring, 1 vs 2 tokens: doubling tokens doubles throughput while
        // bubbles are plentiful. (In a 6-ring two tokens leave only two
        // bubbles and the throughput does NOT improve — checked too.)
        let one = ring(8, &[]);
        let mk = |n: usize, step: usize| {
            let mut b = DfsBuilder::new();
            let regs: Vec<NodeId> = (0..n)
                .map(|i| {
                    let nb = b.register(format!("r{i}"));
                    if i % step == 0 {
                        nb.marked().build()
                    } else {
                        nb.build()
                    }
                })
                .collect();
            for i in 0..n {
                b.connect(regs[i], regs[(i + 1) % n]);
            }
            b.finish().unwrap()
        };
        let two = mk(8, 4);
        let t1 = analyse(&one).unwrap().throughput;
        let t2 = analyse(&two).unwrap().throughput;
        assert!((t1 - 0.125).abs() < 1e-9, "t1={t1}");
        assert!(t2 > t1 * 1.9, "t1={t1} t2={t2}");
        // bubble-limited case: 2 tokens in a 6-ring gain nothing
        let six_one = ring(6, &[]);
        let six_two = mk(6, 3);
        let b1 = analyse(&six_one).unwrap().throughput;
        let b2 = analyse(&six_two).unwrap().throughput;
        assert!((b1 - b2).abs() < 1e-9, "b1={b1} b2={b2}");
        // cross-check both against simulation
        for (dfs, expect) in [(&one, t1), (&two, t2)] {
            let out = dfs.node_by_name("r0").unwrap();
            let m = measure_throughput(dfs, out, 10, 60, ChoicePolicy::AlwaysTrue).unwrap();
            assert!((m - expect).abs() < 1e-6, "measured {m} expected {expect}");
        }
    }

    #[test]
    fn pipeline_with_logic_matches_simulation() {
        // ring with logic between registers
        let mut b = DfsBuilder::new();
        let r0 = b.register("r0").marked().delay(2.0).build();
        let f = b.logic("f").delay(3.0).build();
        let r1 = b.register("r1").build();
        let r2 = b.register("r2").build();
        b.connect(r0, f);
        b.connect(f, r1);
        b.connect(r1, r2);
        b.connect(r2, r0);
        let dfs = b.finish().unwrap();
        let report = analyse(&dfs).unwrap();
        let out = dfs.node_by_name("r0").unwrap();
        let measured = measure_throughput(&dfs, out, 10, 60, ChoicePolicy::AlwaysTrue).unwrap();
        assert!(
            (report.throughput - measured).abs() < 1e-6,
            "analysis {} vs simulated {measured}",
            report.throughput
        );
    }
}
