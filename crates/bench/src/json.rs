//! A minimal JSON reader for validating emitted benchmark files.
//!
//! The workspace is offline (no `serde_json`), and the only JSON we consume
//! is the schema check of our own `BENCH_*.json` outputs — a few hundred
//! bytes of objects, arrays, strings and numbers. This hand-rolled
//! recursive-descent parser covers exactly the JSON grammar (minus `\u`
//! escapes, which our emitter never produces) and keeps the validation
//! honest: the smoke tests parse the real file instead of grepping it.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is not preserved (irrelevant for validation).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses `src` as a single JSON document.
    ///
    /// # Errors
    ///
    /// A human-readable message with a byte offset on malformed input.
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    /// Member lookup on objects; `None` elsewhere.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", ch as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => Err(format!("unexpected end or byte at {pos}")),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = b.get(*pos).ok_or("unterminated escape")?;
                out.push(match esc {
                    b'"' => '"',
                    b'\\' => '\\',
                    b'/' => '/',
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    other => return Err(format!("unsupported escape `\\{}`", *other as char)),
                });
                *pos += 1;
            }
            Some(_) => {
                // advance one UTF-8 scalar
                let s = &b[*pos..];
                let ch_len = std::str::from_utf8(s)
                    .map_err(|_| "invalid utf-8".to_string())?
                    .chars()
                    .next()
                    .map_or(1, char::len_utf8);
                out.push_str(std::str::from_utf8(&s[..ch_len]).unwrap());
                *pos += ch_len;
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut out = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        out.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

/// Escapes `s` as a JSON string literal (quotes included).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = Json::parse(r#"{"a": [1, 2.5, {"b": true}], "c": "x\ny", "d": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2]
                .get("b")
                .unwrap()
                .as_bool(),
            Some(true)
        );
        assert_eq!(v.get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} garbage").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn escape_roundtrips() {
        let s = "a\"b\\c\nd";
        let v = Json::parse(&escape(s)).unwrap();
        assert_eq!(v.as_str(), Some(s));
    }
}
