//! Minimal work-stealing task pool.
//!
//! Extracted from the `rap-dse` sweep driver (where the pattern was first
//! proven) so that the parallel state-space engine of `rap-petri` can share
//! the same machinery:
//!
//! * **Per-worker deques** ([`StealQueues`]) — tasks are dealt round-robin
//!   into one `Mutex<VecDeque>` per worker; a worker pops its *own* deque
//!   from the front and, when that runs dry, steals from the *back* of the
//!   others. There is no global queue lock on the hot path, and stragglers
//!   (big tasks dealt early) end up shared across workers.
//! * **Scoped workers** ([`run_workers`]) — spawns `threads` scoped worker
//!   threads and collects their results *in worker order*, so the caller
//!   sees a deterministic result layout regardless of the schedule. One
//!   thread runs inline (no spawn), which keeps single-threaded runs on the
//!   exact same code path and makes them trivially deterministic.
//!
//! The pool deliberately stays dependency-free and dumb: no task priorities,
//! no blocking park/unpark (workers exit when every deque is empty), no
//! dynamic task injection after [`StealQueues::deal`]. Both current users
//! dispatch a frozen batch of tasks per round — the DSE driver once per
//! sweep, the state-space engine once per BFS level — and that shape keeps
//! the correctness argument (and the schedule-stress tests) small.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// A worker failure surfaced by [`run_workers`].
///
/// Panic payloads don't implement `Send + Debug` in general, so the
/// payload is flattened to its message (`&str` / `String` payloads — the
/// ones `panic!` produces; anything else becomes a placeholder). The
/// worker index pins *which* result slot was poisoned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// The worker panicked; its result slot carries this error while every
    /// other worker's slot holds its normal result — a panic poisons one
    /// slot, never the batch.
    WorkerPanicked {
        /// Index of the worker that panicked.
        worker: usize,
        /// The panic payload's message.
        message: String,
    },
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::WorkerPanicked { worker, message } => {
                write!(f, "pool worker {worker} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// Extracts the human-readable message of a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Per-worker work-stealing deques over tasks of type `T`.
///
/// All methods take `&self`; the queues are safe to share across the scoped
/// workers of [`run_workers`].
#[derive(Debug)]
pub struct StealQueues<T> {
    shards: Vec<Mutex<VecDeque<T>>>,
}

impl<T> StealQueues<T> {
    /// Creates empty deques for `workers` workers (at least one).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        StealQueues {
            shards: (0..workers.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
        }
    }

    /// Number of worker deques.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// Deals `tasks` round-robin across the worker deques, in order: task
    /// `i` lands at the back of deque `i % workers`.
    pub fn deal(&self, tasks: impl IntoIterator<Item = T>) {
        for (task, shard) in tasks.into_iter().zip((0..self.shards.len()).cycle()) {
            self.shards[shard]
                .lock()
                .expect("pool shard")
                .push_back(task);
        }
    }

    /// Pushes a single task onto the back of `worker`'s own deque.
    pub fn push(&self, worker: usize, task: T) {
        self.shards[worker]
            .lock()
            .expect("pool shard")
            .push_back(task);
    }

    /// The next task for worker `me`: its own deque front, else a steal from
    /// the back of another worker's deque, else `None` (all deques empty).
    ///
    /// `None` is a termination signal only under the frozen-batch discipline
    /// (no tasks pushed after dealing); with dynamic pushes a worker could
    /// observe a transient empty state.
    pub fn next(&self, me: usize) -> Option<T> {
        if let Some(t) = self.shards[me].lock().expect("pool shard").pop_front() {
            return Some(t);
        }
        let n = self.shards.len();
        for off in 1..n {
            if let Some(t) = self.shards[(me + off) % n]
                .lock()
                .expect("pool shard")
                .pop_back()
            {
                return Some(t);
            }
        }
        None
    }
}

/// Runs `worker(0..threads)` on scoped threads and returns the results in
/// worker order. With `threads <= 1` the single worker runs inline on the
/// calling thread — same code path, no spawn.
///
/// **Panic isolation:** a panicking worker poisons only its own slot —
/// its entry is [`PoolError::WorkerPanicked`] (carrying the payload
/// message) while the remaining workers run to completion and deliver
/// their results. Under the work-stealing discipline the dead worker's
/// undrained tasks are stolen by the survivors, so a single panicking
/// *task* costs its own result, not the batch. Callers for whom a worker
/// death is unrecoverable (e.g. the state-space engine, whose levels are
/// barrier-synchronised) escalate the `Err` themselves.
pub fn run_workers<R, F>(threads: usize, worker: F) -> Vec<Result<R, PoolError>>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let capture = |me: usize| {
        catch_unwind(AssertUnwindSafe(|| worker(me))).map_err(|payload| PoolError::WorkerPanicked {
            worker: me,
            message: panic_message(payload),
        })
    };
    if threads <= 1 {
        return vec![capture(0)];
    }
    let mut out = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|me| {
                let capture = &capture;
                scope.spawn(move || capture(me))
            })
            .collect();
        for (me, h) in handles.into_iter().enumerate() {
            // the closure already caught the panic; join() can only fail
            // for a panic *outside* catch_unwind (e.g. in drop glue) —
            // still isolated to this worker's slot
            out.push(h.join().unwrap_or_else(|payload| {
                Err(PoolError::WorkerPanicked {
                    worker: me,
                    message: panic_message(payload),
                })
            }));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn deal_and_drain_covers_every_task_once() {
        for workers in [1usize, 2, 5] {
            let q = StealQueues::new(workers);
            q.deal(0..100usize);
            let seen = AtomicUsize::new(0);
            let counts = run_workers(workers, |me| {
                let mut n = 0usize;
                while let Some(_t) = q.next(me) {
                    n += 1;
                    seen.fetch_add(1, Ordering::Relaxed);
                }
                n
            });
            assert_eq!(seen.load(Ordering::Relaxed), 100);
            let total: usize = counts.iter().map(|c| c.as_ref().unwrap()).sum();
            assert_eq!(total, 100);
        }
    }

    #[test]
    fn single_worker_preserves_deal_order() {
        let q = StealQueues::new(1);
        q.deal(0..10usize);
        let mut got = Vec::new();
        while let Some(t) = q.next(0) {
            got.push(t);
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn stealing_reaches_tasks_of_idle_deques() {
        // deal everything to worker 0's deque, drain from worker 1 only
        let q = StealQueues::new(3);
        for i in 0..7 {
            q.push(0, i);
        }
        let mut got = Vec::new();
        while let Some(t) = q.next(1) {
            got.push(t);
        }
        got.sort_unstable();
        assert_eq!(got, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn run_workers_results_are_in_worker_order() {
        let r = run_workers(4, |me| me * 10);
        assert_eq!(r, vec![Ok(0), Ok(10), Ok(20), Ok(30)]);
    }

    #[test]
    fn panicking_worker_poisons_only_its_own_slot() {
        // worker 2 panics immediately; the others must drain its tasks and
        // deliver their results — N−1 tasks processed in total (worker 2's
        // in-hand task, if any, dies with it; here it panics before taking
        // one, so all 40 tasks survive)
        let q = StealQueues::new(4);
        q.deal(0..40usize);
        let results = run_workers(4, |me| {
            if me == 2 {
                panic!("injected evaluation panic");
            }
            let mut n = 0usize;
            while let Some(_t) = q.next(me) {
                n += 1;
            }
            n
        });
        assert_eq!(results.len(), 4);
        match &results[2] {
            Err(PoolError::WorkerPanicked { worker, message }) => {
                assert_eq!(*worker, 2);
                assert_eq!(message, "injected evaluation panic");
            }
            other => panic!("expected WorkerPanicked in slot 2, got {other:?}"),
        }
        let survivors: usize = results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .copied()
            .sum();
        assert_eq!(survivors, 40, "survivors drained every task");
        assert_eq!(results.iter().filter(|r| r.is_ok()).count(), 3);
    }

    #[test]
    fn inline_single_worker_panic_is_captured_too() {
        let results = run_workers(1, |_| -> usize { panic!("inline panic") });
        assert_eq!(
            results,
            vec![Err(PoolError::WorkerPanicked {
                worker: 0,
                message: "inline panic".to_string(),
            })]
        );
    }

    #[test]
    fn string_panic_payloads_are_preserved() {
        let results = run_workers(2, |me| {
            if me == 1 {
                panic!("formatted {}", 42);
            }
            me
        });
        assert_eq!(results[0], Ok(0));
        assert_eq!(
            results[1],
            Err(PoolError::WorkerPanicked {
                worker: 1,
                message: "formatted 42".to_string(),
            })
        );
    }
}
