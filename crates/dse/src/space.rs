//! Declarative configuration spaces.
//!
//! A [`DesignSpace`] is the cartesian product of four axes:
//!
//! * **hardware** — which silicon to build: a static pipeline, a
//!   reconfigurable pipeline (with or without the shared-control-loop
//!   optimisation of Fig. 7), or a `K`-way wagged replication;
//! * **workload** — the effective window depth the stream currently
//!   demands. Reconfigurable hardware *reconfigures* to the demand
//!   (excluding the unused tail stages); static and wagged hardware always
//!   compute their full window, serving shallower demands wastefully;
//! * **sizing** — a drive-strength scale on the datapath logic (`f` and
//!   `g` latencies multiply by it; smaller = faster = more area and
//!   switched capacitance, see `rap_silicon::cost`);
//! * **supply voltage** — scaling every latency by the alpha-power law and
//!   the switching energy by `V²`.
//!
//! Every hardware candidate must support the space's full workload range
//! (the product requirement the paper's chip was built for); a candidate
//! is enumerated only for demands within its capability.

use crate::models::wagged_ope;
use dfs_core::pipelines::{build_pipeline, PipelineSpec, StageDelays};
use dfs_core::{Dfs, DfsError, NodeId};

/// A hardware candidate (what gets taped out).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Hardware {
    /// A fully static `stages`-stage pipeline: least silicon, fixed
    /// function — it computes its full window whatever the demand.
    Static {
        /// Window capability.
        stages: usize,
    },
    /// The reconfigurable pipeline of Fig. 7: first stage static, the rest
    /// reconfigurable; operates at the demanded depth by excluding tail
    /// stages at run time.
    Reconfigurable {
        /// Window capability.
        stages: usize,
        /// Apply the shared-control-loop (`s2`) optimisation.
        share_ctrl: bool,
    },
    /// `ways` full replicas of the static pipeline behind round-robin
    /// wagging steering (see [`crate::models::wagged_ope`]).
    Wagged {
        /// Replica count.
        ways: usize,
        /// Window capability of each replica.
        stages: usize,
    },
}

impl Hardware {
    /// The window capability.
    #[must_use]
    pub fn stages(&self) -> usize {
        match *self {
            Hardware::Static { stages }
            | Hardware::Reconfigurable { stages, .. }
            | Hardware::Wagged { stages, .. } => stages,
        }
    }

    /// Can this hardware serve a window-`demand` workload?
    #[must_use]
    pub fn supports(&self, demand: usize) -> bool {
        demand >= 1 && demand <= self.stages()
    }

    /// A short human-readable tag.
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            Hardware::Static { stages } => format!("static({stages})"),
            Hardware::Reconfigurable { stages, share_ctrl } => {
                if share_ctrl {
                    format!("reconfigurable({stages})")
                } else {
                    format!("reconfigurable({stages},noshare)")
                }
            }
            Hardware::Wagged { ways, stages } => format!("wagged({ways}x{stages})"),
        }
    }
}

/// The declarative space: the product of the four axes, filtered by
/// capability.
#[derive(Debug, Clone)]
pub struct DesignSpace {
    /// Hardware candidates.
    pub hardware: Vec<Hardware>,
    /// Demanded window depths.
    pub workloads: Vec<usize>,
    /// Datapath sizing factors (latency multipliers on `f`/`g`).
    pub sizings: Vec<f64>,
    /// Supply voltages (V).
    pub voltages: Vec<f64>,
    /// Nominal per-node latencies (at sizing 1.0).
    pub delays: StageDelays,
}

impl DesignSpace {
    /// Enumerates every eligible configuration, in a deterministic order.
    #[must_use]
    pub fn enumerate(&self) -> Vec<Config> {
        let mut out = Vec::new();
        for &hw in &self.hardware {
            for &workload in &self.workloads {
                if !hw.supports(workload) {
                    continue;
                }
                for &sizing in &self.sizings {
                    for &voltage in &self.voltages {
                        out.push(Config {
                            hardware: hw,
                            workload,
                            sizing,
                            voltage,
                            delays: self.delays,
                        });
                    }
                }
            }
        }
        out
    }
}

/// One point of the space.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// The hardware candidate.
    pub hardware: Hardware,
    /// The demanded window depth.
    pub workload: usize,
    /// Datapath sizing factor.
    pub sizing: f64,
    /// Supply voltage (V).
    pub voltage: f64,
    /// Nominal latencies (sizing 1.0).
    pub delays: StageDelays,
}

impl Config {
    /// The latencies after sizing: datapath logic (`f`, `g`) scales, the
    /// register/control infrastructure does not.
    #[must_use]
    pub fn scaled_delays(&self) -> StageDelays {
        StageDelays {
            f: self.delays.f * self.sizing,
            g: self.delays.g * self.sizing,
            register: self.delays.register,
            control: self.delays.control,
        }
    }

    /// The depth the hardware actually operates at under this workload:
    /// the demand for reconfigurable hardware, the full capability for
    /// static and wagged hardware (they cannot shrink).
    #[must_use]
    pub fn operating_depth(&self) -> usize {
        match self.hardware {
            Hardware::Reconfigurable { .. } => self.workload,
            _ => self.hardware.stages(),
        }
    }

    /// A unique, stable label. Sizing and voltage are printed with Rust's
    /// shortest round-trip `f64` formatting — lossless, so two distinct
    /// configurations can never collapse onto one label (the label is
    /// load-bearing identity: the design-point lookup, the
    /// serial-vs-parallel front cross-check and the canonical evaluation
    /// sort all key on it).
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{}@d{} s{} {}V",
            self.hardware.label(),
            self.workload,
            self.sizing,
            self.voltage
        )
    }

    /// Builds the timing model of this configuration. The result depends
    /// only on the *structural* part of the point (hardware, operating
    /// depth, sizing) — not on the voltage, which scales all delays
    /// uniformly and is applied analytically by the cost model. Two
    /// configs differing only in voltage (or in demand, for hardware that
    /// cannot reconfigure) therefore build isomorphic models and share one
    /// memoized evaluation via `Dfs::structural_hash`.
    ///
    /// # Errors
    ///
    /// Propagates [`DfsError`] from the model builders (degenerate
    /// parameters are [`DfsError::InvalidSpec`]).
    pub fn build(&self) -> Result<Dfs, DfsError> {
        let d = self.scaled_delays();
        match self.hardware {
            Hardware::Static { stages } => {
                Ok(build_pipeline(&PipelineSpec::fully_static(stages).with_delays(d))?.dfs)
            }
            Hardware::Reconfigurable { stages, share_ctrl } => {
                let mut spec =
                    PipelineSpec::reconfigurable_depth(stages, self.workload)?.with_delays(d);
                spec.share_ctrl_after_static = share_ctrl;
                Ok(build_pipeline(&spec)?.dfs)
            }
            Hardware::Wagged { ways, stages } => {
                Ok(wagged_ope(ways, stages, d, &vec![d.f; stages])?.dfs)
            }
        }
    }

    /// A per-node **lower bound** on the steady-state activity (firings
    /// per item), derived from what the schedule of this family provably
    /// executes: the environment and every included stage run once per
    /// item, each wagged replica serves every `ways`-th item, and anything
    /// uncertain (control loops, excluded stages) is bounded by zero. Never
    /// overestimates — the admissibility requirement of the pruning bound
    /// (checked against the exact activity in the test-suite).
    #[must_use]
    pub fn activity_lower_bound(&self, dfs: &Dfs) -> Vec<f64> {
        let mut lb = vec![0.0; dfs.node_count()];
        let set = |lb: &mut Vec<f64>, n: Option<NodeId>, v: f64| {
            if let Some(n) = n {
                lb[n.index()] = v;
            }
        };
        for name in ["in", "out", "agg"] {
            set(&mut lb, dfs.node_by_name(name), 1.0);
        }
        match self.hardware {
            Hardware::Static { stages } => {
                for s in 1..=stages {
                    for part in ["local_in", "f", "local_out", "global_in", "g", "global_out"] {
                        set(&mut lb, dfs.node_by_name(&format!("s{s}_{part}")), 1.0);
                    }
                }
            }
            Hardware::Reconfigurable { .. } => {
                for s in 1..=self.operating_depth() {
                    for part in ["local_in", "f", "local_out", "global_in", "g", "global_out"] {
                        set(&mut lb, dfs.node_by_name(&format!("s{s}_{part}")), 1.0);
                    }
                }
            }
            Hardware::Wagged { ways, stages } => {
                for name in ["env_buf1", "env_buf2", "env_buf3"] {
                    set(&mut lb, dfs.node_by_name(name), 1.0);
                }
                let share = 1.0 / ways as f64;
                for w in 0..ways {
                    set(&mut lb, dfs.node_by_name(&format!("w{w}_in")), 1.0);
                    set(&mut lb, dfs.node_by_name(&format!("w{w}_out")), 1.0);
                    set(&mut lb, dfs.node_by_name(&format!("w{w}_agg")), share);
                    set(&mut lb, dfs.node_by_name(&format!("w{w}_res")), share);
                    for s in 1..=stages {
                        for part in ["local_in", "f", "local_out", "global_in", "g", "global_out"] {
                            set(
                                &mut lb,
                                dfs.node_by_name(&format!("w{w}_s{s}_{part}")),
                                share,
                            );
                        }
                    }
                }
            }
        }
        lb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_space() -> DesignSpace {
        DesignSpace {
            hardware: vec![
                Hardware::Static { stages: 3 },
                Hardware::Reconfigurable {
                    stages: 3,
                    share_ctrl: true,
                },
                Hardware::Wagged { ways: 2, stages: 3 },
            ],
            workloads: vec![1, 2, 3],
            sizings: vec![1.0, 2.0],
            voltages: vec![0.9, 1.2],
            delays: StageDelays::default(),
        }
    }

    #[test]
    fn enumeration_is_the_filtered_product() {
        let space = small_space();
        let configs = space.enumerate();
        // 3 hardware × 3 workloads × 2 × 2
        assert_eq!(configs.len(), 36);
        // labels are unique
        let mut labels: Vec<String> = configs.iter().map(Config::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 36);
        // capability filter
        let mut space = space;
        space.workloads.push(7);
        assert_eq!(space.enumerate().len(), 36);
    }

    #[test]
    fn voltage_and_demand_replicas_share_structure() {
        let space = small_space();
        let configs = space.enumerate();
        let hash = |c: &Config| c.build().unwrap().structural_hash();
        // same point at two voltages: identical structure
        let a = configs
            .iter()
            .find(|c| c.label() == "static(3)@d1 s1 0.9V")
            .unwrap();
        let b = configs
            .iter()
            .find(|c| c.label() == "static(3)@d1 s1 1.2V")
            .unwrap();
        assert_eq!(hash(a), hash(b));
        // static hardware cannot reconfigure: demands share structure too
        let c = configs
            .iter()
            .find(|c| c.label() == "static(3)@d3 s1 0.9V")
            .unwrap();
        assert_eq!(hash(a), hash(c));
        // but a reconfigurable point operates at the demand: distinct
        let r1 = configs
            .iter()
            .find(|c| c.label() == "reconfigurable(3)@d1 s1 0.9V")
            .unwrap();
        let r3 = configs
            .iter()
            .find(|c| c.label() == "reconfigurable(3)@d3 s1 0.9V")
            .unwrap();
        assert_ne!(hash(r1), hash(r3));
        // and sizing changes the structure (delays are part of the hash)
        let s2 = configs
            .iter()
            .find(|c| c.label() == "static(3)@d1 s2 0.9V")
            .unwrap();
        assert_ne!(hash(a), hash(s2));
    }

    #[test]
    fn activity_lower_bound_never_exceeds_exact_activity() {
        use dfs_core::perf::analyse_with_activity;
        for config in small_space().enumerate().iter().step_by(4) {
            let dfs = config.build().unwrap();
            let exact = analyse_with_activity(&dfs).unwrap().activity_per_item;
            let lb = config.activity_lower_bound(&dfs);
            for n in dfs.nodes() {
                assert!(
                    lb[n.index()] <= exact[n.index()] + 1e-12,
                    "{}: node {} bound {} exceeds exact {}",
                    config.label(),
                    dfs.node(n).name,
                    lb[n.index()],
                    exact[n.index()]
                );
            }
        }
    }
}
