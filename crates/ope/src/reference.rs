//! Behavioural (golden) OPE model.
//!
//! "The rank of an item in a list is the position the item ends up at after
//! sorting the list" (§III-A, footnote). Ties resolve by original position
//! (stable sort), which makes the paper's example windows come out exactly
//! as printed — both checked in the tests below.

/// Stable 1-based ranks of the items in `window`.
///
/// `rank[i] = 1 + #{j : w[j] < w[i]} + #{j < i : w[j] == w[i]}`.
///
/// ```
/// // the footnote example: ranks of (2, 0, 1, 7) are (3, 1, 2, 4)
/// assert_eq!(rap_ope::reference::rank_list(&[2, 0, 1, 7]), vec![3, 1, 2, 4]);
/// ```
#[must_use]
pub fn rank_list(window: &[u16]) -> Vec<u16> {
    window
        .iter()
        .enumerate()
        .map(|(i, &x)| {
            let less = window.iter().filter(|&&y| y < x).count();
            let equal_before = window[..i].iter().filter(|&&y| y == x).count();
            (less + equal_before + 1) as u16
        })
        .collect()
}

/// The rank the *newest* (last) item of `window` gets — the per-iteration
/// output of the pipelined engine.
#[must_use]
pub fn rank_of_newest(window: &[u16]) -> u16 {
    *rank_list(window).last().expect("non-empty window")
}

/// Iterator over the rank lists of all complete windows of size `n` in
/// `stream` (§III-A table).
pub fn windows_ranked(stream: &[u16], n: usize) -> impl Iterator<Item = Vec<u16>> + '_ {
    stream.windows(n).map(rank_list)
}

/// Streaming encoder producing [`rank_of_newest`] for every input item once
/// the window is warm — the golden model for the chip's `out` port.
#[derive(Debug, Clone)]
pub struct ReferenceEncoder {
    window: Vec<u16>,
    n: usize,
}

impl ReferenceEncoder {
    /// Creates an encoder with window size `n`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "window size must be positive");
        ReferenceEncoder {
            window: Vec::with_capacity(n),
            n,
        }
    }

    /// Window size.
    #[must_use]
    pub fn window_size(&self) -> usize {
        self.n
    }

    /// Feeds one item; returns the newest item's rank once the window is
    /// full.
    pub fn push(&mut self, x: u16) -> Option<u16> {
        if self.window.len() == self.n {
            self.window.remove(0);
        }
        self.window.push(x);
        (self.window.len() == self.n).then(|| rank_of_newest(&self.window))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §III-A: stream (3,1,4,1,5,9,2,6), N = 6.
    #[test]
    fn paper_table_windows() {
        let stream = [3u16, 1, 4, 1, 5, 9, 2, 6];
        let got: Vec<Vec<u16>> = windows_ranked(&stream, 6).collect();
        assert_eq!(
            got,
            vec![
                vec![3, 1, 4, 2, 5, 6],
                vec![1, 4, 2, 5, 6, 3],
                vec![3, 1, 4, 6, 2, 5],
            ]
        );
    }

    /// §III-A footnote: ranks of (2,0,1,7) are (3,1,2,4).
    #[test]
    fn paper_footnote_example() {
        assert_eq!(rank_list(&[2, 0, 1, 7]), vec![3, 1, 2, 4]);
    }

    #[test]
    fn ties_resolve_stably() {
        assert_eq!(rank_list(&[5, 5, 5]), vec![1, 2, 3]);
        assert_eq!(rank_list(&[7, 3, 7]), vec![2, 1, 3]);
    }

    #[test]
    fn ranks_are_a_permutation() {
        let w = [9u16, 2, 9, 4, 4, 0, 13];
        let mut r = rank_list(&w);
        r.sort_unstable();
        let expect: Vec<u16> = (1..=w.len() as u16).collect();
        assert_eq!(r, expect);
    }

    #[test]
    fn encoder_warms_up_then_streams() {
        let mut enc = ReferenceEncoder::new(3);
        assert_eq!(enc.push(5), None);
        assert_eq!(enc.push(1), None);
        // window (5,1,9): 9 is largest -> rank 3
        assert_eq!(enc.push(9), Some(3));
        // window (1,9,2): 2 is middle -> rank 2
        assert_eq!(enc.push(2), Some(2));
        assert_eq!(enc.window_size(), 3);
    }
}
