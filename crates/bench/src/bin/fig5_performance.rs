//! FIG5 — Performance analysis of a reconfigurable pipeline (the analysis
//! the Workcraft screenshot in Fig. 5 shows): slowest-cycle throughput and
//! bottleneck nodes, with the measured throughput from the timed simulator
//! alongside, plus the wagging optimisation (§II-D) as the tool's
//! suggested remedy for a bottleneck stage.
//!
//! Every analytic number printed here is **exact** (`perf::analyse` phase-
//! unfolds models with choice; see the `construction` tag per row) and is
//! cross-checked against the simulator's steady-state recurrence period.
//! The wagging rows are pinned in `tests/experiments_hold.rs` so they
//! cannot silently drift back to the old optimistic bound.

use dfs_core::perf::{analyse, Construction};
use dfs_core::timed::{measure_steady_period, measure_throughput, ChoicePolicy};
use dfs_core::wagging::wagged_pipeline;
use rap_bench::cli::BenchCli;
use rap_bench::{banner, num};
use rap_ope::dfs_model::{reconfigurable_ope_dfs, static_ope_dfs};

fn construction_tag(c: Construction) -> String {
    match c {
        Construction::Direct => "direct event graph".into(),
        Construction::PhaseUnfolded { phases } => {
            format!("{phases}-phase unfolding")
        }
    }
}

fn main() {
    let cli = BenchCli::parse("fig5_performance", None);
    rap_bench::trace::with_trace(&cli, |_obs| run(&cli));
}

fn run(cli: &BenchCli) {
    banner("Fig. 5 — dataflow performance analysis (cycles, bottlenecks)");

    for (name, pipe) in [
        ("static OPE, 6 stages", static_ope_dfs(6).unwrap()),
        (
            "reconfigurable OPE, 6 stages, depth 4",
            reconfigurable_ope_dfs(6, 4).unwrap(),
        ),
    ] {
        println!("\n## {name}");
        match analyse(&pipe.dfs) {
            Ok(report) => {
                println!(
                    "  analytic throughput: {} tokens/unit (period {}, {})",
                    num(report.throughput, 5),
                    num(report.period, 3),
                    construction_tag(report.construction)
                );
                println!(
                    "  critical cycle ({} tokens / {} delay): {}",
                    report.critical.tokens,
                    num(report.critical.delay, 2),
                    report.critical.nodes.join(" -> ")
                );
                println!("  bottleneck node: {}", report.critical.bottleneck);
            }
            Err(e) => println!("  analysis error: {e}"),
        }
        match measure_throughput(&pipe.dfs, pipe.output, 10, 60, ChoicePolicy::AlwaysTrue) {
            Ok(thr) => println!("  measured steady-state throughput: {}", num(thr, 5)),
            Err(e) => println!("  simulation: {e}"),
        }
    }

    println!("\n## automatic buffer insertion (the Fig. 5 'add registers' remedy)");
    {
        use dfs_core::optimize::insert_buffers;
        use dfs_core::DfsBuilder;
        // a bubble-starved ring: 3 registers, 1 token -> period 6d
        let mut b = DfsBuilder::new();
        let r0 = b.register("r0").marked().build();
        let r1 = b.register("r1").build();
        let r2 = b.register("r2").build();
        b.connect(r0, r1);
        b.connect(r1, r2);
        b.connect(r2, r0);
        let ring = b.finish().unwrap();
        let out = insert_buffers(&ring, 2).unwrap();
        println!(
            "  3-register ring: throughput {} -> {} by inserting {:?}",
            num(out.before, 4),
            num(out.after, 4),
            out.inserted
        );
    }

    println!("\n## wagging a bottleneck stage (Brej [15], §II-D)");
    let way_counts: &[usize] = if cli.quick { &[1, 2] } else { &[1, 2, 3] };
    for &ways in way_counts {
        let w = wagged_pipeline(ways, 1, 8.0).unwrap();
        let report = analyse(&w.dfs).expect("live wagged pipeline analyses");
        let steady = measure_steady_period(&w.dfs, w.output, 200, ChoicePolicy::AlwaysTrue)
            .expect("live wagged pipeline recurs");
        println!(
            "  {ways}-way: analytic throughput {} ({}), simulator steady period {} (= analytic {}), bottleneck {}",
            num(report.throughput, 5),
            construction_tag(report.construction),
            num(steady.period, 5),
            num(report.period, 5),
            report.critical.bottleneck
        );
        assert!(
            (report.period - steady.period).abs() <= 1e-9 * steady.period,
            "exactness regression: analysis {} vs simulator {}",
            report.period,
            steady.period
        );
    }
    println!("  (the rotating push/pop rings distribute tokens round-robin;");
    println!("   analysis and simulator agree exactly on every row)");
}
