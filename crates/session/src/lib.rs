//! **rap-session** — the compiled-model query API: one entry point for the
//! whole paper flow, with cross-query artifact caching.
//!
//! The tool flow is one pipeline — model → Petri translation →
//! verification → event graph / phase unfolding → performance → silicon
//! cost — but the per-stage free functions ([`dfs_core::to_petri()`],
//! [`dfs_core::Lts::explore`], [`dfs_core::perf::analyse`],
//! [`rap_petri::analysis::quick_check`], the [`rap_silicon::cost`] model)
//! make every caller re-derive the same intermediates. A [`Session`] turns
//! the flow into *queries over compiled models*, the
//! incremental-compilation shape:
//!
//! * [`Session::compile`] **interns** a model: identical models (equal
//!   [`Dfs::structural_hash`], equal identity digest, and a field-exact
//!   comparison on every intern hit — sharing is verified, never assumed
//!   from hashes) map to the same [`CompiledModel`], shared via `Arc`
//!   across threads;
//! * each [`CompiledModel`] query — [`petri`](CompiledModel::petri),
//!   [`lts`](CompiledModel::lts), [`perf`](CompiledModel::perf),
//!   [`perf_detail`](CompiledModel::perf_detail),
//!   [`quick_check`](CompiledModel::quick_check),
//!   [`cost`](CompiledModel::cost),
//!   [`steady_period`](CompiledModel::steady_period) — is **demand
//!   computed and memoized**: the first call computes, every later call
//!   (same key) returns the cached artifact;
//! * queries compose through the cache: `quick_check` demands the Petri
//!   image, `cost` demands the throughput analysis — so a model queried
//!   for performance, verification *and* silicon cost still performs
//!   exactly one Petri translation and one phase unfolding
//!   (observable via [`Session::stats`] / [`CompiledModel::stats`]);
//! * the unified [`Error`] is the single `?`-target over every per-crate
//!   error enum, with `From` conversions and `source()` chains.
//!
//! # Caching and coherence contract
//!
//! 1. **Read-only queries.** A [`CompiledModel`] is immutable; every query
//!    takes `&self`. There is no invalidation because there is no
//!    mutation: to analyse a changed model, build the new [`Dfs`] and
//!    [`compile`](Session::compile) it (**mutation = recompile**). Models
//!    that merely *rename* or *reorder* nodes compile to distinct entries
//!    (interning requires byte-exact identity, not just structural-hash
//!    equality), so cached answers never leak another model's node names.
//! 2. **Bit-identical answers.** Every cached artifact equals — bit for
//!    bit, including every `f64` — what the corresponding direct free
//!    function returns on the same model. Cached *errors* are equally
//!    faithful: a failing analysis fails identically, once. This is
//!    pinned by the `session_coherence` property tests in the facade.
//! 3. **Thread-safe, never-duplicated work.** Cache slots are in-flight
//!    reservations (`OnceLock` per key, the same discipline as the DSE
//!    memo): under concurrent queries from any number of threads, each
//!    artifact is computed at most once and every other caller blocks on
//!    that computation instead of repeating it. Results are shareable
//!    across threads (`&`-references tied to the model, or `Arc`s for the
//!    budget-keyed artifacts).
//! 4. **Observability.** [`Session::stats`] aggregates per-model counters
//!    of queries vs actual computations, so cache behaviour is testable
//!    and sweeps can do exact work accounting.
//!
//! # Quick start
//!
//! ```
//! use dfs_core::DfsBuilder;
//! use rap_session::Session;
//!
//! let mut b = DfsBuilder::new();
//! let a = b.register("a").marked().build();
//! let f = b.logic("f").build();
//! let c = b.register("b").build();
//! let d = b.register("c").build();
//! b.connect(a, f);
//! b.connect(f, c);
//! b.connect(c, d);
//! b.connect(d, a);
//! let dfs = b.finish()?;
//!
//! let session = Session::new();
//! let model = session.compile(&dfs);
//! let perf = model.perf()?; // throughput analysis, computed once
//! assert!(perf.period > 0.0);
//! let lts = model.lts(10_000)?; // state space, computed once per budget
//! assert!(lts.deadlocks().is_empty());
//! assert!(model.quick_check(10_000).is_clean());
//! // one Petri translation serves the quick_check; perf shares nothing
//! // with it but is itself cached for later perf/cost queries
//! assert_eq!(session.stats().queries.petri_translations, 1);
//! # Ok::<(), rap_session::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod model;
mod persist;

pub use error::Error;
pub use model::{CompiledModel, CostSummary, ModelStats};
// the cost query's parameter type, re-exported so session users need no
// direct rap-silicon dependency (and facade users no `silicon` feature)
pub use rap_silicon::cost::CostModel;
// the persistence layer, re-exported whole (as `store`) plus the three
// types session users handle directly, so persistent sessions need no
// rap-store dependency of their own
pub use rap_store as store;
pub use rap_store::{Store, StoreError, StoreStats};

use dfs_core::Dfs;
use rap_obs::{CounterSnapshot, Meter, Obs};
use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Session-wide counters: compiles and the aggregated per-model query
/// statistics ([`Session::stats`]).
///
/// The snapshot is *coherent*: the compile counters are written and read
/// under the session's intern lock, and each model's query counters are
/// copied under a single per-model lock — a query/computation pair (or a
/// compile/compile-hit pair) can never tear apart, even while other
/// threads are mid-query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Calls to [`Session::compile`].
    pub compiles: u64,
    /// Compiles served from the intern table (an identical model was
    /// already compiled in this session).
    pub compile_hits: u64,
    /// Distinct compiled models held by the session.
    pub models: u64,
    /// Query/computation counters summed over every compiled model.
    pub queries: ModelStats,
    /// Artifact-store counters (all zero for a memory-only session):
    /// disk hits/misses, corrupt frames recovered, bytes moved — the
    /// observability half of the graceful-degradation contract.
    pub store: StoreStats,
}

/// A byte-exact digest of a model's identity: names, node order, kinds,
/// markings, delays, guard modes and the ordered (inversion-flagged) edge
/// lists — everything a query result can observe (names appear in perf
/// reports, Petri place names, witnesses…). The digest is the intern
/// *bucket* key; actual sharing additionally requires [`same_model`] to
/// hold, so a hash collision can cost a duplicate compilation but never
/// serve another model's cache.
fn exact_digest(dfs: &Dfs) -> u64 {
    use dfs_core::hash::mix64 as mix;
    let mut h = mix(0x5e55_1055 ^ dfs.node_count() as u64);
    let mut fold = |v: u64| h = mix(h ^ mix(v));
    for id in dfs.nodes() {
        let node = dfs.node(id);
        for b in node.name.as_bytes() {
            fold(u64::from(*b));
        }
        fold(0xff); // name terminator: ("ab","c") must differ from ("a","bc")
        fold(node.kind as u64);
        fold(node.initial.is_marked() as u64);
        fold(match node.initial.value() {
            None => 0,
            Some(dfs_core::TokenValue::True) => 1,
            Some(dfs_core::TokenValue::False) => 2,
        });
        fold(node.delay.to_bits());
        fold(dfs.guard_mode(id) as u64);
        for e in dfs.preds(id) {
            fold((e.node.index() as u64) << 1 | u64::from(e.inverted));
        }
        fold(0xfe); // edge-list terminator
    }
    h
}

/// Intern buckets keyed by `(structural_hash, exact_digest)`; entries
/// within a bucket are verified by [`same_model`], so the bit-identity
/// contract does not rest on 128 hash bits (a collision merely makes the
/// bucket grow).
type InternTable = HashMap<(u64, u64), Vec<Arc<CompiledModel>>>;

/// The query-driven entry point: compiles (interns) models and hands out
/// [`CompiledModel`]s whose derived artifacts are demand-computed and
/// cached — see the [crate docs](crate) for the contract.
///
/// A `Session` is cheap to create and safe to share (`&Session` across
/// threads, or wrap it in an `Arc`). Artifacts live as long as the session
/// keeps the model interned (sessions never evict; drop the session to
/// drop every cache).
#[derive(Default)]
pub struct Session {
    models: Mutex<InternTable>,
    /// Compile/intern counters. Only written while the intern lock is
    /// held, and read under it too ([`Session::stats`]), so the
    /// compiles/hits/models triple is always mutually consistent.
    meter: Meter,
    /// The recorder handle every compiled model (and the store, when the
    /// session is built via [`Session::open_traced`] /
    /// [`Session::with_store_and_recorder`]) records into. Detached by
    /// default; recording is observation-only and never changes a result.
    obs: Obs,
    /// Persistent artifact store; `None` = memory-only session.
    store: Option<Arc<Store>>,
}

/// Field-exact model equality: the verification step behind intern hits.
fn same_model(a: &Dfs, b: &Dfs) -> bool {
    a.node_count() == b.node_count()
        && a.nodes().all(|id| {
            let (na, nb) = (a.node(id), b.node(id));
            na.name == nb.name
                && na.kind == nb.kind
                && na.initial == nb.initial
                && na.delay.to_bits() == nb.delay.to_bits()
                && a.guard_mode(id) == b.guard_mode(id)
                && a.preds(id) == b.preds(id)
                && a.succs(id) == b.succs(id)
        })
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("stats", &self.stats())
            .finish()
    }
}

impl Session {
    /// An empty, memory-only session: every artifact dies with it.
    #[must_use]
    pub fn new() -> Self {
        Session::default()
    }

    /// A session persisting its artifacts through `store`.
    ///
    /// Every successful perf / quick-check / cost / steady-state artifact
    /// is committed to the store (crash-safely — temp file, fsync, atomic
    /// rename), and every such query consults the store before computing,
    /// so warm-sweep guarantees extend across process restarts: a
    /// restarted sweep over an intact store performs zero full
    /// evaluations. Store degradation (corrupt frames, full disk, I/O
    /// errors) never changes an answer — only whether it was recomputed —
    /// and is observable via [`SessionStats::store`].
    #[must_use]
    pub fn with_store(store: Store) -> Self {
        Session {
            store: Some(Arc::new(store)),
            ..Session::default()
        }
    }

    /// A memory-only session recording into `obs`: every query of every
    /// compiled model wraps itself in `session.query.<kind>` spans and
    /// mirrors its counters into the recorder (see the `rap-obs` crate
    /// docs for the taxonomy). Recording is observation-only — results,
    /// caching and scheduling are bit-identical to an untraced session.
    #[must_use]
    pub fn with_recorder(obs: Obs) -> Self {
        Session {
            meter: Meter::with_obs(obs.clone()),
            obs,
            ..Session::default()
        }
    }

    /// [`Session::with_store`] + [`Session::with_recorder`]: a persistent
    /// session whose store also records read/write latency histograms and
    /// quarantine events into the same recorder.
    #[must_use]
    pub fn with_store_and_recorder(mut store: Store, obs: Obs) -> Self {
        store.set_recorder(obs.clone());
        Session {
            meter: Meter::with_obs(obs.clone()),
            obs,
            store: Some(Arc::new(store)),
            ..Session::default()
        }
    }

    /// [`Session::open`] with a recorder attached to both the session and
    /// its store — shorthand for [`Store::open`] +
    /// [`Session::with_store_and_recorder`].
    ///
    /// # Errors
    ///
    /// See [`Session::open`].
    pub fn open_traced(dir: impl AsRef<Path>, obs: Obs) -> Result<Self, StoreError> {
        Ok(Session::with_store_and_recorder(Store::open(dir)?, obs))
    }

    /// The recorder handle this session records into (detached unless the
    /// session was built with one of the `*_recorder` constructors).
    #[must_use]
    pub fn recorder(&self) -> &Obs {
        &self.obs
    }

    /// Opens (creating if necessary) the artifact store at `dir` and
    /// builds a persistent session over it — shorthand for
    /// [`Store::open`] + [`Session::with_store`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Locked`] when a live process holds the directory,
    /// [`StoreError::Io`] when it cannot be prepared. Callers that prefer
    /// degradation over failure use [`Session::open_or_memory`].
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        Ok(Session::with_store(Store::open(dir)?))
    }

    /// [`Session::open`], degrading to a memory-only session when the
    /// store cannot be opened (locked directory, read-only filesystem…) —
    /// the caller keeps every answer, and only loses persistence.
    #[must_use]
    pub fn open_or_memory(dir: impl AsRef<Path>) -> Self {
        Session::open(dir).unwrap_or_else(|_| Session::new())
    }

    /// The persistent store backing this session, if any.
    #[must_use]
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.store.as_ref()
    }

    /// Compiles `dfs`, interning by identity: if an identical model (equal
    /// [`Dfs::structural_hash`] *and* byte-exact names/order/attributes)
    /// was compiled before, its [`CompiledModel`] — with every artifact
    /// already cached on it — is returned instead of a fresh one.
    ///
    /// Compilation itself derives nothing: artifacts are computed on first
    /// query. The returned `Arc` is shareable across threads and stays
    /// valid after the session is dropped (caches and all).
    #[must_use]
    pub fn compile(&self, dfs: &Dfs) -> Arc<CompiledModel> {
        let _span = self.obs.span("session.compile");
        let structural = dfs.structural_hash();
        let key = (structural, exact_digest(dfs));
        let mut models = self.models.lock().expect("session intern table");
        if let Some(model) = models
            .entry(key)
            .or_default()
            .iter()
            .find(|m| same_model(m.dfs(), dfs))
        {
            let model = Arc::clone(model);
            self.meter
                .bump2("session.compile", "session.compile.hit", true);
            return model;
        }
        let persist = self.store.as_ref().map(|s| persist::Persist {
            store: Arc::clone(s),
            structural,
            identity: key.1,
        });
        let model = Arc::new(CompiledModel::new(
            dfs.clone(),
            structural,
            key.1,
            persist,
            self.obs.clone(),
        ));
        models.entry(key).or_default().push(Arc::clone(&model));
        self.meter
            .bump2("session.compile", "session.compile.hit", false);
        model
    }

    /// Session-wide statistics: compile/intern counters plus the
    /// per-model query counters summed over every compiled model — one
    /// coherent snapshot (the compile counters and model count are read
    /// under the intern lock they are written under, and each model's
    /// counters are copied under a single lock).
    #[must_use]
    pub fn stats(&self) -> SessionStats {
        let models = self.models.lock().expect("session intern table");
        let mut agg = CounterSnapshot::default();
        let mut count = 0u64;
        for m in models.values().flatten() {
            agg.merge(&m.counter_snapshot());
            count += 1;
        }
        let compile = self.meter.snapshot();
        SessionStats {
            compiles: compile.get("session.compile"),
            compile_hits: compile.get("session.compile.hit"),
            models: count,
            queries: ModelStats::from_counters(&agg),
            store: self.store.as_ref().map(|s| s.stats()).unwrap_or_default(),
        }
    }
}

// The whole point of the session layer is cross-thread sharing; regress
// loudly if a field ever breaks it.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Session>();
    assert_send_sync::<CompiledModel>();
    assert_send_sync::<Error>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use dfs_core::DfsBuilder;

    fn ring(names: &[&str]) -> Dfs {
        let mut b = DfsBuilder::new();
        let ids: Vec<_> = names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let nb = b.register(*n);
                if i == 0 {
                    nb.marked().build()
                } else {
                    nb.build()
                }
            })
            .collect();
        for i in 0..ids.len() {
            b.connect(ids[i], ids[(i + 1) % ids.len()]);
        }
        b.finish().unwrap()
    }

    #[test]
    fn interning_requires_byte_exact_identity() {
        let session = Session::new();
        let a = session.compile(&ring(&["r0", "r1", "r2"]));
        let same = session.compile(&ring(&["r0", "r1", "r2"]));
        assert!(Arc::ptr_eq(&a, &same), "identical models intern");
        // renamed: structurally isomorphic (equal structural hash), but the
        // node names differ — results would differ, so no sharing
        let renamed = session.compile(&ring(&["x0", "x1", "x2"]));
        assert_eq!(a.structural_hash(), renamed.structural_hash());
        assert!(!Arc::ptr_eq(&a, &renamed));
        let stats = session.stats();
        assert_eq!(stats.compiles, 3);
        assert_eq!(stats.compile_hits, 1);
        assert_eq!(stats.models, 2);
    }

    #[test]
    fn queries_compute_once_and_compose_through_the_cache() {
        let session = Session::new();
        let model = session.compile(&ring(&["a", "b", "c", "d"]));
        let p1 = model.perf().unwrap().period;
        let p2 = model.perf().unwrap().period;
        assert_eq!(p1.to_bits(), p2.to_bits());
        // quick_check twice at two budgets: two runs, one translation
        let c1 = model.quick_check(10_000);
        let c2 = model.quick_check(10_000);
        assert!(Arc::ptr_eq(&c1, &c2), "same budget returns the same Arc");
        let _c3 = model.quick_check(20_000);
        let stats = model.stats();
        assert_eq!(stats.perf_queries, 2);
        assert_eq!(stats.perf_analyses, 1);
        assert_eq!(stats.check_queries, 3);
        assert_eq!(stats.check_runs, 2);
        assert_eq!(stats.petri_translations, 1, "both check runs share it");
        // one hit each: perf (2nd query), check (same budget), petri (the
        // second check run re-demanding the translation)
        assert_eq!(stats.cache_hits(), 3);
    }

    #[test]
    fn errors_are_cached_faithfully() {
        // an unmarked ring has a token-free cycle: analysis fails
        let mut b = DfsBuilder::new();
        let r0 = b.register("r0").build();
        let r1 = b.register("r1").build();
        b.connect(r0, r1);
        b.connect(r1, r0);
        let dfs = b.finish().unwrap();
        let session = Session::new();
        let model = session.compile(&dfs);
        let e1 = model.perf().unwrap_err();
        let e2 = model.perf().unwrap_err();
        assert_eq!(e1, e2);
        assert_eq!(model.stats().perf_analyses, 1, "failure analysed once");
        assert!(matches!(
            e1,
            Error::Dfs(dfs_core::DfsError::TokenFreeCycle { .. })
        ));
        // the cost query propagates the same cached error
        let cost = rap_silicon::cost::CostModel::default();
        assert_eq!(model.cost(&cost).unwrap_err(), e1);
        assert_eq!(model.stats().perf_analyses, 1);
    }
}
