//! Throughput optimisation by buffer insertion (the Fig. 5 workflow).
//!
//! "The user can analyse the difference in cycles' throughput and balance
//! them by adjusting the number of tokens, adding registers to buffer the
//! flow of tokens, and applying advanced performance optimisation
//! techniques, such as wagging" (§II-D). This module automates the middle
//! option: a bubble-starved critical cycle (e.g. a 3-register ring, period
//! `6d`) gains throughput from an empty register inserted on it (4
//! registers: period `4d`), while a token-starved cycle does not — the
//! optimiser simply tries the candidates and keeps what helps.

use crate::builder::DfsBuilder;
use crate::graph::Dfs;
use crate::node::{InitialMarking, NodeId, TokenValue};
use crate::perf::{analyse, PerfReport};
use crate::DfsError;

/// Result of the optimisation pass.
#[derive(Debug, Clone)]
pub struct OptimizeOutcome {
    /// The optimised model.
    pub dfs: Dfs,
    /// Names of the inserted buffer registers, in insertion order.
    pub inserted: Vec<String>,
    /// Throughput bound before optimisation.
    pub before: f64,
    /// Throughput bound after optimisation.
    pub after: f64,
}

/// Inserts up to `max_buffers` empty registers, greedily picking at each
/// step the critical-cycle edge whose buffering improves the throughput
/// bound the most. Stops early when no candidate helps.
///
/// # Errors
///
/// Propagates analysis errors (e.g. a token-free cycle, which no buffer can
/// fix — it needs a *token*, not a bubble).
pub fn insert_buffers(dfs: &Dfs, max_buffers: usize) -> Result<OptimizeOutcome, DfsError> {
    let mut current = dfs.clone();
    let mut inserted = Vec::new();
    let before = analyse(&current)?.throughput;
    let mut best_throughput = before;

    for round in 0..max_buffers {
        let report = analyse(&current)?;
        let Some((edge, improved, next)) = best_buffer_on_cycle(&current, &report, round)? else {
            break;
        };
        if improved <= best_throughput * (1.0 + 1e-9) {
            break;
        }
        inserted.push(edge);
        best_throughput = improved;
        current = next;
    }

    Ok(OptimizeOutcome {
        dfs: current,
        inserted,
        before,
        after: best_throughput,
    })
}

/// Tries a buffer on every edge between critical-cycle nodes; returns the
/// best `(buffer name, new throughput, new model)`.
fn best_buffer_on_cycle(
    dfs: &Dfs,
    report: &PerfReport,
    round: usize,
) -> Result<Option<(String, f64, Dfs)>, DfsError> {
    let on_cycle: Vec<NodeId> = report
        .critical
        .nodes
        .iter()
        .filter_map(|name| dfs.node_by_name(name))
        .collect();
    let mut best: Option<(String, f64, Dfs)> = None;
    for &u in &on_cycle {
        for e in dfs.succs(u) {
            if !on_cycle.contains(&e.node) {
                continue;
            }
            let name = format!("buf{round}_{}_{}", dfs.node(u).name, dfs.node(e.node).name);
            let candidate = with_buffer(dfs, u, e.node, &name)?;
            if let Ok(r) = analyse(&candidate) {
                if best.as_ref().is_none_or(|(_, t, _)| r.throughput > *t) {
                    best = Some((name, r.throughput, candidate));
                }
            }
        }
    }
    Ok(best)
}

/// Rebuilds `dfs` with an empty register spliced into the edge `from → to`.
///
/// # Errors
///
/// Propagates builder validation errors.
pub fn with_buffer(dfs: &Dfs, from: NodeId, to: NodeId, name: &str) -> Result<Dfs, DfsError> {
    let mut b = DfsBuilder::new();
    let mut ids = Vec::with_capacity(dfs.node_count());
    for n in dfs.nodes() {
        let node = dfs.node(n);
        let nb = match node.kind {
            crate::node::NodeKind::Logic => b.logic(&node.name),
            crate::node::NodeKind::Register => b.register(&node.name),
            crate::node::NodeKind::Control => b.control(&node.name),
            crate::node::NodeKind::Push => b.push(&node.name),
            crate::node::NodeKind::Pop => b.pop(&node.name),
        };
        let nb = nb.delay(node.delay).guard_mode(dfs.guard_mode(n));
        let id = match node.initial {
            InitialMarking::Empty => nb.build(),
            InitialMarking::Marked => nb.marked().build(),
            InitialMarking::MarkedWith(v) => nb.marked_with(v).build(),
        };
        ids.push(id);
    }
    let buf = b
        .register(name)
        .delay(dfs.node(to).delay.min(dfs.node(from).delay))
        .build();
    let mut split = false;
    for n in dfs.nodes() {
        for e in dfs.succs(n) {
            if !split && n == from && e.node == to && !e.inverted {
                b.connect(ids[from.index()], buf);
                b.connect(buf, ids[to.index()]);
                split = true;
            } else if e.inverted {
                b.connect_inverted(ids[n.index()], ids[e.node.index()]);
            } else {
                b.connect(ids[n.index()], ids[e.node.index()]);
            }
        }
    }
    let _ = TokenValue::True; // (kind re-exports used above)
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfsBuilder;
    use crate::timed::{measure_throughput, ChoicePolicy};

    fn ring(n: usize) -> Dfs {
        let mut b = DfsBuilder::new();
        let regs: Vec<NodeId> = (0..n)
            .map(|i| {
                let nb = b.register(format!("r{i}"));
                if i == 0 {
                    nb.marked().build()
                } else {
                    nb.build()
                }
            })
            .collect();
        for i in 0..n {
            b.connect(regs[i], regs[(i + 1) % n]);
        }
        b.finish().unwrap()
    }

    #[test]
    fn bubble_starved_ring_gains_from_a_buffer() {
        // 3-ring: period 6; with one buffer (4-ring): period 4
        let dfs = ring(3);
        let out = insert_buffers(&dfs, 1).unwrap();
        assert_eq!(out.inserted.len(), 1);
        assert!((out.before - 1.0 / 6.0).abs() < 1e-9);
        assert!((out.after - 1.0 / 4.0).abs() < 1e-9, "after {}", out.after);
        // the optimised model really does run faster
        let o = out.dfs.node_by_name("r0").unwrap();
        let thr = measure_throughput(&out.dfs, o, 10, 40, ChoicePolicy::AlwaysTrue).unwrap();
        assert!((thr - out.after).abs() < 1e-6);
    }

    #[test]
    fn optimisation_stops_when_no_buffer_helps() {
        // 4-ring with one token: the forward (token) constraint binds;
        // extra bubbles slow it down (5-ring: period 5 > 4), so the
        // optimiser must refuse
        let dfs = ring(4);
        let out = insert_buffers(&dfs, 3).unwrap();
        assert!(out.inserted.is_empty(), "inserted {:?}", out.inserted);
        assert_eq!(out.before, out.after);
    }

    #[test]
    fn multiple_rounds_accumulate() {
        // 3-ring with two buffers allowed: 3 -> 4 helps; 4 -> 5 would not,
        // so exactly one sticks
        let dfs = ring(3);
        let out = insert_buffers(&dfs, 2).unwrap();
        assert_eq!(out.inserted.len(), 1);
    }

    #[test]
    fn with_buffer_preserves_everything_else() {
        let dfs = ring(3);
        let from = dfs.node_by_name("r1").unwrap();
        let to = dfs.node_by_name("r2").unwrap();
        let out = with_buffer(&dfs, from, to, "b").unwrap();
        assert_eq!(out.node_count(), dfs.node_count() + 1);
        assert_eq!(out.edge_count(), dfs.edge_count() + 1);
        assert_eq!(out.initial_token_count(), dfs.initial_token_count());
    }
}
