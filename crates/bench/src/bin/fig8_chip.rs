//! FIG8 — The evaluation chip (Fig. 8a): structure and the random-mode
//! checksum validation flow.
//!
//! "The produced checksum is validated against the output of the OPE
//! behavioural model initialised with the same seed and count parameters"
//! (§IV). Every one of the chip's 16 reconfigurable depth settings plus the
//! static pipeline is exercised.

use rap_bench::banner;
use rap_bench::cli::BenchCli;
use rap_ope::chip::{behavioural_checksum, Chip, ChipConfig};

const SEED: u32 = 0x5EED_0001;

fn main() {
    let cli = BenchCli::parse("fig8_chip", None);
    rap_bench::trace::with_trace(&cli, |_obs| run(&cli));
}

fn run(cli: &BenchCli) {
    // --quick: fewer LFSR items per checksum run (CI smoke)
    let count: u64 = if cli.quick { 20_000 } else { 200_000 };
    banner("Fig. 8 — OPE chip: structure and checksum validation");
    println!(
        "components: LFSR (32-bit Galois, taps 0x{:08X}), accumulator,\n\
         static OPE (18 stages), reconfigurable OPE (depths 3..=18),\n\
         mode mux (normal/random), config mux (static/reconfigurable)\n",
        rap_ope::lfsr::TAPS
    );

    println!("random mode, seed 0x{SEED:08X}, count {count}:\n");
    println!("config          depth  chip checksum       behavioural model   match");
    let mut st = Chip::new(ChipConfig::Static);
    let got = st.run_random(SEED, count);
    let expect = behavioural_checksum(18, SEED, count);
    println!(
        "static             18  0x{got:016X}  0x{expect:016X}  {}",
        got == expect
    );
    for depth in 3..=18 {
        let mut chip = Chip::new(ChipConfig::Reconfigurable { depth });
        let got = chip.run_random(SEED, count);
        let expect = behavioural_checksum(depth, SEED, count);
        println!(
            "reconfigurable  {depth:>5}  0x{got:016X}  0x{expect:016X}  {}",
            got == expect
        );
        assert_eq!(got, expect, "validation failed at depth {depth}");
    }
    println!("\nall configurations validated against the behavioural model.");
}
