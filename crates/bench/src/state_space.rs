//! The `state_space_scaling` sweep: explorer timings over the paper's
//! pipeline shapes, persisted as `BENCH_state_space.json` (schema v2).
//!
//! The sweep drives both state-space backends — Petri-net reachability and
//! the direct-semantics LTS — over `PipelineSpec::reconfigurable_depth`
//! instances and wagged pipelines. Per case it times:
//!
//! * the retained naive explorer (`explore_naive_truncated`,
//!   `Lts::explore_naive_truncated` — the seed implementations);
//! * the serial incremental engine (the PR-2 reference);
//! * the parallel engine across a **threads axis**, asserting on every
//!   sample that state count and truncation are thread-count-invariant;
//! * for wagged shapes, the symmetry **quotient** (one state per way-rotation
//!   orbit), recording the reduced state count — the `quotient_states` axis.
//!
//! The emitted JSON is this repo's recorded perf trajectory; its schema is
//! validated by [`validate`], which both the binary and the smoke tests run.

use crate::json::{escape, Json};
use dfs_core::pipelines::{build_pipeline, PipelineSpec};
use dfs_core::wagging::wagged_pipeline;
use dfs_core::{node_rotation_symmetry, to_petri, Dfs, Lts};
use rap_obs::{Obs, Snapshot};
use rap_petri::engine::EngineConfig;
use rap_petri::reachability::{
    explore_naive_truncated, explore_quotient_truncated_traced, explore_serial_truncated,
    explore_truncated_traced, ExploreConfig,
};
use std::time::Instant;

/// Schema tag embedded in (and required from) the emitted JSON.
pub const SCHEMA: &str = "rap/state-space-scaling/v2";

/// State budget for every sweep case (none of the swept shapes truncate).
pub const MAX_STATES: usize = 16_000_000;

/// The threads axis swept by every case.
pub const THREADS: &[usize] = &[1, 2, 4];

/// One point of a case's threads axis.
#[derive(Debug, Clone, Copy)]
pub struct ThreadSample {
    /// Worker threads of the parallel engine.
    pub threads: usize,
    /// Best-of-N wall-clock, milliseconds.
    pub ms: f64,
}

/// One measured sweep case.
#[derive(Debug, Clone)]
pub struct Case {
    /// Model shape, e.g. `reconfigurable_depth(3,3)`.
    pub name: String,
    /// `"petri"` (PN reachability) or `"lts"` (direct semantics).
    pub backend: &'static str,
    /// States discovered (identical for every explorer by construction).
    pub states: usize,
    /// Whether the budget truncated exploration.
    pub truncated: bool,
    /// Best-of-N wall-clock of the naive (seed) explorer, milliseconds.
    pub naive_ms: f64,
    /// Best-of-N wall-clock of the serial incremental engine, milliseconds.
    pub engine_ms: f64,
    /// Parallel engine across the threads axis (count/truncation asserted
    /// identical to the serial engine at every point).
    pub threads: Vec<ThreadSample>,
    /// Orbit representatives of the symmetry quotient (wagged shapes only).
    pub quotient_states: Option<usize>,
    /// Best-of-N wall-clock of the quotient exploration, milliseconds.
    pub quotient_ms: Option<f64>,
}

impl Case {
    /// Naive-over-serial-engine wall-clock ratio.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.naive_ms / self.engine_ms
    }

    /// Wall-clock ratio of the threads=1 sample over the max-threads sample
    /// (> 1 means parallel exploration pays off; on a single-core host it
    /// hovers near 1).
    #[must_use]
    pub fn thread_speedup(&self) -> f64 {
        match (self.threads.first(), self.threads.last()) {
            (Some(t1), Some(tn)) if tn.ms > 0.0 => t1.ms / tn.ms,
            _ => 1.0,
        }
    }

    /// Full-over-quotient state-count ratio (≈ the symmetry group order).
    #[must_use]
    pub fn quotient_reduction(&self) -> Option<f64> {
        self.quotient_states
            .map(|q| self.states as f64 / q.max(1) as f64)
    }
}

/// Best-of-`reps` wall-clock of `f`, in milliseconds, with `f`'s last result.
fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (R, f64) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        last = Some(f());
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (last.expect("reps >= 1"), best)
}

fn cfg(threads: usize) -> ExploreConfig {
    ExploreConfig {
        max_states: MAX_STATES,
        threads,
        deadline: None,
    }
}

fn petri_case(name: &str, dfs: &Dfs, reps: usize, way_rotation: Option<&[u32]>, obs: &Obs) -> Case {
    // one span per case; the parallel/quotient explorations below feed
    // their per-level expand/dedup/commit spans into it, so a traced
    // BENCH_state_space.json can attribute each case's time to the
    // engine's phases
    let case_span = obs.span("bench.case.petri");
    let cobs = case_span.obs();
    let img = to_petri(dfs);
    let (naive, naive_ms) = best_of(reps, || explore_naive_truncated(&img.net, cfg(1)));
    let (serial, engine_ms) = best_of(reps, || explore_serial_truncated(&img.net, cfg(1)));
    assert_eq!(
        (naive.len(), naive.is_truncated()),
        (serial.len(), serial.is_truncated()),
        "{name}: serial engine disagrees with the naive explorer"
    );
    let mut threads = Vec::new();
    for &t in THREADS {
        let (par, ms) = best_of(reps, || explore_truncated_traced(&img.net, cfg(t), &cobs));
        assert_eq!(
            (par.len(), par.is_truncated()),
            (serial.len(), serial.is_truncated()),
            "{name}: parallel engine at {t} threads is not thread-count-invariant"
        );
        threads.push(ThreadSample { threads: t, ms });
    }
    let (quotient_states, quotient_ms) = match way_rotation {
        Some(perm) => {
            let sym = img
                .induced_symmetry(perm)
                .expect("way rotation induces a net automorphism")
                .state_symmetry();
            let (quo, ms) = best_of(reps, || {
                explore_quotient_truncated_traced(&img.net, cfg(1), &sym, &cobs)
            });
            assert!(!quo.is_truncated(), "{name}: quotient truncated");
            (Some(quo.len()), Some(ms))
        }
        None => (None, None),
    };
    Case {
        name: name.to_string(),
        backend: "petri",
        states: serial.len(),
        truncated: serial.is_truncated(),
        naive_ms,
        engine_ms,
        threads,
        quotient_states,
        quotient_ms,
    }
}

fn lts_case(name: &str, dfs: &Dfs, reps: usize, way_rotation: Option<&[u32]>, obs: &Obs) -> Case {
    let case_span = obs.span("bench.case.lts");
    let cobs = case_span.obs();
    let (naive, naive_ms) = best_of(reps, || Lts::explore_naive_truncated(dfs, MAX_STATES));
    let (serial, engine_ms) = best_of(reps, || Lts::explore_serial_truncated(dfs, MAX_STATES));
    assert_eq!(
        (naive.len(), naive.is_truncated()),
        (serial.len(), serial.is_truncated()),
        "{name}: serial engine disagrees with the naive explorer"
    );
    let ecfg = |t: usize| EngineConfig {
        max_states: MAX_STATES,
        threads: t,
        anchor_interval: 0,
        deadline: None,
    };
    let mut threads = Vec::new();
    for &t in THREADS {
        let (par, ms) = best_of(reps, || {
            Lts::explore_with_traced(dfs, &ecfg(t), None, &cobs)
        });
        assert_eq!(
            (par.len(), par.is_truncated()),
            (serial.len(), serial.is_truncated()),
            "{name}: parallel engine at {t} threads is not thread-count-invariant"
        );
        threads.push(ThreadSample { threads: t, ms });
    }
    let (quotient_states, quotient_ms) = match way_rotation {
        Some(perm) => {
            let sym = node_rotation_symmetry(dfs, perm)
                .expect("way rotation is a structural automorphism");
            let (quo, ms) = best_of(reps, || {
                Lts::explore_with_traced(dfs, &ecfg(1), Some(&sym), &cobs)
            });
            assert!(!quo.is_truncated(), "{name}: quotient truncated");
            (Some(quo.len()), Some(ms))
        }
        None => (None, None),
    };
    Case {
        name: name.to_string(),
        backend: "lts",
        states: serial.len(),
        truncated: serial.is_truncated(),
        naive_ms,
        engine_ms,
        threads,
        quotient_states,
        quotient_ms,
    }
}

/// Runs the sweep. `quick` restricts it to sub-second shapes (CI smoke);
/// the full sweep covers the acceptance shape `reconfigurable_depth(3,3)`
/// and the 2-way wagged pipeline (~1.5M states).
#[must_use]
pub fn run_sweep(quick: bool) -> Vec<Case> {
    run_sweep_traced(quick, &Obs::none())
}

/// [`run_sweep`] with a recorder attached: each case opens a
/// `bench.case.petri` / `bench.case.lts` span, and the parallel and
/// quotient explorations inside it emit the engine's per-level
/// `engine.level.expand` / `engine.level.dedup` / `engine.level.commit`
/// spans plus the `engine.*` counters — so a traced
/// `BENCH_state_space.json` can attribute each case's wall-clock to the
/// engine's phases. Recording is observation-only: states, truncation and
/// every thread-count-invariance assertion are unchanged.
#[must_use]
pub fn run_sweep_traced(quick: bool, obs: &Obs) -> Vec<Case> {
    let reconfig = |n: usize, k: usize| {
        build_pipeline(&PipelineSpec::reconfigurable_depth(n, k).expect("valid sweep shape"))
            .expect("pipeline builds")
            .dfs
    };
    let wagged = |ways: usize| wagged_pipeline(ways, 1, 1.0).expect("wagging builds");

    let mut cases = Vec::new();
    cases.push(petri_case(
        "reconfigurable_depth(2,2)",
        &reconfig(2, 2),
        5,
        None,
        obs,
    ));
    cases.push(lts_case(
        "reconfigurable_depth(2,2)",
        &reconfig(2, 2),
        5,
        None,
        obs,
    ));
    let w1 = wagged(1);
    cases.push(petri_case("wagging(ways=1,depth=1)", &w1.dfs, 3, None, obs));
    if !quick {
        cases.push(petri_case(
            "reconfigurable_depth(3,2)",
            &reconfig(3, 2),
            2,
            None,
            obs,
        ));
        cases.push(petri_case(
            "reconfigurable_depth(3,3)",
            &reconfig(3, 3),
            3,
            None,
            obs,
        ));
        cases.push(lts_case(
            "reconfigurable_depth(3,3)",
            &reconfig(3, 3),
            2,
            None,
            obs,
        ));
        cases.push(lts_case("wagging(ways=1,depth=1)", &w1.dfs, 3, None, obs));
        let w2 = wagged(2);
        cases.push(petri_case(
            "wagging(ways=2,depth=1)",
            &w2.dfs,
            1,
            Some(&w2.way_rotation),
            obs,
        ));
    }
    cases
}

/// Renders the sweep as the `BENCH_state_space.json` document.
#[must_use]
pub fn render_json(cases: &[Case], quick: bool) -> String {
    render_json_with_trace(cases, quick, None)
}

/// [`render_json`] with an optional `trace_summary` block from a traced
/// run's [`Snapshot`] — the per-level engine spans let the document say
/// how the sweep's wall-clock splits across expand/dedup/commit. The
/// block is additive: the document stays schema-valid without it and
/// every measured number is unchanged.
#[must_use]
pub fn render_json_with_trace(cases: &[Case], quick: bool, trace: Option<&Snapshot>) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": {},\n", escape(SCHEMA)));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"max_states\": {MAX_STATES},\n"));
    if let Some(snap) = trace {
        out.push_str(&format!(
            "  \"trace_summary\": {},\n",
            crate::trace::summary_block(snap, "  ")
        ));
    }
    out.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": {},\n", escape(&c.name)));
        out.push_str(&format!("      \"backend\": {},\n", escape(c.backend)));
        out.push_str(&format!("      \"states\": {},\n", c.states));
        out.push_str(&format!("      \"truncated\": {},\n", c.truncated));
        out.push_str(&format!("      \"naive_ms\": {:.3},\n", c.naive_ms));
        out.push_str(&format!("      \"engine_ms\": {:.3},\n", c.engine_ms));
        out.push_str("      \"threads\": [");
        for (j, t) in c.threads.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"threads\": {}, \"ms\": {:.3}}}",
                t.threads, t.ms
            ));
        }
        out.push_str("],\n");
        match (c.quotient_states, c.quotient_ms) {
            (Some(q), Some(ms)) => {
                out.push_str(&format!("      \"quotient_states\": {q},\n"));
                out.push_str(&format!("      \"quotient_ms\": {ms:.3},\n"));
            }
            _ => {
                out.push_str("      \"quotient_states\": null,\n");
                out.push_str("      \"quotient_ms\": null,\n");
            }
        }
        out.push_str(&format!("      \"speedup\": {:.3}\n", c.speedup()));
        out.push_str(if i + 1 == cases.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    let min = cases
        .iter()
        .map(Case::speedup)
        .fold(f64::INFINITY, f64::min);
    let geomean =
        (cases.iter().map(|c| c.speedup().ln()).sum::<f64>() / cases.len().max(1) as f64).exp();
    let max_thread = cases
        .iter()
        .map(Case::thread_speedup)
        .fold(1.0f64, f64::max);
    let max_quot = cases
        .iter()
        .filter_map(Case::quotient_reduction)
        .fold(1.0f64, f64::max);
    out.push_str("  \"summary\": {\n");
    out.push_str(&format!("    \"cases\": {},\n", cases.len()));
    out.push_str(&format!("    \"min_speedup\": {min:.3},\n"));
    out.push_str(&format!("    \"geomean_speedup\": {geomean:.3},\n"));
    out.push_str(&format!("    \"max_thread_speedup\": {max_thread:.3},\n"));
    out.push_str(&format!("    \"max_quotient_reduction\": {max_quot:.3}\n"));
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

/// Summary extracted from a valid `BENCH_state_space.json`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of sweep cases.
    pub cases: usize,
    /// Minimum naive/engine speedup across cases.
    pub min_speedup: f64,
    /// Geometric-mean speedup across cases.
    pub geomean_speedup: f64,
    /// Largest threads=1 / threads=max wall-clock ratio across cases.
    pub max_thread_speedup: f64,
    /// Largest full/quotient state-count ratio across cases (1.0 when no
    /// case has a quotient axis).
    pub max_quotient_reduction: f64,
}

/// Validates a `BENCH_state_space.json` document against the v2 schema and
/// returns its summary.
///
/// # Errors
///
/// A description of the first schema violation found.
pub fn validate(src: &str) -> Result<Summary, String> {
    let doc = Json::parse(src)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing \"schema\"")?;
    if schema != SCHEMA {
        return Err(format!("schema is {schema:?}, expected {SCHEMA:?}"));
    }
    doc.get("quick")
        .and_then(Json::as_bool)
        .ok_or("missing boolean \"quick\"")?;
    // optional (only present when the run was traced), but well-formed
    // when it is there
    if let Some(ts) = doc.get("trace_summary") {
        ts.get("wall_ns")
            .and_then(Json::as_f64)
            .filter(|x| *x >= 1.0)
            .ok_or("trace_summary: missing positive \"wall_ns\"")?;
        ts.get("coverage")
            .and_then(Json::as_f64)
            .filter(|x| (0.0..=1.0).contains(x))
            .ok_or("trace_summary: missing \"coverage\" in [0, 1]")?;
        ts.get("top_self")
            .and_then(Json::as_arr)
            .ok_or("trace_summary: missing \"top_self\" array")?;
    }
    let cases = doc
        .get("cases")
        .and_then(Json::as_arr)
        .ok_or("missing \"cases\" array")?;
    if cases.is_empty() {
        return Err("\"cases\" is empty".to_string());
    }
    let mut min = f64::INFINITY;
    for (i, c) in cases.iter().enumerate() {
        let field = |k: &str| c.get(k).ok_or(format!("case {i}: missing \"{k}\""));
        let backend = field("backend")?
            .as_str()
            .ok_or(format!("case {i}: \"backend\" not a string"))?;
        if backend != "petri" && backend != "lts" {
            return Err(format!("case {i}: unknown backend {backend:?}"));
        }
        field("name")?
            .as_str()
            .ok_or(format!("case {i}: \"name\" not a string"))?;
        field("truncated")?
            .as_bool()
            .ok_or(format!("case {i}: \"truncated\" not a bool"))?;
        let num = |k: &str| -> Result<f64, String> {
            field(k)?
                .as_f64()
                .filter(|x| x.is_finite() && *x >= 0.0)
                .ok_or(format!("case {i}: \"{k}\" not a non-negative number"))
        };
        let (states, naive_ms, engine_ms, speedup) = (
            num("states")?,
            num("naive_ms")?,
            num("engine_ms")?,
            num("speedup")?,
        );
        if states < 1.0 {
            return Err(format!("case {i}: zero states"));
        }
        if engine_ms > 0.0 && (speedup - naive_ms / engine_ms).abs() > 0.05 * speedup.max(1.0) {
            return Err(format!("case {i}: speedup inconsistent with timings"));
        }
        let threads = field("threads")?
            .as_arr()
            .ok_or(format!("case {i}: \"threads\" not an array"))?;
        if threads.is_empty() {
            return Err(format!("case {i}: empty threads axis"));
        }
        let mut prev = 0.0f64;
        for (j, t) in threads.iter().enumerate() {
            let tn = t
                .get("threads")
                .and_then(Json::as_f64)
                .filter(|x| *x >= 1.0)
                .ok_or(format!("case {i}: threads[{j}] missing worker count"))?;
            if tn <= prev {
                return Err(format!("case {i}: threads axis not strictly increasing"));
            }
            prev = tn;
            t.get("ms")
                .and_then(Json::as_f64)
                .filter(|x| x.is_finite() && *x >= 0.0)
                .ok_or(format!("case {i}: threads[{j}] missing \"ms\""))?;
        }
        let qs = field("quotient_states")?;
        match qs.as_f64() {
            Some(q) => {
                if !(1.0..=states).contains(&q) {
                    return Err(format!("case {i}: quotient_states outside [1, states]"));
                }
                field("quotient_ms")?
                    .as_f64()
                    .filter(|x| x.is_finite() && *x >= 0.0)
                    .ok_or(format!("case {i}: quotient without \"quotient_ms\""))?;
            }
            None => {
                if *qs != Json::Null {
                    return Err(format!("case {i}: \"quotient_states\" not number or null"));
                }
            }
        }
        min = min.min(speedup);
    }
    let summary = doc.get("summary").ok_or("missing \"summary\"")?;
    let get_num = |k: &str| -> Result<f64, String> {
        summary
            .get(k)
            .and_then(Json::as_f64)
            .ok_or(format!("summary: missing number \"{k}\""))
    };
    let n = get_num("cases")?;
    if n as usize != cases.len() {
        return Err("summary case count disagrees with \"cases\"".to_string());
    }
    let min_speedup = get_num("min_speedup")?;
    if (min_speedup - min).abs() > 0.05 * min.max(1.0) {
        return Err("summary min_speedup disagrees with cases".to_string());
    }
    Ok(Summary {
        cases: cases.len(),
        min_speedup,
        geomean_speedup: get_num("geomean_speedup")?,
        max_thread_speedup: get_num("max_thread_speedup")?,
        max_quotient_reduction: get_num("max_quotient_reduction")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_cases() -> Vec<Case> {
        vec![
            Case {
                name: "reconfigurable_depth(2,2)".into(),
                backend: "petri",
                states: 1536,
                truncated: false,
                naive_ms: 1.2,
                engine_ms: 0.4,
                threads: vec![
                    ThreadSample {
                        threads: 1,
                        ms: 0.4,
                    },
                    ThreadSample {
                        threads: 2,
                        ms: 0.25,
                    },
                ],
                quotient_states: None,
                quotient_ms: None,
            },
            Case {
                name: "wagging(ways=2,depth=1)".into(),
                backend: "lts",
                states: 1536,
                truncated: false,
                naive_ms: 2.0,
                engine_ms: 0.5,
                threads: vec![
                    ThreadSample {
                        threads: 1,
                        ms: 0.5,
                    },
                    ThreadSample {
                        threads: 2,
                        ms: 0.3,
                    },
                ],
                quotient_states: Some(800),
                quotient_ms: Some(0.3),
            },
        ]
    }

    #[test]
    fn render_validate_roundtrip() {
        let json = render_json(&fake_cases(), true);
        let summary = validate(&json).unwrap();
        assert_eq!(summary.cases, 2);
        assert!((summary.min_speedup - 3.0).abs() < 0.05);
        assert!((summary.max_thread_speedup - 0.5 / 0.3).abs() < 0.05);
        assert!((summary.max_quotient_reduction - 1536.0 / 800.0).abs() < 0.05);
    }

    #[test]
    fn validation_rejects_broken_documents() {
        let good = render_json(&fake_cases(), true);
        assert!(validate(&good.replace(SCHEMA, "rap/state-space-scaling/v1")).is_err());
        assert!(validate(&good.replace("\"cases\"", "\"cazes\"")).is_err());
        assert!(validate(&good.replace("\"speedup\": 3.000", "\"speedup\": 9.000")).is_err());
        assert!(
            validate(&good.replace("\"threads\": [{", "\"threads\": [ ] , \"x\": [{")).is_err()
        );
        assert!(
            validate(&good.replace("\"quotient_states\": 800", "\"quotient_states\": 0")).is_err()
        );
        assert!(validate("{}").is_err());
        assert!(validate("not json").is_err());
    }
}
