//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API used by
//! `crates/bench/benches/tool_performance.rs`: `Criterion::bench_function`,
//! `Bencher::iter` / `iter_batched`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is a simple
//! best-of-N wall-clock loop printed as a plain-text table — no statistics,
//! plots, or comparison baselines. Swap the path dependency for crates.io
//! `criterion` to get the real harness; the bench source is unchanged.

#![forbid(unsafe_code)]

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock budget per benchmark (keeps `cargo bench` snappy).
const TIME_BUDGET: Duration = Duration::from_millis(300);
/// Measurement repetitions from which the best (minimum) time is taken.
const SAMPLES: u32 = 10;

/// How batched inputs are grouped. All variants behave identically here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Passed to the closure given to [`Criterion::bench_function`].
pub struct Bencher {
    best_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing the best per-iteration time observed.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let iters = calibrate(|| {
            black_box(routine());
        });
        for _ in 0..SAMPLES {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let per_iter = t0.elapsed().as_secs_f64() * 1e9 / f64::from(iters);
            self.best_ns = self.best_ns.min(per_iter);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..SAMPLES {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            let ns = t0.elapsed().as_secs_f64() * 1e9;
            self.best_ns = self.best_ns.min(ns);
        }
    }
}

/// Picks an iteration count that fits the time budget.
fn calibrate(mut f: impl FnMut()) -> u32 {
    let t0 = Instant::now();
    f();
    let once = t0.elapsed();
    if once.is_zero() {
        return 1000;
    }
    let fit = (TIME_BUDGET.as_secs_f64() / SAMPLES as f64 / once.as_secs_f64()).floor();
    fit.clamp(1.0, 10_000.0) as u32
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark and prints its best observed time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { best_ns: f64::MAX };
        f(&mut b);
        let ns = b.best_ns;
        let (value, unit) = if ns >= 1e9 {
            (ns / 1e9, "s ")
        } else if ns >= 1e6 {
            (ns / 1e6, "ms")
        } else if ns >= 1e3 {
            (ns / 1e3, "µs")
        } else {
            (ns, "ns")
        };
        println!("{name:<40} {value:>10.3} {unit}/iter (best of {SAMPLES})");
        self
    }
}

/// Collects benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point: runs each group, or exits immediately when Cargo invokes
/// the bench binary in test mode (`cargo test` passes `--test`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if ::std::env::args().any(|a| a == "--test" || a == "--list") {
                // `cargo test` probes bench targets; nothing to run.
                return;
            }
            $($group();)+
        }
    };
}
