//! Labelled transition system of the direct DFS semantics.
//!
//! Exhaustive exploration of [`crate::DfsState`]s under
//! [`Dfs::enabled_events`]. This is the reference object for the
//! PN-translation bisimulation tests, and the substrate of the verification
//! queries that do not go through the Petri-net backend.
//!
//! Since PR 2 exploration runs on the shared incremental engine of
//! [`rap_petri::engine`]: states are packed into two bit-planes (`active`,
//! `false-valued`) in a dense arena, and after each event only the events of
//! *dependent* nodes — the event's own node plus everything reading it
//! through data edges, R-presets/postsets or guards — are re-checked for
//! enabledness. The original explorer is retained as
//! [`Lts::explore_naive_truncated`] for property-based cross-checking and as
//! the benchmark baseline.

use crate::graph::Dfs;
use crate::node::{NodeId, NodeKind, TokenValue};
use crate::semantics::Event;
use crate::state::DfsState;
use crate::DfsError;
use rap_petri::engine::{self, get_bit, set_bit, ExploredGraph, TransitionSystem, NO_PARENT};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

/// Dense id of a state in an [`Lts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LtsStateId(u32);

impl LtsStateId {
    /// Dense index of the state (0 = initial).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The reachable labelled transition system of a DFS model.
///
/// States are stored word-packed; [`Lts::state`] materialises a
/// [`DfsState`] snapshot on demand.
#[derive(Debug, Clone)]
pub struct Lts {
    node_count: usize,
    stride: usize,
    arena: Vec<u64>,
    parents: Vec<(u32, u32)>,
    parent_events: Vec<Event>,
    succ_off: Vec<u32>,
    succ: Vec<(Event, LtsStateId)>,
    truncated: bool,
}

impl Lts {
    /// Explores the reachable states of `dfs`, up to `max_states`.
    ///
    /// # Errors
    ///
    /// [`DfsError::StateBudgetExceeded`] when the bound is hit.
    pub fn explore(dfs: &Dfs, max_states: usize) -> Result<Lts, DfsError> {
        let lts = Self::explore_truncated(dfs, max_states);
        if lts.truncated {
            return Err(DfsError::StateBudgetExceeded { budget: max_states });
        }
        Ok(lts)
    }

    /// Like [`Lts::explore`] but returns the partial LTS on budget overrun.
    #[must_use]
    pub fn explore_truncated(dfs: &Dfs, max_states: usize) -> Lts {
        let mut sys = DfsSystem::new(dfs);
        let graph = engine::explore(&mut sys, max_states);
        Self::from_graph(graph, &sys)
    }

    fn from_graph(g: ExploredGraph, sys: &DfsSystem<'_>) -> Lts {
        let parent_events = g
            .parents
            .iter()
            .map(|&(p, a)| {
                if p == NO_PARENT {
                    // arbitrary filler for the root (never read)
                    Event::Eval(NodeId::from_index(0))
                } else {
                    sys.actions[a as usize]
                }
            })
            .collect();
        let succ = g
            .succ
            .iter()
            .map(|&(a, s)| (sys.actions[a as usize], LtsStateId(s)))
            .collect();
        Lts {
            node_count: sys.dfs.node_count(),
            stride: g.stride,
            arena: g.arena,
            parents: g.parents,
            parent_events,
            succ_off: g.succ_off,
            succ,
            truncated: g.truncated,
        }
    }

    /// The original (pre-engine) explorer: `HashMap<DfsState, _>` dedup with
    /// cloned keys and a full `enabled_events` scan per state.
    ///
    /// Retained as the reference implementation for the engine-equivalence
    /// property tests and the `state_space_scaling` baseline; use
    /// [`Lts::explore`] / [`Lts::explore_truncated`] everywhere else.
    #[must_use]
    pub fn explore_naive_truncated(dfs: &Dfs, max_states: usize) -> Lts {
        let s0 = DfsState::initial(dfs);
        let mut index: HashMap<DfsState, LtsStateId> = HashMap::new();
        let mut states = vec![s0.clone()];
        let mut edges: Vec<Vec<(Event, LtsStateId)>> = vec![Vec::new()];
        let mut parents: Vec<(u32, u32)> = vec![(NO_PARENT, 0)];
        let mut parent_events: Vec<Event> = vec![Event::Eval(NodeId::from_index(0))];
        index.insert(s0, LtsStateId(0));
        let mut queue = VecDeque::from([LtsStateId(0)]);
        let mut truncated = false;

        'bfs: while let Some(s) = queue.pop_front() {
            let state = states[s.index()].clone();
            for ev in dfs.enabled_events(&state) {
                let next = dfs.apply(&state, ev);
                let succ = match index.entry(next) {
                    Entry::Occupied(e) => *e.get(),
                    Entry::Vacant(e) => {
                        if states.len() >= max_states {
                            truncated = true;
                            break 'bfs;
                        }
                        let id = LtsStateId(states.len() as u32);
                        states.push(e.key().clone());
                        edges.push(Vec::new());
                        parents.push((s.0, 0));
                        parent_events.push(ev);
                        queue.push_back(id);
                        e.insert(id);
                        id
                    }
                };
                edges[s.index()].push((ev, succ));
            }
        }

        // pack into the arena representation shared with the engine path
        let node_count = dfs.node_count();
        let stride = DfsSystem::stride_for(node_count);
        let mut arena = Vec::with_capacity(states.len() * stride);
        let mut buf = vec![0u64; stride];
        for st in &states {
            buf.iter_mut().for_each(|w| *w = 0);
            DfsSystem::encode(st, node_count, &mut buf);
            arena.extend_from_slice(&buf);
        }
        let mut succ_off = Vec::with_capacity(states.len() + 1);
        let mut succ = Vec::new();
        succ_off.push(0u32);
        for row in &edges {
            succ.extend_from_slice(row);
            succ_off.push(succ.len() as u32);
        }

        Lts {
            node_count,
            stride,
            arena,
            parents,
            parent_events,
            succ_off,
            succ,
            truncated,
        }
    }

    /// Number of reachable states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// Always false (the initial state exists); pairs with [`Lts::len`].
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// Was exploration cut short by the state budget?
    #[must_use]
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// The initial state id.
    #[must_use]
    pub fn initial(&self) -> LtsStateId {
        LtsStateId(0)
    }

    /// The state snapshot for `id`, decoded from the arena.
    #[must_use]
    pub fn state(&self, id: LtsStateId) -> DfsState {
        let mut out = DfsState {
            active: vec![false; self.node_count],
            value: vec![TokenValue::True; self.node_count],
        };
        self.fill_state(id, &mut out);
        out
    }

    /// Decodes the state `id` into `out` without allocating. `out` must come
    /// from the same model (same node count).
    pub fn fill_state(&self, id: LtsStateId, out: &mut DfsState) {
        assert_eq!(out.active.len(), self.node_count, "state buffer mismatch");
        let words = &self.arena[id.index() * self.stride..(id.index() + 1) * self.stride];
        DfsSystem::decode_words(words, self.node_count, out);
    }

    /// Iterates over all state ids.
    pub fn states(&self) -> impl Iterator<Item = LtsStateId> {
        (0..self.parents.len() as u32).map(LtsStateId)
    }

    /// Outgoing labelled edges of `id`.
    #[must_use]
    pub fn successors(&self, id: LtsStateId) -> &[(Event, LtsStateId)] {
        let i = id.index();
        &self.succ[self.succ_off[i] as usize..self.succ_off[i + 1] as usize]
    }

    /// Event sequence from the initial state to `id`.
    #[must_use]
    pub fn trace_to(&self, id: LtsStateId) -> Vec<Event> {
        let mut rev = Vec::new();
        let mut cur = id.index();
        while self.parents[cur].0 != NO_PARENT {
            rev.push(self.parent_events[cur]);
            cur = self.parents[cur].0 as usize;
        }
        rev.reverse();
        rev
    }

    /// States with no outgoing edges (deadlocks).
    #[must_use]
    pub fn deadlocks(&self) -> Vec<LtsStateId> {
        self.states()
            .filter(|&s| self.successors(s).is_empty())
            .collect()
    }

    /// Finds a state satisfying `pred`, in BFS (shortest-trace) order,
    /// decoding into a single reused buffer.
    pub fn find_state(&self, mut pred: impl FnMut(&DfsState) -> bool) -> Option<LtsStateId> {
        let mut scratch = DfsState {
            active: vec![false; self.node_count],
            value: vec![TokenValue::True; self.node_count],
        };
        self.states().find(|&s| {
            self.fill_state(s, &mut scratch);
            pred(&scratch)
        })
    }
}

/// Maximum actions a node can offer, by kind (see the action layout below).
fn action_slots(kind: NodeKind) -> u32 {
    match kind {
        NodeKind::Logic | NodeKind::Register => 2,
        NodeKind::Control | NodeKind::Push | NodeKind::Pop => 3,
    }
}

/// [`TransitionSystem`] view of a DFS model for the shared engine.
///
/// States are two bit-planes over the nodes: plane 0 holds `active`
/// (`C`/`M`), plane 1 holds "marked with a False token" (zero whenever the
/// node is inactive, matching [`DfsState`]'s canonicalisation). The action
/// table enumerates, per node and in [`Dfs::enabled_events`] order, every
/// event the node can ever offer:
///
/// * logic — `Eval`, `Reset`;
/// * plain register — `Mark(True)`, `Unmark`;
/// * control/push/pop — `Mark(True)`, `Mark(False)`, `Unmark`.
///
/// The affected map is the syntactic dependency closure of the semantics
/// (eqs. (1)–(5)): the events of node `m` are re-checked after an event of
/// node `n` iff `n ∈ {m} ∪ preds(m) ∪ ?m ∪ m? ∪ guards(m)`. The
/// engine-equivalence property tests pin this closure against the naive
/// full-scan explorer.
struct DfsSystem<'a> {
    dfs: &'a Dfs,
    actions: Vec<Event>,
    /// First action index of each node.
    base: Vec<u32>,
    /// Per node: the nodes whose events must be re-checked after it changes.
    dependents: Vec<Vec<u32>>,
    scratch: DfsState,
    evbuf: Vec<Event>,
}

impl<'a> DfsSystem<'a> {
    fn new(dfs: &'a Dfs) -> Self {
        let n = dfs.node_count();
        let mut actions = Vec::new();
        let mut base = Vec::with_capacity(n);
        for node in dfs.nodes() {
            base.push(actions.len() as u32);
            match dfs.kind(node) {
                NodeKind::Logic => {
                    actions.push(Event::Eval(node));
                    actions.push(Event::Reset(node));
                }
                NodeKind::Register => {
                    actions.push(Event::Mark(node, TokenValue::True));
                    actions.push(Event::Unmark(node));
                }
                NodeKind::Control | NodeKind::Push | NodeKind::Pop => {
                    actions.push(Event::Mark(node, TokenValue::True));
                    actions.push(Event::Mark(node, TokenValue::False));
                    actions.push(Event::Unmark(node));
                }
            }
        }

        let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); n];
        for m in dfs.nodes() {
            let mut deps: Vec<NodeId> = vec![m];
            deps.extend(dfs.preds(m).iter().map(|e| e.node));
            deps.extend(dfs.r_preset(m).iter().map(|r| r.node));
            deps.extend(dfs.r_postset(m).iter().map(|r| r.node));
            deps.extend(dfs.guards(m).iter().map(|r| r.node));
            deps.sort_unstable();
            deps.dedup();
            for d in deps {
                dependents[d.index()].push(m.index() as u32);
            }
        }
        for row in &mut dependents {
            row.sort_unstable();
            row.dedup();
        }

        DfsSystem {
            dfs,
            actions,
            base,
            dependents,
            scratch: DfsState::initial(dfs),
            evbuf: Vec::new(),
        }
    }

    fn stride_for(node_count: usize) -> usize {
        (node_count.div_ceil(64) * 2).max(1)
    }

    fn plane_words(node_count: usize) -> usize {
        node_count.div_ceil(64)
    }

    /// Packs `state` into `out` (pre-zeroed, `stride_for` words).
    fn encode(state: &DfsState, node_count: usize, out: &mut [u64]) {
        let w = Self::plane_words(node_count);
        for i in 0..node_count {
            if state.active[i] {
                set_bit(&mut out[..w], i, true);
                if state.value[i] == TokenValue::False {
                    set_bit(&mut out[w..], i, true);
                }
            }
        }
    }

    fn decode_words(words: &[u64], node_count: usize, out: &mut DfsState) {
        let w = Self::plane_words(node_count);
        for i in 0..node_count {
            out.active[i] = get_bit(&words[..w], i);
            out.value[i] = if w > 0 && get_bit(&words[w..], i) {
                TokenValue::False
            } else {
                TokenValue::True
            };
        }
    }

    /// The action id of `ev` (which must be one of `ev.node()`'s slots).
    fn action_id(&self, ev: Event) -> usize {
        let node = ev.node();
        let offset = match ev {
            Event::Eval(_) => 0,
            Event::Reset(_) => 1,
            Event::Mark(n, v) => {
                if self.dfs.kind(n) == NodeKind::Register || v == TokenValue::True {
                    0
                } else {
                    1
                }
            }
            Event::Unmark(n) => {
                if self.dfs.kind(n) == NodeKind::Register {
                    1
                } else {
                    2
                }
            }
        };
        self.base[node.index()] as usize + offset
    }
}

impl TransitionSystem for DfsSystem<'_> {
    fn state_words(&self) -> usize {
        Self::stride_for(self.dfs.node_count())
    }

    fn action_count(&self) -> usize {
        self.actions.len()
    }

    fn write_initial(&mut self, out: &mut [u64]) {
        let s0 = DfsState::initial(self.dfs);
        Self::encode(&s0, self.dfs.node_count(), out);
    }

    fn write_enabled_full(&mut self, state: &[u64], out: &mut [u64]) {
        Self::decode_words(state, self.dfs.node_count(), &mut self.scratch);
        for ev in self.dfs.enabled_events(&self.scratch) {
            set_bit(out, self.action_id(ev), true);
        }
    }

    fn apply(&mut self, a: usize, state: &[u64], out: &mut [u64]) {
        out.copy_from_slice(state);
        let w = Self::plane_words(self.dfs.node_count());
        match self.actions[a] {
            Event::Eval(n) => set_bit(&mut out[..w], n.index(), true),
            Event::Mark(n, v) => {
                set_bit(&mut out[..w], n.index(), true);
                set_bit(&mut out[w..], n.index(), v == TokenValue::False);
            }
            Event::Reset(n) | Event::Unmark(n) => {
                set_bit(&mut out[..w], n.index(), false);
                set_bit(&mut out[w..], n.index(), false);
            }
        }
    }

    fn update_enabled(&mut self, a: usize, state: &[u64], enabled: &mut [u64]) {
        Self::decode_words(state, self.dfs.node_count(), &mut self.scratch);
        let node = self.actions[a].node();
        for &mi in &self.dependents[node.index()] {
            let m = NodeId::from_index(mi as usize);
            let b = self.base[mi as usize] as usize;
            for slot in 0..action_slots(self.dfs.kind(m)) {
                set_bit(enabled, b + slot as usize, false);
            }
            self.evbuf.clear();
            self.dfs.node_events(&self.scratch, m, &mut self.evbuf);
            for i in 0..self.evbuf.len() {
                set_bit(enabled, self.action_id(self.evbuf[i]), true);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfsBuilder;
    use crate::node::TokenValue;

    /// Closed three-register ring — the paper notes three registers are the
    /// minimum for a token to oscillate (§III, control loops), and the same
    /// holds for plain rings under the spread-token semantics.
    fn ring() -> Dfs {
        let mut b = DfsBuilder::new();
        let r0 = b.register("a").marked().build();
        let r1 = b.register("b").build();
        let r2 = b.register("c").build();
        b.connect(r0, r1);
        b.connect(r1, r2);
        b.connect(r2, r0);
        b.finish().unwrap()
    }

    #[test]
    fn two_register_ring_deadlocks() {
        // With fewer than three registers a token cannot oscillate: the
        // receiving register's R-postset is the marked sender itself.
        let mut b = DfsBuilder::new();
        let r0 = b.register("a").marked().build();
        let r1 = b.register("b").build();
        b.connect(r0, r1);
        b.connect(r1, r0);
        let dfs = b.finish().unwrap();
        let lts = Lts::explore(&dfs, 1_000).unwrap();
        assert!(!lts.deadlocks().is_empty());
    }

    #[test]
    fn ring_is_live_and_bounded() {
        let dfs = ring();
        let lts = Lts::explore(&dfs, 10_000).unwrap();
        assert!(lts.deadlocks().is_empty());
        assert!(lts.len() > 2);
        // traces replay
        for s in lts.states() {
            let mut st = DfsState::initial(&dfs);
            for ev in lts.trace_to(s) {
                st = dfs.apply(&st, ev);
            }
            assert_eq!(st, lts.state(s));
        }
    }

    #[test]
    fn budget_overrun_reports() {
        let dfs = ring();
        assert!(matches!(
            Lts::explore(&dfs, 2),
            Err(crate::DfsError::StateBudgetExceeded { budget: 2 })
        ));
        let partial = Lts::explore_truncated(&dfs, 2);
        assert!(partial.is_truncated());
        assert_eq!(partial.len(), 2);
    }

    #[test]
    fn mismatch_init_deadlocks() {
        // push guarded by two controls initialised inconsistently — the
        // §III-A "incorrect initialisation" bug class
        let mut b = DfsBuilder::new();
        let i = b.register("in").marked().build();
        let c1 = b.control("c1").marked_with(TokenValue::True).build();
        let c2 = b.control("c2").marked_with(TokenValue::False).build();
        let p = b.push("p").build();
        let o = b.register("out").build();
        b.connect(i, p);
        b.connect(c1, p);
        b.connect(c2, p);
        b.connect(p, o);
        let dfs = b.finish().unwrap();
        let lts = Lts::explore(&dfs, 10_000).unwrap();
        assert!(!lts.deadlocks().is_empty());
        let mismatch = lts.find_state(|s| dfs.has_control_mismatch(s));
        assert!(mismatch.is_some());
    }

    /// The engine-backed explorer is indistinguishable from the naive
    /// reference: same numbering, edges, traces and truncation behaviour.
    #[test]
    fn engine_matches_naive_reference() {
        let dfs = ring();
        for budget in [usize::MAX, 5, 2] {
            let a = Lts::explore_truncated(&dfs, budget);
            let b = Lts::explore_naive_truncated(&dfs, budget);
            assert_eq!(a.len(), b.len());
            assert_eq!(a.is_truncated(), b.is_truncated());
            for (sa, sb) in a.states().zip(b.states()) {
                assert_eq!(a.state(sa), b.state(sb));
                assert_eq!(a.successors(sa), b.successors(sb));
            }
        }
    }
}
