//! Wall-clock deadline budget: determinism and typed-outcome contract.
//!
//! `ExploreConfig::deadline` / `EngineConfig::deadline` turn runaway
//! explorations into the existing typed `Truncated` / `Inconclusive`
//! outcomes. The clock is consulted only at level-commit barriers, so the
//! cut prefix is always a complete-level prefix of the canonical BFS
//! order — this suite pins the two halves of that contract:
//!
//! * **zero deadline** cuts after the *first* level commit, at every
//!   thread count, producing the identical (bit-for-bit) one-level graph
//!   each time — the only deterministically reachable cut point, and the
//!   proof that a deadline cut is a BFS-order prefix, not an arbitrary
//!   scheduler artifact;
//! * **unreachable deadline** changes nothing: the graph equals the
//!   undeadlined exploration exactly.

use rap::dfs::pipelines::{build_pipeline, PipelineSpec};
use rap::dfs::to_petri;
use rap::petri::analysis::{quick_check, quick_check_with, QuickVerdict};
use rap::petri::reachability::{explore_truncated, ExploreConfig, StateId, StateSpace};
use rap::petri::TransitionId;
use std::time::Duration;

type Fingerprint = Vec<(Vec<u64>, Vec<(TransitionId, StateId)>)>;

fn fingerprint(space: &StateSpace) -> Fingerprint {
    let words = space.word_count();
    let mut raw = vec![0u64; words];
    space
        .states()
        .map(|s| {
            space.fill_marking_words(s, &mut raw);
            (raw.clone(), space.successors(s).to_vec())
        })
        .collect()
}

#[test]
fn zero_deadline_cuts_after_first_level_commit_at_every_thread_count() {
    let p = build_pipeline(&PipelineSpec::reconfigurable_depth(3, 1).unwrap()).unwrap();
    let img = to_petri(&p.dfs);
    let mut graphs = Vec::new();
    for threads in [1usize, 2, 8] {
        let space = explore_truncated(
            &img.net,
            ExploreConfig {
                max_states: 100_000,
                threads,
                deadline: Some(Duration::ZERO),
            },
        );
        assert!(space.is_truncated(), "zero deadline must truncate");
        assert!(!space.is_empty(), "the initial state is always committed");
        graphs.push((threads, fingerprint(&space)));
    }
    let (_, first) = &graphs[0];
    for (threads, g) in &graphs[1..] {
        assert_eq!(
            g, first,
            "deadline cut differs between 1 and {threads} threads"
        );
    }
    // the cut prefix is exactly the full exploration's first BFS levels:
    // same states, same ids, same edges among them
    let full = explore_truncated(
        &img.net,
        ExploreConfig {
            max_states: 100_000,
            ..ExploreConfig::default()
        },
    );
    assert!(!full.is_truncated());
    let full_fp = fingerprint(&full);
    let cut = &graphs[0].1;
    assert!(cut.len() < full_fp.len(), "zero deadline cut early");
    for (i, (marking, succs)) in cut.iter().enumerate() {
        assert_eq!(marking, &full_fp[i].0, "state {i} diverges from BFS order");
        // edges to states beyond the cut exist only in the full graph;
        // within the prefix, every recorded edge matches
        for edge in succs {
            assert!(full_fp[i].1.contains(edge), "alien edge {edge:?} at {i}");
        }
    }
}

#[test]
fn unreachable_deadline_is_a_no_op() {
    let p = build_pipeline(&PipelineSpec::reconfigurable_depth(3, 1).unwrap()).unwrap();
    let img = to_petri(&p.dfs);
    let with = explore_truncated(
        &img.net,
        ExploreConfig {
            max_states: 100_000,
            threads: 2,
            deadline: Some(Duration::from_secs(3600)),
        },
    );
    let without = explore_truncated(
        &img.net,
        ExploreConfig {
            max_states: 100_000,
            threads: 2,
            deadline: None,
        },
    );
    assert!(!with.is_truncated());
    assert_eq!(fingerprint(&with), fingerprint(&without));
}

#[test]
fn deadline_cut_quick_check_degrades_to_inconclusive_not_wrong() {
    let p = build_pipeline(&PipelineSpec::reconfigurable_depth(3, 1).unwrap()).unwrap();
    let img = to_petri(&p.dfs);
    let pairs = img.complementary_pairs();
    // the reference: an exhaustive check — the model is clean
    let exhaustive = quick_check(&img.net, &pairs, 1_000_000);
    assert!(exhaustive.is_clean());
    // a time-boxed check over a tiny prefix must say Inconclusive (the
    // prefix holds), never Violated, never Holds
    let cut = quick_check_with(
        &img.net,
        &pairs,
        &ExploreConfig {
            max_states: 1_000_000,
            threads: 2,
            deadline: Some(Duration::ZERO),
        },
    );
    assert!(cut.truncated);
    assert_eq!(
        cut.deadlock_free,
        QuickVerdict::Inconclusive { budget: 1_000_000 }
    );
    assert_eq!(cut.safe, QuickVerdict::Inconclusive { budget: 1_000_000 });
    assert!(cut.deadlock.is_none());
    assert!(cut.unsafe_witness.is_none());
}
