//! Net structure, construction API and the firing rule.

use crate::{Marking, PetriError, PlaceId, TransitionId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A place of a 1-safe net.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Place {
    /// Human-readable unique name (used by the Reach language and DOT export).
    pub name: String,
    /// Whether the place carries a token in the initial marking.
    pub initially_marked: bool,
}

/// A transition together with its arc lists.
///
/// Arc lists are kept sorted by place index so that enabledness tests scan
/// them linearly and deterministically.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Transition {
    /// Human-readable unique name.
    pub name: String,
    pub(crate) consumes: Vec<PlaceId>,
    pub(crate) produces: Vec<PlaceId>,
    pub(crate) reads: Vec<PlaceId>,
}

impl Transition {
    /// Places from which this transition consumes a token.
    #[must_use]
    pub fn consumes(&self) -> &[PlaceId] {
        &self.consumes
    }

    /// Places into which this transition produces a token.
    #[must_use]
    pub fn produces(&self) -> &[PlaceId] {
        &self.produces
    }

    /// Places tested (but not consumed) by this transition.
    #[must_use]
    pub fn reads(&self) -> &[PlaceId] {
        &self.reads
    }
}

/// A 1-safe Petri net with read arcs.
///
/// See the [crate docs](crate) for the model and an example.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PetriNet {
    places: Vec<Place>,
    transitions: Vec<Transition>,
    #[serde(skip)]
    place_names: HashMap<String, PlaceId>,
    #[serde(skip)]
    transition_names: HashMap<String, TransitionId>,
}

impl PetriNet {
    /// Creates an empty net.
    #[must_use]
    pub fn new() -> Self {
        PetriNet::default()
    }

    /// Adds a place. Names must be unique among places.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate place name — duplicate names in a generated net
    /// are a construction bug, not a runtime condition.
    pub fn add_place(&mut self, name: impl Into<String>, initially_marked: bool) -> PlaceId {
        let name = name.into();
        let id = PlaceId::from_index(self.places.len());
        assert!(
            self.place_names.insert(name.clone(), id).is_none(),
            "duplicate place name `{name}`"
        );
        self.places.push(Place {
            name,
            initially_marked,
        });
        id
    }

    /// Adds a transition with empty arc lists. Names must be unique among
    /// transitions.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate transition name.
    pub fn add_transition(&mut self, name: impl Into<String>) -> TransitionId {
        let name = name.into();
        let id = TransitionId::from_index(self.transitions.len());
        assert!(
            self.transition_names.insert(name.clone(), id).is_none(),
            "duplicate transition name `{name}`"
        );
        self.transitions.push(Transition {
            name,
            consumes: Vec::new(),
            produces: Vec::new(),
            reads: Vec::new(),
        });
        id
    }

    /// Adds a consume arc (`place → transition`).
    pub fn consume(&mut self, t: TransitionId, p: PlaceId) {
        let list = &mut self.transitions[t.index()].consumes;
        if let Err(pos) = list.binary_search(&p) {
            list.insert(pos, p);
        }
    }

    /// Adds a produce arc (`transition → place`).
    pub fn produce(&mut self, t: TransitionId, p: PlaceId) {
        let list = &mut self.transitions[t.index()].produces;
        if let Err(pos) = list.binary_search(&p) {
            list.insert(pos, p);
        }
    }

    /// Adds a read (test) arc: `t` requires a token in `p` but does not
    /// consume it.
    pub fn read(&mut self, t: TransitionId, p: PlaceId) {
        let list = &mut self.transitions[t.index()].reads;
        if let Err(pos) = list.binary_search(&p) {
            list.insert(pos, p);
        }
    }

    /// Number of places.
    #[must_use]
    pub fn place_count(&self) -> usize {
        self.places.len()
    }

    /// Number of transitions.
    #[must_use]
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// The place record for `p`.
    #[must_use]
    pub fn place(&self, p: PlaceId) -> &Place {
        &self.places[p.index()]
    }

    /// The transition record for `t`.
    #[must_use]
    pub fn transition(&self, t: TransitionId) -> &Transition {
        &self.transitions[t.index()]
    }

    /// Looks a place up by name.
    #[must_use]
    pub fn place_by_name(&self, name: &str) -> Option<PlaceId> {
        self.place_names.get(name).copied()
    }

    /// Looks a transition up by name.
    #[must_use]
    pub fn transition_by_name(&self, name: &str) -> Option<TransitionId> {
        self.transition_names.get(name).copied()
    }

    /// Iterates over all place ids.
    pub fn places(&self) -> impl Iterator<Item = PlaceId> + '_ {
        (0..self.places.len()).map(PlaceId::from_index)
    }

    /// Iterates over all transition ids.
    pub fn transitions(&self) -> impl Iterator<Item = TransitionId> + '_ {
        (0..self.transitions.len()).map(TransitionId::from_index)
    }

    /// The initial marking declared at construction time.
    #[must_use]
    pub fn initial_marking(&self) -> Marking {
        let mut m = Marking::empty(self.places.len());
        for (i, p) in self.places.iter().enumerate() {
            if p.initially_marked {
                m.set(PlaceId::from_index(i), true);
            }
        }
        m
    }

    /// Is `t` enabled in `m`?
    ///
    /// A transition is enabled when every consumed and read place is marked,
    /// and firing would not violate 1-safety: every produced place is either
    /// unmarked or also consumed by `t`.
    #[must_use]
    pub fn is_enabled(&self, t: TransitionId, m: &Marking) -> bool {
        let tr = &self.transitions[t.index()];
        tr.consumes.iter().all(|&p| m.is_marked(p))
            && tr.reads.iter().all(|&p| m.is_marked(p))
            && tr
                .produces
                .iter()
                .all(|&p| !m.is_marked(p) || tr.consumes.binary_search(&p).is_ok())
    }

    /// All transitions enabled in `m`, in index order.
    ///
    /// Allocates a fresh `Vec` per call; hot loops should reuse a buffer via
    /// [`PetriNet::enabled_transitions_into`] (or go through the incidence
    /// index of [`crate::engine`], which skips the scan entirely).
    #[must_use]
    pub fn enabled_transitions(&self, m: &Marking) -> Vec<TransitionId> {
        let mut out = Vec::new();
        self.enabled_transitions_into(m, &mut out);
        out
    }

    /// Buffer-reusing variant of [`PetriNet::enabled_transitions`]: clears
    /// `out` and fills it with the transitions enabled in `m`, in index
    /// order.
    pub fn enabled_transitions_into(&self, m: &Marking, out: &mut Vec<TransitionId>) {
        out.clear();
        out.extend(self.transitions().filter(|&t| self.is_enabled(t, m)));
    }

    /// Fires `t` in marking `m`, returning the successor marking.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::NotEnabled`] if `t` is not enabled in `m`.
    pub fn fire(&self, t: TransitionId, m: &Marking) -> Result<Marking, PetriError> {
        let mut next = m.clone();
        self.fire_into(t, m, &mut next)?;
        Ok(next)
    }

    /// Buffer-reusing variant of [`PetriNet::fire`]: writes the successor of
    /// `m` under `t` into `out` (which must cover the same places; its prior
    /// contents are overwritten).
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::NotEnabled`] if `t` is not enabled in `m`; `out`
    /// is left untouched in that case.
    pub fn fire_into(
        &self,
        t: TransitionId,
        m: &Marking,
        out: &mut Marking,
    ) -> Result<(), PetriError> {
        if !self.is_enabled(t, m) {
            return Err(PetriError::NotEnabled(t));
        }
        out.clone_from(m);
        let tr = &self.transitions[t.index()];
        for &p in &tr.consumes {
            out.set(p, false);
        }
        for &p in &tr.produces {
            out.set(p, true);
        }
        Ok(())
    }

    /// Rebuilds the name lookup tables (needed after deserialisation, where
    /// the lookup maps are skipped).
    pub fn rebuild_name_index(&mut self) {
        self.place_names = self
            .places
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name.clone(), PlaceId::from_index(i)))
            .collect();
        self.transition_names = self
            .transitions
            .iter()
            .enumerate()
            .map(|(i, t)| (t.name.clone(), TransitionId::from_index(i)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// in --t--> out, with a read-arc guard.
    fn tiny() -> (PetriNet, PlaceId, PlaceId, PlaceId, TransitionId) {
        let mut net = PetriNet::new();
        let a = net.add_place("a", true);
        let b = net.add_place("b", false);
        let g = net.add_place("g", true);
        let t = net.add_transition("t");
        net.consume(t, a);
        net.produce(t, b);
        net.read(t, g);
        (net, a, b, g, t)
    }

    #[test]
    fn firing_moves_token_and_keeps_read_token() {
        let (net, a, b, g, t) = tiny();
        let m0 = net.initial_marking();
        let m1 = net.fire(t, &m0).unwrap();
        assert!(!m1.is_marked(a));
        assert!(m1.is_marked(b));
        assert!(m1.is_marked(g));
    }

    #[test]
    fn read_arc_gates_enabledness() {
        let (net, _a, _b, g, t) = tiny();
        let mut m0 = net.initial_marking();
        m0.set(g, false);
        assert!(!net.is_enabled(t, &m0));
        assert_eq!(net.fire(t, &m0), Err(PetriError::NotEnabled(t)));
    }

    #[test]
    fn safety_blocks_production_into_marked_place() {
        let mut net = PetriNet::new();
        let a = net.add_place("a", true);
        let b = net.add_place("b", true);
        let t = net.add_transition("t");
        net.consume(t, a);
        net.produce(t, b);
        let m0 = net.initial_marking();
        assert!(!net.is_enabled(t, &m0), "would violate 1-safety");
    }

    #[test]
    fn self_loop_consume_produce_is_enabled() {
        let mut net = PetriNet::new();
        let a = net.add_place("a", true);
        let t = net.add_transition("t");
        net.consume(t, a);
        net.produce(t, a);
        let m0 = net.initial_marking();
        assert!(net.is_enabled(t, &m0));
        let m1 = net.fire(t, &m0).unwrap();
        assert_eq!(m0, m1);
    }

    #[test]
    fn name_lookup() {
        let (net, a, _, _, t) = tiny();
        assert_eq!(net.place_by_name("a"), Some(a));
        assert_eq!(net.transition_by_name("t"), Some(t));
        assert_eq!(net.place_by_name("nope"), None);
    }

    #[test]
    fn duplicate_arcs_are_deduplicated() {
        let mut net = PetriNet::new();
        let a = net.add_place("a", true);
        let t = net.add_transition("t");
        net.consume(t, a);
        net.consume(t, a);
        assert_eq!(net.transition(t).consumes().len(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate place name")]
    fn duplicate_place_name_panics() {
        let mut net = PetriNet::new();
        net.add_place("x", false);
        net.add_place("x", false);
    }

    #[test]
    fn serde_roundtrip_preserves_structure() {
        let (net, _, _, _, t) = tiny();
        let json = serde_json_like(&net);
        // We avoid a serde_json dependency: test bincode-free by cloning via
        // serde's internal check is not possible, so assert the Debug form of
        // a direct clone matches and the name index can be rebuilt.
        let mut clone = net.clone();
        clone.rebuild_name_index();
        assert_eq!(clone.transition_by_name("t"), Some(t));
        assert!(!json.is_empty());
    }

    fn serde_json_like(net: &PetriNet) -> String {
        // cheap smoke check that Serialize is derivable/usable
        format!("{net:?}")
    }

    #[test]
    fn enabled_transitions_in_index_order() {
        let mut net = PetriNet::new();
        let a = net.add_place("a", true);
        let t1 = net.add_transition("t1");
        let t2 = net.add_transition("t2");
        net.read(t1, a);
        net.read(t2, a);
        let m0 = net.initial_marking();
        assert_eq!(net.enabled_transitions(&m0), vec![t1, t2]);
    }
}
