//! DSE — design-space exploration over the paper's configuration space.
//!
//! Sweeps 576 configurations (static / reconfigurable / wagged OPE
//! hardware × workload window demands × datapath sizing × supply voltage)
//! through the `rap-dse` engine and prints the exact Pareto front over
//! (throughput, energy per item, area) for every demand, persisting the
//! measurements to `BENCH_dse.json` at the repository root. The paper's
//! OPE(6,4) design point — reconfigurable, 6 stages, operating depth 4,
//! nominal sizing and supply — must appear on the demand-4 front, with
//! its exact period-19 row from `fig5_performance`.
//!
//! Usage: `dse_pareto [--quick] [--out PATH] [--cache DIR] [--trace-out PATH]`
//!
//! `--quick` sweeps the 48-point smoke space over 3-stage hardware (the
//! CI configuration) and additionally cross-checks the parallel driver
//! against a single-threaded run; `--out` overrides the output path;
//! `--cache DIR` keeps the persistent artifact store at `DIR`, so a
//! re-invocation over the same directory starts disk-warm and its cold
//! pass performs zero full evaluations (the CI warm-restart job). The
//! sweep always ends with an in-process restart pass — a fresh session
//! over the store — that must reproduce the fronts bit-identically with
//! zero full evaluations. The emitted JSON is schema-validated before the
//! process exits. `--trace-out` attaches a live collector and writes the
//! run's `rap/trace/v1` profile (pass/sweep/eval spans, session and store
//! counters, disk-latency histograms) — observation-only, the fronts and
//! the `BENCH_dse.json` numbers are unchanged by it.

use rap_bench::cli::BenchCli;
use rap_bench::dse::{design_point, render_json_with_trace, run_sweep_traced, validate};
use rap_bench::trace::TraceSink;
use rap_bench::{banner, num, row};
use rap_dse::{explore, DseConfig};
use rap_silicon::cost::CostModel;

fn main() {
    let cli = BenchCli::parse_with_cache("dse_pareto", Some("BENCH_dse.json"));
    let quick = cli.quick;
    let out = cli.out_path();
    let sink = TraceSink::from_cli(&cli);

    banner(if quick {
        "Design-space exploration (quick smoke space)"
    } else {
        "Design-space exploration: which pipeline should I build?"
    });

    let run = run_sweep_traced(quick, cli.cache.as_deref(), &sink.obs());
    let stats = run.outcome.stats;
    println!(
        "{} configurations in {} ms on {} threads: {} full evaluations, \
         {} memo hits, {} pruned as provably dominated",
        stats.enumerated,
        num(run.elapsed_ms, 0),
        run.threads,
        stats.full_evaluations,
        stats.memo_hits,
        stats.pruned,
    );
    println!(
        "warm re-sweep against the same session: {} ms, {} full evaluations \
         ({} served from the artifact cache) — fronts bit-identical",
        num(run.warm_elapsed_ms, 0),
        run.warm_stats.full_evaluations,
        run.warm_stats.memo_hits,
    );
    println!(
        "restarted sweep over the persistent store: {} ms, {} full \
         evaluations ({} disk hits, {} bytes read) — fronts bit-identical\n",
        num(run.restart_elapsed_ms, 0),
        run.restart_stats.full_evaluations,
        run.restart_store.disk_hits,
        run.restart_store.bytes_read,
    );

    let widths = [34usize, 13, 13, 9, 8];
    for (workload, front) in &run.outcome.fronts {
        println!(
            "## demand: window depth {workload} — {} Pareto points",
            front.len()
        );
        println!(
            "{}",
            row(
                &[
                    "configuration".into(),
                    "items/s".into(),
                    "energy/item[J]".into(),
                    "area[GE]".into(),
                    "period".into(),
                ],
                &widths
            )
        );
        for e in front {
            println!(
                "{}",
                row(
                    &[
                        e.label.clone(),
                        format!("{:.3e}", e.objectives.throughput),
                        format!("{:.3e}", e.objectives.energy_per_item),
                        format!("{:.0}", e.objectives.area),
                        num(e.period_units, 2),
                    ],
                    &widths
                )
            );
        }
        println!();
    }

    let (dp_label, dp_workload) = design_point(quick);
    let on_front = run
        .outcome
        .front(dp_workload)
        .iter()
        .any(|e| e.label == dp_label);
    println!("design point `{dp_label}` on the demand-{dp_workload} front: {on_front}");
    if !on_front {
        eprintln!("ACCEPTANCE FAILURE: the design point fell off its front");
        std::process::exit(1);
    }

    if quick {
        // cross-check the parallel driver against a single-threaded sweep
        // (spanned so a traced run's coverage accounts for this time too)
        let crosscheck_span = sink.obs().span("bench.crosscheck");
        let serial = explore(
            &rap_bench::dse::paper_space(true),
            &CostModel::default(),
            &DseConfig {
                threads: 1,
                ..DseConfig::default()
            },
        );
        drop(crosscheck_span);
        let same = serial.fronts.len() == run.outcome.fronts.len()
            && serial.fronts.iter().all(|(w, f)| {
                run.outcome.front(*w).len() == f.len()
                    && run
                        .outcome
                        .front(*w)
                        .iter()
                        .zip(f)
                        .all(|(a, b)| a.label == b.label)
            });
        println!("single-threaded cross-check: fronts identical = {same}");
        if !same {
            eprintln!("ACCEPTANCE FAILURE: parallel and serial fronts differ");
            std::process::exit(1);
        }
    }

    // the trace (if any) is snapshotted after every pass has closed its
    // spans, written to --trace-out, and self-validated against the
    // rap/trace/v1 schema; its summary is embedded into the BENCH json
    let trace = sink.finish();
    let json = render_json_with_trace(&run, trace.as_ref());
    let summary = validate(&json).unwrap_or_else(|e| {
        eprintln!("emitted JSON failed its own schema validation: {e}");
        std::process::exit(1);
    });
    std::fs::write(&out, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", out.display());
        std::process::exit(1);
    });
    println!(
        "\n{} configurations ({} full, {} memoized, {} pruned) — written to {}",
        summary.configurations,
        summary.full_evaluations,
        summary.memo_hits,
        summary.pruned,
        out.display()
    );
}
