//! Differential suite: the parallel engine is observationally identical to
//! the serial reference at every thread count — **including when a live
//! collector is attached**. Recording is observation-only by contract
//! ([`rap_petri::engine::explore_parallel_traced`]): span timings and
//! counters must never leak into state numbering, parent attribution, edge
//! order or truncation. These tests pin that contract by comparing
//! serial, untraced-parallel and traced-parallel runs state-for-state at
//! threads ∈ {1, 2, 8}.

use proptest::prelude::*;
use rap_obs::{Collector, Obs};
use rap_petri::engine::{
    explore, explore_parallel, explore_parallel_traced, EngineConfig, EngineStats, ExploredGraph,
    NetSystem,
};
use rap_petri::{PetriNet, PlaceId};
use std::sync::Arc;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn cfg(max_states: usize, threads: usize) -> EngineConfig {
    EngineConfig {
        max_states,
        threads,
        anchor_interval: 0,
        deadline: None,
    }
}

/// Full observational equality: counts, outcome, parent links, CSR edges
/// and every reconstructed state vector.
fn assert_identical(a: &ExploredGraph, b: &ExploredGraph, ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: state count");
    assert_eq!(a.outcome(), b.outcome(), "{ctx}: outcome");
    assert_eq!(a.parents, b.parents, "{ctx}: parent attribution");
    assert_eq!(a.succ_off, b.succ_off, "{ctx}: CSR offsets");
    assert_eq!(a.succ, b.succ, "{ctx}: edge order");
    for i in 0..a.len() {
        assert_eq!(a.state_vec(i), b.state_vec(i), "{ctx}: state {i}");
    }
}

fn ring(n: usize) -> PetriNet {
    let mut net = PetriNet::new();
    let places: Vec<_> = (0..n)
        .map(|i| net.add_place(format!("p{i}"), i == 0))
        .collect();
    for i in 0..n {
        let t = net.add_transition(format!("t{i}"));
        net.consume(t, places[i]);
        net.produce(t, places[(i + 1) % n]);
    }
    net
}

/// Random net generator shared with `tests/properties.rs`.
fn arb_net(np: usize, nt: usize) -> impl Strategy<Value = PetriNet> {
    let place_marks = proptest::collection::vec(any::<bool>(), np);
    let arcs = proptest::collection::vec(
        (
            proptest::collection::vec(0..np, 0..3), // consumes
            proptest::collection::vec(0..np, 0..3), // produces
            proptest::collection::vec(0..np, 0..2), // reads
        ),
        nt,
    );
    (place_marks, arcs).prop_map(move |(marks, arcs)| {
        let mut net = PetriNet::new();
        let places: Vec<PlaceId> = marks
            .iter()
            .enumerate()
            .map(|(i, &m)| net.add_place(format!("p{i}"), m))
            .collect();
        for (i, (cons, prod, reads)) in arcs.into_iter().enumerate() {
            let t = net.add_transition(format!("t{i}"));
            for c in cons {
                net.consume(t, places[c]);
            }
            for p in prod {
                net.produce(t, places[p]);
            }
            for r in reads {
                net.read(t, places[r]);
            }
        }
        net
    })
}

/// A live collector never perturbs the result: traced parallel ≡ serial on
/// a ring, across thread counts and budgets, and the collector actually
/// observed the run (per-level spans plus the end-of-run counter flush).
#[test]
fn traced_parallel_matches_serial_at_every_thread_count() {
    let net = ring(64);
    let mut sys = NetSystem::new(&net);
    for budget in [usize::MAX, 64, 17, 3, 1] {
        let serial = explore(&mut sys, budget);
        for threads in THREAD_COUNTS {
            let collector = Arc::new(Collector::new());
            let traced = explore_parallel_traced(
                || NetSystem::new(&net),
                &cfg(budget, threads),
                None,
                &Obs::collecting(&collector),
            );
            assert_identical(&serial, &traced, &format!("t={threads} budget={budget}"));

            let snap = collector.snapshot();
            let stats = EngineStats::from_counters(&snap.counters);
            assert_eq!(stats.states, traced.len() as u64, "t={threads}");
            assert!(stats.levels > 0, "t={threads}: no levels recorded");
            assert!(
                snap.spans.iter().any(|s| s.name == "engine.level.expand"),
                "t={threads}: expand spans missing"
            );
            assert!(
                snap.spans.iter().any(|s| s.name == "engine.level.commit"),
                "t={threads}: commit spans missing"
            );
        }
    }
}

/// Tracing is invisible to the output: traced and untraced parallel runs
/// are bit-identical at every thread count.
#[test]
fn tracing_is_observation_only() {
    let net = ring(150); // 3 words per state: exercises the delta path too
    for threads in THREAD_COUNTS {
        let untraced = explore_parallel(|| NetSystem::new(&net), &cfg(1_000, threads), None);
        let collector = Arc::new(Collector::new());
        let traced = explore_parallel_traced(
            || NetSystem::new(&net),
            &cfg(1_000, threads),
            None,
            &Obs::collecting(&collector),
        );
        assert_identical(&untraced, &traced, &format!("t={threads}"));
        assert!(collector.snapshot().wall_ns > 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The property-level version: on random nets, serial, untraced
    /// parallel and traced parallel (live collector) agree exactly at
    /// threads ∈ {1, 2, 8}.
    #[test]
    fn parallel_equivalence_holds_under_tracing(net in arb_net(10, 8)) {
        let mut sys = NetSystem::new(&net);
        let serial = explore(&mut sys, 2_000);
        for threads in THREAD_COUNTS {
            let plain = explore_parallel(|| NetSystem::new(&net), &cfg(2_000, threads), None);
            let collector = Arc::new(Collector::new());
            let traced = explore_parallel_traced(
                || NetSystem::new(&net),
                &cfg(2_000, threads),
                None,
                &Obs::collecting(&collector),
            );
            assert_identical(&serial, &plain, &format!("plain t={threads}"));
            assert_identical(&serial, &traced, &format!("traced t={threads}"));
            let stats = EngineStats::from_counters(&collector.snapshot().counters);
            prop_assert_eq!(stats.states, traced.len() as u64);
        }
    }
}
