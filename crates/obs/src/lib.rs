//! # rap-obs — tracing, metrics and profiling for the rap workspace
//!
//! A zero-dependency observability layer shared by the state-space engine
//! (`rap-petri`), the query cache (`rap-session`), the design-space driver
//! (`rap-dse`) and the persistent artifact store (`rap-store`).
//!
//! Three pieces:
//!
//! * [`Recorder`] — the trait instrumented code talks to. Every method has a
//!   guaranteed-free no-op default, so a recorder only overrides what it
//!   cares about and the disabled path costs nothing (see *Overhead* below).
//! * [`Collector`] — the standard thread-safe recorder. It aggregates spans
//!   into a tree keyed by `(parent, name)` (bounded memory even for
//!   million-level BFS runs), keeps named counters and gauges under a single
//!   lock (so a [`Collector::snapshot`] is coherent, not torn), fixed
//!   64-bucket log2 latency histograms, and a bounded provenance event list.
//! * [`Obs`] — the cheap cloneable handle threaded through APIs. It pairs an
//!   optional recorder with a parent [`SpanId`], so nested layers attach
//!   their spans in the right place without global state.
//!
//! The JSON exporter for `rap/trace/v1` lives in `rap_bench::trace` (it
//! reuses the workspace's schema-validation JSON parser); this crate only
//! produces the plain-data [`Snapshot`].
//!
//! ## Overhead
//!
//! `Obs::none()` carries no recorder. Every instrumentation method begins
//! with an `#[inline]` check of that `Option` and returns immediately when it
//! is `None` — no clock read, no allocation, no locking. [`Obs::span`] only
//! calls `Instant::now` when a recorder is attached. The
//! `benches/noop_overhead.rs` benchmark pins this, and the bench-suite test
//! `trace_schema.rs` bounds the end-to-end cost of an untraced handle on a
//! real sweep.
//!
//! ## Determinism
//!
//! Recording is observation-only. No instrumented subsystem ever keys
//! dedup, state numbering, or scheduling decisions on recorder state; the
//! engine's parallel≡serial equivalence proptests run with a live
//! [`Collector`] attached to pin exactly that.
//!
//! ## Span and counter taxonomy
//!
//! Names are `&'static str`, dot-separated, lowercase. Reuse these instead
//! of inventing new ones:
//!
//! | name | kind | meaning |
//! |------|------|---------|
//! | `engine.level.expand` | span | per-level worker expansion (successors + concurrent dedup probes) |
//! | `engine.level.dedup` | span | barrier-side dedup bookkeeping (chunk ordering, pending-slot reset) |
//! | `engine.level.commit` | span | canonical-order state/edge commit pass |
//! | `engine.levels` / `engine.states` / `engine.edges` | counter | BFS totals |
//! | `engine.dedup.known` / `engine.dedup.pending` | counter | edges resolved against committed states / same-level pending slots |
//! | `engine.shard.contended` | counter | shard-lock acquisitions that found the lock held |
//! | `engine.frontier.peak` | gauge | widest BFS frontier seen |
//! | `session.compile` / `session.compile.hit` | counter | model compilations / intern-table hits |
//! | `session.query.<kind>` | span | whole query (`petri`, `perf`, `lts`, `check`, `cost`, `steady`) |
//! | `session.load` / `session.compute` / `session.commit` | span | store probe / actual analysis / persist-on-commit inside a query |
//! | `session.<kind>.query` / `.compute` / `.disk_hit` | counter | per-kind lifecycle outcomes (memo hits = query − compute − disk_hit) |
//! | `dse.sweep` | span | one `explore*` call |
//! | `dse.eval` | span | one candidate evaluation task |
//! | `dse.enumerated`, `dse.eval.full` / `.memo` / `.pruned` / `.error` / `.panic` | counter | sweep work accounting |
//! | `dse.check.violation` / `dse.check.inconclusive` | counter | verification outcomes across full evaluations |
//! | `dse.full` / `dse.memo` / `dse.pruned` / `dse.error` | event | per-candidate provenance; label = config label, value = structural hash |
//! | `store.read_ns` / `store.write_ns` | histogram | artifact read / write+fsync+rename latency |
//! | `store.read.hit` / `.miss` / `.error` / `.bytes` | counter | load outcomes |
//! | `store.write.bytes` / `store.write.error` | counter | save outcomes |
//! | `store.quarantine` | counter + event | corrupt artifacts moved aside (label = file name) |
//! | `store.lock.stale_broken` | counter | stale lock files broken at open |
//! | `bench.main` | span | whole-bin umbrella span in simple `rap-bench` bins |
//! | `dse.pass.cold` / `.warm` / `.restart` | span | the three passes of the `dse_pareto` sweep |
//! | `bench.case.petri` / `bench.case.lts` | span | per-backend cases in `state_space_scaling` |
//!
//! **Counter aliasing — read this before summing anything.** The DSE driver
//! counts every evaluation that did not run the analysis *here* as
//! `dse.eval.memo`, including evaluations served from the on-disk store; the
//! store independently counts those as `store.read.hit`. The two views
//! deliberately overlap — `dse.eval.memo` answers "how much work did the
//! sweep skip", `store.read.hit` answers "how often did disk serve an
//! artifact" — so adding them double-counts disk-served evaluations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Upper bound on retained provenance events; later events are counted in
/// [`Snapshot::dropped_events`] instead of stored.
pub const EVENT_CAP: usize = 16_384;

/// Lock helper that survives poisoning: observability must never take the
/// process down because some unrelated task panicked mid-record.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Identifier of an aggregated span-tree node inside a recorder.
///
/// `SpanId` is only meaningful to the recorder that issued it. The root of
/// every tree is [`SpanId::ROOT`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct SpanId(u32);

impl SpanId {
    /// The implicit root every top-level span is parented under.
    pub const ROOT: SpanId = SpanId(0);

    /// Raw index of this node in the recorder's span table.
    #[must_use]
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

/// Sink for spans, counters, gauges, latency observations and provenance
/// events.
///
/// Every method defaults to a no-op so `impl Recorder for MySink {}` is a
/// valid (if useless) recorder and partial implementations stay cheap.
/// Instrumented code reaches recorders through [`Obs`], which skips the
/// virtual call entirely when no recorder is attached.
pub trait Recorder: Send + Sync {
    /// Whether this recorder is live. [`Obs`] consults the presence of a
    /// recorder, not this flag, for its fast path; `enabled` exists so
    /// custom recorders can advertise being switched off dynamically.
    fn enabled(&self) -> bool {
        false
    }

    /// Open (or re-enter) the span `name` under `parent`, returning its id.
    /// Spans are aggregated: opening the same `(parent, name)` twice yields
    /// the same id.
    fn span_open(&self, parent: SpanId, name: &'static str) -> SpanId {
        let _ = (parent, name);
        SpanId::ROOT
    }

    /// Record one completion of `span` that took `nanos` wall-clock.
    fn span_close(&self, span: SpanId, nanos: u64) {
        let _ = (span, nanos);
    }

    /// Add `delta` to the named counter.
    fn add(&self, counter: &'static str, delta: u64) {
        let _ = (counter, delta);
    }

    /// Set the named gauge to `value` (last write wins).
    fn gauge(&self, gauge: &'static str, value: f64) {
        let _ = (gauge, value);
    }

    /// Record one `nanos` observation in the named log2 latency histogram.
    fn observe(&self, hist: &'static str, nanos: u64) {
        let _ = (hist, nanos);
    }

    /// Record a provenance event: `kind` is a taxonomy name, `label` a
    /// free-form subject (e.g. a DSE config label), `value` a 64-bit payload
    /// (e.g. a structural hash).
    fn note(&self, kind: &'static str, label: &str, value: u64) {
        let _ = (kind, label, value);
    }
}

/// The do-nothing recorder; every method is the trait default.
#[derive(Debug, Default, Clone, Copy)]
pub struct Noop;

impl Recorder for Noop {}

// ---------------------------------------------------------------------------
// Obs handle
// ---------------------------------------------------------------------------

/// Cheap cloneable handle instrumented code records through.
///
/// An `Obs` is either *detached* ([`Obs::none`], the [`Default`]) or carries
/// a shared recorder plus the [`SpanId`] new spans should be parented under.
/// All methods are `#[inline]` and return immediately when detached — no
/// clock reads, no locks, no allocation.
#[derive(Clone, Default)]
pub struct Obs {
    rec: Option<Arc<dyn Recorder>>,
    parent: SpanId,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.rec.is_some())
            .field("parent", &self.parent)
            .finish()
    }
}

impl Obs {
    /// The detached handle: every operation is free.
    #[must_use]
    pub fn none() -> Obs {
        Obs {
            rec: None,
            parent: SpanId::ROOT,
        }
    }

    /// Handle recording into an arbitrary [`Recorder`], parented at the root.
    #[must_use]
    pub fn attached(rec: Arc<dyn Recorder>) -> Obs {
        Obs {
            rec: Some(rec),
            parent: SpanId::ROOT,
        }
    }

    /// Handle recording into a shared [`Collector`], parented at the root.
    #[must_use]
    pub fn collecting(collector: &Arc<Collector>) -> Obs {
        Obs::attached(collector.clone() as Arc<dyn Recorder>)
    }

    /// Whether a recorder is attached (the fast-path test every method uses).
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.rec.is_some()
    }

    /// Open the span `name` under this handle's parent. The returned guard
    /// closes the span with its elapsed wall-clock when dropped; use
    /// [`SpanTimer::obs`] to parent nested work under it. When detached this
    /// does not read the clock.
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanTimer {
        match &self.rec {
            None => SpanTimer { inner: None },
            Some(rec) => {
                let id = rec.span_open(self.parent, name);
                SpanTimer {
                    inner: Some((rec.clone(), id, Instant::now())),
                }
            }
        }
    }

    /// Run `f` inside the span `name`; `f` receives a handle parented under
    /// the new span.
    #[inline]
    pub fn time<T>(&self, name: &'static str, f: impl FnOnce(&Obs) -> T) -> T {
        let timer = self.span(name);
        f(&timer.obs())
    }

    /// Add `delta` to the named counter.
    #[inline]
    pub fn add(&self, counter: &'static str, delta: u64) {
        if let Some(rec) = &self.rec {
            rec.add(counter, delta);
        }
    }

    /// Set the named gauge.
    #[inline]
    pub fn gauge(&self, gauge: &'static str, value: f64) {
        if let Some(rec) = &self.rec {
            rec.gauge(gauge, value);
        }
    }

    /// Record a latency observation in nanoseconds.
    #[inline]
    pub fn observe_ns(&self, hist: &'static str, nanos: u64) {
        if let Some(rec) = &self.rec {
            rec.observe(hist, nanos);
        }
    }

    /// Record a provenance event. The `label` is only rendered to an owned
    /// string when a recorder is attached, so callers may pass borrowed data
    /// from hot paths.
    #[inline]
    pub fn note(&self, kind: &'static str, label: &str, value: u64) {
        if let Some(rec) = &self.rec {
            rec.note(kind, label, value);
        }
    }
}

/// Guard returned by [`Obs::span`]; records the span's wall-clock on drop.
pub struct SpanTimer {
    inner: Option<(Arc<dyn Recorder>, SpanId, Instant)>,
}

impl SpanTimer {
    /// Handle parented under this span, for instrumenting nested work.
    #[inline]
    #[must_use]
    pub fn obs(&self) -> Obs {
        match &self.inner {
            None => Obs::none(),
            Some((rec, id, _)) => Obs {
                rec: Some(rec.clone()),
                parent: *id,
            },
        }
    }

    /// Whether this guard will record anything on drop.
    #[inline]
    #[must_use]
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for SpanTimer {
    #[inline]
    fn drop(&mut self) {
        if let Some((rec, id, start)) = self.inner.take() {
            rec.span_close(
                id,
                u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Collector
// ---------------------------------------------------------------------------

struct Node {
    name: &'static str,
    parent: u32,
    children: Vec<u32>,
    count: u64,
    total_ns: u64,
}

/// 65 log2 buckets: index 0 holds zero-valued observations, index `k ≥ 1`
/// holds values in `[2^(k-1), 2^k)`.
const HIST_BUCKETS: usize = 65;

struct Hist {
    count: u64,
    total_ns: u64,
    buckets: [u64; HIST_BUCKETS],
}

struct EventBuf {
    list: Vec<Event>,
    dropped: u64,
}

/// The standard thread-safe [`Recorder`].
///
/// Spans aggregate into a tree keyed by `(parent, name)` — re-entering a
/// span merges into the existing node, so a million-level BFS produces a
/// handful of nodes, not a million. Counters and gauges live in single-lock
/// maps, which is what makes [`Collector::snapshot`] coherent: one lock
/// acquisition per category, never a field-by-field torn read.
pub struct Collector {
    epoch: Instant,
    tree: Mutex<Vec<Node>>,
    counters: Mutex<BTreeMap<&'static str, u64>>,
    gauges: Mutex<BTreeMap<&'static str, f64>>,
    hists: Mutex<BTreeMap<&'static str, Hist>>,
    events: Mutex<EventBuf>,
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

impl fmt::Debug for Collector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Collector")
            .field("wall_ns", &self.wall_ns())
            .finish_non_exhaustive()
    }
}

impl Collector {
    /// Fresh collector; its wall-clock epoch starts now.
    #[must_use]
    pub fn new() -> Collector {
        Collector {
            epoch: Instant::now(),
            tree: Mutex::new(vec![Node {
                name: "root",
                parent: 0,
                children: Vec::new(),
                count: 0,
                total_ns: 0,
            }]),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            hists: Mutex::new(BTreeMap::new()),
            events: Mutex::new(EventBuf {
                list: Vec::new(),
                dropped: 0,
            }),
        }
    }

    /// Nanoseconds since this collector was created.
    #[must_use]
    pub fn wall_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Coherent point-in-time copy of everything recorded so far.
    ///
    /// The root span's `total_ns` is set to the collector's wall-clock so
    /// self-time and coverage arithmetic are well-defined.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let wall_ns = self.wall_ns().max(1);
        let spans: Vec<SpanNode> = lock(&self.tree)
            .iter()
            .enumerate()
            .map(|(i, n)| SpanNode {
                name: n.name,
                parent: if i == 0 { None } else { Some(n.parent) },
                count: if i == 0 { 1 } else { n.count },
                total_ns: if i == 0 { wall_ns } else { n.total_ns },
                children: n.children.clone(),
            })
            .collect();
        let counters = CounterSnapshot {
            entries: lock(&self.counters).clone(),
        };
        let gauges: Vec<(&'static str, f64)> =
            lock(&self.gauges).iter().map(|(k, v)| (*k, *v)).collect();
        let hists: Vec<HistSnapshot> = lock(&self.hists)
            .iter()
            .map(|(name, h)| HistSnapshot {
                name,
                count: h.count,
                total_ns: h.total_ns,
                buckets: h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| **c > 0)
                    .map(|(i, c)| (u32::try_from(i).unwrap_or(u32::MAX), *c))
                    .collect(),
            })
            .collect();
        let ev = lock(&self.events);
        Snapshot {
            wall_ns,
            spans,
            counters,
            gauges,
            hists,
            events: ev.list.clone(),
            dropped_events: ev.dropped,
        }
    }
}

impl Recorder for Collector {
    fn enabled(&self) -> bool {
        true
    }

    fn span_open(&self, parent: SpanId, name: &'static str) -> SpanId {
        let mut tree = lock(&self.tree);
        let pid = (parent.0 as usize).min(tree.len().saturating_sub(1));
        if let Some(&child) = tree[pid]
            .children
            .iter()
            .find(|&&c| tree[c as usize].name == name)
        {
            return SpanId(child);
        }
        let id = u32::try_from(tree.len()).unwrap_or(u32::MAX);
        let pidx = u32::try_from(pid).unwrap_or(0);
        tree.push(Node {
            name,
            parent: pidx,
            children: Vec::new(),
            count: 0,
            total_ns: 0,
        });
        tree[pid].children.push(id);
        SpanId(id)
    }

    fn span_close(&self, span: SpanId, nanos: u64) {
        let mut tree = lock(&self.tree);
        if let Some(node) = tree.get_mut(span.0 as usize) {
            node.count += 1;
            node.total_ns = node.total_ns.saturating_add(nanos);
        }
    }

    fn add(&self, counter: &'static str, delta: u64) {
        let mut c = lock(&self.counters);
        let slot = c.entry(counter).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    fn gauge(&self, gauge: &'static str, value: f64) {
        lock(&self.gauges).insert(gauge, value);
    }

    fn observe(&self, hist: &'static str, nanos: u64) {
        let mut h = lock(&self.hists);
        let entry = h.entry(hist).or_insert_with(|| Hist {
            count: 0,
            total_ns: 0,
            buckets: [0; HIST_BUCKETS],
        });
        entry.count += 1;
        entry.total_ns = entry.total_ns.saturating_add(nanos);
        let bucket = (64 - nanos.leading_zeros()) as usize;
        entry.buckets[bucket] += 1;
    }

    fn note(&self, kind: &'static str, label: &str, value: u64) {
        let mut ev = lock(&self.events);
        if ev.list.len() >= EVENT_CAP {
            ev.dropped += 1;
        } else {
            ev.list.push(Event {
                kind,
                label: label.to_owned(),
                value,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// One aggregated span-tree node in a [`Snapshot`]. Index 0 is the root.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Taxonomy name (`"root"` for index 0).
    pub name: &'static str,
    /// Parent index; `None` only for the root.
    pub parent: Option<u32>,
    /// Completed entries merged into this node.
    pub count: u64,
    /// Total wall-clock across all entries, in nanoseconds.
    pub total_ns: u64,
    /// Child node indices, in creation order.
    pub children: Vec<u32>,
}

/// Snapshot of one log2 latency histogram.
#[derive(Debug, Clone)]
pub struct HistSnapshot {
    /// Taxonomy name.
    pub name: &'static str,
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations, in nanoseconds.
    pub total_ns: u64,
    /// Non-empty buckets as `(pow2 exponent, count)`: exponent 0 holds
    /// zero-valued observations, exponent `k ≥ 1` values in `[2^(k-1), 2^k)`.
    pub buckets: Vec<(u32, u64)>,
}

/// One provenance event (see [`Recorder::note`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Taxonomy kind, e.g. `"dse.memo"`.
    pub kind: &'static str,
    /// Free-form subject, e.g. a DSE configuration label.
    pub label: String,
    /// 64-bit payload, e.g. a structural hash.
    pub value: u64,
}

/// Coherent point-in-time copy of a [`Collector`]'s state.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Nanoseconds between collector creation and this snapshot (≥ 1).
    pub wall_ns: u64,
    /// Aggregated span tree; index 0 is the root.
    pub spans: Vec<SpanNode>,
    /// All named counters.
    pub counters: CounterSnapshot,
    /// All named gauges (sorted by name).
    pub gauges: Vec<(&'static str, f64)>,
    /// All latency histograms (sorted by name).
    pub hists: Vec<HistSnapshot>,
    /// Retained provenance events, oldest first.
    pub events: Vec<Event>,
    /// Events discarded after [`EVENT_CAP`] was reached.
    pub dropped_events: u64,
}

impl Snapshot {
    /// Self-time of span `i`: its total minus its children's totals,
    /// saturating at zero.
    #[must_use]
    pub fn self_ns(&self, i: usize) -> u64 {
        let Some(node) = self.spans.get(i) else {
            return 0;
        };
        let child_total: u64 = node
            .children
            .iter()
            .filter_map(|&c| self.spans.get(c as usize))
            .map(|c| c.total_ns)
            .sum();
        node.total_ns.saturating_sub(child_total)
    }

    /// Fraction of wall-clock accounted for by the root's direct children,
    /// capped at 1.0 (concurrent top-level spans can overlap).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.spans.is_empty() || self.spans[0].children.is_empty() {
            return 0.0;
        }
        let covered: u64 = self.spans[0]
            .children
            .iter()
            .filter_map(|&c| self.spans.get(c as usize))
            .map(|c| c.total_ns)
            .sum();
        #[allow(clippy::cast_precision_loss)]
        let frac = covered as f64 / self.wall_ns.max(1) as f64;
        frac.min(1.0)
    }

    /// The `n` non-root spans with the largest self-time, descending.
    #[must_use]
    pub fn top_self(&self, n: usize) -> Vec<(&'static str, u64)> {
        let mut rows: Vec<(&'static str, u64)> = (1..self.spans.len())
            .map(|i| (self.spans[i].name, self.self_ns(i)))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        rows.truncate(n);
        rows
    }

    /// Convenience: the named counter's value, 0 when absent.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name)
    }
}

/// Coherent copy of a named-counter set, taken under a single lock.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    entries: BTreeMap<&'static str, u64>,
}

impl CounterSnapshot {
    /// Value of `name`, 0 when never incremented.
    #[must_use]
    pub fn get(&self, name: &str) -> u64 {
        self.entries.get(name).copied().unwrap_or(0)
    }

    /// Iterate `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.entries.iter().map(|(k, v)| (*k, *v))
    }

    /// Number of distinct counters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no counter was ever incremented.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Add every counter of `other` into `self` (saturating).
    pub fn merge(&mut self, other: &CounterSnapshot) {
        for (k, v) in &other.entries {
            let slot = self.entries.entry(k).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
    }
}

// ---------------------------------------------------------------------------
// Meter
// ---------------------------------------------------------------------------

/// A subsystem's named-counter set with a coherent snapshot, optionally
/// mirrored into a recorder.
///
/// This is what the legacy per-crate stats structs (`SessionStats`,
/// `StoreStats`, `SweepStats`, …) are views over: the subsystem increments a
/// `Meter`, `snapshot()` takes **one** lock (so related counters can never
/// tear apart), and the stats struct is built from the resulting
/// [`CounterSnapshot`]. When an [`Obs`] is attached, every increment is also
/// forwarded to the recorder so the same names appear in exported traces.
#[derive(Default)]
pub struct Meter {
    map: Mutex<BTreeMap<&'static str, u64>>,
    obs: Obs,
}

impl std::fmt::Debug for Meter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Meter")
            .field("mirrored", &self.obs.is_enabled())
            .finish()
    }
}

impl Meter {
    /// Fresh meter with no recorder mirror.
    #[must_use]
    pub fn new() -> Meter {
        Meter::default()
    }

    /// Fresh meter mirroring every increment into `obs`.
    #[must_use]
    pub fn with_obs(obs: Obs) -> Meter {
        Meter {
            map: Mutex::new(BTreeMap::new()),
            obs,
        }
    }

    /// Attach (or replace) the recorder mirror. Requires exclusive access,
    /// so it is only possible before the meter is shared.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The recorder mirror handle (detached if none was attached).
    #[must_use]
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Add `delta` to `name`.
    pub fn add(&self, name: &'static str, delta: u64) {
        {
            let mut m = lock(&self.map);
            let slot = m.entry(name).or_insert(0);
            *slot = slot.saturating_add(delta);
        }
        self.obs.add(name, delta);
    }

    /// Increment `first`, and — under the same lock acquisition, so a
    /// snapshot can never observe one without the other — increment `second`
    /// when `both`. This is the query/compute pairing the session cache
    /// uses: `queries ≥ computations` holds in every snapshot.
    pub fn bump2(&self, first: &'static str, second: &'static str, both: bool) {
        {
            let mut m = lock(&self.map);
            *m.entry(first).or_insert(0) += 1;
            if both {
                *m.entry(second).or_insert(0) += 1;
            }
        }
        self.obs.add(first, 1);
        if both {
            self.obs.add(second, 1);
        }
    }

    /// Coherent copy of all counters (single lock acquisition).
    #[must_use]
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            entries: lock(&self.map).clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn detached_handle_records_nothing_and_is_free_of_clock_reads() {
        let obs = Obs::none();
        assert!(!obs.is_enabled());
        let t = obs.span("engine.level.expand");
        assert!(!t.is_recording());
        assert!(!t.obs().is_enabled());
        obs.add("engine.states", 5);
        obs.gauge("engine.frontier.peak", 3.0);
        obs.observe_ns("store.read_ns", 100);
        obs.note("dse.full", "cfg", 42);
    }

    #[test]
    fn spans_aggregate_by_parent_and_name() {
        let c = Arc::new(Collector::new());
        let obs = Obs::collecting(&c);
        for _ in 0..3 {
            let outer = obs.span("dse.sweep");
            let inner = outer.obs().span("dse.eval");
            drop(inner);
            drop(outer);
        }
        let snap = c.snapshot();
        // root + dse.sweep + dse.eval
        assert_eq!(snap.spans.len(), 3);
        let sweep = &snap.spans[1];
        assert_eq!(sweep.name, "dse.sweep");
        assert_eq!(sweep.count, 3);
        assert_eq!(sweep.parent, Some(0));
        let eval = &snap.spans[2];
        assert_eq!(eval.name, "dse.eval");
        assert_eq!(eval.count, 3);
        assert_eq!(eval.parent, Some(1));
        assert!(sweep.total_ns >= eval.total_ns);
        assert!(snap.coverage() > 0.0);
    }

    #[test]
    fn same_name_under_different_parents_is_distinct() {
        let c = Arc::new(Collector::new());
        let obs = Obs::collecting(&c);
        let a = obs.span("dse.pass.cold");
        drop(a.obs().span("dse.sweep"));
        drop(a);
        let b = obs.span("dse.pass.warm");
        drop(b.obs().span("dse.sweep"));
        drop(b);
        let snap = c.snapshot();
        let sweeps = snap.spans.iter().filter(|s| s.name == "dse.sweep").count();
        assert_eq!(sweeps, 2);
    }

    #[test]
    fn top_self_subtracts_children() {
        let c = Arc::new(Collector::new());
        // Build the tree directly so timings are deterministic.
        let outer = c.span_open(SpanId::ROOT, "outer");
        let inner = c.span_open(outer, "inner");
        c.span_close(inner, 300);
        c.span_close(outer, 1000);
        let snap = c.snapshot();
        let top = snap.top_self(5);
        assert_eq!(top[0], ("outer", 700));
        assert_eq!(top[1], ("inner", 300));
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let c = Arc::new(Collector::new());
        c.observe("store.read_ns", 0);
        c.observe("store.read_ns", 1);
        c.observe("store.read_ns", 2);
        c.observe("store.read_ns", 3);
        c.observe("store.read_ns", 1024);
        let snap = c.snapshot();
        assert_eq!(snap.hists.len(), 1);
        let h = &snap.hists[0];
        assert_eq!(h.count, 5);
        assert_eq!(h.total_ns, 1030);
        // 0 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 1024 → bucket 11.
        assert_eq!(h.buckets, vec![(0, 1), (1, 1), (2, 2), (11, 1)]);
    }

    #[test]
    fn events_are_capped_not_unbounded() {
        let c = Arc::new(Collector::new());
        for i in 0..(EVENT_CAP + 10) {
            c.note("dse.memo", "cfg", i as u64);
        }
        let snap = c.snapshot();
        assert_eq!(snap.events.len(), EVENT_CAP);
        assert_eq!(snap.dropped_events, 10);
    }

    #[test]
    fn meter_bump2_is_coherent_under_contention() {
        let meter = Arc::new(Meter::new());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let m = meter.clone();
                let s = stop.clone();
                thread::spawn(move || {
                    let mut i = 0u64;
                    while !s.load(std::sync::atomic::Ordering::Relaxed) {
                        m.bump2("q", "c", i.is_multiple_of(3));
                        i += 1;
                    }
                })
            })
            .collect();
        for _ in 0..2_000 {
            let snap = meter.snapshot();
            assert!(
                snap.get("c") <= snap.get("q"),
                "torn snapshot: computes {} > queries {}",
                snap.get("c"),
                snap.get("q")
            );
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
    }

    #[test]
    fn counter_snapshot_merge_sums() {
        let a = Meter::new();
        a.add("x", 2);
        a.add("y", 1);
        let b = Meter::new();
        b.add("x", 3);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.get("x"), 5);
        assert_eq!(s.get("y"), 1);
        assert_eq!(s.get("z"), 0);
    }

    #[test]
    fn concurrent_span_recording_is_safe() {
        let c = Arc::new(Collector::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let obs = Obs::collecting(&c);
                thread::spawn(move || {
                    for _ in 0..100 {
                        let t = obs.span("engine.level.expand");
                        obs.add("engine.states", 1);
                        drop(t);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = c.snapshot();
        assert_eq!(snap.counter("engine.states"), 800);
        let expand = snap
            .spans
            .iter()
            .find(|s| s.name == "engine.level.expand")
            .unwrap();
        assert_eq!(expand.count, 800);
    }
}
