//! The evaluation-chip top level (Fig. 8a).
//!
//! Two OPE implementations — an 18-stage **static** pipeline and a
//! **reconfigurable** one with 16 depth settings (3–18) — selected by the
//! `config` input; a `mode` input selects *normal* (stream in, ranks out)
//! or *random* (LFSR → pipeline → accumulator, one checksum out) operation.

use crate::accumulator::Accumulator;
use crate::lfsr::Lfsr;
use crate::pipeline::PipelinedOpe;
use crate::reference::ReferenceEncoder;

/// Number of stages of the static pipeline (§IV).
pub const STATIC_DEPTH: usize = 18;
/// Smallest reconfigurable depth (§IV).
pub const MIN_DEPTH: usize = 3;
/// Largest reconfigurable depth (§IV).
pub const MAX_DEPTH: usize = 18;

/// Which pipeline the `config` input activates, and with what depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChipConfig {
    /// The fixed 18-stage pipeline.
    Static,
    /// The reconfigurable pipeline at the given depth (3..=18).
    Reconfigurable {
        /// Active depth = OPE window size.
        depth: usize,
    },
}

impl ChipConfig {
    /// The effective window size.
    #[must_use]
    pub fn depth(self) -> usize {
        match self {
            ChipConfig::Static => STATIC_DEPTH,
            ChipConfig::Reconfigurable { depth } => depth,
        }
    }
}

/// Operating mode (the `mode` input).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Stream data through the `in`/`out` ports.
    Normal,
    /// Drive the pipeline from the LFSR and checksum the outputs.
    Random {
        /// LFSR seed.
        seed: u32,
        /// Number of generated items.
        count: u64,
    },
}

/// The chip model.
#[derive(Debug, Clone)]
pub struct Chip {
    config: ChipConfig,
    engine: PipelinedOpe,
}

impl Chip {
    /// Powers the chip up in the given configuration.
    ///
    /// # Panics
    ///
    /// Panics when a reconfigurable depth is outside 3..=18 — the chip
    /// supports 16 settings (§IV).
    #[must_use]
    pub fn new(config: ChipConfig) -> Self {
        if let ChipConfig::Reconfigurable { depth } = config {
            assert!(
                (MIN_DEPTH..=MAX_DEPTH).contains(&depth),
                "reconfigurable depth {depth} out of the chip's 3..=18 range"
            );
        }
        Chip {
            config,
            engine: PipelinedOpe::new(config.depth()),
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> ChipConfig {
        self.config
    }

    /// Normal mode: feeds `input` and returns the produced ranks
    /// ("results are produced at the out port at every iteration").
    pub fn run_normal(&mut self, input: &[u16]) -> Vec<u16> {
        self.engine.encode_stream(input)
    }

    /// Random mode: generates `count` LFSR items, encodes them, and
    /// returns the accumulator checksum (the single produced data item).
    pub fn run_random(&mut self, seed: u32, count: u64) -> u64 {
        let mut lfsr = Lfsr::new(seed);
        let mut acc = Accumulator::new();
        for _ in 0..count {
            if let Some(rank) = self.engine.push(lfsr.next_item()) {
                acc.push(rank);
            }
        }
        acc.finish()
    }

    /// Runs the selected `mode`, returning the checksum for random mode and
    /// a checksum over the outputs for normal mode (for uniform testing).
    pub fn run(&mut self, mode: Mode, input: &[u16]) -> u64 {
        match mode {
            Mode::Normal => crate::accumulator::checksum(self.run_normal(input)),
            Mode::Random { seed, count } => self.run_random(seed, count),
        }
    }
}

/// The golden checksum: the OPE *behavioural model* driven by the same
/// seed/count — the validation flow of §IV.
#[must_use]
pub fn behavioural_checksum(depth: usize, seed: u32, count: u64) -> u64 {
    let mut lfsr = Lfsr::new(seed);
    let mut reference = ReferenceEncoder::new(depth);
    let mut acc = Accumulator::new();
    for _ in 0..count {
        if let Some(rank) = reference.push(lfsr.next_item()) {
            acc.push(rank);
        }
    }
    acc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_mode_checksum_matches_behavioural_model() {
        // the paper's validation: chip checksum vs behavioural model with
        // the same seed and count
        for depth in [3usize, 7, 18] {
            let mut chip = Chip::new(ChipConfig::Reconfigurable { depth });
            let got = chip.run_random(0x1234_5678, 10_000);
            let expect = behavioural_checksum(depth, 0x1234_5678, 10_000);
            assert_eq!(got, expect, "depth {depth}");
        }
    }

    #[test]
    fn static_and_reconfig_18_agree() {
        // at depth 18 the reconfigurable pipeline must compute exactly what
        // the static one does
        let mut st = Chip::new(ChipConfig::Static);
        let mut rc = Chip::new(ChipConfig::Reconfigurable { depth: 18 });
        let a = st.run_random(0xABCD, 5_000);
        let b = rc.run_random(0xABCD, 5_000);
        assert_eq!(a, b);
    }

    #[test]
    fn normal_mode_streams_ranks() {
        let mut chip = Chip::new(ChipConfig::Reconfigurable { depth: 6 });
        let out = chip.run_normal(&[3, 1, 4, 1, 5, 9, 2, 6]);
        assert_eq!(out, vec![6, 3, 5]);
    }

    #[test]
    fn different_seeds_give_different_checksums() {
        let mut a = Chip::new(ChipConfig::Static);
        let mut b = Chip::new(ChipConfig::Static);
        assert_ne!(a.run_random(1, 4_000), b.run_random(2, 4_000));
    }

    #[test]
    #[should_panic(expected = "out of the chip's")]
    fn depth_2_is_rejected() {
        let _ = Chip::new(ChipConfig::Reconfigurable { depth: 2 });
    }

    #[test]
    fn run_dispatches_modes() {
        let mut chip = Chip::new(ChipConfig::Reconfigurable { depth: 5 });
        let stream: Vec<u16> = crate::lfsr::Lfsr::new(9).items(1000);
        let normal = chip.run(Mode::Normal, &stream);
        let mut chip2 = Chip::new(ChipConfig::Reconfigurable { depth: 5 });
        let rand = chip2.run(
            Mode::Random {
                seed: 9,
                count: 1000,
            },
            &[],
        );
        assert_eq!(
            normal, rand,
            "normal mode over LFSR items equals random mode"
        );
    }
}
