//! Engine ↔ naive-explorer equivalence, property-tested.
//!
//! The shared incremental engine (`rap::petri::engine`) claims to be
//! observationally identical to the retained naive explorers — same state
//! numbering, same edges, same truncation behaviour, replayable
//! counterexample traces. This suite pins that claim on random inputs from
//! both ends of the tool: raw random Petri nets (arbitrary arc structure,
//! including non-1-safe-looking shapes the firing rule must reject) and the
//! pipeline generators the paper's flow actually explores (the
//! `perf_cross_check.rs` shapes: reconfigurable-depth pipelines and wagged
//! pipelines).

use proptest::prelude::*;
use rap::dfs::pipelines::{build_pipeline, PipelineSpec};
use rap::dfs::wagging::wagged_pipeline;
use rap::dfs::{to_petri, Dfs, DfsState, Lts};
use rap::petri::reachability::{
    explore_naive_truncated, explore_truncated, ExploreConfig, StateSpace,
};
use rap::petri::{PetriNet, PlaceId};

/// Random net over `np` places and `nt` transitions with small arc lists.
fn arb_net(np: usize, nt: usize) -> impl Strategy<Value = PetriNet> {
    let place_marks = proptest::collection::vec(any::<bool>(), np);
    let arcs = proptest::collection::vec(
        (
            proptest::collection::vec(0..np, 0..3), // consumes
            proptest::collection::vec(0..np, 0..3), // produces
            proptest::collection::vec(0..np, 0..2), // reads
        ),
        nt,
    );
    (place_marks, arcs).prop_map(move |(marks, arcs)| {
        let mut net = PetriNet::new();
        let places: Vec<PlaceId> = marks
            .iter()
            .enumerate()
            .map(|(i, &m)| net.add_place(format!("p{i}"), m))
            .collect();
        for (i, (cons, prod, reads)) in arcs.into_iter().enumerate() {
            let t = net.add_transition(format!("t{i}"));
            for c in cons {
                net.consume(t, places[c]);
            }
            for p in prod {
                net.produce(t, places[p]);
            }
            for r in reads {
                net.read(t, places[r]);
            }
        }
        net
    })
}

/// Random paper-flow pipeline: 2–3 stages, random reconfigurability pattern
/// and inclusion depth.
fn arb_pipeline() -> impl Strategy<Value = Dfs> {
    (
        2usize..=3,
        proptest::collection::vec(any::<bool>(), 3),
        0usize..=3,
    )
        .prop_map(|(stages, reconf, depth)| {
            let mut spec =
                PipelineSpec::reconfigurable_depth(stages, depth.clamp(1, stages)).unwrap();
            for (i, flag) in reconf.iter().take(stages).enumerate().skip(1) {
                spec.reconfigurable[i] = *flag;
            }
            build_pipeline(&spec).expect("spec builds").dfs
        })
}

/// Full equivalence of the two Petri explorers, including the replay of
/// every counterexample (per-state shortest trace).
fn assert_pn_equivalent(net: &PetriNet, max_states: usize) -> Result<(), TestCaseError> {
    let cfg = ExploreConfig {
        max_states,
        ..ExploreConfig::default()
    };
    let engine = explore_truncated(net, cfg);
    let naive = explore_naive_truncated(net, cfg);
    prop_assert_eq!(engine.len(), naive.len());
    prop_assert_eq!(engine.is_truncated(), naive.is_truncated());
    for (a, b) in engine.states().zip(naive.states()) {
        prop_assert_eq!(&engine.marking(a), &naive.marking(b));
        prop_assert_eq!(engine.successors(a), naive.successors(b));
    }
    replay_traces(net, &engine)?;
    Ok(())
}

/// Replays the engine's traces through the *net's* firing rule — the trace
/// must be step-wise enabled and land exactly on the recorded marking.
fn replay_traces(net: &PetriNet, space: &StateSpace) -> Result<(), TestCaseError> {
    for s in space.states() {
        let mut m = net.initial_marking();
        for t in space.trace_to(s) {
            prop_assert!(net.is_enabled(t, &m), "trace step not enabled");
            m = net.fire(t, &m).unwrap();
        }
        prop_assert_eq!(&m, &space.marking(s));
    }
    Ok(())
}

fn assert_lts_equivalent(dfs: &Dfs, max_states: usize) -> Result<(), TestCaseError> {
    let engine = Lts::explore_truncated(dfs, max_states);
    let naive = Lts::explore_naive_truncated(dfs, max_states);
    prop_assert_eq!(engine.len(), naive.len());
    prop_assert_eq!(engine.is_truncated(), naive.is_truncated());
    for (a, b) in engine.states().zip(naive.states()) {
        prop_assert_eq!(&engine.state(a), &naive.state(b));
        prop_assert_eq!(engine.successors(a), naive.successors(b));
    }
    // counterexample-trace replay through the semantics
    for s in engine.states() {
        let mut st = DfsState::initial(dfs);
        for ev in engine.trace_to(s) {
            prop_assert!(dfs.is_event_enabled(&st, ev), "trace event not enabled");
            st = dfs.apply(&st, ev);
        }
        prop_assert_eq!(&st, &engine.state(s));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random raw nets: the engine's event-driven enabledness updates and
    /// arena dedup agree with the naive full-scan explorer state-for-state.
    #[test]
    fn random_nets_agree(net in arb_net(10, 8)) {
        assert_pn_equivalent(&net, 3_000)?;
    }

    /// Random nets under a tiny budget: truncation must bite at exactly the
    /// same point in both explorers.
    #[test]
    fn random_nets_agree_under_truncation(net in arb_net(9, 8)) {
        for cap in [1usize, 2, 7] {
            assert_pn_equivalent(&net, cap)?;
        }
    }

    /// Random paper pipelines, both backends: the PN image explored by the
    /// engine and the direct-semantics LTS agree with their references (and
    /// with each other on the state count, by bisimilarity).
    #[test]
    fn random_pipelines_agree(dfs in arb_pipeline()) {
        let img = to_petri(&dfs);
        assert_pn_equivalent(&img.net, 3_000)?;
        assert_lts_equivalent(&dfs, 3_000)?;
        let pn = explore_truncated(&img.net, ExploreConfig { max_states: 3_000, ..ExploreConfig::default() });
        let lts = Lts::explore_truncated(&dfs, 3_000);
        if !pn.is_truncated() && !lts.is_truncated() {
            prop_assert_eq!(pn.len(), lts.len());
        }
    }
}

/// The deterministic `perf_cross_check.rs` shapes: wagged pipelines stress
/// guard/choice structure beyond what the random pipelines reach.
#[test]
fn wagged_shapes_agree() {
    for ways in [1usize, 2] {
        let w = wagged_pipeline(ways, 1, 1.0).unwrap();
        let img = to_petri(&w.dfs);
        let cap = 30_000;
        let cfg = ExploreConfig {
            max_states: cap,
            ..ExploreConfig::default()
        };
        let engine = explore_truncated(&img.net, cfg);
        let naive = explore_naive_truncated(&img.net, cfg);
        assert_eq!(engine.len(), naive.len(), "ways={ways}");
        assert_eq!(engine.is_truncated(), naive.is_truncated());
        for (a, b) in engine.states().zip(naive.states()) {
            assert_eq!(engine.successors(a), naive.successors(b));
        }
        let l_engine = Lts::explore_truncated(&w.dfs, cap);
        let l_naive = Lts::explore_naive_truncated(&w.dfs, cap);
        assert_eq!(l_engine.len(), l_naive.len(), "ways={ways}");
        assert_eq!(l_engine.is_truncated(), l_naive.is_truncated());
    }
}
