//! Golden-output tests for the text exporters: the DFS DOT view, the
//! Petri-net DOT view, and the Verilog netlist of a small model are
//! snapshotted under `tests/fixtures/` and diffed byte-for-byte. Run with
//! `RAP_UPDATE_GOLDEN=1` to regenerate the fixtures after an intentional
//! format change.

use rap::dfs::{dsl, to_petri};
use rap::silicon::map::{map_dfs, MapConfig};
use rap::silicon::verilog::to_verilog;
use std::path::Path;

/// The reference model: the 3-register ring with a computation stage used
/// throughout the paper-flow tests.
const RING_DSL: &str = r#"
# a 3-register ring with a computation stage
register r0 marked delay=1
logic    f  delay=2
register r1
register r2
chain r0 -> f -> r1
edge r1 -> r2
edge r2 -> r0
"#;

fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    if std::env::var_os("RAP_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {}: {e} (run with RAP_UPDATE_GOLDEN=1)",
            path.display()
        )
    });
    if expected != actual {
        let first_diff = expected
            .lines()
            .zip(actual.lines())
            .position(|(e, a)| e != a)
            .map_or("line counts differ".to_string(), |i| {
                format!(
                    "first difference at line {}:\n  expected: {}\n  actual:   {}",
                    i + 1,
                    expected.lines().nth(i).unwrap(),
                    actual.lines().nth(i).unwrap()
                )
            });
        panic!(
            "{name} drifted from its golden fixture ({}, expected {} lines, got {}).\n{first_diff}\n\
             If the new output is intended, regenerate with RAP_UPDATE_GOLDEN=1.",
            path.display(),
            expected.lines().count(),
            actual.lines().count()
        );
    }
}

#[test]
fn dfs_dot_export_matches_fixture() {
    let model = dsl::parse(RING_DSL).expect("DSL parses");
    check_golden("ring.dfs.dot", &rap::dfs::dot::to_dot(&model));
}

#[test]
fn petri_dot_export_matches_fixture() {
    let model = dsl::parse(RING_DSL).expect("DSL parses");
    let img = to_petri(&model);
    check_golden("ring.petri.dot", &rap::petri::dot::to_dot(&img.net));
}

#[test]
fn verilog_export_matches_fixture() {
    let model = dsl::parse(RING_DSL).expect("DSL parses");
    let mut cfg = MapConfig::with_width(4);
    cfg.initial_values.insert("r0".into(), 0x5);
    let mapped = map_dfs(&model, &cfg).expect("maps");
    check_golden("ring.v", &to_verilog(&mapped.netlist, "ring"));
}

/// The exporters must be deterministic run-to-run (no hash-order leakage) —
/// otherwise the golden files above would flake.
#[test]
fn exports_are_deterministic() {
    let a = {
        let m = dsl::parse(RING_DSL).unwrap();
        let mapped = map_dfs(&m, &MapConfig::with_width(4)).unwrap();
        (
            rap::dfs::dot::to_dot(&m),
            rap::petri::dot::to_dot(&to_petri(&m).net),
            to_verilog(&mapped.netlist, "ring"),
        )
    };
    let b = {
        let m = dsl::parse(RING_DSL).unwrap();
        let mapped = map_dfs(&m, &MapConfig::with_width(4)).unwrap();
        (
            rap::dfs::dot::to_dot(&m),
            rap::petri::dot::to_dot(&to_petri(&m).net),
            to_verilog(&mapped.netlist, "ring"),
        )
    };
    assert_eq!(a, b);
}
