//! The `Strategy` trait and the combinators the test suite uses.
//!
//! A strategy here is simply a deterministic sampler: `generate` draws one
//! value from the strategy's distribution using the supplied RNG. There is
//! no shrinking tree.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// How many times value-level filters retry before giving up.
const MAX_FILTER_RETRIES: u32 = 65_536;

/// A source of random test values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns `Some`, retrying otherwise.
    fn prop_filter_map<T, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<T>,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }

    /// Keeps only values satisfying `f`, retrying otherwise.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `recurse` receives the strategy built so far
    /// and returns an enriched one; nesting is bounded by `depth` with
    /// `self` as the leaf.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut current = self.boxed();
        for _ in 0..depth {
            current = recurse(current.clone()).boxed();
        }
        current
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe view used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, T, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        for _ in 0..MAX_FILTER_RETRIES {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map exhausted retries: {}", self.whence);
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_RETRIES {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.whence);
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between type-erased strategies (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds the union; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union(self.0.clone())
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width u64 range: take the raw value.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
