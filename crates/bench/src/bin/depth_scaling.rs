//! FIG9A′ — Time and energy vs pipeline length (§IV, paragraph after
//! Fig. 9a): "both the computation time and the energy consumption increase
//! linearly with the pipeline length; the slope of increment is
//! reverse-proportional to the supply voltage."

use rap_bench::cli::BenchCli;
use rap_bench::{banner, num, row, ITEMS};
use rap_ope::{ChipTimingModel, PipelineKind, SyncStyle};

fn main() {
    let cli = BenchCli::parse("depth_scaling", None);
    rap_bench::trace::with_trace(&cli, |_obs| run(&cli));
}

fn run(cli: &BenchCli) {
    banner("Depth scaling — time/energy vs pipeline length at several voltages");
    let m = ChipTimingModel::paper_calibrated();
    let voltages = [0.5, 0.8, 1.2, 1.6];
    let kind = |depth| PipelineKind::Reconfigurable {
        depth,
        sync: SyncStyle::DaisyChain,
    };

    let widths = [6usize, 11, 11, 11, 11, 11, 11, 11, 11];
    let mut header = vec!["depth".to_string()];
    for v in voltages {
        header.push(format!("t@{v}V[s]"));
    }
    for v in voltages {
        header.push(format!("E@{v}V[mJ]"));
    }
    println!("{}", row(&header, &widths));
    let depths: std::collections::BTreeSet<usize> = if cli.quick {
        [3, 9, 18].into()
    } else {
        (3..=18).step_by(3).chain([18]).collect()
    };
    for depth in depths {
        let mut cells = vec![format!("{depth}")];
        for v in voltages {
            cells.push(num(m.computation_time(kind(depth), v, ITEMS), 3));
        }
        for v in voltages {
            cells.push(num(m.energy(kind(depth), v, ITEMS) * 1e3, 3));
        }
        println!("{}", row(&cells, &widths));
    }

    println!("\nslopes (per added stage):");
    println!("  V      dt/dstage [ms]   dE/dstage [uJ]");
    for v in voltages {
        let dt = m.computation_time(kind(18), v, ITEMS) - m.computation_time(kind(17), v, ITEMS);
        let de = m.energy(kind(18), v, ITEMS) - m.energy(kind(17), v, ITEMS);
        println!("  {v:<5} {:>14} {:>16}", num(dt * 1e3, 3), num(de * 1e6, 3));
    }
    println!(
        "\nthe time slope falls as the voltage rises (reverse-proportional, as\n\
         reported); the energy slope combines V^2 switching and leakage x time."
    );
}
