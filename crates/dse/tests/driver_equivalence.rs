//! The driver's front is invariant under its own optimisations: thread
//! count, memoization and pruning must never change which points are
//! reported Pareto-optimal. Also pins the admissibility of the wagged
//! direct-graph period bound the pruner relies on.

use dfs_core::perf::mcr::maximum_cycle_ratio;
use dfs_core::perf::{analyse, EventGraph};
use dfs_core::pipelines::StageDelays;
use rap_dse::models::wagged_ope;
use rap_dse::{explore, DesignSpace, DseConfig, DseOutcome, Hardware};
use rap_silicon::cost::CostModel;

fn ope_delays() -> StageDelays {
    StageDelays {
        f: 1.0,
        g: 2.0,
        register: 1.0,
        control: 0.5,
    }
}

fn small_space() -> DesignSpace {
    DesignSpace {
        hardware: vec![
            Hardware::Static { stages: 3 },
            Hardware::Reconfigurable {
                stages: 3,
                share_ctrl: true,
            },
            Hardware::Wagged { ways: 1, stages: 3 },
            Hardware::Wagged { ways: 2, stages: 3 },
        ],
        workloads: vec![1, 2, 3],
        sizings: vec![1.0, 1.5],
        voltages: vec![0.9, 1.2],
        delays: ope_delays(),
    }
}

fn front_signature(outcome: &DseOutcome) -> Vec<(usize, Vec<String>)> {
    outcome
        .fronts
        .iter()
        .map(|(w, f)| (*w, f.iter().map(|e| e.label.clone()).collect()))
        .collect()
}

#[test]
fn parallel_memoized_pruned_sweep_matches_plain_serial() {
    let space = small_space();
    let cost = CostModel::default();
    let reference = explore(
        &space,
        &cost,
        &DseConfig {
            threads: 1,
            check_budget: 4_000,
            memoize: false,
            prune: false,
        },
    );
    // the reference evaluates every enumerated configuration in full
    assert_eq!(reference.stats.full_evaluations, reference.stats.enumerated);
    assert_eq!(reference.stats.errors, 0);
    assert!(!reference.fronts.is_empty());

    for (threads, memoize, prune) in [(1, true, true), (4, true, false), (4, true, true)] {
        let outcome = explore(
            &space,
            &cost,
            &DseConfig {
                threads,
                check_budget: 4_000,
                memoize,
                prune,
            },
        );
        assert_eq!(
            front_signature(&outcome),
            front_signature(&reference),
            "threads={threads} memoize={memoize} prune={prune}"
        );
        if memoize {
            assert!(
                outcome.stats.memo_hits > 0,
                "voltage replicas must hit the memo"
            );
            assert!(outcome.stats.full_evaluations < outcome.stats.enumerated);
        }
        // accounting: every enumerated point is full, memoized or pruned
        assert_eq!(
            outcome.stats.full_evaluations + outcome.stats.memo_hits + outcome.stats.pruned,
            outcome.stats.enumerated,
            "threads={threads} memoize={memoize} prune={prune}"
        );
    }
}

/// Objective vectors (not just labels) agree between a parallel pruned
/// sweep and the serial reference, for every front member.
#[test]
fn front_objectives_are_bitwise_stable_across_schedules() {
    let space = small_space();
    let cost = CostModel::default();
    let a = explore(&space, &cost, &DseConfig::default());
    let b = explore(
        &space,
        &cost,
        &DseConfig {
            threads: 1,
            ..DseConfig::default()
        },
    );
    for (w, front) in &a.fronts {
        let other = b.front(*w);
        assert_eq!(front.len(), other.len(), "workload {w}");
        for (x, y) in front.iter().zip(other) {
            assert_eq!(x.label, y.label);
            assert_eq!(
                x.objectives.throughput.to_bits(),
                y.objectives.throughput.to_bits()
            );
            assert_eq!(
                x.objectives.energy_per_item.to_bits(),
                y.objectives.energy_per_item.to_bits()
            );
            assert_eq!(x.objectives.area.to_bits(), y.objectives.area.to_bits());
        }
    }
}

/// Why the pruner does NOT use the direct (single-phase) event-graph MCR
/// as its period lower bound: the all-true abstraction is optimistic when
/// a replicated column is the bottleneck, but **pessimistic** when the
/// shared steering environment is — so it is not an admissible bound in
/// either direction. This pins the concrete counterexample (fast 2×2
/// columns: direct 11.0 > exact 10.5); if it ever stops over-shooting,
/// the comment in `driver::Shared::period_lower_bound` should be
/// revisited rather than this test weakened.
#[test]
fn wagged_direct_graph_period_is_not_an_admissible_bound() {
    let w = wagged_ope(2, 2, ope_delays(), &[1.0, 1.0]).unwrap();
    let exact = analyse(&w.dfs).unwrap().period;
    let direct = maximum_cycle_ratio(&EventGraph::build(&w.dfs))
        .expect("direct graph solves")
        .ratio;
    assert!(
        direct > exact + 1e-9,
        "direct {direct} vs exact {exact}: the counterexample disappeared"
    );
}
