//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length specification: an exact size or a range of sizes.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// The strategy returned by [`vec()`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec` strategy: `size` may be an exact `usize` or a `Range<usize>`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
